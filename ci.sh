#!/usr/bin/env bash
# CI gate for the workspace. The tier-1 gate is
# `cargo build --release && cargo test -q`; `cargo test --workspace -q`
# is a strict superset of `cargo test -q` (root package included), so
# tier-1 failure detection is covered without running the root suites
# twice. The rest extends coverage to every bench/example target and a
# zero-warning clippy sweep.
set -euxo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test --workspace -q
cargo build --release --benches --examples --workspace
# Smoke-run the batch engine experiment end to end: it asserts per-query
# attribution sums to batch totals and batched reads beat cold on every cell.
cargo bench -q -p lcrs-bench --bench exp_batched -- --smoke
cargo clippy --workspace --all-targets -- -D warnings
# Redundant with the workspace sweep, but pinned separately so the engine
# crate never regresses to warnings even if the workspace list changes.
cargo clippy -p lcrs-engine --all-targets -- -D warnings
