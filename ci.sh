#!/usr/bin/env bash
# CI gate for the workspace. The tier-1 gate is
# `cargo build --release && cargo test -q`; `cargo test --workspace -q`
# is a strict superset of `cargo test -q` (root package included), so
# tier-1 failure detection is covered without running the root suites
# twice. The rest extends coverage to every bench/example target, the
# engine smoke experiments (each emitting a machine-readable
# BENCH_<name>.json), a read-IO regression gate against the committed
# BENCH_baseline.json, a formatting gate, a zero-warning rustdoc gate,
# and a zero-warning clippy sweep.
#
# Usage:
#   ./ci.sh                    run every gate
#   ./ci.sh --update-baseline  run the gates, refreshing BENCH_baseline.json
#                              from the current smoke results instead of
#                              checking against it (commit the new file)
set -euo pipefail
cd "$(dirname "$0")"

UPDATE_BASELINE=0
for arg in "$@"; do
    case "$arg" in
        --update-baseline) UPDATE_BASELINE=1 ;;
        *) echo "ci.sh: unknown argument '$arg'" >&2; exit 2 ;;
    esac
done

# Every gate runs through `stage <label> <cmd...>`, which prints a begin
# marker, the elapsed seconds, and collects a one-line-per-stage summary —
# so the CI log shows exactly which gate is slow and nothing is skipped
# silently.
SUMMARY=()
stage() {
    local label=$1
    shift
    echo "[ci] ===== $label: $*"
    local t0=$SECONDS
    "$@"
    local dt=$(( SECONDS - t0 ))
    echo "[ci] ----- $label: OK (${dt}s)"
    SUMMARY+=("$label: OK (${dt}s)")
}
skip() {
    local label=$1 reason=$2
    echo "[ci] ===== $label: SKIPPED ($reason)"
    SUMMARY+=("$label: SKIPPED ($reason)")
}

stage build            cargo build --release
stage test             cargo test --workspace -q
stage build-targets    cargo build --release --benches --examples --workspace

# Smoke-run the engine experiments end to end; each asserts its own
# differential invariants (see the bench headers) and writes
# BENCH_<name>.json for the regression gate below.
stage bench-batched    cargo bench -q -p lcrs-bench --bench exp_batched -- --smoke
stage bench-parallel   cargo bench -q -p lcrs-bench --bench exp_parallel -- --smoke
stage bench-persist    cargo bench -q -p lcrs-bench --bench exp_persist -- --smoke
stage bench-planner    cargo bench -q -p lcrs-bench --bench exp_planner -- --smoke
stage bench-shard      cargo bench -q -p lcrs-bench --bench exp_shard -- --smoke
stage bench-live       cargo bench -q -p lcrs-bench --bench exp_live -- --smoke
stage bench-mmap       cargo bench -q -p lcrs-bench --bench exp_mmap -- --smoke
stage bench-serve      cargo bench -q -p lcrs-bench --bench exp_serve -- --smoke
stage bench-lift       cargo bench -q -p lcrs-bench --bench exp_lift -- --smoke

# Read-IO regression gate: smoke read counts are deterministic (seeded
# workloads, pinned cache geometry); wall-clock is recorded in every
# result and mirrored into the baseline but not gated here (noisy on CI;
# opt in locally with `bench_gate check --gate-wall`).
if [ "$UPDATE_BASELINE" = 1 ]; then
    stage bench-baseline cargo run -q -p lcrs-bench --bin bench_gate -- update
else
    stage bench-gate     cargo run -q -p lcrs-bench --bin bench_gate -- check
fi

# Formatting gate (style pinned by rustfmt.toml); skipped visibly when the
# container lacks rustfmt.
if cargo fmt --version >/dev/null 2>&1; then
    stage fmt cargo fmt --check
else
    skip fmt "rustfmt not installed"
fi

# Docs gate: every intra-doc link and doc attribute must resolve cleanly.
stage doc env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

stage clippy           cargo clippy --workspace --all-targets -- -D warnings
# Redundant with the workspace sweep, but pinned separately — every crate
# named explicitly — so none of them regresses to warnings even if the
# workspace member list changes.
stage clippy-pinned    cargo clippy -p lcrs-geom -p lcrs-extmem -p lcrs-halfspace -p lcrs-baselines -p lcrs-workloads -p lcrs-engine -p lcrs-bench --all-targets -- -D warnings

echo
echo "[ci] stage summary:"
for line in "${SUMMARY[@]}"; do
    echo "[ci]   $line"
done
echo "[ci] all gates green"
