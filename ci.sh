#!/usr/bin/env bash
# CI gate for the workspace. The tier-1 gate is
# `cargo build --release && cargo test -q`; `cargo test --workspace -q`
# is a strict superset of `cargo test -q` (root package included), so
# tier-1 failure detection is covered without running the root suites
# twice. The rest extends coverage to every bench/example target and a
# zero-warning clippy sweep.
set -euxo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test --workspace -q
cargo build --release --benches --examples --workspace
cargo clippy --workspace --all-targets -- -D warnings
