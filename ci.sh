#!/usr/bin/env bash
# CI gate for the workspace. The tier-1 gate is
# `cargo build --release && cargo test -q`; `cargo test --workspace -q`
# is a strict superset of `cargo test -q` (root package included), so
# tier-1 failure detection is covered without running the root suites
# twice. The rest extends coverage to every bench/example target, the
# engine smoke experiments, a formatting gate, and a zero-warning
# clippy sweep.
set -euxo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test --workspace -q
cargo build --release --benches --examples --workspace
# Smoke-run the engine experiments end to end. exp_batched asserts
# per-query attribution sums to batch totals and batched reads beat cold
# on every cell; exp_parallel asserts per-worker deltas sum exactly and
# parallel outcomes match the sequential executor on every cell;
# exp_persist asserts reopened-from-snapshot answers and read-IO totals
# are identical to the in-memory original on every cell (its snapshot
# files live in a self-cleaning temp dir, like the snapshot test suites).
cargo bench -q -p lcrs-bench --bench exp_batched -- --smoke
cargo bench -q -p lcrs-bench --bench exp_parallel -- --smoke
cargo bench -q -p lcrs-bench --bench exp_persist -- --smoke
# Formatting gate (style pinned by rustfmt.toml). Skipped gracefully when
# the container lacks rustfmt.
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "rustfmt not installed; skipping the formatting gate"
fi
cargo clippy --workspace --all-targets -- -D warnings
# Redundant with the workspace sweep, but pinned separately so the crates
# the engine stack depends on never regress to warnings even if the
# workspace list changes.
cargo clippy -p lcrs-extmem -p lcrs-engine --all-targets -- -D warnings
