//! Quantitative smoke checks of the paper's bounds (loose constants so the
//! suite stays deterministic and robust — the full curves live in the
//! benchmark harness and EXPERIMENTS.md).

use lcrs::baselines::ExternalKdTree;
use lcrs::extmem::{Device, DeviceConfig};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::workloads::{halfplane_with_selectivity, points2, Dist2};

/// Theorem 3.5 space: O(n) blocks.
#[test]
fn hs2d_space_is_linear() {
    let page = 1024usize;
    let b = page / 20;
    for e in [12usize, 14] {
        let n_pts = 1usize << e;
        let pts = points2(Dist2::Uniform, n_pts, 1 << 29, e as u64);
        let dev = Device::new(DeviceConfig::new(page, 0));
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        let blocks = (n_pts.div_ceil(b)) as u64;
        assert!(
            hs.pages() <= 4 * blocks,
            "space {} pages vs n = {} blocks at N = {n_pts}",
            hs.pages(),
            blocks
        );
    }
}

/// Theorem 3.5 query: small-output queries must not scale with n.
#[test]
fn hs2d_small_queries_do_not_scale_with_n() {
    let page = 1024usize;
    let b = page / 20;
    let mut ios = Vec::new();
    for e in [12usize, 14] {
        let n_pts = 1usize << e;
        let pts = points2(Dist2::Uniform, n_pts, 1 << 29, 3);
        let dev = Device::new(DeviceConfig::new(page, 0));
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        let mut worst = 0u64;
        for q in 0..8u64 {
            let (m, c) = halfplane_with_selectivity(&pts, b, 40, q);
            let (res, st) = hs.query_below_stats(m, c, false);
            assert_eq!(res.len(), b);
            worst = worst.max(st.ios);
        }
        ios.push(worst);
    }
    // 4x the points must not even double the worst small-query cost.
    assert!(ios[1] <= 2 * ios[0] + 8, "IOs grew with n: {:?} (expected O(log_B n + 1))", ios);
}

/// Section 1.2: the adversarial separation between Theorem 3.5 and a
/// kd-tree must be at least an order of magnitude at modest sizes.
#[test]
fn adversarial_separation_holds() {
    let page = 1024usize;
    let n_pts = 1usize << 14;
    let pts = points2(Dist2::Diagonal, n_pts, 1 << 29, 5);
    let dev = Device::new(DeviceConfig::new(page, 0));
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let dev_kd = Device::new(DeviceConfig::new(page, 0));
    let kd = ExternalKdTree::build(&dev_kd, &pts);
    let (r1, s1) = hs.query_below_stats(1, -1, false);
    let (r2, s2) = kd.query_below(1, -1, false);
    assert!(r1.is_empty() && r2.is_empty());
    assert!(
        s1.ios * 10 <= s2.ios,
        "expected ≥10x separation, got hs2d {} vs kd {}",
        s1.ios,
        s2.ios
    );
}

/// The inclusive/strict boundary semantics: points exactly on the line.
#[test]
fn boundary_points_are_handled_exactly() {
    let pts: Vec<(i64, i64)> = (0..200).map(|i| (i, 2 * i)).collect(); // on y = 2x
    let dev = Device::new(DeviceConfig::new(512, 0));
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    assert_eq!(hs.query_below(2, 0, false).len(), 0);
    assert_eq!(hs.query_below(2, 0, true).len(), 200);
    assert_eq!(hs.query_below(2, 1, false).len(), 200);
    assert_eq!(hs.query_below(2, -1, true).len(), 0);
}
