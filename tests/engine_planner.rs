//! Acceptance + property suite for the cost-model query planner (ISSUE 5;
//! derived query classes per DESIGN.md §15).
//!
//! The shared fixture is a fifteen-structure [`IndexSet`] over one 2D and
//! one 3D dataset — every `RangeIndex` structure in the workspace (now
//! including the four lifted-disk backends) plus the scan baselines
//! covering all six query classes — calibrated by a measured probe pass,
//! and a mixed 500-query oracle workload (180 halfplane + 80 halfspace +
//! 60 k-NN + 72 disk + 72 count/sum + 36 top-k, interleaved).
//!
//! Pinned here:
//! * planned answers are bit-identical to routing every query through the
//!   linear-scan baselines, and both match host-side brute force;
//! * planned aggregate read IOs strictly beat always-scan routing *and*
//!   predicted-worst routing;
//! * per-query IO attribution sums exactly to the aggregate;
//! * `force_plan(slot)` reproduces a direct `BatchExecutor` run on that
//!   structure bit-identically (outcome, IO, and answer);
//! * parallel plan execution matches sequential plan execution;
//! * calibration constants round-trip through a `SnapshotCatalog` and a
//!   reopened set makes identical plan decisions without re-probing;
//! * (property) no plan ever routes a query to a structure whose
//!   `supports()` rejects it, scan plans stay on scan-class structures,
//!   and the planned choice never predicts worse than the worst choice.

use std::sync::{Mutex, MutexGuard, OnceLock};

use lcrs::baselines::ExternalScan;
use lcrs::engine::{BatchExecutor, IndexSet, Plan, Query, QueryStatus, SnapshotCatalog};
use lcrs::extmem::{Device, DeviceConfig, ReopenBackend, TempDir};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::workloads::{points2, points3, Dist2, Dist3};
use lcrs_bench::{brute_answer, canon_answer, full_index_set, lifted_oracle, lifted_probes};
use proptest::prelude::*;

const PAGE: usize = 1024;
// Smaller than either scan file, so always-scan routing really pays Θ(n/B)
// per query instead of serving from a fully resident cache.
const CACHE_PAGES: usize = 12;
const N2: usize = 1400;
const N3: usize = 700;

struct State {
    /// Keeps the devices (and their page stores) alive for the suite.
    devices: Vec<Device>,
    set: IndexSet,
    queries: Vec<Query>,
    /// Brute-force reference answer per query (sorted ids; k-NN ordered).
    reference: Vec<Vec<u64>>,
}

fn build_state() -> State {
    let pts2 = points2(Dist2::Clustered, N2, 1000, 61);
    let pts3 = points3(Dist3::Uniform, N3, 1 << 16, 62);

    // The canonical fifteen-structure fixture, shared with exp_planner
    // (slot order is load-bearing for tie-breaking — scans sit last).
    let dev2 = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let dev3 = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let mut set = full_index_set(&dev2, &dev3, &pts2, &pts3);

    // The measured probe pass, on seeds disjoint from the workload; the
    // aggregate probes populate the dual calibration's aggregate side.
    set.calibrate(&lifted_probes(&pts2, &pts3, 81));

    // The mixed 500-query oracle workload across all six query classes,
    // deterministically interleaved — the same construction as
    // exp_planner's (the query coefficients differ with the dataset, which
    // is smaller here).
    let queries = lifted_oracle(&pts2, &pts3, (180, 80, 60, 72, 72, 36), 71);
    assert_eq!(queries.len(), 500);
    let reference: Vec<Vec<u64>> = queries.iter().map(|q| brute_answer(q, &pts2, &pts3)).collect();
    State { devices: vec![dev2, dev3], set, queries, reference }
}

/// The fixture is expensive (eleven structure builds) and the executors
/// measure IO on shared device scopes, so tests serialize on one mutex.
fn state() -> MutexGuard<'static, State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(build_state())).lock().unwrap()
}

#[test]
fn planner_beats_scan_and_worst_on_the_mixed_oracle_workload() {
    let st = state();
    let (set, queries) = (&st.set, &st.queries);

    let planned_plan = set.plan(queries);
    let scan_plan = set.scan_plan(queries);
    let worst_plan = set.worst_plan(queries);
    assert_eq!(planned_plan.unrouted(), 0, "the set covers every query class");
    assert_eq!(scan_plan.unrouted(), 0, "scan + scan3 cover every query class");

    let planned = set.execute_plan(queries, &planned_plan, true);
    let scanned = set.execute_plan(queries, &scan_plan, true);
    let worst = set.execute_plan(queries, &worst_plan, true);

    // Differential gate: planned answers == scan-baseline answers ==
    // host-side brute force, on all 500 queries.
    let planned_answers = planned.answers.as_ref().unwrap();
    let scanned_answers = scanned.answers.as_ref().unwrap();
    for (qi, q) in queries.iter().enumerate() {
        let want = &st.reference[qi];
        assert_eq!(&canon_answer(q, planned_answers[qi].clone()), want, "planned q{qi} {q:?}");
        assert_eq!(&canon_answer(q, scanned_answers[qi].clone()), want, "scanned q{qi} {q:?}");
        assert_eq!(planned.outcomes[qi].status, QueryStatus::Ok);
        assert_eq!(planned.outcomes[qi].reported, want.len());
    }

    // Attribution: per-query deltas sum exactly to the aggregate, and the
    // per-structure sub-batch totals do too.
    for report in [&planned, &scanned, &worst] {
        assert_eq!(report.attributed_total(), report.total);
        let sub_sum: lcrs::extmem::IoDelta = report.per_index.iter().map(|r| r.io).sum();
        assert_eq!(sub_sum, report.total);
    }

    // The IO gate: planned reads strictly beat both alternatives.
    assert!(
        planned.reads() < scanned.reads(),
        "planned {} must beat always-scan {}",
        planned.reads(),
        scanned.reads()
    );
    assert!(
        planned.reads() < worst.reads(),
        "planned {} must beat worst routing {}",
        planned.reads(),
        worst.reads()
    );

    // Report queries never write.
    assert_eq!(planned.total.writes, 0);
}

#[test]
fn force_plan_reproduces_direct_execution_bit_identically() {
    let st = state();
    let (set, queries) = (&st.set, &st.queries);
    for slot in 0..set.len() {
        let plan = set.force_plan(slot, queries);
        let forced = set.execute_plan(queries, &plan, true);
        // The unplanned reference: the same structure fed the whole mixed
        // batch through a BatchExecutor directly (unsupported queries
        // produce zero-IO Unsupported outcomes there too).
        let direct =
            BatchExecutor::new(set.structure(slot)).keep_answers(true).run_batched(queries);
        assert_eq!(forced.total, direct.total, "slot {slot} totals");
        for (f, d) in forced.outcomes.iter().zip(&direct.outcomes) {
            assert_eq!(
                (f.query, f.status, f.reported, f.io),
                (d.query, d.status, d.reported, d.io),
                "slot {slot} ({}) outcome",
                set.structure(slot).name()
            );
        }
        assert_eq!(forced.answers, direct.answers, "slot {slot} answers");
    }
}

#[test]
fn parallel_plan_execution_matches_sequential() {
    let st = state();
    let (set, queries) = (&st.set, &st.queries);
    // Parallel workers need lock-free reads to be interesting, but the
    // executors are correct either way; freeze to exercise the real path.
    for dev in &st.devices {
        dev.freeze();
    }
    let plan = set.plan(queries);
    let sequential = set.execute_plan(queries, &plan, true);
    for workers in [1usize, 4] {
        let parallel = set.execute_parallel_plan(queries, &plan, workers, true);
        assert_eq!(parallel.answers, sequential.answers, "{workers} workers");
        assert_eq!(parallel.attributed_total(), parallel.total, "{workers} workers");
        for (p, s) in parallel.outcomes.iter().zip(&sequential.outcomes) {
            assert_eq!((p.query, p.status, p.reported), (s.query, s.status, s.reported));
        }
        if workers == 1 {
            assert_eq!(parallel.total, sequential.total, "1 worker == sequential IO");
        }
    }
}

#[test]
fn calibration_roundtrips_through_the_catalog_with_identical_plans() {
    let dir = TempDir::new("lcrs-planner-catalog");
    let st = state();
    let (set, queries) = (&st.set, &st.queries);
    for dev in &st.devices {
        dev.freeze(); // catalog entries require frozen devices
    }

    let mut cat = SnapshotCatalog::create(dir.path()).unwrap();
    for slot in 0..set.len() {
        cat.add(&format!("s{slot}"), set.structure(slot)).unwrap();
    }
    set.save_calibration_to_catalog(&cat).unwrap();

    // Reopen: calibration loads from the catalog — no re-probing.
    let reopened =
        IndexSet::from_catalog(&SnapshotCatalog::open(dir.path()).unwrap(), CACHE_PAGES).unwrap();
    assert_eq!(reopened.len(), set.len());
    for slot in 0..set.len() {
        assert_eq!(reopened.structure(slot).name(), set.structure(slot).name());
        assert_eq!(
            reopened.calibration(slot).constant.to_bits(),
            set.calibration(slot).constant.to_bits(),
            "slot {slot}: constants must round-trip bit-exactly"
        );
        assert_eq!(reopened.calibration(slot).probes, set.calibration(slot).probes);
    }

    // Identical plan decisions…
    let plan = set.plan(queries);
    let re_plan = reopened.plan(queries);
    assert_eq!(plan.assignments, re_plan.assignments);
    for (a, b) in plan.predicted.iter().zip(&re_plan.predicted) {
        assert_eq!(a.to_bits(), b.to_bits(), "predicted costs must match bit-exactly");
    }

    // …and identical execution: answers and read-IO totals (persistence
    // moves bytes, never the cost model — DESIGN.md §9).
    let original = set.execute_plan(queries, &plan, true);
    let re_run = reopened.execute_plan(queries, &re_plan, true);
    let original_answers = original.answers.as_ref().unwrap();
    let re_answers = re_run.answers.as_ref().unwrap();
    for (qi, q) in queries.iter().enumerate() {
        assert_eq!(
            canon_answer(q, original_answers[qi].clone()),
            canon_answer(q, re_answers[qi].clone()),
            "q{qi}"
        );
    }
    assert_eq!(original.total, re_run.total, "reopened IO totals must be identical");
}

#[test]
fn oracle_is_bit_identical_across_memory_pread_and_mmap_backends() {
    // The ISSUE 8 backend-parity oracle: the full 500-query mixed workload
    // through the in-memory set and through catalog reopens on both
    // storage backends — identical routing, answers, per-query outcomes,
    // and model read-IO totals, sequentially and in parallel; and the
    // prefetch hints the plan runner issues are pure (turning them off
    // changes neither answers nor IO counts).
    let dir = TempDir::new("lcrs-planner-backends");
    let st = state();
    let (set, queries) = (&st.set, &st.queries);
    for dev in &st.devices {
        dev.freeze();
    }
    let mut cat = SnapshotCatalog::create(dir.path()).unwrap();
    for slot in 0..set.len() {
        cat.add(&format!("s{slot}"), set.structure(slot)).unwrap();
    }
    set.save_calibration_to_catalog(&cat).unwrap();
    let cat = SnapshotCatalog::open(dir.path()).unwrap();

    let plan = set.plan(queries);
    let memory = set.execute_plan(queries, &plan, true);

    let pread = IndexSet::from_catalog(&cat, CACHE_PAGES).unwrap();
    let mut mmap = IndexSet::from_catalog_as(&cat, CACHE_PAGES, ReopenBackend::Mmap).unwrap();

    for (name, reopened) in [("pread", &pread), ("mmap", &mmap)] {
        let re_plan = reopened.plan(queries);
        assert_eq!(re_plan.assignments, plan.assignments, "{name}: identical routing");
        let run = reopened.execute_plan(queries, &re_plan, true);
        assert_eq!(run.answers, memory.answers, "{name}: sequential answers");
        assert_eq!(run.total, memory.total, "{name}: sequential read-IO totals");
        for (a, b) in run.outcomes.iter().zip(&memory.outcomes) {
            assert_eq!(
                (a.query, a.status, a.reported, a.io),
                (b.query, b.status, b.reported, b.io),
                "{name}: per-query outcome and IO delta"
            );
        }
        for workers in [1usize, 4] {
            let par = reopened.execute_parallel_plan(queries, &re_plan, workers, true);
            assert_eq!(par.answers, memory.answers, "{name}/{workers}: parallel answers");
            assert_eq!(par.attributed_total(), par.total, "{name}/{workers}: attribution");
            if workers == 1 {
                assert_eq!(par.total, memory.total, "{name}/{workers}: 1 worker == sequential");
            }
        }
    }

    // Prefetch purity: same plan, hints off — nothing observable changes.
    let re_plan = mmap.plan(queries);
    let with_hints = mmap.execute_plan(queries, &re_plan, true);
    assert!(mmap.prefetch_enabled());
    mmap.set_prefetch(false);
    assert!(!mmap.prefetch_enabled());
    let without = mmap.execute_plan(queries, &re_plan, true);
    assert_eq!(without.answers, with_hints.answers, "prefetch off: identical answers");
    assert_eq!(without.total, with_hints.total, "prefetch off: identical IO totals");
}

#[test]
fn uncalibrated_sets_rank_by_the_paper_shapes() {
    // Before any probe pass the cost model is the raw paper bound: a
    // logarithmic structure must out-rank the scan for a 2D report query.
    let pts = points2(Dist2::Uniform, 300, 1000, 91);
    let dev = Device::new(DeviceConfig::new(PAGE, 8));
    let hs2d = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let scan = ExternalScan::build(&dev, &pts);
    let mut set = IndexSet::new();
    let scan_slot = set.add(Box::new(scan));
    let hs_slot = set.add(Box::new(hs2d));
    let q = Query::Halfplane { m: 1, c: 0, inclusive: false };
    assert!(set.cost(hs_slot, &q) < set.cost(scan_slot, &q));
    let plan = set.plan(&[q]);
    assert_eq!(plan.assignments, vec![Some(hs_slot)]);
    // An empty set plans nothing and executes to all-Unsupported.
    let empty = IndexSet::new();
    let plan = empty.plan(&[q]);
    assert_eq!(plan.assignments, vec![None]);
    let report = empty.execute_plan(&[q], &plan, true);
    assert_eq!(report.unsupported(), 1);
    assert_eq!(report.total, lcrs::extmem::IoDelta::default());
}

/// Check the structural plan invariants for any plan over any queries.
fn check_plan_invariants(set: &IndexSet, queries: &[Query], plan: &Plan, scan_only: bool) {
    assert_eq!(plan.assignments.len(), queries.len());
    for (qi, (assignment, q)) in plan.assignments.iter().zip(queries).enumerate() {
        match *assignment {
            Some(slot) => {
                assert!(slot < set.len(), "q{qi}: slot in range");
                assert!(
                    set.structure(slot).supports(q),
                    "q{qi}: routed to {}, which rejects {q:?}",
                    set.structure(slot).name()
                );
                if scan_only {
                    assert!(
                        set.structure(slot).cost_hint().is_scan(),
                        "q{qi}: scan plan routed to non-scan {}",
                        set.structure(slot).name()
                    );
                }
                assert!(plan.predicted[qi] > 0.0);
            }
            None => {
                if !scan_only {
                    assert!(
                        (0..set.len()).all(|s| !set.structure(s).supports(q)),
                        "q{qi}: unrouted despite a capable structure"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn plans_only_route_to_supporting_structures(
        picks in prop::collection::vec((0usize..500, any::<bool>()), 1..60),
        force_slot in 0usize..11,
    ) {
        let st = state();
        let (set, pool) = (&st.set, &st.queries);
        // A pseudo-random sub-batch of the oracle pool, with some queries
        // mutated to exercise different coefficients.
        let queries: Vec<Query> = picks
            .iter()
            .map(|&(i, flip)| {
                let q = pool[i % pool.len()];
                match (q, flip) {
                    (Query::Halfplane { m, c, .. }, true) => {
                        Query::Halfplane { m: -m, c, inclusive: true }
                    }
                    (Query::Knn { x, y, k }, true) => Query::Knn { x: -x, y: -y, k: k.max(1) },
                    _ => q,
                }
            })
            .collect();

        let planned = set.plan(&queries);
        let worst = set.worst_plan(&queries);
        let scan = set.scan_plan(&queries);
        check_plan_invariants(set, &queries, &planned, false);
        check_plan_invariants(set, &queries, &worst, false);
        check_plan_invariants(set, &queries, &scan, true);
        // Forced plans route exactly the queries the forced slot supports
        // (elsewhere-capable queries legitimately stay unrouted here, so
        // the all-capable invariant helper does not apply).
        let forced = set.force_plan(force_slot, &queries);
        for (qi, a) in forced.assignments.iter().enumerate() {
            match *a {
                Some(slot) => {
                    prop_assert_eq!(slot, force_slot);
                    prop_assert!(set.structure(slot).supports(&queries[qi]));
                }
                None => prop_assert!(!set.structure(force_slot).supports(&queries[qi])),
            }
        }
        // The planned choice never predicts worse than the worst choice,
        // and both route exactly the supportable queries.
        for qi in 0..queries.len() {
            prop_assert_eq!(planned.assignments[qi].is_some(), worst.assignments[qi].is_some());
            prop_assert!(planned.predicted[qi] <= worst.predicted[qi]);
        }
    }
}
