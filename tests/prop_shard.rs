//! Property suite for the space partitioner behind `ShardedIndexSet`
//! (ISSUE 6): arbitrary point sets (duplicates, collinear runs, tiny
//! inputs) through `partition2`/`partition3` at S ∈ {1, 2, 4, 8}.
//!
//! Pinned properties:
//! * **near-even** — |max − min| shard size stays bounded (each
//!   ham-sandwich / median split is off by at most one per level);
//! * **disjoint cover** — the shard groups partition the input ids, and
//!   every input point's coordinates land in *exactly* the cells of the
//!   shards that hold a copy of that point (pure geometry: duplicates
//!   stay together, no point is claimed by a foreign cell);
//! * **no-false-negative routing** — for arbitrary halfplane/halfspace
//!   constraints, every shard holding a satisfying point passes the
//!   region's `may_intersect` test: routing never prunes an answer.

use lcrs::halfspace::{partition2, partition3};
use lcrs::workloads::{count_below2, count_below3};
use proptest::prelude::*;

/// Valid shard counts for `n` points: powers of two ≤ n.
fn shard_counts(n: usize) -> Vec<usize> {
    [1usize, 2, 4, 8].into_iter().filter(|&s| s <= n).collect()
}

fn satisfies2(p: (i64, i64), m: i64, c: i64, inclusive: bool) -> bool {
    let rhs = m as i128 * p.0 as i128 + c as i128;
    if inclusive {
        p.1 as i128 <= rhs
    } else {
        (p.1 as i128) < rhs
    }
}

fn satisfies3(p: (i64, i64, i64), u: i64, v: i64, w: i64, inclusive: bool) -> bool {
    let rhs = u as i128 * p.0 as i128 + v as i128 * p.1 as i128 + w as i128;
    if inclusive {
        p.2 as i128 <= rhs
    } else {
        (p.2 as i128) < rhs
    }
}

const C: std::ops::RangeInclusive<i64> = -20_000i64..=20_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partition2_is_near_even_disjoint_and_covering(
        pts in prop::collection::vec((C, C), 1..300),
    ) {
        for s in shard_counts(pts.len()) {
            let p = partition2(&pts, s);
            prop_assert_eq!(p.groups.len(), s);
            prop_assert_eq!(p.regions.len(), s);

            // Disjoint cover of ids: every input index in exactly one group.
            let mut seen = vec![false; pts.len()];
            for g in &p.groups {
                for &i in g {
                    prop_assert!(!seen[i as usize], "id {} in two shards", i);
                    seen[i as usize] = true;
                }
            }
            prop_assert!(seen.iter().all(|&b| b), "some id unassigned");

            // Near-even: each split is off by at most one per level.
            let sizes: Vec<usize> = p.groups.iter().map(Vec::len).collect();
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            prop_assert!(max - min <= s.max(2), "S={} sizes {:?}", s, sizes);

            // Geometric cover: a point's coordinates are contained in the
            // cell of every shard holding a copy of it, and (S>1) in no
            // other cell — cells are disjoint, duplicates stay together.
            for (si, g) in p.groups.iter().enumerate() {
                for &i in g {
                    prop_assert!(
                        p.regions[si].cell_contains(pts[i as usize]),
                        "S={} shard {} does not contain its own point {:?}",
                        s, si, pts[i as usize]
                    );
                    if s > 1 {
                        prop_assert_eq!(p.cell_of(pts[i as usize]), Some(si));
                    }
                }
            }
        }
    }

    #[test]
    fn partition2_routing_has_no_false_negatives(
        pts in prop::collection::vec((C, C), 1..300),
        m in -60i64..=60,
        c in -2_000_000i64..=2_000_000,
        inclusive in any::<bool>(),
    ) {
        for s in shard_counts(pts.len()) {
            let p = partition2(&pts, s);
            for (si, g) in p.groups.iter().enumerate() {
                let holds_answer = g.iter().any(|&i| satisfies2(pts[i as usize], m, c, inclusive));
                if holds_answer {
                    prop_assert!(
                        p.regions[si].may_intersect_halfplane(m, c, inclusive),
                        "S={} shard {} holds an answer but routing pruned it",
                        s, si
                    );
                }
            }
            // Sanity: the union over non-pruned shards reproduces the count.
            let routed: usize = p
                .groups
                .iter()
                .zip(&p.regions)
                .filter(|(_, r)| r.may_intersect_halfplane(m, c, inclusive))
                .map(|(g, _)| {
                    g.iter().filter(|&&i| satisfies2(pts[i as usize], m, c, inclusive)).count()
                })
                .sum();
            let strict: usize = pts.iter().filter(|&&q| satisfies2(q, m, c, inclusive)).count();
            prop_assert_eq!(routed, strict);
            if !inclusive {
                prop_assert_eq!(strict, count_below2(&pts, m, c));
            }
        }
    }

    #[test]
    fn partition3_covers_and_routes_soundly(
        pts in prop::collection::vec((C, C, C), 1..200),
        u in -40i64..=40,
        v in -40i64..=40,
        w in -2_000_000i64..=2_000_000,
        inclusive in any::<bool>(),
    ) {
        for s in shard_counts(pts.len()) {
            let p = partition3(&pts, s);
            let mut seen = vec![false; pts.len()];
            for (si, g) in p.groups.iter().enumerate() {
                for &i in g {
                    prop_assert!(!seen[i as usize]);
                    seen[i as usize] = true;
                    prop_assert!(p.regions[si].cell_contains(pts[i as usize]));
                    if s > 1 {
                        prop_assert_eq!(p.cell_of(pts[i as usize]), Some(si));
                    }
                }
            }
            prop_assert!(seen.iter().all(|&b| b));
            let sizes: Vec<usize> = p.groups.iter().map(Vec::len).collect();
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            prop_assert!(max - min <= s.max(2), "S={} sizes {:?}", s, sizes);

            for (si, g) in p.groups.iter().enumerate() {
                if g.iter().any(|&i| satisfies3(pts[i as usize], u, v, w, inclusive)) {
                    prop_assert!(
                        p.regions[si].may_intersect_halfspace(u, v, w, inclusive),
                        "S={} shard {} holds an answer but routing pruned it",
                        s, si
                    );
                }
            }
            if !inclusive {
                let strict = pts.iter().filter(|&&q| satisfies3(q, u, v, w, inclusive)).count();
                prop_assert_eq!(strict, count_below3(&pts, u, v, w));
            }
        }
    }
}
