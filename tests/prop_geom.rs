//! Property-based tests of the geometric substrate: envelopes, the dynamic
//! first-hit structure, levels, duality, and the ham-sandwich cuts.

use lcrs::geom::dual::point2_to_line;
use lcrs::geom::dyn_envelope::{DynEnvelope, Side};
use lcrs::geom::envelope::LowerEnvelope;
use lcrs::geom::level::{count_strictly_below_at_plus, LevelWalk};
use lcrs::geom::line2::Line2;
use lcrs::geom::rational::Rat;
use proptest::prelude::*;

/// Distinct lines from arbitrary (slope, intercept) pairs.
fn distinct_lines(raw: Vec<(i64, i64)>) -> Vec<Line2> {
    let mut seen = std::collections::HashSet::new();
    raw.into_iter().filter(|p| seen.insert(*p)).map(|(m, b)| Line2::new(m, b)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn envelope_is_pointwise_minimum(
        raw in prop::collection::vec((-200i64..200, -100_000i64..100_000), 1..40),
        probes in prop::collection::vec(-500_000i64..500_000, 1..12),
    ) {
        let lines = distinct_lines(raw);
        let ids: Vec<u32> = (0..lines.len() as u32).collect();
        let env = LowerEnvelope::build(&lines, &ids);
        for x in probes {
            let x = Rat::int(x);
            let got = env.line_at_plus(x).unwrap();
            for (i, l) in lines.iter().enumerate() {
                // No line may be strictly below the envelope line at x+ε.
                prop_assert_ne!(
                    l.cmp_at_plus(&lines[got as usize], x),
                    std::cmp::Ordering::Less,
                    "line {} undercuts envelope at {:?}", i, x
                );
            }
        }
    }

    #[test]
    fn dyn_envelope_agrees_with_static_rebuild(
        raw in prop::collection::vec((-100i64..100, -10_000i64..10_000), 2..30),
        remove_mask in prop::collection::vec(any::<bool>(), 2..30),
    ) {
        let lines = distinct_lines(raw);
        prop_assume!(lines.len() >= 2);
        let ids: Vec<u32> = (0..lines.len() as u32).collect();
        let mut d = DynEnvelope::new(&lines, &ids, Side::Lower);
        let mut live: Vec<u32> = ids.clone();
        for (i, &rm) in remove_mask.iter().enumerate() {
            if rm && live.len() > 1 && i < lines.len() {
                let id = i as u32;
                if live.contains(&id) {
                    d.remove(id);
                    live.retain(|&x| x != id);
                }
            }
        }
        // A ray far below everything with a steep slope: the dynamic first
        // hit must match the static envelope's first hit on the live set.
        let ray = Line2::new(1000, -100_000_000);
        let x0 = Rat::int(-1000);
        prop_assume!(live.iter().all(|&id| ray.cmp_at_plus(&lines[id as usize], x0) == std::cmp::Ordering::Less));
        let env = LowerEnvelope::build(&lines, &live);
        let want = env.first_hit(&lines, ray, x0).map(|(x, _)| x);
        let got = d.first_hit(ray, x0).map(|(x, _)| x);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn level_walk_invariant_holds_everywhere(
        raw in prop::collection::vec((-50i64..50, -5_000i64..5_000), 3..24),
        kfrac in 0.0f64..1.0,
    ) {
        let lines = distinct_lines(raw);
        prop_assume!(lines.len() >= 3);
        let ids: Vec<u32> = (0..lines.len() as u32).collect();
        let k = ((lines.len() - 1) as f64 * kfrac) as usize;
        let mut walk = LevelWalk::new(&lines, &ids, k);
        prop_assert_eq!(
            count_strictly_below_at_plus(&lines, &ids, walk.current_line(), Rat::NegInf),
            k
        );
        let mut steps = 0;
        while let Some(v) = walk.step() {
            steps += 1;
            prop_assert!(steps <= lines.len() * lines.len());
            prop_assert_eq!(
                count_strictly_below_at_plus(&lines, &ids, walk.current_line(), v.x),
                k
            );
        }
    }

    #[test]
    fn duality_preserves_sidedness(
        px in -100_000i64..100_000,
        py in -100_000i64..100_000,
        m in -1_000i64..1_000,
        c in -100_000i64..100_000,
    ) {
        let h = Line2::new(m, c);
        let p_below_h = (py as i128) < h.eval(px);
        let pstar = point2_to_line(px, py);
        // h* = (m, c); p below h ⟺ p* below h*.
        let pstar_below = pstar.eval(m) < c as i128;
        prop_assert_eq!(p_below_h, pstar_below);
    }

    #[test]
    fn ham_sandwich_bisects(
        raw in prop::collection::vec((-50_000i64..50_000, -50_000i64..50_000), 8..60),
    ) {
        use lcrs::halfspace::ptree::hamsandwich::{find_cut, strictly_below_cut};
        let mut pts: Vec<(i64, i64)> = {
            let mut seen = std::collections::HashSet::new();
            raw.into_iter().filter(|p| seen.insert(*p)).collect()
        };
        prop_assume!(pts.len() >= 8);
        pts.sort();
        let half = pts.len() / 2;
        let (a, b) = pts.split_at(half);
        if let Some((ia, ib)) = find_cut(a, b) {
            let (p, q) = (a[ia], b[ib]);
            prop_assume!(p.0 != q.0);
            let below_a = a.iter().filter(|&&r| strictly_below_cut(p, q, r)).count();
            let below_b = b.iter().filter(|&&r| strictly_below_cut(p, q, r)).count();
            prop_assert_eq!(below_a, a.len() / 2);
            prop_assert_eq!(below_b, b.len() / 2);
        }
    }

    #[test]
    fn external_sort_sorts(
        data in prop::collection::vec(any::<i64>(), 0..400),
    ) {
        use lcrs::extmem::sort::external_sort_by_key;
        use lcrs::extmem::{Device, DeviceConfig, VecFile};
        let dev = Device::new(DeviceConfig::new(64, 0));
        let f = VecFile::from_slice(&dev, &data);
        let sorted = external_sort_by_key(&dev, &f, 16, |x| *x);
        let mut want = data.clone();
        want.sort();
        prop_assert_eq!(sorted.read_all(), want);
    }
}
