//! Cross-structure equivalence: every index in the workspace must report
//! exactly the same point set for the same linear constraint, across
//! distributions, on shared datasets — the strongest end-to-end oracle we
//! have (any one structure being right makes all others checked).
//!
//! The `differential_oracle_*` tests extend this to the persistence layer
//! (ISSUE 4): every `RangeIndex` structure, in-memory *and* reopened from
//! a snapshot, is checked against a linear-scan reference on a seeded
//! random workload of 500 mixed queries — so a future snapshot-format
//! change can't silently corrupt answers.

use lcrs::baselines::{ExternalKdTree, ExternalScan, ExternalScan3, StrRTree};
use lcrs::engine::{load_index, LiftedIndex, LiftedKind, Query, RangeIndex};
use lcrs::extmem::{Device, DeviceConfig, MetaReader, MetaWriter, TempDir};
use lcrs::geom::point::{HyperplaneD, PointD};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
use lcrs::halfspace::ptree::{PTreeConfig, PartitionTree, Partitioner};
use lcrs::halfspace::tradeoff::{HybridConfig, HybridTree3, ShallowConfig, ShallowTree3};
use lcrs::halfspace::{DynamicHalfspace2, KnnStructure};
use lcrs::workloads::{
    aggregate_mixed, disk_mixed, halfplane_mixed, halfplane_with_selectivity,
    halfspace3_with_selectivity, points2, points3, topk_mixed, Dist2, Dist3,
};
use lcrs_bench::brute_answer;

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

#[test]
fn all_2d_structures_agree() {
    for dist in
        [Dist2::Uniform, Dist2::Gaussianish, Dist2::Clustered, Dist2::Diagonal, Dist2::Circle]
    {
        let pts = points2(dist, 1200, 1 << 20, 7);
        let dev = Device::new(DeviceConfig::new(512, 0));
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        let kd = ExternalKdTree::build(&dev, &pts);
        let rt = StrRTree::build(&dev, &pts);
        let sc = ExternalScan::build(&dev, &pts);
        let ptpts: Vec<PointD<2>> = pts.iter().map(|&(x, y)| PointD::new([x, y])).collect();
        let pt = PartitionTree::build(&dev, &ptpts, PTreeConfig::default());
        let ph = PartitionTree::build(
            &dev,
            &ptpts,
            PTreeConfig { partitioner: Partitioner::HamSandwich, ..Default::default() },
        );
        for q in 0..8u64 {
            let t = [0usize, 5, 100, 600][q as usize % 4];
            let (m, c) = halfplane_with_selectivity(&pts, t, 40, q);
            for inclusive in [false, true] {
                let want = sorted(sc.query_below(m, c, inclusive).0);
                assert_eq!(sorted(hs.query_below(m, c, inclusive)), want, "{dist:?} hs2d");
                assert_eq!(sorted(kd.query_below(m, c, inclusive).0), want, "{dist:?} kd");
                assert_eq!(sorted(rt.query_below(m, c, inclusive).0), want, "{dist:?} rtree");
                let h = HyperplaneD::new([c, m]);
                assert_eq!(sorted(pt.query_halfspace(&h, inclusive)), want, "{dist:?} ptree");
                assert_eq!(sorted(ph.query_halfspace(&h, inclusive)), want, "{dist:?} ptree-hs");
            }
        }
    }
}

#[test]
fn all_3d_structures_agree() {
    for dist in [Dist3::Uniform, Dist3::Clustered, Dist3::Slab] {
        let pts = points3(dist, 900, 1 << 16, 11);
        let dev = Device::new(DeviceConfig::new(512, 0));
        let hs = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
        let hy = HybridTree3::build(&dev, &pts, HybridConfig::default());
        let sh = ShallowTree3::build(&dev, &pts, ShallowConfig::default());
        let s3 = ExternalScan3::build(&dev, &pts);
        let ptpts: Vec<PointD<3>> = pts.iter().map(|&(x, y, z)| PointD::new([x, y, z])).collect();
        let pt = PartitionTree::build(&dev, &ptpts, PTreeConfig::default());
        let brute = |u: i64, v: i64, w: i64, inc: bool| -> Vec<u32> {
            sorted(
                pts.iter()
                    .enumerate()
                    .filter(|(_, &(x, y, z))| {
                        let rhs = u as i128 * x as i128 + v as i128 * y as i128 + w as i128;
                        if inc {
                            z as i128 <= rhs
                        } else {
                            (z as i128) < rhs
                        }
                    })
                    .map(|(i, _)| i as u32)
                    .collect(),
            )
        };
        for q in 0..6u64 {
            let t = [0usize, 30, 450][q as usize % 3];
            let (u, v, w) = lcrs::workloads::halfspace3_with_selectivity(&pts, t, 24, q);
            for inclusive in [false, true] {
                let want = brute(u, v, w, inclusive);
                assert_eq!(sorted(hs.query_below(u, v, w, inclusive)), want, "{dist:?} hs3d");
                assert_eq!(sorted(hy.query_below(u, v, w, inclusive)), want, "{dist:?} hybrid");
                assert_eq!(sorted(sh.query_below(u, v, w, inclusive)), want, "{dist:?} shallow");
                assert_eq!(sorted(s3.query_below(u, v, w, inclusive).0), want, "{dist:?} scan3");
                let h = HyperplaneD::new([w, u, v]);
                assert_eq!(sorted(pt.query_halfspace(&h, inclusive)), want, "{dist:?} ptree3");
            }
        }
    }
}

/// Persist every structure built on `dev` through one device snapshot and
/// per-structure metadata bytes, and reopen them all on a fresh
/// file-backed device — the "another process" half of the oracle.
fn reopen_all(
    dir: &TempDir,
    name: &str,
    dev: &Device,
    indexes: &[&dyn RangeIndex],
) -> Vec<Box<dyn RangeIndex>> {
    let path = dir.file(&format!("{name}.pages"));
    dev.freeze_to_path(&path).unwrap();
    let re_dev = Device::open_snapshot(&path, 0).unwrap();
    indexes
        .iter()
        .map(|index| {
            let mut w = MetaWriter::new();
            index.save_meta(&mut w);
            let mut r = MetaReader::from_bytes(w.into_bytes()).unwrap();
            let loaded = load_index(index.name(), &re_dev, &mut r).unwrap();
            r.finish().unwrap();
            loaded
        })
        .collect()
}

/// One oracle step: every index that supports `q` — in-memory and
/// reopened — must report exactly the reference id set.
fn check_against_reference(
    q: &Query,
    want: &[u64],
    in_memory: &[&dyn RangeIndex],
    reopened: &[Box<dyn RangeIndex>],
    ordered: bool,
    ctx: &str,
) {
    for (index, re) in in_memory.iter().zip(reopened) {
        assert_eq!(index.supports(q), re.supports(q), "{ctx}: support must survive reopen");
        if !index.supports(q) {
            continue;
        }
        for (variant, ids) in
            [("in-memory", index.try_execute(q).unwrap()), ("reopened", re.try_execute(q).unwrap())]
        {
            let got = if ordered {
                ids
            } else {
                let mut s = ids;
                s.sort_unstable();
                s
            };
            assert_eq!(
                got,
                want,
                "{ctx}: {} ({variant}) disagrees with the linear-scan reference on {q:?}",
                index.name()
            );
        }
    }
}

#[test]
fn differential_oracle_2d_500_mixed_queries() {
    // 2D leg of the 500-query oracle: 300 mixed halfplane queries over
    // every 2D RangeIndex structure, in-memory and reopened, against the
    // LinearScan baseline (itself cross-checked against brute force).
    let dir = TempDir::new("lcrs-oracle-2d");
    let pts = points2(Dist2::Clustered, 1000, 1 << 20, 17);
    let dev = Device::new(DeviceConfig::new(512, 0));
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let kd = ExternalKdTree::build(&dev, &pts);
    let rt = StrRTree::build(&dev, &pts);
    let sc = ExternalScan::build(&dev, &pts);
    let ptpts: Vec<PointD<2>> = pts.iter().map(|&(x, y)| PointD::new([x, y])).collect();
    let pt = PartitionTree::<2>::build(&dev, &ptpts, PTreeConfig::default());
    let mut dy = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
    for (i, &(x, y)) in pts.iter().enumerate() {
        dy.insert(x, y, i as u64); // tags = indices, comparable to the scan
    }
    let in_memory: Vec<&dyn RangeIndex> = vec![&hs, &kd, &rt, &sc, &pt, &dy];
    let reopened = reopen_all(&dir, "oracle2d", &dev, &in_memory);

    for (qi, (m, c, inclusive)) in halfplane_mixed(&pts, 300, 40, 18).into_iter().enumerate() {
        let q = Query::Halfplane { m, c, inclusive };
        // The linear-scan reference, cross-checked against brute force.
        let mut want: Vec<u64> =
            sc.query_below(m, c, inclusive).0.iter().map(|&i| i as u64).collect();
        want.sort_unstable();
        let brute: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| {
                let rhs = m as i128 * x as i128 + c as i128;
                if inclusive {
                    y as i128 <= rhs
                } else {
                    (y as i128) < rhs
                }
            })
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(want, brute, "query {qi}: the scan itself must match brute force");
        check_against_reference(&q, &want, &in_memory, &reopened, false, &format!("q{qi}"));
    }
}

#[test]
fn differential_oracle_3d_and_knn_200_mixed_queries() {
    // 3D + k-NN legs of the 500-query oracle: 120 mixed halfspace queries
    // and 80 k-NN queries, each structure in-memory and reopened, against
    // a host-side linear scan (there is no external 3D scan baseline).
    let dir = TempDir::new("lcrs-oracle-3d");
    let pts3 = points3(Dist3::Uniform, 500, 1 << 16, 19);
    let dev3 = Device::new(DeviceConfig::new(512, 0));
    let hs = HalfspaceRS3::build(&dev3, &pts3, Hs3dConfig::default());
    let hy = HybridTree3::build(&dev3, &pts3, HybridConfig::default());
    let sh = ShallowTree3::build(&dev3, &pts3, ShallowConfig::default());
    let s3 = ExternalScan3::build(&dev3, &pts3);
    let in_memory3: Vec<&dyn RangeIndex> = vec![&hs, &hy, &sh, &s3];
    let reopened3 = reopen_all(&dir, "oracle3d", &dev3, &in_memory3);

    let mut s = 20u64;
    let mut next = move || {
        s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        s
    };
    for qi in 0..120usize {
        let t = (next() as usize) % (pts3.len() / 2 + 1);
        let (u, v, w) = halfspace3_with_selectivity(&pts3, t, 24, next());
        let inclusive = qi % 2 == 1;
        let q = Query::Halfspace { u, v, w, inclusive };
        let want: Vec<u64> = pts3
            .iter()
            .enumerate()
            .filter(|(_, &(x, y, z))| {
                let rhs = u as i128 * x as i128 + v as i128 * y as i128 + w as i128;
                if inclusive {
                    z as i128 <= rhs
                } else {
                    (z as i128) < rhs
                }
            })
            .map(|(i, _)| i as u64)
            .collect();
        check_against_reference(&q, &want, &in_memory3, &reopened3, false, &format!("3d-q{qi}"));
    }

    let ptsk = points2(Dist2::Uniform, 400, 1000, 21);
    let devk = Device::new(DeviceConfig::new(512, 0));
    let knn = KnnStructure::build(&devk, &ptsk, Hs3dConfig::default());
    // The 2D scan answers k-NN too (same reporting order), so it rides
    // along in the ordered leg of the oracle.
    let sck = ExternalScan::build(&devk, &ptsk);
    let in_memory_k: Vec<&dyn RangeIndex> = vec![&knn, &sck];
    let reopened_k = reopen_all(&dir, "oraclek", &devk, &in_memory_k);
    for qi in 0..80usize {
        let (x, y) = (next() as i64 % 1000, next() as i64 % 1000);
        let k = 1 + (next() as usize) % 20;
        let q = Query::Knn { x, y, k };
        // Linear-scan reference: distances sorted, ties by id — exactly
        // the structure's reporting order, so compare *ordered*.
        let mut d: Vec<(i128, u64)> = ptsk
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                let (dx, dy) = (x as i128 - a as i128, y as i128 - b as i128);
                (dx * dx + dy * dy, i as u64)
            })
            .collect();
        d.sort_unstable();
        let want: Vec<u64> = d.into_iter().take(k).map(|(_, i)| i).collect();
        check_against_reference(&q, &want, &in_memory_k, &reopened_k, true, &format!("knn-q{qi}"));
    }
}

#[test]
fn differential_oracle_derived_classes_500_mixed_queries() {
    // The DESIGN.md §15 leg of the oracle: 300 disk + 100 count/sum +
    // 100 top-k queries over every capable 2D structure — the annotated
    // hs2d/kd-tree, the scan, the dynamic tier, the k-NN structure's
    // in-budget disk path, and all four lifted backends — in-memory and
    // reopened from a snapshot, against host-side brute force (exact
    // i128 arithmetic, `lcrs_bench::brute_answer`).
    let dir = TempDir::new("lcrs-oracle-lift");
    let pts = points2(Dist2::Clustered, 900, 1000, 23);
    let dev = Device::new(DeviceConfig::new(512, 0));
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let kd = ExternalKdTree::build(&dev, &pts);
    let sc = ExternalScan::build(&dev, &pts);
    let knn = KnnStructure::build(&dev, &pts, Hs3dConfig::default());
    let mut dy = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
    for (i, &(x, y)) in pts.iter().enumerate() {
        dy.insert(x, y, i as u64); // tags = indices, comparable to brute
    }
    let l_hs3d = LiftedIndex::build(&dev, &pts, LiftedKind::Hs3d);
    let l_hybrid = LiftedIndex::build(&dev, &pts, LiftedKind::Hybrid);
    let l_shallow = LiftedIndex::build(&dev, &pts, LiftedKind::Shallow);
    let l_scan3 = LiftedIndex::build(&dev, &pts, LiftedKind::Scan3);
    let in_memory: Vec<&dyn RangeIndex> =
        vec![&hs, &kd, &sc, &knn, &dy, &l_hs3d, &l_hybrid, &l_shallow, &l_scan3];
    let reopened = reopen_all(&dir, "oraclelift", &dev, &in_memory);

    let mut queries: Vec<Query> = Vec::with_capacity(500);
    queries.extend(
        disk_mixed(&pts, 300, 200, 24).into_iter().map(|(x, y, r2, inclusive)| Query::Disk {
            x,
            y,
            r2,
            inclusive,
        }),
    );
    queries.extend(aggregate_mixed(&pts, 100, 40, 25).into_iter().map(|(m, c, inclusive, sum)| {
        if sum {
            Query::Sum { m, c, inclusive }
        } else {
            Query::Count { m, c, inclusive }
        }
    }));
    queries.extend(topk_mixed(&pts, 100, 40, 16, 26).into_iter().map(|(m, c, k)| Query::TopK {
        m,
        c,
        k,
    }));
    assert_eq!(queries.len(), 500);

    let mut disks_on_lifted = 0usize;
    for (qi, q) in queries.iter().enumerate() {
        let want = brute_answer(q, &pts, &[]);
        // Ranked answers (top-k) and scalar encodings (count, sum words)
        // compare verbatim; disk reports compare as sorted id sets.
        let ordered = q.is_ranked() || q.is_aggregate();
        check_against_reference(q, &want, &in_memory, &reopened, ordered, &format!("lift-q{qi}"));
        if l_hs3d.supports(q) && matches!(q, Query::Disk { .. }) {
            disks_on_lifted += 1;
        }
    }
    // The lifted backends must actually participate: every disk query here
    // has an in-budget center, so none may fall back to scan-only support.
    assert_eq!(disks_on_lifted, 300, "lifted index must cover the whole disk leg");
}

#[test]
fn structures_share_one_device_without_interference() {
    // Multiple structures on one device: page ranges must not collide.
    let dev = Device::new(DeviceConfig::new(256, 0));
    let pts = points2(Dist2::Uniform, 600, 1 << 18, 3);
    let hs1 = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let pts_b = points2(Dist2::Clustered, 600, 1 << 18, 4);
    let hs2 = HalfspaceRS2::build(&dev, &pts_b, Hs2dConfig::default());
    let (m, c) = halfplane_with_selectivity(&pts, 37, 20, 9);
    assert_eq!(hs1.query_below(m, c, false).len(), 37);
    let (m2, c2) = halfplane_with_selectivity(&pts_b, 73, 20, 10);
    assert_eq!(hs2.query_below(m2, c2, false).len(), 73);
}
