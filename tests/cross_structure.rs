//! Cross-structure equivalence: every index in the workspace must report
//! exactly the same point set for the same linear constraint, across
//! distributions, on shared datasets — the strongest end-to-end oracle we
//! have (any one structure being right makes all others checked).

use lcrs::baselines::{ExternalKdTree, ExternalScan, StrRTree};
use lcrs::extmem::{Device, DeviceConfig};
use lcrs::geom::point::{HyperplaneD, PointD};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
use lcrs::halfspace::ptree::{PTreeConfig, PartitionTree, Partitioner};
use lcrs::halfspace::tradeoff::{HybridConfig, HybridTree3, ShallowConfig, ShallowTree3};
use lcrs::workloads::{halfplane_with_selectivity, points2, points3, Dist2, Dist3};

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

#[test]
fn all_2d_structures_agree() {
    for dist in
        [Dist2::Uniform, Dist2::Gaussianish, Dist2::Clustered, Dist2::Diagonal, Dist2::Circle]
    {
        let pts = points2(dist, 1200, 1 << 20, 7);
        let dev = Device::new(DeviceConfig::new(512, 0));
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        let kd = ExternalKdTree::build(&dev, &pts);
        let rt = StrRTree::build(&dev, &pts);
        let sc = ExternalScan::build(&dev, &pts);
        let ptpts: Vec<PointD<2>> = pts.iter().map(|&(x, y)| PointD::new([x, y])).collect();
        let pt = PartitionTree::build(&dev, &ptpts, PTreeConfig::default());
        let ph = PartitionTree::build(
            &dev,
            &ptpts,
            PTreeConfig { partitioner: Partitioner::HamSandwich, ..Default::default() },
        );
        for q in 0..8u64 {
            let t = [0usize, 5, 100, 600][q as usize % 4];
            let (m, c) = halfplane_with_selectivity(&pts, t, 40, q);
            for inclusive in [false, true] {
                let want = sorted(sc.query_below(m, c, inclusive).0);
                assert_eq!(sorted(hs.query_below(m, c, inclusive)), want, "{dist:?} hs2d");
                assert_eq!(sorted(kd.query_below(m, c, inclusive).0), want, "{dist:?} kd");
                assert_eq!(sorted(rt.query_below(m, c, inclusive).0), want, "{dist:?} rtree");
                let h = HyperplaneD::new([c, m]);
                assert_eq!(sorted(pt.query_halfspace(&h, inclusive)), want, "{dist:?} ptree");
                assert_eq!(sorted(ph.query_halfspace(&h, inclusive)), want, "{dist:?} ptree-hs");
            }
        }
    }
}

#[test]
fn all_3d_structures_agree() {
    for dist in [Dist3::Uniform, Dist3::Clustered, Dist3::Slab] {
        let pts = points3(dist, 900, 1 << 16, 11);
        let dev = Device::new(DeviceConfig::new(512, 0));
        let hs = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
        let hy = HybridTree3::build(&dev, &pts, HybridConfig::default());
        let sh = ShallowTree3::build(&dev, &pts, ShallowConfig::default());
        let ptpts: Vec<PointD<3>> = pts.iter().map(|&(x, y, z)| PointD::new([x, y, z])).collect();
        let pt = PartitionTree::build(&dev, &ptpts, PTreeConfig::default());
        let brute = |u: i64, v: i64, w: i64, inc: bool| -> Vec<u32> {
            sorted(
                pts.iter()
                    .enumerate()
                    .filter(|(_, &(x, y, z))| {
                        let rhs = u as i128 * x as i128 + v as i128 * y as i128 + w as i128;
                        if inc {
                            z as i128 <= rhs
                        } else {
                            (z as i128) < rhs
                        }
                    })
                    .map(|(i, _)| i as u32)
                    .collect(),
            )
        };
        for q in 0..6u64 {
            let t = [0usize, 30, 450][q as usize % 3];
            let (u, v, w) = lcrs::workloads::halfspace3_with_selectivity(&pts, t, 24, q);
            for inclusive in [false, true] {
                let want = brute(u, v, w, inclusive);
                assert_eq!(sorted(hs.query_below(u, v, w, inclusive)), want, "{dist:?} hs3d");
                assert_eq!(sorted(hy.query_below(u, v, w, inclusive)), want, "{dist:?} hybrid");
                assert_eq!(sorted(sh.query_below(u, v, w, inclusive)), want, "{dist:?} shallow");
                let h = HyperplaneD::new([w, u, v]);
                assert_eq!(sorted(pt.query_halfspace(&h, inclusive)), want, "{dist:?} ptree3");
            }
        }
    }
}

#[test]
fn structures_share_one_device_without_interference() {
    // Multiple structures on one device: page ranges must not collide.
    let dev = Device::new(DeviceConfig::new(256, 0));
    let pts = points2(Dist2::Uniform, 600, 1 << 18, 3);
    let hs1 = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let pts_b = points2(Dist2::Clustered, 600, 1 << 18, 4);
    let hs2 = HalfspaceRS2::build(&dev, &pts_b, Hs2dConfig::default());
    let (m, c) = halfplane_with_selectivity(&pts, 37, 20, 9);
    assert_eq!(hs1.query_below(m, c, false).len(), 37);
    let (m2, c2) = halfplane_with_selectivity(&pts_b, 73, 20, 10);
    assert_eq!(hs2.query_below(m2, c2, false).len(), 73);
}
