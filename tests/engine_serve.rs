//! Acceptance + differential-oracle suite for the query server (ISSUE 9).
//!
//! The fixture is the canonical eleven-structure [`IndexSet`] (shared with
//! the planner suite and `exp_planner`) behind a [`QueryServer`], fed a
//! four-tenant virtual-time arrival stream built from the mixed oracle
//! workload.
//!
//! Pinned here:
//! * **differential oracle** — replaying the stream through the windowed
//!   serving loop yields answers bit-identical to direct
//!   `IndexSet::execute_plan` on each window's concatenated queries, with
//!   identical per-window read IOs on the sequential path, and matching
//!   host-side brute force;
//! * per-tenant attributed IoDeltas sum exactly to the aggregate (the
//!   PR 3/PR 6 invariant one level up);
//! * parallel window execution (workers > 1) answers bit-identically to
//!   sequential;
//! * a tenant exceeding its quota gets typed `Rejected` outcomes while
//!   every other tenant's answers stay bit-identical to an unthrottled
//!   run;
//! * an all-rejected stream and an empty stream execute zero windows with
//!   zeroed deltas (no runtime-assert trips);
//! * window boundaries respect both policy bounds (size trip, deadline);
//! * a replayed trace reproduces the report byte-identically modulo the
//!   measured wall fields, and the metrics snapshot agrees with the
//!   reports it summarizes.

use lcrs::engine::{
    Arrival, Query, QueryServer, QuotaConfig, RejectReason, ServeConfig, ServeReport, ServeStatus,
    WindowPolicy,
};
use lcrs::extmem::{Device, DeviceConfig, IoDelta};
use lcrs::workloads::{points2, points3, Dist2, Dist3};
use lcrs_bench::{brute_answer, canon_answer, full_index_set, mixed_oracle, mixed_probes};

const PAGE: usize = 1024;
const CACHE_PAGES: usize = 12;
const N2: usize = 900;
const N3: usize = 500;
const TENANTS: u32 = 4;
const GAP_NS: u64 = 1000;

/// The policy every test uses unless it is exercising the policy itself:
/// 16-query windows closing after 8 virtual gaps.
fn policy() -> WindowPolicy {
    WindowPolicy { max_wait_ns: 8 * GAP_NS, max_queries: 16 }
}

/// A fresh calibrated server over the canonical fixture (fresh devices
/// each call — builds and calibration are deterministic, so two servers
/// built here plan identically).
fn server(workers: usize) -> (Vec<Device>, QueryServer) {
    let pts2 = points2(Dist2::Clustered, N2, 1000, 61);
    let pts3 = points3(Dist3::Uniform, N3, 1 << 16, 62);
    let dev2 = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let dev3 = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let mut set = full_index_set(&dev2, &dev3, &pts2, &pts3);
    set.calibrate(&mixed_probes(&pts2, &pts3, 81));
    let cfg = ServeConfig { policy: policy(), workers };
    (vec![dev2, dev3], QueryServer::new(set, cfg))
}

/// The shared four-tenant arrival stream: the mixed oracle workload with
/// evenly spaced virtual arrivals, tenants round-robin.
fn arrivals() -> Vec<Arrival> {
    let pts2 = points2(Dist2::Clustered, N2, 1000, 61);
    let pts3 = points3(Dist3::Uniform, N3, 1 << 16, 62);
    mixed_oracle(&pts2, &pts3, (120, 48, 32), 71)
        .into_iter()
        .enumerate()
        .map(|(i, query)| Arrival {
            at_ns: (i as u64 + 1) * GAP_NS,
            tenant: i as u32 % TENANTS,
            query,
        })
        .collect()
}

#[test]
fn serving_loop_matches_direct_plan_execution_and_brute_force() {
    let stream = arrivals();
    let (_devs, mut srv) = server(1);
    let rep = srv.run_trace(&stream, true);
    let answers = rep.answers.as_ref().unwrap();
    assert_eq!(rep.outcomes.len(), stream.len());
    assert_eq!(rep.rejected(), 0, "no quotas configured, nothing rejected");

    // Differential oracle, window by window: gather each window's
    // arrivals in stream order, run them directly through the planner,
    // and demand bit-identical answers and identical window reads (the
    // batch engine's reads are deterministic — the cache is cleared per
    // routed group).
    let set = srv.index_set();
    for w in &rep.windows {
        let members: Vec<usize> =
            rep.outcomes.iter().filter(|o| o.window == Some(w.seq)).map(|o| o.arrival).collect();
        assert_eq!(members.len(), w.queries);
        let sub: Vec<Query> = members.iter().map(|&i| stream[i].query).collect();
        let plan = set.plan(&sub);
        let direct = set.execute_plan(&sub, &plan, true);
        assert_eq!(
            direct.total, w.io,
            "window {}: serving reads must equal direct plan execution",
            w.seq
        );
        let direct_answers = direct.answers.unwrap();
        for (slot, &i) in members.iter().enumerate() {
            assert_eq!(
                answers[i], direct_answers[slot],
                "window {} slot {slot}: answers must be bit-identical",
                w.seq
            );
            assert_eq!(rep.outcomes[i].io, direct.outcomes[slot].io);
        }
    }

    // And against host-side brute force (canonical form: sorted ids for
    // reports, distance order for k-NN).
    let pts2 = points2(Dist2::Clustered, N2, 1000, 61);
    let pts3 = points3(Dist3::Uniform, N3, 1 << 16, 62);
    for (i, a) in stream.iter().enumerate() {
        assert_eq!(
            canon_answer(&a.query, answers[i].clone()),
            brute_answer(&a.query, &pts2, &pts3),
            "arrival {i}"
        );
    }

    // Attribution: per-tenant sums equal the aggregate exactly, and the
    // window totals do too.
    let per_tenant = rep.per_tenant_io();
    assert_eq!(per_tenant.len(), TENANTS as usize);
    assert_eq!(per_tenant.iter().map(|&(_, d)| d).sum::<IoDelta>(), rep.total);
    assert_eq!(rep.windows.iter().map(|w| w.io).sum::<IoDelta>(), rep.total);
    assert_eq!(rep.attributed_total(), rep.total);
    assert_eq!(rep.total.writes, 0, "report queries never write");
}

#[test]
fn parallel_windows_answer_bit_identically_to_sequential() {
    let stream = arrivals();
    let (_d1, mut seq) = server(1);
    let (_d4, mut par) = server(4);
    let seq_rep = seq.run_trace(&stream, true);
    let par_rep = par.run_trace(&stream, true);
    assert_eq!(seq_rep.answers, par_rep.answers, "workers must not change answers");
    // Window boundaries are policy-driven, not worker-driven.
    assert_eq!(seq_rep.windows.len(), par_rep.windows.len());
    for (a, b) in seq_rep.outcomes.iter().zip(&par_rep.outcomes) {
        assert_eq!((a.status, a.window, a.reported), (b.status, b.window, b.reported));
    }
}

#[test]
fn window_policy_bounds_are_respected() {
    let stream = arrivals();
    let (_devs, mut srv) = server(1);
    let rep = srv.run_trace(&stream, false);
    let policy = policy();
    assert!(rep.windows.len() > 1, "the stream must split into several windows");
    for w in &rep.windows {
        assert!(w.queries <= policy.max_queries, "size bound");
        assert!(
            w.close_ns.saturating_sub(w.open_ns) <= policy.max_wait_ns,
            "window {} held open past its deadline: {}..{}",
            w.seq,
            w.open_ns,
            w.close_ns
        );
    }
    // Evenly spaced arrivals at GAP_NS with a 16-query cap and an
    // 8-gap deadline: every interior window trips the deadline first.
    assert!(rep.windows.iter().all(|w| w.queries <= 9));
}

#[test]
fn throttled_tenant_gets_typed_rejections_others_unchanged() {
    let stream = arrivals();
    let (_d1, mut free) = server(1);
    let unthrottled = free.run_trace(&stream, true);

    let (_d2, mut srv) = server(1);
    // Tenant 0 gets a quota it must exhaust: a bucket of 64 read tokens
    // refilling 1 token per virtual millisecond against a workload
    // costing far more.
    srv.set_quota(0, QuotaConfig { capacity: 64, refill: 1, interval_ns: 1_000_000 });
    let throttled = srv.run_trace(&stream, true);

    let rejected: Vec<usize> = throttled
        .outcomes
        .iter()
        .filter(|o| matches!(o.status, ServeStatus::Rejected(_)))
        .map(|o| o.arrival)
        .collect();
    assert!(!rejected.is_empty(), "tenant 0 must exhaust its 64-token quota");
    for &i in &rejected {
        let o = &throttled.outcomes[i];
        assert_eq!(o.tenant, 0, "only the throttled tenant is rejected");
        assert_eq!(o.io, IoDelta::default(), "a rejected arrival costs nothing");
        assert_eq!(o.window, None, "a rejected arrival never enters a window");
        let ServeStatus::Rejected(RejectReason::QuotaExhausted { retry_at_ns }) = o.status else {
            panic!("expected a typed quota rejection");
        };
        assert!(retry_at_ns > 0 && retry_at_ns < u64::MAX, "refilling quota carries a retry time");
    }
    // Isolation: every other tenant's answers are bit-identical to the
    // unthrottled run (admission changes *which* queries run, never what
    // an admitted query answers).
    let free_answers = unthrottled.answers.as_ref().unwrap();
    let thr_answers = throttled.answers.as_ref().unwrap();
    for (i, a) in stream.iter().enumerate() {
        if a.tenant != 0 {
            assert_eq!(thr_answers[i], free_answers[i], "arrival {i} (tenant {})", a.tenant);
        }
    }
    // Attribution still exact under admission control.
    assert_eq!(throttled.attributed_total(), throttled.total);
    let t0 = throttled.per_tenant_io().first().copied().unwrap();
    assert_eq!(t0.0, 0);
    assert!(
        t0.1.reads < unthrottled.per_tenant_io()[0].1.reads,
        "throttling must cut the tenant's attributed reads"
    );
}

#[test]
fn all_rejected_and_empty_streams_execute_zero_windows() {
    // Empty stream: nothing opens, nothing trips.
    let (_d1, mut srv) = server(1);
    let rep = srv.run_trace(&[], true);
    assert!(rep.outcomes.is_empty() && rep.windows.is_empty());
    assert_eq!(rep.total, IoDelta::default());
    assert_eq!(rep.answers, Some(Vec::new()));

    // Every tenant at zero quota: every arrival rejected, zero windows,
    // zeroed deltas — and the "deltas sum to aggregate" assert holds.
    let stream = arrivals();
    let (_d2, mut srv) = server(1);
    for t in 0..TENANTS {
        srv.set_quota(t, QuotaConfig { capacity: 0, refill: 0, interval_ns: 1 });
    }
    let rep = srv.run_trace(&stream, true);
    assert_eq!(rep.outcomes.len(), stream.len());
    assert_eq!(rep.rejected(), stream.len(), "everything rejected");
    assert!(rep.windows.is_empty(), "an all-rejected stream executes nothing");
    assert_eq!(rep.total, IoDelta::default());
    assert_eq!(rep.attributed_total(), IoDelta::default());
    assert!(rep.answers.unwrap().iter().all(Vec::is_empty));
    let m = srv.metrics();
    assert_eq!((m.windows_served, m.queries_served, m.read_ios), (0, 0, 0));
    assert_eq!(m.queries_rejected, stream.len() as u64);
    assert_eq!(m.window_wall_p50_ns, 0, "no windows, no latency samples");
}

/// Everything deterministic in a report (i.e. all but the measured wall
/// fields), flattened for equality comparison.
fn deterministic_view(rep: &ServeReport) -> impl PartialEq + std::fmt::Debug {
    let outcomes: Vec<_> = rep
        .outcomes
        .iter()
        .map(|o| (o.arrival, o.tenant, o.status, o.window, o.reported, o.io))
        .collect();
    let windows: Vec<_> =
        rep.windows.iter().map(|w| (w.seq, w.open_ns, w.close_ns, w.queries, w.io)).collect();
    (outcomes, windows, rep.total, rep.answers.clone())
}

#[test]
fn replayed_trace_reproduces_the_report_and_metrics_agree() {
    let stream = arrivals();
    let (_d1, mut a) = server(1);
    let (_d2, mut b) = server(1);
    let rep_a = a.run_trace(&stream, true);
    let rep_b = b.run_trace(&stream, true);
    assert_eq!(
        deterministic_view(&rep_a),
        deterministic_view(&rep_b),
        "a replayed trace must reproduce the report (modulo wall clock)"
    );

    // The pull-style snapshot agrees with the report it summarizes.
    let m = a.metrics();
    assert_eq!(m.windows_served, rep_a.windows.len() as u64);
    assert_eq!(m.queries_served, stream.len() as u64);
    assert_eq!(m.queries_rejected, 0);
    assert_eq!(m.read_ios, rep_a.total.reads);
    assert!(m.window_wall_p50_ns > 0 && m.window_wall_p50_ns <= m.window_wall_p99_ns);
    assert_eq!(m.tenants.len(), TENANTS as usize);
    for (tm, &(tenant, io)) in m.tenants.iter().zip(rep_a.per_tenant_io().iter()) {
        assert_eq!(tm.tenant, tenant);
        assert_eq!(tm.read_ios, io.reads);
        assert_eq!(tm.rejected, 0);
    }
    assert_eq!(m.tenants.iter().map(|t| t.queries).sum::<u64>(), stream.len() as u64);
    assert_eq!(m.tenants.iter().map(|t| t.read_ios).sum::<u64>(), rep_a.total.reads);

    // Metrics accumulate across run_trace calls on the same server.
    let rep_c = a.run_trace(&stream, false);
    let m2 = a.metrics();
    assert_eq!(m2.windows_served, (rep_a.windows.len() + rep_c.windows.len()) as u64);
    assert_eq!(m2.queries_served, 2 * stream.len() as u64);
    assert_eq!(m2.read_ios, rep_a.total.reads + rep_c.total.reads);
}

#[test]
fn out_of_order_timestamps_are_clamped_not_panicked() {
    // Malformed client input: timestamps going backwards. The loop clamps
    // time to monotone and still serves every arrival.
    let pts2 = points2(Dist2::Clustered, N2, 1000, 61);
    let pts3 = points3(Dist3::Uniform, N3, 1 << 16, 62);
    let queries = mixed_oracle(&pts2, &pts3, (12, 0, 0), 71);
    let stream: Vec<Arrival> = queries
        .into_iter()
        .enumerate()
        .map(|(i, query)| Arrival {
            // 5000, 4000, 3000, ... — strictly decreasing.
            at_ns: 5000u64.saturating_sub(i as u64 * 1000),
            tenant: 0,
            query,
        })
        .collect();
    let (_devs, mut srv) = server(1);
    let rep = srv.run_trace(&stream, false);
    assert_eq!(rep.outcomes.len(), stream.len());
    assert!(rep.outcomes.iter().all(|o| o.window.is_some()));
    assert_eq!(rep.attributed_total(), rep.total);
}
