//! Property-based tests (proptest) on the core invariants:
//! * the 2D and 3D structures agree with brute force on arbitrary inputs,
//!   including duplicates and collinear/degenerate layouts;
//! * the B+-tree behaves like `BTreeMap` under arbitrary operation
//!   sequences;
//! * the greedy clustering respects the Lemma 3.2 bounds for arbitrary k;
//! * box classification agrees with corner enumeration in any dimension.

use lcrs::engine::{LiftedIndex, LiftedKind};
use lcrs::extmem::btree::BPlusTree;
use lcrs::extmem::{Device, DeviceConfig};
use lcrs::geom::lift::MAX_DISK_CENTER;
use lcrs::geom::point::{BoxSide, HyperplaneD, PointD};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
use proptest::prelude::*;

/// Promote ~half of `pts` to out-of-lift-budget coordinates — up to the
/// `i64` extremes — per the selector mask: the tail path of the lifted
/// index must stay exact for any representable point.
fn with_extremes(pts: &[(i64, i64)], mask: &[u8]) -> Vec<(i64, i64)> {
    pts.iter()
        .zip(mask.iter().chain(std::iter::repeat(&0)))
        .map(|(&(x, y), &m)| match m {
            4 => (i64::MAX, y),
            5 => (i64::MIN, y),
            6 => (x, 1 << 40),
            7 => (-(1 << 40), i64::MIN),
            _ => (x, y),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hs2d_matches_brute_force(
        pts in prop::collection::vec((-5000i64..5000, -5000i64..5000), 1..120),
        queries in prop::collection::vec((-50i64..50, -10_000i64..10_000, any::<bool>()), 1..8),
    ) {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        for (m, c, inclusive) in queries {
            let mut got = hs.query_below(m, c, inclusive);
            got.sort_unstable();
            let mut want: Vec<u32> = pts.iter().enumerate().filter(|(_, &(x, y))| {
                let rhs = m as i128 * x as i128 + c as i128;
                if inclusive { y as i128 <= rhs } else { (y as i128) < rhs }
            }).map(|(i, _)| i as u32).collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn hs3d_matches_brute_force(
        pts in prop::collection::vec((-2000i64..2000, -2000i64..2000, -2000i64..2000), 1..80),
        queries in prop::collection::vec((-30i64..30, -30i64..30, -5_000i64..5_000, any::<bool>()), 1..6),
    ) {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let hs = HalfspaceRS3::build(&dev, &pts, Hs3dConfig { copies: 1, ..Default::default() });
        for (u, v, w, inclusive) in queries {
            let mut got = hs.query_below(u, v, w, inclusive);
            got.sort_unstable();
            let mut want: Vec<u32> = pts.iter().enumerate().filter(|(_, &(x, y, z))| {
                let rhs = u as i128 * x as i128 + v as i128 * y as i128 + w as i128;
                if inclusive { z as i128 <= rhs } else { (z as i128) < rhs }
            }).map(|(i, _)| i as u32).collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn lifted_disk_matches_brute_force_including_extremes(
        base in prop::collection::vec((-3000i64..3000, -3000i64..3000), 1..60),
        mask in prop::collection::vec(0u8..8, 1..60),
        queries in prop::collection::vec(
            (
                -MAX_DISK_CENTER..=MAX_DISK_CENTER,
                -MAX_DISK_CENTER..=MAX_DISK_CENTER,
                -10i64..40_000_000,
                0u8..8,
                any::<bool>(),
            ),
            1..6,
        ),
    ) {
        // Every lifted backend must agree with exact i128 membership for
        // any representable points — out-of-budget ones ride the tail —
        // and any in-budget center, including negative and huge r².
        let pts = with_extremes(&base, &mask);
        let dev = Device::new(DeviceConfig::new(512, 0));
        let lifted: Vec<LiftedIndex> =
            [LiftedKind::Hs3d, LiftedKind::Hybrid, LiftedKind::Shallow, LiftedKind::Scan3]
                .into_iter()
                .map(|kind| LiftedIndex::build(&dev, &pts, kind))
                .collect();
        for &(x, y, r2_raw, r2_sel, inclusive) in &queries {
            let r2 = match r2_sel {
                6 => i64::MAX,
                7 => 1 << 62,
                _ => r2_raw,
            };
            let mut want: Vec<u64> = pts.iter().enumerate().filter(|(_, &(px, py))| {
                let (dx, dy) = (x as i128 - px as i128, y as i128 - py as i128);
                let d2 = dx * dx + dy * dy;
                if inclusive { d2 <= r2 as i128 } else { d2 < r2 as i128 }
            }).map(|(i, _)| i as u64).collect();
            want.sort_unstable();
            for index in &lifted {
                let mut got = index.disk_report(x, y, r2, inclusive);
                got.sort_unstable();
                prop_assert_eq!(&got, &want, "{} on ({}, {}, r2={}, inc={})",
                    lcrs::engine::RangeIndex::name(index), x, y, r2, inclusive);
            }
        }
    }

    #[test]
    fn btree_matches_btreemap(
        ops in prop::collection::vec((any::<bool>(), -500i64..500, any::<i64>()), 1..300),
    ) {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let mut tree: BPlusTree<i64, i64> = BPlusTree::new(&dev);
        let mut model = std::collections::BTreeMap::new();
        for (is_insert, k, v) in ops {
            if is_insert {
                tree.insert(k, v);
                model.insert(k, v);
            } else {
                prop_assert_eq!(tree.get(&k), model.get(&k).copied());
                let floor = model.range(..=k).next_back().map(|(a, b)| (*a, *b));
                prop_assert_eq!(tree.floor(&k), floor);
            }
        }
        let mut scanned = Vec::new();
        tree.range(&i64::MIN, &i64::MAX, |k, v| scanned.push((*k, *v)));
        prop_assert_eq!(scanned, model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn clustering_respects_lemma_3_2(
        seed in any::<u64>(),
        n in 8usize..80,
        k in 1usize..8,
    ) {
        use lcrs::geom::line2::Line2;
        use lcrs::halfspace::hs2d::cluster::greedy_clustering;
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as i64
        };
        let mut lines: Vec<Line2> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        while lines.len() < n {
            let l = Line2::new(next() % 512 - 256, next() % 65536 - 32768);
            if seen.insert((l.m, l.b)) {
                lines.push(l);
            }
        }
        prop_assume!(k < lines.len());
        let ids: Vec<u32> = (0..lines.len() as u32).collect();
        let c = greedy_clustering(&lines, &ids, k, 3);
        for cl in &c.clusters {
            prop_assert!(cl.len() <= 3 * k);
        }
        if c.clusters.len() > 1 {
            prop_assert!(c.clusters.len() <= n.div_ceil(k));
        }
    }

    #[test]
    fn box_classification_matches_corners_4d(
        coef in prop::array::uniform4(-20i64..20),
        lo in prop::array::uniform4(-50i64..50),
        ext in prop::array::uniform4(0i64..40),
    ) {
        let h: HyperplaneD<4> = HyperplaneD::new(coef);
        let hi: [i64; 4] = std::array::from_fn(|i| lo[i] + ext[i]);
        let b = lcrs::geom::point::Aabb { lo, hi };
        let mut any_below = false;
        let mut all_below = true;
        for mask in 0..16u32 {
            let p = PointD::new(std::array::from_fn(|i| {
                if mask & (1 << i) == 0 { lo[i] } else { hi[i] }
            }));
            if h.strictly_below(&p) { any_below = true; } else { all_below = false; }
        }
        let want = if all_below {
            BoxSide::FullyBelow
        } else if !any_below {
            BoxSide::FullyAbove
        } else {
            BoxSide::Crossing
        };
        prop_assert_eq!(h.classify_box(&b), want);
    }

    #[test]
    fn knn_matches_brute_force(
        pts in prop::collection::vec((-1000i64..1000, -1000i64..1000), 1..60),
        q in (-1000i64..1000, -1000i64..1000),
        k in 1usize..20,
    ) {
        use lcrs::halfspace::knn::KnnStructure;
        let dev = Device::new(DeviceConfig::new(512, 0));
        let knn = KnnStructure::build(&dev, &pts, Hs3dConfig { copies: 1, ..Default::default() });
        let got = knn.k_nearest(q.0, q.1, k);
        let mut d: Vec<(i128, u32)> = pts.iter().enumerate().map(|(i, &(a, b))| {
            let dx = (q.0 - a) as i128;
            let dy = (q.1 - b) as i128;
            (dx * dx + dy * dy, i as u32)
        }).collect();
        d.sort();
        d.truncate(k);
        let want: Vec<u32> = d.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(got, want);
    }
}
