//! Round-trip differential suite for the persistent snapshot backend
//! (ISSUE 4): every `RangeIndex` structure × two distributions is built,
//! frozen to disk (`Device::freeze_to_path` + `save_meta`), reopened
//! read-only (`Device::open_snapshot` + `load_index`), and run against the
//! same pinned query batch — answers must be bit-identical and IO counts
//! (per query and aggregate) identical to the in-memory frozen original.
//! The `ParallelExecutor` is re-verified over reloaded indexes at 1 and 4
//! workers, and a cold reopened device must start with zeroed counters
//! until the first query (the IO-accounting bugfix riding along).
//!
//! All files live in self-cleaning temp directories ([`TempDir`] removes
//! them even on panic).

use lcrs::baselines::{ExternalKdTree, ExternalScan, StrRTree};
use lcrs::engine::{
    load_index, BatchExecutor, ParallelExecutor, Query, RangeIndex, SnapshotCatalog,
};
use lcrs::extmem::{
    Device, DeviceConfig, IoDelta, IoStats, MetaReader, MetaWriter, PageBackend, ReopenBackend,
    SnapshotError, TempDir,
};
use lcrs::geom::point::PointD;
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
use lcrs::halfspace::ptree::PTreeConfig;
use lcrs::halfspace::tradeoff::{HybridConfig, HybridTree3, ShallowConfig, ShallowTree3};
use lcrs::halfspace::{DynamicHalfspace2, KnnStructure, PartitionTree};
use lcrs::workloads::{halfplane_batch, halfspace3_batch, knn_batch, points2, points3, BatchShape};
use lcrs::workloads::{Dist2, Dist3};

const PAGE: usize = 1024;
const CACHE: usize = 128;

fn warm_device() -> Device {
    Device::new(DeviceConfig::new(PAGE, CACHE))
}

fn halfplane_queries(pts: &[(i64, i64)], len: usize, seed: u64) -> Vec<Query> {
    halfplane_batch(pts, BatchShape::ZipfRepeat { distinct: 10, s: 1.1 }, len, 40, seed)
        .into_iter()
        .map(|(m, c)| Query::Halfplane { m, c, inclusive: false })
        .collect()
}

fn halfspace_queries(pts: &[(i64, i64, i64)], len: usize, seed: u64) -> Vec<Query> {
    halfspace3_batch(pts, BatchShape::SortedSweep, len, 30, seed)
        .into_iter()
        .map(|(u, v, w)| Query::Halfspace { u, v, w, inclusive: false })
        .collect()
}

fn knn_queries(pts: &[(i64, i64)], len: usize, seed: u64) -> Vec<Query> {
    knn_batch(pts, BatchShape::SortedSweep, len, 7, seed)
        .into_iter()
        .map(|(x, y, k)| Query::Knn { x, y, k })
        .collect()
}

/// The full round-trip contract for one (structure, batch) pair:
/// serialize, reopen read-only, and demand bit-identical answers and
/// identical IO accounting — per query and aggregate, sequential and
/// parallel at 1 and 4 workers.
fn check_roundtrip(
    dir: &TempDir,
    dev: &Device,
    index: &dyn RangeIndex,
    queries: &[Query],
    label: &str,
) {
    let mem = BatchExecutor::new(index).keep_answers(true).run_batched(queries);

    let pages = dir.file(&format!("{label}.pages"));
    dev.freeze_to_path(&pages).unwrap_or_else(|e| panic!("{label}: freeze_to_path: {e}"));
    let mut w = MetaWriter::new();
    index.save_meta(&mut w);
    let meta = w.into_bytes();

    // Reopen cold: same cache budget, file-backed pages, zeroed counters.
    let re_dev = Device::open_snapshot(&pages, CACHE)
        .unwrap_or_else(|e| panic!("{label}: open_snapshot: {e}"));
    assert_eq!(re_dev.backend(), PageBackend::File, "{label}");
    assert_eq!(
        re_dev.stats(),
        IoStats::default(),
        "{label}: a cold reopened device must start with zeroed counters"
    );
    let mut r = MetaReader::from_bytes(meta.clone()).unwrap();
    let re =
        load_index(index.name(), &re_dev, &mut r).unwrap_or_else(|e| panic!("{label}: load: {e}"));
    r.finish().unwrap_or_else(|e| panic!("{label}: trailing metadata: {e}"));
    assert_eq!(re.name(), index.name(), "{label}");
    assert_eq!(
        re_dev.stats(),
        IoStats::default(),
        "{label}: loading metadata must not charge model IOs"
    );

    let rep = BatchExecutor::new(&*re).keep_answers(true).run_batched(queries);
    assert_eq!(
        rep.answers, mem.answers,
        "{label}: reopened answers must be bit-identical to the in-memory original"
    );
    assert_eq!(rep.total, mem.total, "{label}: aggregate IO must be identical");
    assert!(rep.total.reads > 0, "{label}: the batch must actually touch the disk");
    for (a, b) in rep.outcomes.iter().zip(&mem.outcomes) {
        assert_eq!(
            (a.query, a.status, a.reported, a.io),
            (b.query, b.status, b.reported, b.io),
            "{label}: per-query outcome and IO delta must be identical"
        );
    }
    // The query IOs above all landed on the reopened primary scope: the
    // device counters since open equal the batch total exactly.
    assert_eq!(
        re_dev.stats().since(IoStats::default()),
        rep.total,
        "{label}: all reopened IOs are attributed to the opening scope"
    );

    // Parallel execution over the reloaded index: same answers, exact
    // per-worker attribution, at 1 and 4 workers.
    for workers in [1usize, 4] {
        let par = ParallelExecutor::new(&*re, workers).keep_answers(true).run(queries);
        assert_eq!(
            par.answers, mem.answers,
            "{label}/{workers}: parallel answers over the reloaded index"
        );
        let worker_sum: IoDelta = par.per_worker.iter().map(|w| w.io).sum();
        assert_eq!(worker_sum, par.total, "{label}/{workers}: worker deltas sum exactly");
        if workers == 1 {
            assert_eq!(par.total, mem.total, "{label}: one worker costs the sequential batch");
        }
    }

    // Reopen a third time through the zero-copy mapping (DESIGN.md §13):
    // the mmap backend shares the pread backend's validate-once open path,
    // and after that a frozen read is a pointer offset — answers, per-query
    // outcomes, and model read-IO totals must be bit-identical to both the
    // in-memory original and the pread reopen, sequential and parallel.
    let mm_dev = Device::open_snapshot_as(&pages, CACHE, ReopenBackend::Mmap)
        .unwrap_or_else(|e| panic!("{label}: open_snapshot_as(mmap): {e}"));
    #[cfg(unix)]
    assert_eq!(mm_dev.backend(), PageBackend::Mmap, "{label}");
    assert_eq!(mm_dev.stats(), IoStats::default(), "{label}: cold mmap reopen starts zeroed");
    let mut r = MetaReader::from_bytes(meta).unwrap();
    let mm = load_index(index.name(), &mm_dev, &mut r)
        .unwrap_or_else(|e| panic!("{label}: mmap load: {e}"));
    r.finish().unwrap_or_else(|e| panic!("{label}: trailing metadata (mmap): {e}"));
    let mrep = BatchExecutor::new(&*mm).keep_answers(true).run_batched(queries);
    assert_eq!(mrep.answers, mem.answers, "{label}: mmap answers match the in-memory original");
    assert_eq!(mrep.total, mem.total, "{label}: mmap aggregate IO matches");
    for (a, b) in mrep.outcomes.iter().zip(&rep.outcomes) {
        assert_eq!(
            (a.query, a.status, a.reported, a.io),
            (b.query, b.status, b.reported, b.io),
            "{label}: per-query outcome and IO delta identical across pread and mmap"
        );
    }
    for workers in [1usize, 4] {
        let par = ParallelExecutor::new(&*mm, workers).keep_answers(true).run(queries);
        assert_eq!(par.answers, mem.answers, "{label}/{workers}: parallel answers over mmap");
        let worker_sum: IoDelta = par.per_worker.iter().map(|w| w.io).sum();
        assert_eq!(worker_sum, par.total, "{label}/{workers}: mmap worker deltas sum exactly");
    }
}

#[test]
fn roundtrip_2d_structures_two_distributions() {
    let dir = TempDir::new("lcrs-roundtrip-2d");
    for (di, dist) in [Dist2::Uniform, Dist2::Clustered].into_iter().enumerate() {
        let seed = 41 + di as u64;
        let pts = points2(dist, 800, 1 << 20, seed);
        let queries = halfplane_queries(&pts, 60, seed + 10);
        let pd: Vec<PointD<2>> = pts.iter().map(|&(x, y)| PointD::new([x, y])).collect();

        // One device per structure: freeze_to_path serializes the whole
        // store, and per-structure devices keep the snapshots lean.
        let cases: Vec<(Device, Box<dyn RangeIndex>)> = vec![
            {
                let dev = warm_device();
                let i = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
                (dev, Box::new(i))
            },
            {
                let dev = warm_device();
                let i = ExternalScan::build(&dev, &pts);
                (dev, Box::new(i))
            },
            {
                let dev = warm_device();
                let i = ExternalKdTree::build(&dev, &pts);
                (dev, Box::new(i))
            },
            {
                let dev = warm_device();
                let i = StrRTree::build(&dev, &pts);
                (dev, Box::new(i))
            },
            {
                let dev = warm_device();
                let i = PartitionTree::<2>::build(&dev, &pd, PTreeConfig::default());
                (dev, Box::new(i))
            },
        ];
        for (dev, index) in &cases {
            let label = format!("{}-{dist:?}", index.name());
            check_roundtrip(&dir, dev, &**index, &queries, &label);
        }
    }
}

#[test]
fn roundtrip_3d_structures_two_distributions() {
    let dir = TempDir::new("lcrs-roundtrip-3d");
    for (di, dist) in [Dist3::Uniform, Dist3::Slab].into_iter().enumerate() {
        let seed = 61 + di as u64;
        let pts = points3(dist, 400, 1 << 16, seed);
        let queries = halfspace_queries(&pts, 50, seed + 10);
        let cases: Vec<(Device, Box<dyn RangeIndex>)> = vec![
            {
                let dev = warm_device();
                let i = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
                (dev, Box::new(i))
            },
            {
                let dev = warm_device();
                let i = HybridTree3::build(&dev, &pts, HybridConfig::default());
                (dev, Box::new(i))
            },
            {
                let dev = warm_device();
                let i = ShallowTree3::build(&dev, &pts, ShallowConfig::default());
                (dev, Box::new(i))
            },
        ];
        for (dev, index) in &cases {
            let label = format!("{}-{dist:?}", index.name());
            check_roundtrip(&dir, dev, &**index, &queries, &label);
        }
    }
}

#[test]
fn roundtrip_knn_and_dynamic_two_distributions() {
    let dir = TempDir::new("lcrs-roundtrip-kd");
    for (di, dist) in [Dist2::Uniform, Dist2::Clustered].into_iter().enumerate() {
        let seed = 81 + di as u64;

        // k-NN (coordinates inside the lift budget).
        let kpts = points2(dist, 500, 1000, seed);
        let kdev = warm_device();
        let knn = KnnStructure::build(&kdev, &kpts, Hs3dConfig::default());
        let kqueries = knn_queries(&kpts, 40, seed + 10);
        check_roundtrip(&dir, &kdev, &knn, &kqueries, &format!("knn-{dist:?}"));

        // Dynamic: build through the mutable path (inserts + some
        // removals so parts, buffer, and tombstones all have content),
        // then persist the frozen result.
        let pts = points2(dist, 700, 1 << 20, seed + 1);
        let ddev = warm_device();
        let mut dynamic = DynamicHalfspace2::new(&ddev, Hs2dConfig::default());
        for (i, &(x, y)) in pts.iter().enumerate() {
            dynamic.insert(x, y, i as u64);
        }
        for tag in (0..40u64).map(|t| t * 7) {
            assert!(dynamic.remove(tag));
        }
        let dqueries = halfplane_queries(&pts, 50, seed + 11);
        check_roundtrip(&dir, &ddev, &dynamic, &dqueries, &format!("dynamic-{dist:?}"));
    }
}

#[test]
fn catalog_persists_and_reloads_a_batch_executors_worth() {
    let dir = TempDir::new("lcrs-catalog");
    let pts = points2(Dist2::Uniform, 700, 1 << 20, 5);
    let queries = halfplane_queries(&pts, 50, 6);

    let hs_dev = warm_device();
    let hs = HalfspaceRS2::build(&hs_dev, &pts, Hs2dConfig::default());
    let kd_dev = warm_device();
    let kd = ExternalKdTree::build(&kd_dev, &pts);
    let sc_dev = warm_device();
    let sc = ExternalScan::build(&sc_dev, &pts);

    let mut cat = SnapshotCatalog::create(dir.file("cat")).unwrap();
    // Freezing is the owner's decision: an unfrozen device is refused.
    assert!(matches!(cat.add("hs", &hs), Err(SnapshotError::NotFrozen)));
    hs_dev.freeze();
    kd_dev.freeze();
    sc_dev.freeze();
    cat.add("hs", &hs).unwrap();
    cat.add("kd", &kd).unwrap();
    cat.add("sc", &sc).unwrap();
    assert!(matches!(cat.add("hs", &kd), Err(SnapshotError::DuplicateEntry { .. })));
    assert!(matches!(cat.add("bad/label", &kd), Err(SnapshotError::InvalidLabel { .. })));
    assert!(matches!(cat.add("", &kd), Err(SnapshotError::InvalidLabel { .. })));
    // The "__" prefix is reserved for engine-internal files sharing the
    // directory: a colliding entry must fail typed for every internal
    // file the engine currently keeps (and any added later), replacing
    // the per-name blocklist that used to grow with each new file.
    for internal in ["__catalog", "__shards", "__planner", "__live", "__anything-future"] {
        assert!(
            matches!(
                cat.add(internal, &kd),
                Err(SnapshotError::ReservedLabel { prefix: lcrs_engine::RESERVED_PREFIX, .. })
            ),
            "label {internal:?} must be rejected as reserved"
        );
    }
    // The old single-underscore and plain names are ordinary labels now.
    cat.add("catalog", &kd).unwrap();
    cat.remove("catalog").unwrap();
    assert!(matches!(cat.remove("catalog"), Err(SnapshotError::NoSuchEntry { .. })));

    // Reopen the whole directory in "another process".
    let reopened = SnapshotCatalog::open(dir.file("cat")).unwrap();
    assert_eq!(reopened.entries().len(), 3);
    assert_eq!(
        reopened.entries().iter().map(|e| (e.label.as_str(), e.kind.as_str())).collect::<Vec<_>>(),
        vec![("hs", "hs2d"), ("kd", "kdtree"), ("sc", "scan")]
    );
    assert!(matches!(reopened.load("nope", CACHE), Err(SnapshotError::NoSuchEntry { .. })));

    let originals: Vec<&dyn RangeIndex> = vec![&hs, &kd, &sc];
    let loaded = reopened.load_all(CACHE).unwrap();
    assert_eq!(loaded.len(), 3);
    for (orig, re) in originals.iter().zip(&loaded) {
        assert_eq!(orig.name(), re.name());
        let mem = BatchExecutor::new(*orig).keep_answers(true).run_batched(&queries);
        let rep = BatchExecutor::new(&**re).keep_answers(true).run_batched(&queries);
        assert_eq!(rep.answers, mem.answers, "{}", orig.name());
        assert_eq!(rep.total, mem.total, "{}", orig.name());
    }
}

#[test]
fn snapshots_survive_indexes_sharing_one_device() {
    // Two structures on one device snapshot that device twice — each
    // catalog entry stays self-contained and both reload correctly.
    let dir = TempDir::new("lcrs-catalog-shared");
    let pts = points2(Dist2::Clustered, 500, 1 << 18, 7);
    let dev = warm_device();
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let sc = ExternalScan::build(&dev, &pts);
    dev.freeze();
    let mut cat = SnapshotCatalog::create(dir.file("cat")).unwrap();
    cat.add("hs", &hs).unwrap();
    cat.add("sc", &sc).unwrap();
    let queries = halfplane_queries(&pts, 30, 8);
    let cat = SnapshotCatalog::open(dir.file("cat")).unwrap();
    for (orig, label) in [(&hs as &dyn RangeIndex, "hs"), (&sc, "sc")] {
        let re = cat.load(label, CACHE).unwrap();
        let mem = BatchExecutor::new(orig).keep_answers(true).run_batched(&queries);
        let rep = BatchExecutor::new(&*re).keep_answers(true).run_batched(&queries);
        assert_eq!(rep.answers, mem.answers, "{label}");
        assert_eq!(rep.total, mem.total, "{label}");
    }
}

#[test]
fn reloaded_index_forks_stay_cold_and_independent() {
    // fork_reader on a file-backed index behaves exactly like on a memory
    // one: fresh scope, zeroed stats, no leakage into the primary.
    let dir = TempDir::new("lcrs-roundtrip-fork");
    let pts = points2(Dist2::Uniform, 400, 1 << 18, 9);
    let dev = warm_device();
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    dev.freeze_to_path(dir.file("hs.pages")).unwrap();
    let mut w = MetaWriter::new();
    hs.save_meta(&mut w);
    let re_dev = Device::open_snapshot(dir.file("hs.pages"), CACHE).unwrap();
    let mut r = MetaReader::from_bytes(w.into_bytes()).unwrap();
    let re = load_index("hs2d", &re_dev, &mut r).unwrap();
    let fork = re.fork_reader();
    assert_eq!(fork.device().stats(), IoStats::default());
    let queries = halfplane_queries(&pts, 10, 10);
    for q in &queries {
        fork.execute(q);
    }
    assert!(fork.device().stats().reads > 0);
    assert_eq!(
        re.device().stats(),
        IoStats::default(),
        "fork IOs must not land on the reloaded primary scope"
    );
}
