//! Acceptance suite for the space-partitioned `ShardedIndexSet` (ISSUE 6).
//!
//! The fixture mirrors the planner suite exactly — the same 2D + 3D
//! datasets, the canonical fifteen-structure `full_index_set` per shard,
//! the same probe pass, and the same mixed six-class 500-query oracle
//! workload (halfplane, halfspace, k-NN, plus the DESIGN.md §15 disk /
//! count / sum / top-k classes) —
//! and adds sharded sets at S ∈ {1, 2, 4, 8} over the *same* logical
//! dataset.
//!
//! Pinned here:
//! * sharded answers are bit-identical to the unsharded `IndexSet` and to
//!   host-side brute force at every S, sequential and parallel, in-memory
//!   and reopened cold from a sharded catalog;
//! * S=1 reproduces the unsharded planner's IO totals *exactly* (identity
//!   routing — one shard is the unsharded set);
//! * per-shard `IoDelta`s sum exactly to the aggregate, which sums
//!   exactly over per-query deltas (the PR 3 attribution invariant);
//! * shard-level concurrency (one thread per shard, disjoint devices)
//!   never changes answers or IO counts;
//! * geometric routing actually prunes: on the narrow shard-stressing
//!   workload the mean shards-touched at S=8 is strictly below 8, while a
//!   broad all-points query fans out to every shard;
//! * the fan-out cost model orders tiers sensibly: `cheapest_tier`
//!   prefers more shards for narrow traffic only when routing pays for
//!   the fan-out.

use std::sync::{Mutex, MutexGuard, OnceLock};

use lcrs::engine::{
    cheapest_tier, IndexSet, Query, QueryStatus, ShardConfig, ShardedIndexSet, ShardedReport,
};
use lcrs::extmem::{Device, DeviceConfig, IoDelta, TempDir};
use lcrs::workloads::{halfplane_narrow, points2, points3, Dist2, Dist3};
use lcrs_bench::{brute_answer, canon_answer, full_index_set, lifted_oracle, lifted_probes};

const PAGE: usize = 1024;
const CACHE_PAGES: usize = 12;
const N2: usize = 1400;
const N3: usize = 700;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct State {
    /// Keeps the unsharded devices (and their page stores) alive.
    _devices: Vec<Device>,
    unsharded: IndexSet,
    /// Sharded sets over the same dataset, in [`SHARD_COUNTS`] order.
    tiers: Vec<ShardedIndexSet>,
    pts2: Vec<(i64, i64)>,
    queries: Vec<Query>,
    /// Brute-force reference answer per query (canonical form).
    reference: Vec<Vec<u64>>,
}

fn build_state() -> State {
    let pts2 = points2(Dist2::Clustered, N2, 1000, 61);
    let pts3 = points3(Dist3::Uniform, N3, 1 << 16, 62);
    let probes = lifted_probes(&pts2, &pts3, 81);

    let dev2 = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let dev3 = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let mut unsharded = full_index_set(&dev2, &dev3, &pts2, &pts3);
    unsharded.calibrate(&probes);
    dev2.freeze();
    dev3.freeze();

    let cfg = DeviceConfig::new(PAGE, CACHE_PAGES);
    let tiers: Vec<ShardedIndexSet> = SHARD_COUNTS
        .iter()
        .map(|&s| {
            let mut sharded = ShardedIndexSet::build(
                &pts2,
                &pts3,
                &ShardConfig { shards: s, device: cfg },
                full_index_set,
            );
            sharded.calibrate(&probes);
            sharded.freeze();
            sharded
        })
        .collect();

    let queries = lifted_oracle(&pts2, &pts3, (180, 80, 60, 72, 72, 36), 71);
    assert_eq!(queries.len(), 500);
    let reference: Vec<Vec<u64>> = queries.iter().map(|q| brute_answer(q, &pts2, &pts3)).collect();
    State { _devices: vec![dev2, dev3], unsharded, tiers, pts2, queries, reference }
}

/// The fixture is expensive (fifteen structure builds × 16 shards) and IO
/// is measured on shared device scopes, so tests serialize on one mutex.
fn state() -> MutexGuard<'static, State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(build_state())).lock().unwrap()
}

/// Assert the full answer + attribution contract of one sharded run.
fn check_report(st: &State, s: usize, report: &ShardedReport, tag: &str) {
    let answers = report.answers.as_ref().expect("answers kept");
    for (qi, q) in st.queries.iter().enumerate() {
        let want = &st.reference[qi];
        assert_eq!(&canon_answer(q, answers[qi].clone()), want, "{tag} S={s} q{qi} {q:?}");
        assert_eq!(report.outcomes[qi].status, QueryStatus::Ok, "{tag} S={s} q{qi}");
        assert_eq!(report.outcomes[qi].reported, want.len(), "{tag} S={s} q{qi}");
        assert!(report.fanout[qi] <= s, "{tag} S={s} q{qi}: fan-out beyond S");
    }
    // The PR 3 invariant, per shard and per query: deltas sum exactly.
    assert_eq!(report.attributed_total(), report.total, "{tag} S={s} per-query attribution");
    let shard_sum: IoDelta = report.per_shard.iter().map(|r| r.io).sum();
    assert_eq!(shard_sum, report.total, "{tag} S={s} per-shard attribution");
    assert_eq!(report.total.writes, 0, "{tag} S={s}: report queries never write");
    assert_eq!(report.unsupported(), 0, "{tag} S={s}: the set covers every class");
}

#[test]
fn sharded_answers_match_unsharded_and_brute_at_every_s() {
    let st = state();
    // The unsharded reference run (already pinned against brute force by
    // the planner suite; re-checked here so the comparison is airtight).
    let unsharded = st.unsharded.execute(&st.queries, true);
    let unsharded_answers = unsharded.answers.as_ref().unwrap();
    for (qi, q) in st.queries.iter().enumerate() {
        assert_eq!(&canon_answer(q, unsharded_answers[qi].clone()), &st.reference[qi]);
    }

    for (ti, &s) in SHARD_COUNTS.iter().enumerate() {
        let sharded = &st.tiers[ti];
        assert_eq!(sharded.shards(), s);
        let report = sharded.execute(&st.queries, true);
        check_report(&st, s, &report, "in-memory");
        if s == 1 {
            // Identity routing: one shard IS the unsharded set, so the IO
            // totals must reproduce the unsharded planner exactly.
            assert_eq!(report.total, unsharded.total, "S=1 must match unsharded IO exactly");
            assert!(report.fanout.iter().all(|&f| f == 1));
        }
    }
}

#[test]
fn parallel_scatter_gather_matches_sequential() {
    let st = state();
    for (ti, &s) in SHARD_COUNTS.iter().enumerate() {
        let sharded = &st.tiers[ti];
        let sequential = sharded.execute(&st.queries, true);
        // One thread per shard, within-shard execution sequential: shards
        // live on disjoint devices, so answers AND counts are identical.
        let concurrent = sharded.execute_parallel(&st.queries, 1, true);
        check_report(&st, s, &concurrent, "parallel");
        assert_eq!(concurrent.total, sequential.total, "S={s}: shard concurrency is IO-neutral");
        assert_eq!(concurrent.answers, sequential.answers, "S={s}");
        // Within-shard parallel workers on top: answers still identical
        // (worker sharding may shift which fork pays which read, so only
        // the answer/attribution contract is pinned, as in PR 3).
        let nested = sharded.execute_parallel(&st.queries, 4, true);
        check_report(&st, s, &nested, "nested-parallel");
        assert_eq!(nested.answers, sequential.answers, "S={s} nested");
    }
}

#[test]
fn reopened_sharded_catalog_is_bit_identical() {
    let st = state();
    for (ti, &s) in SHARD_COUNTS.iter().enumerate() {
        let sharded = &st.tiers[ti];
        let dir = TempDir::new(&format!("lcrs-shard-catalog-{s}"));
        sharded.save_to_catalog(dir.path()).unwrap();
        let reopened = ShardedIndexSet::from_catalog(dir.path(), CACHE_PAGES).unwrap();
        assert_eq!(reopened.shards(), s);
        for shard in 0..s {
            assert_eq!(reopened.shard_sizes(shard), sharded.shard_sizes(shard));
            for slot in 0..sharded.shard_set(shard).len() {
                assert_eq!(
                    reopened.shard_set(shard).calibration(slot).constant.to_bits(),
                    sharded.shard_set(shard).calibration(slot).constant.to_bits(),
                    "S={s} shard {shard} slot {slot}: calibration must round-trip bit-exactly"
                );
            }
        }
        let original = sharded.execute(&st.queries, true);
        let re_run = reopened.execute(&st.queries, true);
        check_report(&st, s, &re_run, "reopened");
        assert_eq!(re_run.answers, original.answers, "S={s} reopened answers");
        assert_eq!(re_run.total, original.total, "S={s}: persistence never moves the cost model");
        // And the parallel path over the reopened catalog too.
        let re_par = reopened.execute_parallel(&st.queries, 1, true);
        assert_eq!(re_par.answers, original.answers, "S={s} reopened parallel");
        assert_eq!(re_par.total, original.total, "S={s} reopened parallel IO");
    }
}

#[test]
fn shards_are_near_even_and_routing_prunes() {
    let st = state();
    for (ti, &s) in SHARD_COUNTS.iter().enumerate() {
        let sharded = &st.tiers[ti];
        let sizes2: Vec<usize> = (0..s).map(|i| sharded.shard_sizes(i).0).collect();
        let sizes3: Vec<usize> = (0..s).map(|i| sharded.shard_sizes(i).1).collect();
        assert_eq!(sizes2.iter().sum::<usize>(), N2);
        assert_eq!(sizes3.iter().sum::<usize>(), N3);
        for sizes in [&sizes2, &sizes3] {
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= s.max(2), "S={s}: near-even shards, saw {sizes:?}");
        }
    }

    // The shard-stressing workload: narrow halfplanes with diverse slopes
    // must not fan out to every shard at S=8.
    let s8 = &st.tiers[3];
    let narrow: Vec<Query> = halfplane_narrow(&st.pts2, 64, 40, 40, 93)
        .into_iter()
        .map(|(m, c, inclusive)| Query::Halfplane { m, c, inclusive })
        .collect();
    let report = s8.execute(&narrow, true);
    assert!(
        report.mean_fanout() < 8.0,
        "S=8 narrow workload must prune, mean fan-out {}",
        report.mean_fanout()
    );
    // Narrow answers still exact, of course.
    let answers = report.answers.as_ref().unwrap();
    for (qi, q) in narrow.iter().enumerate() {
        assert_eq!(canon_answer(q, answers[qi].clone()), brute_answer(q, &st.pts2, &[]));
    }

    // A broad query (every point below) fans out everywhere; k-NN always
    // fans out (no sound geometric pruning for nearest neighbors).
    let broad = Query::Halfplane { m: 0, c: i64::MAX / 4, inclusive: false };
    assert_eq!(s8.fanout(&broad), 8);
    assert_eq!(s8.fanout(&Query::Knn { x: 0, y: 0, k: 3 }), 8);
}

#[test]
fn fanout_cost_model_orders_tiers() {
    let st = state();
    let tiers: Vec<&ShardedIndexSet> = st.tiers.iter().collect();

    for (ti, &s) in SHARD_COUNTS.iter().enumerate() {
        let sharded = &st.tiers[ti];
        for q in st.queries.iter().take(50) {
            let cost = sharded.predicted_reads(q);
            assert!(cost.is_finite() && cost >= 0.0, "S={s} {q:?}: cost {cost}");
            // Pricing is (shards touched) × (per-shard cheapest cost):
            // zero fan-out means zero predicted cost, never negative.
            if sharded.fanout(q) == 0 {
                assert_eq!(cost, 0.0);
            }
        }
    }

    // Every supported query picks *some* tier, and a query no tier
    // supports picks none. (Which tier wins depends on the calibrated
    // constants; the sign of the trade-off is pinned by exp_shard.)
    for q in st.queries.iter().take(50) {
        assert!(cheapest_tier(&tiers, q).is_some(), "{q:?} must route to a tier");
    }
    assert_eq!(cheapest_tier(&[], &st.queries[0]), None);
}
