//! Acceptance test for the batch engine (ISSUE 2): a 1k-query batch
//! through the BatchExecutor with a warm shared cache costs strictly fewer
//! total read IOs than the same queries issued one-at-a-time cold — for
//! hs2d, a Section 6 trade-off structure, and a baseline, on two
//! distributions each — with per-query IoDelta attribution summing to the
//! batch total and answers unchanged.

use lcrs::baselines::ExternalKdTree;
use lcrs::engine::{BatchExecutor, IndexSet, ParallelExecutor, Query, RangeIndex};
use lcrs::extmem::{Device, DeviceConfig, IoDelta};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::halfspace::tradeoff::{HybridConfig, HybridTree3};
use lcrs::workloads::{
    halfplane_batch, halfspace3_batch, points2, points3, BatchShape, Dist2, Dist3,
};

const BATCH: usize = 1000;

fn cached_device() -> Device {
    Device::new(DeviceConfig::new(2048, 512))
}

/// Cold vs batched on one index; returns (cold reads, batched reads).
fn check(index: &dyn RangeIndex, queries: &[Query], label: &str) -> (u64, u64) {
    assert_eq!(queries.len(), BATCH);
    let ex = BatchExecutor::new(index).keep_answers(true);
    let cold = ex.run_cold(queries);
    let batched = ex.run_batched(queries);
    for report in [&cold, &batched] {
        assert_eq!(
            report.attributed_total(),
            report.total,
            "{label}: attribution must sum to the batch total"
        );
        assert_eq!(report.total.writes, 0, "{label}: report queries never write");
    }
    assert_eq!(cold.answers, batched.answers, "{label}: batching must not change answers");
    assert!(
        batched.reads() < cold.reads(),
        "{label}: batched reads {} must be strictly below cold {}",
        batched.reads(),
        cold.reads()
    );
    (cold.reads(), batched.reads())
}

#[test]
fn batched_beats_cold_hs2d_two_distributions() {
    for (dist, seed) in [(Dist2::Uniform, 1u64), (Dist2::Clustered, 2)] {
        let pts = points2(dist, 6000, 1 << 20, seed);
        let dev = cached_device();
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        let qs: Vec<Query> =
            halfplane_batch(&pts, BatchShape::ZipfRepeat { distinct: 24, s: 1.1 }, BATCH, 40, seed)
                .into_iter()
                .map(|(m, c)| Query::Halfplane { m, c, inclusive: false })
                .collect();
        check(&hs, &qs, &format!("hs2d/{dist:?}"));
    }
}

#[test]
fn batched_beats_cold_tradeoff_two_distributions() {
    for (dist, seed) in [(Dist3::Uniform, 3u64), (Dist3::Slab, 4)] {
        let pts = points3(dist, 2000, 1 << 18, seed);
        let dev = cached_device();
        let hy = HybridTree3::build(&dev, &pts, HybridConfig::default());
        let qs: Vec<Query> = halfspace3_batch(&pts, BatchShape::SortedSweep, BATCH, 30, seed)
            .into_iter()
            .map(|(u, v, w)| Query::Halfspace { u, v, w, inclusive: false })
            .collect();
        check(&hy, &qs, &format!("tradeoff-hybrid/{dist:?}"));
    }
}

#[test]
fn batched_beats_cold_baseline_two_distributions() {
    for (dist, seed) in [(Dist2::Uniform, 5u64), (Dist2::Diagonal, 6)] {
        let pts = points2(dist, 6000, 1 << 20, seed);
        let dev = cached_device();
        let kd = ExternalKdTree::build(&dev, &pts);
        let qs: Vec<Query> =
            halfplane_batch(&pts, BatchShape::ZipfRepeat { distinct: 16, s: 1.2 }, BATCH, 40, seed)
                .into_iter()
                .map(|(m, c)| Query::Halfplane { m, c, inclusive: false })
                .collect();
        check(&kd, &qs, &format!("kdtree/{dist:?}"));
    }
}

#[test]
fn empty_batch_yields_empty_reports_with_zeroed_deltas() {
    // Regression (ISSUE 9): a zero-query window from the serving loop
    // lands here as an empty batch — every executor must return an empty
    // report with zeroed deltas instead of tripping the "deltas sum to
    // aggregate" runtime assert (or panicking on an empty schedule).
    let pts = points2(Dist2::Uniform, 500, 1 << 16, 7);
    let dev = cached_device();
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());

    let ex = BatchExecutor::new(&hs).keep_answers(true);
    for (report, label) in [(ex.run_batched(&[]), "batched"), (ex.run_cold(&[]), "cold")] {
        assert!(report.outcomes.is_empty(), "{label}: no outcomes for no queries");
        assert_eq!(report.total, IoDelta::default(), "{label}: zeroed aggregate");
        assert_eq!(report.attributed_total(), report.total, "{label}: invariant holds on empty");
        assert_eq!(report.answers, Some(Vec::new()), "{label}: empty answer set");
    }

    let par = ParallelExecutor::new(&hs, 4).keep_answers(true).run(&[]);
    assert_eq!(par.workers, 0, "no workers spawned for an empty batch");
    assert!(par.outcomes.is_empty() && par.per_worker.is_empty());
    assert_eq!(par.total, IoDelta::default());
    assert_eq!(par.attributed_total(), par.total);
    assert_eq!(par.answers, Some(Vec::new()));

    let dev2 = cached_device();
    let mut set = IndexSet::new();
    set.add(Box::new(HalfspaceRS2::build(&dev2, &pts, Hs2dConfig::default())));
    let plan = set.plan(&[]);
    assert!(plan.assignments.is_empty());
    for (rep, label) in [
        (set.execute_plan(&[], &plan, true), "plan"),
        (set.execute_parallel_plan(&[], &plan, 4, true), "parallel plan"),
    ] {
        assert!(rep.outcomes.is_empty() && rep.per_index.is_empty(), "{label}");
        assert_eq!(rep.total, IoDelta::default(), "{label}: zeroed aggregate");
        assert_eq!(rep.attributed_total(), rep.total, "{label}: invariant holds on empty");
        assert_eq!(rep.answers, Some(Vec::new()), "{label}: empty answer set");
    }
}
