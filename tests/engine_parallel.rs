//! Acceptance + determinism suite for the parallel executor (ISSUE 3):
//! for every structure that implements `RangeIndex`, the
//! `ParallelExecutor` at 1, 2, 4, and 8 workers must produce answers
//! bit-identical to the sequential `BatchExecutor`, per-worker IO deltas
//! that sum exactly to the aggregate, and reports that are independent of
//! thread scheduling (every run is executed twice and compared
//! field-by-field). Worker IOs must never leak into the index's primary
//! handle scope.

use lcrs::baselines::{ExternalKdTree, ExternalScan, StrRTree};
use lcrs::engine::{BatchExecutor, ParallelExecutor, Query, QueryStatus, RangeIndex};
use lcrs::extmem::{Device, DeviceConfig, IoDelta};
use lcrs::geom::point::PointD;
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
use lcrs::halfspace::ptree::PTreeConfig;
use lcrs::halfspace::tradeoff::{HybridConfig, HybridTree3, ShallowConfig, ShallowTree3};
use lcrs::halfspace::{DynamicHalfspace2, KnnStructure, PartitionTree};
use lcrs::workloads::{
    halfplane_batch, halfspace3_batch, points2, points3, BatchShape, Dist2, Dist3,
};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn warm_device() -> Device {
    Device::new(DeviceConfig::new(1024, 256))
}

fn halfplane_queries(pts: &[(i64, i64)], len: usize, seed: u64) -> Vec<Query> {
    halfplane_batch(pts, BatchShape::ZipfRepeat { distinct: 12, s: 1.1 }, len, 40, seed)
        .into_iter()
        .map(|(m, c)| Query::Halfplane { m, c, inclusive: false })
        .collect()
}

fn halfspace_queries(pts: &[(i64, i64, i64)], len: usize, seed: u64) -> Vec<Query> {
    halfspace3_batch(pts, BatchShape::SortedSweep, len, 30, seed)
        .into_iter()
        .map(|(u, v, w)| Query::Halfspace { u, v, w, inclusive: false })
        .collect()
}

/// The full contract for one (structure, batch) pair.
fn check(index: &dyn RangeIndex, queries: &[Query], label: &str) {
    let sequential = BatchExecutor::new(index).keep_answers(true).run_batched(queries);
    // Snapshot the primary scope after the sequential run: parallel workers
    // run on forks and must leave it untouched.
    let primary_before = index.device().stats();
    for workers in WORKER_COUNTS {
        let ex = ParallelExecutor::new(index, workers).keep_answers(true);
        let r1 = ex.run(queries);
        let r2 = ex.run(queries);
        assert_eq!(r1.workers, workers.min(queries.len()), "{label}/{workers}");
        assert_eq!(
            r1.answers, sequential.answers,
            "{label}/{workers}: parallel answers must be bit-identical to the sequential batch"
        );
        for (o, s) in r1.outcomes.iter().zip(&sequential.outcomes) {
            assert_eq!((o.query, o.reported), (s.query, s.reported), "{label}/{workers}");
            assert_eq!(o.status, QueryStatus::Ok, "{label}/{workers}");
        }
        let worker_sum: IoDelta = r1.per_worker.iter().map(|w| w.io).sum();
        assert_eq!(worker_sum, r1.total, "{label}/{workers}: worker deltas must sum exactly");
        assert_eq!(r1.attributed_total(), r1.total, "{label}/{workers}: per-query sum");
        assert_eq!(
            r1.per_worker.iter().map(|w| w.queries).sum::<usize>(),
            queries.len(),
            "{label}/{workers}: every query runs exactly once"
        );
        if workers == 1 {
            // One worker == the sequential executor on a fresh scope: the
            // same schedule against the same LRU geometry, so even the IO
            // totals coincide.
            assert_eq!(r1.total, sequential.total, "{label}: 1-worker IO equals sequential");
        }
        // Scheduling independence: a second run must reproduce the report
        // exactly, field by field.
        assert_eq!(r1.total, r2.total, "{label}/{workers}: total must not depend on scheduling");
        assert_eq!(r1.answers, r2.answers, "{label}/{workers}");
        assert_eq!(r1.per_worker.len(), r2.per_worker.len(), "{label}/{workers}");
        for (a, b) in r1.per_worker.iter().zip(&r2.per_worker) {
            assert_eq!(
                (a.worker, a.queries, a.io),
                (b.worker, b.queries, b.io),
                "{label}/{workers}: per-worker stats must be deterministic"
            );
        }
        for (a, b) in r1.outcomes.iter().zip(&r2.outcomes) {
            assert_eq!(
                (a.query, a.status, a.reported, a.io),
                (b.query, b.status, b.reported, b.io),
                "{label}/{workers}: per-query outcomes must be deterministic"
            );
        }
    }
    assert_eq!(
        index.device().stats(),
        primary_before,
        "{label}: worker IOs must never land on the primary scope"
    );
}

#[test]
fn parallel_matches_batched_2d_structures() {
    let pts = points2(Dist2::Uniform, 2500, 1 << 20, 21);
    let dev = warm_device();
    let hs2d = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let scan = ExternalScan::build(&dev, &pts);
    let kd = ExternalKdTree::build(&dev, &pts);
    let rt = StrRTree::build(&dev, &pts);
    let pd: Vec<PointD<2>> = pts.iter().map(|&(x, y)| PointD::new([x, y])).collect();
    let pt = PartitionTree::<2>::build(&dev, &pd, PTreeConfig::default());
    dev.freeze();
    let queries = halfplane_queries(&pts, 160, 22);
    for index in [&hs2d as &dyn RangeIndex, &scan, &kd, &rt, &pt] {
        check(index, &queries, index.name());
    }
}

#[test]
fn parallel_matches_batched_3d_structures() {
    let pts = points3(Dist3::Uniform, 900, 1 << 18, 23);
    let dev = warm_device();
    let hs3d = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
    let hybrid = HybridTree3::build(&dev, &pts, HybridConfig::default());
    let shallow = ShallowTree3::build(&dev, &pts, ShallowConfig::default());
    dev.freeze();
    let queries = halfspace_queries(&pts, 120, 24);
    for index in [&hs3d as &dyn RangeIndex, &hybrid, &shallow] {
        check(index, &queries, index.name());
    }
}

#[test]
fn parallel_matches_batched_knn() {
    // Stay inside the lift coordinate budget (|coord| <= 1024).
    let pts = points2(Dist2::Uniform, 700, 1000, 25);
    let dev = warm_device();
    let knn = KnnStructure::build(&dev, &pts, Hs3dConfig::default());
    dev.freeze();
    let queries: Vec<Query> = (0..96i64)
        .map(|i| Query::Knn {
            x: (i * 37 % 2000) - 1000,
            y: (i * 53 % 2000) - 1000,
            k: 5 + (i as usize) % 7,
        })
        .collect();
    check(&knn, &queries, "knn");
}

#[test]
fn parallel_matches_batched_dynamic() {
    // The dynamic structure keeps its mutable path: build via inserts on
    // the single-writer handle, freeze, then fan readers out.
    let pts = points2(Dist2::Clustered, 1800, 1 << 20, 26);
    let dev = warm_device();
    let mut dynamic = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
    for (i, &(x, y)) in pts.iter().enumerate() {
        dynamic.insert(x, y, i as u64);
    }
    dev.freeze();
    let queries = halfplane_queries(&pts, 120, 27);
    check(&dynamic, &queries, "dynamic");
}

#[test]
fn parallel_works_unfrozen_with_identical_answers() {
    // Freezing is what makes the read path lock-free, but it is not a
    // correctness requirement: on an unfrozen store workers serialize on
    // the build lock and still answer identically.
    let pts = points2(Dist2::Uniform, 900, 1 << 20, 28);
    let dev = warm_device();
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    assert!(!dev.is_frozen());
    let queries = halfplane_queries(&pts, 60, 29);
    check(&hs, &queries, "hs2d-unfrozen");
}

#[test]
fn parallel_reports_unsupported_outcomes() {
    let pts = points2(Dist2::Uniform, 600, 1 << 20, 30);
    let dev = warm_device();
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    dev.freeze();
    let mut queries = halfplane_queries(&pts, 40, 31);
    queries.insert(7, Query::Knn { x: 0, y: 0, k: 3 });
    queries.insert(23, Query::Knn { x: 5, y: 5, k: 2 });
    let report = ParallelExecutor::new(&hs, 4).keep_answers(true).run(&queries);
    assert_eq!(report.unsupported(), 2);
    for qi in [7, 23] {
        assert_eq!(report.outcomes[qi].status, QueryStatus::Unsupported);
        assert_eq!(report.outcomes[qi].reported, 0);
        assert!(report.answers.as_ref().unwrap()[qi].is_empty());
    }
    let worker_sum: IoDelta = report.per_worker.iter().map(|w| w.io).sum();
    assert_eq!(worker_sum, report.total);
}

#[test]
fn shards_are_exact_and_balanced() {
    // Worker counts that do NOT divide the batch length still get exactly
    // min(workers, len) shards, sized within one of each other, covering
    // every query once — and the executed report agrees.
    let pts = points2(Dist2::Uniform, 500, 1 << 20, 34);
    let dev = warm_device();
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    dev.freeze();
    for (len, workers) in [(13usize, 6usize), (6, 4), (7, 8), (100, 7), (5, 5)] {
        let queries = halfplane_queries(&pts, len, 35 + len as u64);
        let ex = ParallelExecutor::new(&hs, workers);
        let shards = ex.shards(&queries);
        let expect = workers.min(len);
        assert_eq!(shards.len(), expect, "len={len} workers={workers}");
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(max - min <= 1, "near-even shards, got {sizes:?}");
        let mut all: Vec<usize> = shards.concat();
        all.sort_unstable();
        assert_eq!(all, (0..len).collect::<Vec<_>>(), "every query in exactly one shard");
        let report = ex.run(&queries);
        assert_eq!(report.workers, expect);
        assert_eq!(report.per_worker.iter().map(|w| w.queries).sum::<usize>(), len);
    }
}

#[test]
fn parallel_handles_tiny_and_empty_batches() {
    let pts = points2(Dist2::Uniform, 400, 1 << 20, 32);
    let dev = warm_device();
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    dev.freeze();
    let empty = ParallelExecutor::new(&hs, 8).run(&[]);
    assert_eq!(empty.workers, 0);
    assert_eq!(empty.outcomes.len(), 0);
    assert_eq!(empty.total, IoDelta::default());
    // More workers than queries: capped, every query still runs once.
    let queries = halfplane_queries(&pts, 3, 33);
    let tiny = ParallelExecutor::new(&hs, 8).keep_answers(true).run(&queries);
    assert_eq!(tiny.workers, 3);
    assert_eq!(tiny.outcomes.len(), 3);
    let sequential = BatchExecutor::new(&hs).keep_answers(true).run_batched(&queries);
    assert_eq!(tiny.answers, sequential.answers);
}
