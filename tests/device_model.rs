//! Cost-model behaviour: the IO counts the harness reports must be
//! deterministic, cache-sensitive in the right direction, and consistent
//! with the space accounting.

use lcrs::extmem::{Device, DeviceConfig, VecFile};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::workloads::{halfplane_with_selectivity, points2, Dist2};

#[test]
fn query_io_counts_are_deterministic() {
    let pts = points2(Dist2::Uniform, 2000, 1 << 20, 1);
    let dev = Device::new(DeviceConfig::new(512, 0));
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let (m, c) = halfplane_with_selectivity(&pts, 100, 30, 2);
    let (r1, s1) = hs.query_below_stats(m, c, false);
    let (r2, s2) = hs.query_below_stats(m, c, false);
    assert_eq!(r1.len(), r2.len());
    assert_eq!(s1.ios, s2.ios, "uncached queries must cost the same every time");
}

#[test]
fn cache_reduces_but_never_changes_answers() {
    let pts = points2(Dist2::Uniform, 2000, 1 << 20, 3);
    // Same build twice: without cache and with a generous cache.
    let dev_cold = Device::new(DeviceConfig::new(512, 0));
    let hs_cold = HalfspaceRS2::build(&dev_cold, &pts, Hs2dConfig::default());
    let dev_warm = Device::new(DeviceConfig::new(512, 256));
    let hs_warm = HalfspaceRS2::build(&dev_warm, &pts, Hs2dConfig::default());
    let (m, c) = halfplane_with_selectivity(&pts, 150, 30, 4);
    let (mut r_cold, s_cold) = hs_cold.query_below_stats(m, c, false);
    // Warm the cache with one query, then measure the second.
    let _ = hs_warm.query_below_stats(m, c, false);
    let (mut r_warm, s_warm) = hs_warm.query_below_stats(m, c, false);
    r_cold.sort_unstable();
    r_warm.sort_unstable();
    assert_eq!(r_cold, r_warm);
    assert!(
        s_warm.ios < s_cold.ios,
        "a warm cache must absorb IOs: warm {} vs cold {}",
        s_warm.ios,
        s_cold.ios
    );
}

#[test]
fn space_accounting_matches_device_pages() {
    let dev = Device::new(DeviceConfig::new(512, 0));
    let before = dev.pages_allocated();
    let pts = points2(Dist2::Uniform, 3000, 1 << 20, 5);
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    assert_eq!(hs.pages(), dev.pages_allocated());
    assert!(hs.pages() > before);
}

#[test]
fn get_many_pays_one_io_per_page() {
    let dev = Device::new(DeviceConfig::new(64, 0)); // 8 i64 per page
    let f = VecFile::from_slice(&dev, &(0..512i64).collect::<Vec<_>>());
    dev.reset_stats();
    // 16 indices spread over exactly 4 pages.
    let idx: Vec<usize> = (0..16).map(|i| (i % 4) + (i / 4) * 8).map(|i| i * 8 + 3).collect();
    let mut idx = idx;
    idx.sort_unstable();
    idx.dedup();
    let pages: std::collections::HashSet<usize> = idx.iter().map(|i| i / 8).collect();
    let mut out = Vec::new();
    f.get_many(&idx, &mut out);
    assert_eq!(out.len(), idx.len());
    assert_eq!(dev.stats().reads as usize, pages.len());
    for (k, &i) in idx.iter().enumerate() {
        assert_eq!(out[k], i as i64);
    }
}

/// Reference LRU with the pre-optimization linear-scan eviction, driven in
/// lockstep with the device to pin that the O(log) BTreeMap eviction picks
/// bit-identical victims (ticks are unique, so "min last-used tick" is a
/// deterministic choice either way).
struct ModelLru {
    cap: usize,
    entries: Vec<(u64, u64)>, // (page, last-used tick)
    tick: u64,
    reads: u64,
    writes: u64,
    hits: u64,
}

impl ModelLru {
    fn new(cap: usize) -> ModelLru {
        ModelLru { cap, entries: Vec::new(), tick: 0, reads: 0, writes: 0, hits: 0 }
    }

    fn touch(&mut self, page: u64) {
        self.tick += 1;
        if self.cap == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == page) {
            e.1 = self.tick;
            return;
        }
        if self.entries.len() >= self.cap {
            let victim =
                self.entries.iter().enumerate().min_by_key(|(_, e)| e.1).map(|(i, _)| i).unwrap();
            self.entries.swap_remove(victim);
        }
        self.entries.push((page, self.tick));
    }

    fn read(&mut self, page: u64) {
        if self.cap > 0 && self.entries.iter().any(|e| e.0 == page) {
            self.hits += 1;
        } else {
            self.reads += 1;
        }
        self.touch(page);
    }

    fn write(&mut self, page: u64) {
        self.writes += 1;
        self.touch(page);
    }
}

#[test]
fn btreemap_lru_matches_linear_scan_reference_exactly() {
    for cache_pages in [0usize, 1, 3, 17] {
        let dev = Device::new(DeviceConfig::new(64, cache_pages));
        let universe = 50u64;
        dev.alloc_pages(universe as usize);
        let mut model = ModelLru::new(cache_pages);
        let mut s = 0xfeed_0000 + cache_pages as u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        for step in 0..4000 {
            let p = next() % universe;
            match next() % 10 {
                0..=5 => {
                    dev.read_page(lcrs::extmem::PageId(p), |_| ());
                    model.read(p);
                }
                6..=7 => {
                    dev.write_page(lcrs::extmem::PageId(p), |b| b[0] = step as u8);
                    model.write(p);
                }
                8 => {
                    // update = read + write, two ticks in both worlds.
                    dev.update_page(lcrs::extmem::PageId(p), |b| b[0] ^= 1);
                    model.read(p);
                    model.write(p);
                }
                _ => {
                    dev.clear_cache();
                    model.entries.clear();
                }
            }
            let st = dev.stats();
            assert_eq!(
                (st.reads, st.writes, st.cache_hits),
                (model.reads, model.writes, model.hits),
                "divergence at step {step} with cache={cache_pages}"
            );
        }
    }
}

#[test]
fn all_duplicate_input_still_answers() {
    let pts: Vec<(i64, i64)> = vec![(7, -3); 500];
    let dev = Device::new(DeviceConfig::new(512, 0));
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    assert_eq!(hs.unique_points(), 1);
    assert_eq!(hs.query_below(0, 0, false).len(), 500); // -3 < 0
    assert_eq!(hs.query_below(0, -3, false).len(), 0);
    assert_eq!(hs.query_below(0, -3, true).len(), 500);
}
