//! Corruption-matrix negative tests for the snapshot format (ISSUE 4):
//! truncated files, flipped bytes in header / page body / checksum table,
//! wrong magic, and future format versions must each surface as a typed
//! [`SnapshotError`] with the failing offset — never a panic. Every case
//! runs through *both* reopen backends (pread and mmap), which must fail
//! identically: the mmap path reuses the pread path's validate-once open,
//! so corruption is always an open-time error, never a read-time fault.
//! Empty-device and single-page snapshots are pinned as working edge
//! cases, and the structure-metadata envelope gets the same treatment
//! (including loading one structure's metadata as another kind).

use lcrs::engine::{load_index, RangeIndex};
use lcrs::extmem::{
    Device, DeviceConfig, MetaReader, MetaWriter, PageId, ReopenBackend, SnapshotError, TempDir,
};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::workloads::{points2, Dist2};
use std::path::Path;

/// Byte offsets of the page-snapshot header (DESIGN.md §9).
const OFF_VERSION: usize = 8;
const OFF_PAGE_BYTES: usize = 12;
const OFF_TABLE: usize = 40;

fn write_reference_snapshot(dir: &TempDir, pages: usize) -> std::path::PathBuf {
    let dev = Device::new(DeviceConfig::new(128, 0));
    if pages > 0 {
        let p = dev.alloc_pages(pages);
        for i in 0..pages {
            dev.write_page(PageId(p.0 + i as u64), |b| {
                b[0] = i as u8;
                b[127] = !(i as u8);
            });
        }
    }
    let path = dir.file(&format!("ref-{pages}.pages"));
    dev.freeze_to_path(&path).unwrap();
    path
}

fn mutate(path: &Path, out: &Path, f: impl FnOnce(&mut Vec<u8>)) {
    let mut bytes = std::fs::read(path).unwrap();
    f(&mut bytes);
    std::fs::write(out, bytes).unwrap();
}

/// Open a snapshot through both reopen backends and demand they agree:
/// same success, or the same typed [`SnapshotError`] (compared by its
/// Debug rendering — variant and every offset field). Returns the pread
/// result so each test keeps matching one error as before.
fn open_snapshot_both(path: &Path, cache: usize) -> Result<Device, SnapshotError> {
    let pread = Device::open_snapshot_as(path, cache, ReopenBackend::Pread);
    let mmap = Device::open_snapshot_as(path, cache, ReopenBackend::Mmap);
    match (&pread, &mmap) {
        (Err(a), Err(b)) => assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "pread and mmap must fail with the same typed error"
        ),
        (Ok(_), Ok(_)) => {}
        (a, b) => panic!(
            "pread and mmap disagree on whether the snapshot opens: \
             pread ok={}, mmap ok={}",
            a.is_ok(),
            b.is_ok()
        ),
    }
    pread
}

#[test]
fn wrong_magic_is_typed_with_offset() {
    let dir = TempDir::new("lcrs-corrupt-magic");
    let good = write_reference_snapshot(&dir, 3);
    let bad = dir.file("bad.pages");
    mutate(&good, &bad, |b| b[0] = b'X');
    match open_snapshot_both(&bad, 0) {
        Err(SnapshotError::BadMagic { offset: 0, found, .. }) => assert_eq!(found[0], b'X'),
        other => panic!("expected BadMagic, got {other:?}", other = other.err()),
    }
}

#[test]
fn future_format_version_is_rejected() {
    let dir = TempDir::new("lcrs-corrupt-version");
    let good = write_reference_snapshot(&dir, 3);
    let bad = dir.file("bad.pages");
    mutate(&good, &bad, |b| b[OFF_VERSION] = 99);
    match open_snapshot_both(&bad, 0) {
        Err(SnapshotError::UnsupportedVersion { offset, found, supported }) => {
            assert_eq!(offset, OFF_VERSION as u64);
            assert_eq!(found, 99);
            assert!(supported < 99);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}", other = other.err()),
    }
}

#[test]
fn flipped_header_byte_fails_the_header_checksum() {
    let dir = TempDir::new("lcrs-corrupt-header");
    let good = write_reference_snapshot(&dir, 3);
    // Flip a bit in the page-size field: caught by the header checksum
    // before the bogus geometry is ever trusted.
    let bad = dir.file("bad.pages");
    mutate(&good, &bad, |b| b[OFF_PAGE_BYTES] ^= 0x01);
    match open_snapshot_both(&bad, 0) {
        Err(SnapshotError::ChecksumMismatch { what: "header", offset, .. }) => {
            assert_eq!(offset, 32);
        }
        other => panic!("expected a header ChecksumMismatch, got {other:?}", other = other.err()),
    }
}

#[test]
fn flipped_checksum_table_byte_is_detected() {
    let dir = TempDir::new("lcrs-corrupt-table");
    let good = write_reference_snapshot(&dir, 3);
    let bad = dir.file("bad.pages");
    mutate(&good, &bad, |b| b[OFF_TABLE + 5] ^= 0x80);
    match open_snapshot_both(&bad, 0) {
        Err(SnapshotError::ChecksumMismatch { what: "page-checksum table", offset, .. }) => {
            assert_eq!(offset, 24, "reported at the table-checksum header field");
        }
        other => panic!("expected a table ChecksumMismatch, got {other:?}", other = other.err()),
    }
}

#[test]
fn flipped_page_body_byte_reports_page_and_offset() {
    let dir = TempDir::new("lcrs-corrupt-page");
    let good = write_reference_snapshot(&dir, 3);
    let bad = dir.file("bad.pages");
    // 3 pages ⇒ data starts at 40 + 3·8 = 64; corrupt a byte inside page 1.
    let data_offset = 64u64;
    mutate(&good, &bad, |b| b[data_offset as usize + 128 + 17] ^= 0x20);
    match open_snapshot_both(&bad, 0) {
        Err(SnapshotError::PageChecksum { page, offset, expected, actual }) => {
            assert_eq!(page, 1);
            assert_eq!(offset, data_offset + 128, "offset of the corrupt page's start");
            assert_ne!(expected, actual);
        }
        other => panic!("expected PageChecksum, got {other:?}", other = other.err()),
    }
}

#[test]
fn truncations_at_every_region_are_typed() {
    let dir = TempDir::new("lcrs-corrupt-trunc");
    let good = write_reference_snapshot(&dir, 3);
    let full = std::fs::read(&good).unwrap().len();
    // Cut inside the header, inside the checksum table, inside the pages,
    // and one byte short of complete.
    for (i, keep) in [10usize, 45, 200, full - 1].into_iter().enumerate() {
        let bad = dir.file(&format!("trunc-{i}.pages"));
        mutate(&good, &bad, |b| b.truncate(keep));
        match open_snapshot_both(&bad, 0) {
            Err(SnapshotError::Truncated { offset, expected, actual }) => {
                assert_eq!(actual, keep as u64, "cut at {keep}");
                assert!(expected > actual, "cut at {keep}");
                assert!(offset <= actual, "cut at {keep}: offset points into the file");
            }
            other => {
                panic!("cut at {keep}: expected Truncated, got {other:?}", other = other.err())
            }
        }
    }
    // Trailing garbage is a length mismatch too (the header is explicit
    // about the exact size).
    let bad = dir.file("overlong.pages");
    mutate(&good, &bad, |b| b.extend_from_slice(&[0u8; 7]));
    assert!(matches!(open_snapshot_both(&bad, 0), Err(SnapshotError::Truncated { .. })));
}

#[test]
fn empty_and_single_page_snapshots_roundtrip() {
    let dir = TempDir::new("lcrs-corrupt-edges");
    // Empty device: header-only file, reopens with zero pages.
    let empty = write_reference_snapshot(&dir, 0);
    let re = open_snapshot_both(&empty, 0).unwrap();
    assert_eq!(re.pages_allocated(), 0);
    assert_eq!(re.page_bytes(), 128);
    // One page: the smallest data-carrying snapshot.
    let one = write_reference_snapshot(&dir, 1);
    let re = open_snapshot_both(&one, 4).unwrap();
    assert_eq!(re.pages_allocated(), 1);
    assert_eq!(re.read_page(PageId(0), |b| (b[0], b[127])), (0, 0xFF));
    // Corruption in a 1-page file still lands on page 0.
    let bad = dir.file("one-bad.pages");
    mutate(&one, &bad, |b| {
        let n = b.len();
        b[n - 1] ^= 0x01;
    });
    assert!(matches!(
        open_snapshot_both(&bad, 0),
        Err(SnapshotError::PageChecksum { page: 0, .. })
    ));
}

#[test]
fn missing_file_is_an_io_error() {
    let dir = TempDir::new("lcrs-corrupt-missing");
    assert!(matches!(
        open_snapshot_both(&dir.file("does-not-exist.pages"), 0),
        Err(SnapshotError::Io(_))
    ));
}

#[test]
fn metadata_corruption_matrix() {
    let dir = TempDir::new("lcrs-corrupt-meta");
    let dev = Device::new(DeviceConfig::new(1024, 0));
    let pts = points2(Dist2::Uniform, 300, 1 << 18, 3);
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    dev.freeze_to_path(dir.file("hs.pages")).unwrap();
    let mut w = MetaWriter::new();
    hs.save_meta(&mut w);
    let good = w.into_bytes();
    let re_dev = Device::open_snapshot(dir.file("hs.pages"), 0).unwrap();

    // The pristine metadata loads.
    let mut r = MetaReader::from_bytes(good.clone()).unwrap();
    assert!(load_index("hs2d", &re_dev, &mut r).is_ok());

    // Flipped payload byte: envelope checksum.
    let mut flipped = good.clone();
    let mid = 20 + (good.len() - 28) / 2;
    flipped[mid] ^= 0x10;
    assert!(matches!(
        MetaReader::from_bytes(flipped),
        Err(SnapshotError::ChecksumMismatch { what: "metadata envelope", .. })
    ));

    // Truncated metadata.
    assert!(matches!(
        MetaReader::from_bytes(good[..good.len() / 2].to_vec()),
        Err(SnapshotError::Truncated { .. })
    ));

    // Unknown index kind.
    let mut r = MetaReader::from_bytes(good.clone()).unwrap();
    assert!(matches!(
        load_index("no-such-structure", &re_dev, &mut r),
        Err(SnapshotError::Meta { .. })
    ));

    // Kind confusion: hs2d metadata decoded as a kdtree must fail typed
    // (tag mismatch), not panic or mis-load.
    let mut r = MetaReader::from_bytes(good.clone()).unwrap();
    assert!(matches!(load_index("kdtree", &re_dev, &mut r), Err(SnapshotError::Meta { .. })));

    // Cross-wired pages: metadata pointing past a too-small device must be
    // rejected by the page-range validation, not panic later.
    let tiny = Device::new(DeviceConfig::new(1024, 0));
    tiny.alloc_pages(1);
    tiny.freeze_to_path(dir.file("tiny.pages")).unwrap();
    let tiny_re = Device::open_snapshot(dir.file("tiny.pages"), 0).unwrap();
    let mut r = MetaReader::from_bytes(good).unwrap();
    assert!(matches!(load_index("hs2d", &tiny_re, &mut r), Err(SnapshotError::Meta { .. })));
}

#[test]
fn every_snapshot_error_displays_its_offsets() {
    // The Display impls are part of the operator surface: each corruption
    // error must mention where it happened.
    let dir = TempDir::new("lcrs-corrupt-display");
    let good = write_reference_snapshot(&dir, 2);
    let bad = dir.file("bad.pages");
    mutate(&good, &bad, |b| {
        let n = b.len();
        b[n - 3] ^= 0x04;
    });
    let err = match open_snapshot_both(&bad, 0) {
        Err(e) => e,
        Ok(_) => panic!("corrupt snapshot must not open"),
    };
    let msg = format!("{err}");
    assert!(msg.contains("page 1"), "message {msg:?} must name the page");
    assert!(msg.contains("offset"), "message {msg:?} must name the offset");
    let source: &dyn std::error::Error = &err;
    assert!(source.source().is_none());
}
