//! Smoke tests pinning the reproducibility contract the bench harness
//! relies on: every generator in `lcrs_workloads` is a pure function of
//! (distribution, n, range, seed).

use lcrs::workloads::{
    aggregate_mixed, disk_mixed, halfplane_mixed, halfplane_with_selectivity,
    halfspace3_with_selectivity, knn_batch, points2, points3, topk_mixed, BatchShape, Dist2, Dist3,
};

const ALL_DIST2: [Dist2; 5] =
    [Dist2::Uniform, Dist2::Gaussianish, Dist2::Clustered, Dist2::Diagonal, Dist2::Circle];

#[test]
fn points2_is_deterministic_per_seed_for_all_distributions() {
    for dist in ALL_DIST2 {
        for seed in [0u64, 1, 0xdead_beef, u64::MAX] {
            let a = points2(dist, 257, 1 << 20, seed);
            let b = points2(dist, 257, 1 << 20, seed);
            assert_eq!(a, b, "{dist:?} must be deterministic for seed {seed}");
            assert_eq!(a.len(), 257);
        }
    }
}

#[test]
fn points2_seed_actually_varies_the_random_distributions() {
    // Diagonal and Circle are seed-independent by construction; the three
    // random distributions must produce different streams per seed.
    for dist in [Dist2::Uniform, Dist2::Gaussianish, Dist2::Clustered] {
        assert_ne!(
            points2(dist, 257, 1 << 20, 1),
            points2(dist, 257, 1 << 20, 2),
            "{dist:?} ignores its seed"
        );
    }
}

#[test]
fn points3_is_deterministic_per_seed_for_all_distributions() {
    for dist in [Dist3::Uniform, Dist3::Clustered, Dist3::Slab] {
        let a = points3(dist, 211, 1 << 19, 7);
        let b = points3(dist, 211, 1 << 19, 7);
        assert_eq!(a, b, "{dist:?} must be deterministic per seed");
    }
}

#[test]
fn query_generators_are_deterministic_per_seed() {
    let pts2 = points2(Dist2::Uniform, 400, 1 << 20, 3);
    assert_eq!(
        halfplane_with_selectivity(&pts2, 40, 64, 9),
        halfplane_with_selectivity(&pts2, 40, 64, 9)
    );
    let pts3 = points3(Dist3::Uniform, 300, 1 << 19, 4);
    assert_eq!(
        halfspace3_with_selectivity(&pts3, 30, 32, 9),
        halfspace3_with_selectivity(&pts3, 30, 32, 9)
    );
    let knn_pts = points2(Dist2::Uniform, 350, 1000, 5);
    for shape in [BatchShape::ZipfRepeat { distinct: 7, s: 1.2 }, BatchShape::SortedSweep] {
        assert_eq!(
            knn_batch(&knn_pts, shape, 48, 6, 11),
            knn_batch(&knn_pts, shape, 48, 6, 11),
            "{shape:?} k-NN batches must be deterministic"
        );
    }
    // The cross-structure oracle depends on this batch being reproducible
    // across processes (it pins snapshot answers against it).
    assert_eq!(halfplane_mixed(&pts2, 96, 40, 13), halfplane_mixed(&pts2, 96, 40, 13));
    assert_ne!(halfplane_mixed(&pts2, 96, 40, 13), halfplane_mixed(&pts2, 96, 40, 14));
}

#[test]
fn derived_class_generators_are_deterministic_and_prefix_stable() {
    // The DESIGN.md §15 legs (disk, count/sum, top-k) follow the same
    // reproducibility contract as the base generators: byte-for-byte
    // deterministic per seed, seed-sensitive, and prefix-stable — the
    // first k queries of one seed agree whatever the requested length, so
    // a recorded experiment name plus a seed identifies its workload.
    let pts = points2(Dist2::Clustered, 400, 1000, 6);
    let disks = disk_mixed(&pts, 128, 200, 41);
    assert_eq!(disks, disk_mixed(&pts, 128, 200, 41));
    assert_ne!(disks, disk_mixed(&pts, 128, 200, 42), "seed must matter");
    assert_eq!(&disks[..17], &disk_mixed(&pts, 17, 200, 41)[..], "prefix-stable");

    let aggs = aggregate_mixed(&pts, 128, 40, 43);
    assert_eq!(aggs, aggregate_mixed(&pts, 128, 40, 43));
    assert_ne!(aggs, aggregate_mixed(&pts, 128, 40, 44), "seed must matter");
    assert_eq!(&aggs[..17], &aggregate_mixed(&pts, 17, 40, 43)[..], "prefix-stable");

    let topks = topk_mixed(&pts, 128, 40, 16, 45);
    assert_eq!(topks, topk_mixed(&pts, 128, 40, 16, 45));
    assert_ne!(topks, topk_mixed(&pts, 128, 40, 16, 46), "seed must matter");
    assert_eq!(&topks[..17], &topk_mixed(&pts, 17, 40, 16, 45)[..], "prefix-stable");
}
