//! Acceptance suite for live-update serving (DESIGN.md §12): the
//! differential oracle over an interleaved insert/delete/query trace, and
//! the crash-consistency story of the checkpoint protocol.
//!
//! Pinned here:
//! * over a 600-op `live_trace`, every query's answer is bit-identical to
//!   a host-side scan of the live set — while the index is in-memory,
//!   after it attaches a directory mid-stream, after it is *reopened*
//!   from that directory mid-stream, and with background merges beginning
//!   and committing throughout;
//! * the same index fork answers identically when routed through
//!   [`IndexSet`] planning (sequential and parallel execution), with
//!   per-query IO attribution summing exactly to the aggregate;
//! * a torn merge — output level snapshotted, manifest swap never reached,
//!   plus a garbage `.tmp` beside the manifest — leaves a directory that
//!   reopens to exactly the last committed state, and a later checkpoint
//!   collects the orphan level;
//! * a truncated manifest fails with a typed error, never a wrong answer.

use std::collections::BTreeMap;

use lcrs::engine::{IndexSet, LiveIndex, LiveLevel, Query, RangeIndex, SnapshotCatalog};
use lcrs::extmem::{Device, DeviceConfig, TempDir};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::workloads::{live_trace, TraceMix, TraceOp};

fn cfg() -> Hs2dConfig {
    Hs2dConfig { seed: 1998, ..Hs2dConfig::default() }
}

fn model_below(model: &BTreeMap<u64, (i64, i64)>, m: i64, c: i64, inclusive: bool) -> Vec<u64> {
    let mut out: Vec<u64> = model
        .iter()
        .filter(|(_, &(x, y))| {
            let rhs = m as i128 * x as i128 + c as i128;
            if inclusive {
                y as i128 <= rhs
            } else {
                (y as i128) < rhs
            }
        })
        .map(|(&tag, _)| tag)
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn live_trace_oracle_in_memory_reopened_and_planner_routed() {
    let trace = live_trace(TraceMix::default(), 600, 1200, 6, 2024);
    let dir = TempDir::new("lcrs-live-oracle");
    let mut live = LiveIndex::new(DeviceConfig::new(1024, 8), cfg(), Some(24));
    let mut model: BTreeMap<u64, (i64, i64)> = BTreeMap::new();
    let mut checked = 0usize;

    for (i, op) in trace.iter().enumerate() {
        // Phase changes: attach a directory a quarter in, then throw the
        // writer away and continue from the reopened copy at 400.
        if i == 150 {
            live.commit_merge().unwrap();
            live.save_to_dir(dir.path()).unwrap();
        }
        if i == 400 {
            live.commit_merge().unwrap();
            live = LiveIndex::open_dir(dir.path(), 8).unwrap();
        }
        // Background merges weave through all three phases.
        if i % 97 == 0 {
            live.begin_merge();
        }
        if i % 97 == 13 {
            live.commit_merge().unwrap();
        }
        match *op {
            TraceOp::Insert { x, y, tag } => {
                live.insert(x, y, tag).unwrap();
                assert!(model.insert(tag, (x, y)).is_none());
            }
            TraceOp::Delete { tag } => {
                assert!(live.remove(tag).unwrap(), "op {i}: delete of live tag {tag} missed");
                assert!(model.remove(&tag).is_some());
            }
            TraceOp::Query { m, c, inclusive } => {
                let mut got = live.query_below(m, c, inclusive);
                got.sort_unstable();
                assert_eq!(got, model_below(&model, m, c, inclusive), "op {i}: m={m} c={c}");
                checked += 1;
            }
        }
    }
    assert!(checked >= 120, "trace must probe plenty of intermediate states, saw {checked}");
    assert_eq!(live.len(), model.len());
    assert!(live.merge_epoch() > 0, "the trace must have merged");

    // Planner routing: a reader fork of the final state inside an
    // IndexSet answers the trace's queries identically, sequentially and
    // across parallel workers.
    let batch: Vec<Query> = trace
        .iter()
        .filter_map(|op| match *op {
            TraceOp::Query { m, c, inclusive } => Some(Query::Halfplane { m, c, inclusive }),
            _ => None,
        })
        .collect();
    let mut set = IndexSet::new();
    let slot = set.add(RangeIndex::fork_reader(&live));
    set.calibrate(&batch[..24.min(batch.len())]);
    let plan = set.plan(&batch);
    assert_eq!(plan.unrouted(), 0);
    assert_eq!(plan.routed_to(slot), batch.len());
    let seq = set.execute_plan(&batch, &plan, true);
    assert_eq!(seq.attributed_total(), seq.total);
    let par = set.execute_parallel_plan(&batch, &plan, 3, true);
    let (seq_answers, par_answers) = (seq.answers.unwrap(), par.answers.unwrap());
    for (qi, q) in batch.iter().enumerate() {
        let Query::Halfplane { m, c, inclusive } = *q else { unreachable!() };
        let want = model_below(&model, m, c, inclusive);
        let mut got = seq_answers[qi].clone();
        got.sort_unstable();
        assert_eq!(got, want, "routed q{qi}");
        let mut gotp = par_answers[qi].clone();
        gotp.sort_unstable();
        assert_eq!(gotp, want, "parallel-routed q{qi}");
    }
}

#[test]
fn torn_merge_serves_the_old_manifest_and_collects_the_orphan() {
    let dir = TempDir::new("lcrs-live-crash");
    let mut live = LiveIndex::new(DeviceConfig::new(512, 4), cfg(), Some(12));
    live.save_to_dir(dir.path()).unwrap();
    for i in 0..180u64 {
        let (x, y) = ((i as i64 * 53) % 701 - 350, (i as i64 * 29) % 503 - 250);
        live.insert(x, y, i).unwrap();
        if i % 9 == 5 {
            live.remove(i - 3).unwrap();
        }
    }
    let reference: Vec<Vec<u64>> = [(2i64, 60i64, false), (-3, -10, true), (0, 0, true)]
        .iter()
        .map(|&(m, c, inc)| {
            let mut a = live.query_below(m, c, inc);
            a.sort_unstable();
            a
        })
        .collect();
    let committed_len = live.len();
    drop(live);

    // Emulate a merge that crashed after snapshotting its output level
    // but before the manifest swap: an orphan `lv<seq>` entry the live
    // manifest never references...
    let mut cat = SnapshotCatalog::open(dir.path()).unwrap();
    let dev = Device::new(DeviceConfig::new(512, 4));
    let junk_coords: Vec<(i64, i64)> = (0..30).map(|i| (i * 11 - 160, i * 7 - 100)).collect();
    let hs = HalfspaceRS2::build(&dev, &junk_coords, cfg());
    dev.freeze();
    let junk_points: Vec<(i64, i64, u64)> =
        junk_coords.iter().enumerate().map(|(i, &(x, y))| (x, y, 9000 + i as u64)).collect();
    cat.add("lv999", &LiveLevel::new(hs, junk_points)).unwrap();
    drop(cat);
    // ...and a torn manifest rewrite beside the real one.
    std::fs::write(dir.path().join("__live.meta.tmp"), b"torn mid-rename").unwrap();

    let mut back = LiveIndex::open_dir(dir.path(), 4).unwrap();
    assert_eq!(back.len(), committed_len, "reopen serves the last committed state");
    for (j, &(m, c, inc)) in
        [(2i64, 60i64, false), (-3, -10, true), (0, 0, true)].iter().enumerate()
    {
        let mut a = back.query_below(m, c, inc);
        a.sort_unstable();
        assert_eq!(a, reference[j], "query {j} after the torn merge");
        assert!(!a.iter().any(|&t| t >= 9000), "orphan-level tags must stay invisible");
    }

    // The next checkpoint garbage-collects the orphan entry.
    assert!(back.checkpoint().unwrap());
    let cat = SnapshotCatalog::open(dir.path()).unwrap();
    assert!(
        !cat.entries().iter().any(|e| e.label == "lv999"),
        "checkpoint must collect unreferenced levels"
    );
    drop(back);

    // A truncated manifest is a typed failure, never a wrong answer.
    let manifest = dir.path().join(lcrs::engine::LIVE_MANIFEST);
    let bytes = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &bytes[..bytes.len() / 2]).unwrap();
    assert!(LiveIndex::open_dir(dir.path(), 4).is_err());
}
