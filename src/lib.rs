//! # lcrs — external-memory searching with linear constraints
//!
//! Umbrella crate re-exporting the whole workspace: a from-scratch Rust
//! reproduction of Agarwal, Arge, Erickson, Franciosa, Vitter,
//! *Efficient Searching with Linear Constraints* (PODS 1998 / JCSS 2000).
//!
//! See `README.md` for a tour (crate map, tier-1 commands, experiment
//! binaries) and `DESIGN.md` for the system inventory — from the exact
//! integer geometry up through the paper's structures, the batch /
//! parallel / planned execution layers, snapshot catalogs, and the
//! space-partitioned sharded serving tier.

pub use lcrs_baselines as baselines;
pub use lcrs_engine as engine;
pub use lcrs_extmem as extmem;
pub use lcrs_geom as geom;
pub use lcrs_halfspace as halfspace;
pub use lcrs_workloads as workloads;
