//! Offline API-compatible subset of the `criterion` crate.
//!
//! Measures and prints mean/median wall-clock time per iteration for each
//! `bench_function`; no statistical analysis, plots, or HTML reports.
//! Honors `--bench` (ignored filter args are accepted so `cargo bench`
//! invocations pass through) and runs every registered benchmark.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink (identity function through an
/// inline-never boundary — good enough without std::hint specifics).
#[inline(never)]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// routine invocation regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Seconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also calibrates iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);
        self.samples = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(routine());
                }
                t0.elapsed().as_secs_f64() / iters_per_sample as f64
            })
            .collect();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One setup per timed invocation; setup time is excluded.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_spent = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            warm_spent += t0.elapsed();
            warm_iters += 1;
        }
        let per_iter = warm_spent.as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);
        self.samples = (0..self.sample_size)
            .map(|_| {
                let mut spent = Duration::ZERO;
                for _ in 0..iters_per_sample {
                    let input = setup();
                    let t0 = Instant::now();
                    black_box(routine(input));
                    spent += t0.elapsed();
                }
                spent.as_secs_f64() / iters_per_sample as f64
            })
            .collect();
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<32} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let median = s[s.len() / 2];
        println!(
            "{id:<32} mean {:>12}  median {:>12}  ({} samples)",
            fmt_time(mean),
            fmt_time(median),
            s.len()
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// `criterion_group!` in both the struct-ish and positional forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
