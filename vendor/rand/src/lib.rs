//! Offline API-compatible subset of the `rand` crate.
//!
//! Implements only the surface this workspace uses: [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64 — deterministic per seed, but a
//! different stream than upstream rand's ChaCha12 `StdRng`),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`seq::SliceRandom::shuffle`].

pub mod rngs;
pub mod seq;

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive and must be > `lo`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`, both ends inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased draw from `[0, span)` (`span >= 1`) by rejection on the top
/// multiple of `span`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    if span == 1 {
        return 0;
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                // hi - lo fits in u64 for every <=64-bit type.
                let span = (hi as i128).wrapping_sub(lo as i128) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let diff = (hi as i128).wrapping_sub(lo as i128) as u64;
                if diff == u64::MAX {
                    // Full-domain 64-bit range: every u64 is a valid draw.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, diff + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        if lo == hi {
            return lo;
        }
        Self::sample_half_open(rng, lo, hi.next_up())
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let w: usize = rng.gen_range(1usize..4);
            assert!((1..4).contains(&w));
            let f: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_inclusive_handles_negative_and_degenerate_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(rng.gen_range(-1.0f64..=-1.0), -1.0);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0f64..=-1.0);
            assert!((-2.0..=-1.0).contains(&v), "{v} outside [-2, -1]");
        }
    }

    #[test]
    fn full_domain_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(13);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
