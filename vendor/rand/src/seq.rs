//! Sequence helpers: in-place Fisher–Yates shuffle.

use crate::{Rng, RngCore};

pub trait SliceRandom {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut w = v.clone();
        w.sort_unstable();
        assert_eq!(w, (0..100).collect::<Vec<_>>());
        assert_ne!(v, w, "shuffle of 100 elements left them sorted");
    }
}
