//! Fixed-size array strategies: `uniformN(element)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct UniformArray<S, const N: usize>(S);

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.0.sample(rng))
    }
}

macro_rules! uniform_fns {
    ($($name:ident $n:literal)*) => {$(
        /// An `[T; N]` with every element drawn from the same strategy.
        pub fn $name<S: Strategy>(elem: S) -> UniformArray<S, $n> {
            UniformArray(elem)
        }
    )*};
}

uniform_fns! {
    uniform2 2
    uniform3 3
    uniform4 4
    uniform5 5
    uniform8 8
}
