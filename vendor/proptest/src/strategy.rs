//! Strategies: how to sample a value of some type from the per-case RNG.
//! No shrinking — `sample` is the whole interface.

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy samples through a shared reference too (used by combinators).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_strategy_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
