//! Collection strategies: `vec(element, len_range)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct VecStrategy<S> {
    elem: S,
    len: std::ops::Range<usize>,
}

/// A `Vec` whose length is drawn from `len` and whose elements are drawn
/// from `elem`.
pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.clone().sample(rng);
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}
