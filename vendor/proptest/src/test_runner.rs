//! Config, per-case RNG, and the error type threaded out of test bodies.

/// How a sampled case failed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject(&'static str),
    /// A `prop_assert*` failed; abort the test with this message.
    Fail(String),
}

/// Subset of proptest's config: only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 over (test-name hash, case number): deterministic, and
/// distinct tests get distinct streams.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(name_hash: u64, case_seed: u64) -> Self {
        TestRng { state: name_hash ^ case_seed.wrapping_mul(0x9e3779b97f4a7c15) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Unbiased draw from `[0, span)`, `span >= 1`.
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span >= 1);
        if span == 1 {
            return 0;
        }
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let v = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            if v <= zone {
                return v % span;
            }
        }
    }
}
