//! Offline API-compatible subset of the `proptest` crate.
//!
//! Supports the surface this workspace's test suites use: the [`proptest!`]
//! macro (with `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`, and strategies
//! for integer/float ranges, tuples of strategies, `any::<T>()`,
//! `prop::collection::vec`, and `prop::array::uniform4`.
//!
//! Differences from real proptest: no shrinking (a failure reports the
//! case seed instead of a minimized input), and case generation is
//! deterministic — derived from the test's module path and name — so runs
//! are reproducible without a persistence file.

pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of real proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// FNV-1a hash of a test's identifier, mixed into the per-case RNG seed so
/// distinct tests draw distinct (but stable) input streams.
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Expands each `fn name(pat in strategy, ...) { body }` into a `#[test]`
/// that runs `config.cases` sampled cases. The body runs inside a closure
/// returning `Result<(), TestCaseError>`: `prop_assert*` failures become
/// `Err(Fail(..))` (reported with the case seed), `prop_assume!` rejections
/// re-draw the case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let name_hash =
                $crate::hash_name(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut case_seed: u64 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                case_seed += 1;
                assert!(
                    rejected < config.cases.saturating_mul(256).max(1 << 16),
                    "proptest: too many rejected cases ({rejected}) in {}",
                    stringify!($name),
                );
                let mut rng = $crate::test_runner::TestRng::new(name_hash, case_seed);
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => rejected += 1,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed (test {}, case seed {case_seed}):\n{msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r,
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($lhs), stringify!($rhs), l, r, format!($($fmt)*),
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), l,
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($lhs), stringify!($rhs), l, format!($($fmt)*),
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}
