//! k-nearest-neighbor search via the lifting of Theorem 4.3: a store
//! locator over 2D points, answered in O(log_B n + k/B) expected IOs.
//!
//! Run with: `cargo run --release --example nearest_neighbors`

use lcrs::extmem::{Device, DeviceConfig};
use lcrs::halfspace::hs3d::Hs3dConfig;
use lcrs::halfspace::knn::{KnnStructure, MAX_KNN_COORD};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 50_000usize;
    let mut rng = StdRng::seed_from_u64(11);
    let mut gen = || {
        (
            rng.gen_range(-MAX_KNN_COORD..=MAX_KNN_COORD),
            rng.gen_range(-MAX_KNN_COORD..=MAX_KNN_COORD),
        )
    };
    let stores: Vec<(i64, i64)> = (0..n).map(|_| gen()).collect();

    let dev = Device::new(DeviceConfig::new(4096, 0));
    println!("lifting {n} store locations to planes and building the 3D structure...");
    let t0 = std::time::Instant::now();
    let knn = KnnStructure::build(&dev, &stores, Hs3dConfig::default());
    println!("built in {:.2}s ({} pages).", t0.elapsed().as_secs_f64(), knn.pages());

    let me = (123i64, -456i64);
    for k in [1usize, 5, 25, 200] {
        let (ids, stats) = knn.k_nearest_stats(me.0, me.1, k);
        let furthest = ids.last().map(|&i| {
            let (x, y) = stores[i as usize];
            (((x - me.0).pow(2) + (y - me.1).pow(2)) as f64).sqrt()
        });
        println!(
            "k={k:>4}: {} neighbors in {:>4} IOs (furthest at distance {:.1})",
            ids.len(),
            stats.ios,
            furthest.unwrap_or(0.0)
        );
        // Verify the closest one by brute force.
        let best = stores
            .iter()
            .enumerate()
            .min_by_key(|(_, &(x, y))| (x - me.0).pow(2) + (y - me.1).pow(2))
            .unwrap()
            .0;
        assert_eq!(ids[0] as usize, best);
    }
    println!("nearest neighbor verified against brute force.");
}
