//! Live-update serving: a `LiveIndex` absorbs an interleaved stream of
//! inserts, deletes, and queries while checkpointing every mutation to a
//! snapshot directory. Halfway through, the writer is dropped on the
//! floor — simulating a crash — and a fresh process reopens the directory
//! and continues the stream from the exact committed state, background
//! merges and all.
//!
//! Run with: `cargo run --release --example live_updates`

use lcrs::engine::LiveIndex;
use lcrs::extmem::{DeviceConfig, TempDir};
use lcrs::halfspace::hs2d::Hs2dConfig;
use lcrs::workloads::{live_trace, TraceMix, TraceOp};

fn main() {
    let dir = TempDir::new("lcrs-live-updates");
    let trace = live_trace(TraceMix::default(), 2_000, 100_000, 6, 42);

    // ---- process 1: serve the first half, checkpointing as we go --------
    let mut live = LiveIndex::new(DeviceConfig::new(4096, 64), Hs2dConfig::default(), None);
    live.save_to_dir(dir.path()).expect("attach snapshot directory");
    let mut answered = 0usize;
    for (i, op) in trace.iter().take(1_000).enumerate() {
        if i.is_multiple_of(250) {
            live.commit_merge().expect("commit merge");
            live.begin_merge(); // the next level merge runs on a worker thread
        }
        match *op {
            TraceOp::Insert { x, y, tag } => live.insert(x, y, tag).expect("insert"),
            TraceOp::Delete { tag } => {
                live.remove(tag).expect("remove");
            }
            TraceOp::Query { m, c, inclusive } => {
                answered += live.query_below(m, c, inclusive).len();
            }
        }
    }
    live.commit_merge().expect("final merge");
    println!(
        "process 1: {} ops served, {} live points, {} level merges, {} parts — \
         then the process dies without any shutdown handshake.",
        1_000,
        live.len(),
        live.merge_epoch(),
        live.core().num_parts()
    );
    let committed = live.len();
    drop(live); // no flush, no goodbye: every mutation already committed

    // ---- process 2: reopen and keep serving ------------------------------
    let mut live = LiveIndex::open_dir(dir.path(), 64).expect("reopen live directory");
    assert_eq!(live.len(), committed, "reopen resumes from the committed state");
    for op in trace.iter().skip(1_000) {
        match *op {
            TraceOp::Insert { x, y, tag } => live.insert(x, y, tag).expect("insert"),
            TraceOp::Delete { tag } => {
                live.remove(tag).expect("remove");
            }
            TraceOp::Query { m, c, inclusive } => {
                answered += live.query_below(m, c, inclusive).len();
            }
        }
    }
    println!(
        "process 2: resumed at {committed} points, finished the {}-op trace with {} \
         live points and {} total answer rows across both halves.",
        trace.len(),
        live.len(),
        answered
    );
}
