//! The cost-model query planner: hold every structure of the workspace in
//! one `IndexSet`, calibrate the paper's asymptotic bounds with a measured
//! probe pass, and serve a mixed halfplane/halfspace/k-NN batch with each
//! query routed to the cheapest capable structure — then compare against
//! always-scan and worst-case routing, and show the calibrated set
//! round-tripping through a snapshot catalog.
//!
//! Run with: `cargo run --release --example planned_queries`

use lcrs::baselines::{ExternalKdTree, ExternalScan, ExternalScan3};
use lcrs::engine::{IndexSet, Query, SnapshotCatalog};
use lcrs::extmem::{Device, DeviceConfig, TempDir};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
use lcrs::halfspace::KnnStructure;
use lcrs::workloads::{points2, points3, Dist2, Dist3};
use lcrs_bench::{mixed_oracle, mixed_probes};

fn main() {
    // Simulated disks with 1 KiB pages and a 32-page cache — small enough
    // that a scan cannot hide its Θ(n/B) cost in a resident file.
    let dev2 = Device::new(DeviceConfig::new(1024, 32));
    let dev3 = Device::new(DeviceConfig::new(1024, 32));
    let pts2 = points2(Dist2::Clustered, 8000, 1000, 1); // k-NN lift budget: |coord| ≤ ~1000
    let pts3 = points3(Dist3::Uniform, 4000, 1 << 16, 2);

    println!("building six structures over {} 2D + {} 3D points...", pts2.len(), pts3.len());
    let mut set = IndexSet::new();
    set.add(Box::new(HalfspaceRS2::build(&dev2, &pts2, Hs2dConfig::default())));
    set.add(Box::new(ExternalKdTree::build(&dev2, &pts2)));
    set.add(Box::new(KnnStructure::build(&dev2, &pts2, Hs3dConfig::default())));
    set.add(Box::new(HalfspaceRS3::build(&dev3, &pts3, Hs3dConfig::default())));
    set.add(Box::new(ExternalScan::build(&dev2, &pts2)));
    set.add(Box::new(ExternalScan3::build(&dev3, &pts3)));

    // Calibration: a measured probe pass fits one constant per structure
    // onto its paper bound (the shape each structure self-reports).
    let probes: Vec<Query> = mixed_probes(&pts2, &pts3, 10);
    set.calibrate(&probes);
    println!("\ncalibrated cost model ({} probes):", probes.len());
    for slot in 0..set.len() {
        let hint = set.structure(slot).cost_hint();
        println!(
            "  {:>8}: shape {:?} x fitted constant {:.2}",
            set.structure(slot).name(),
            hint.shape,
            set.calibration(slot).constant
        );
    }

    // Mixed traffic: 600 halfplane + 240 halfspace + 160 k-NN queries,
    // interleaved — the same oracle-workload construction the planner
    // test suite and exp_planner gate on.
    let queries = mixed_oracle(&pts2, &pts3, (600, 240, 160), 20);

    // Three routing policies, one executor.
    let planned = set.execute_plan(&queries, &set.plan(&queries), false);
    let scanned = set.execute_plan(&queries, &set.scan_plan(&queries), false);
    let worst = set.execute_plan(&queries, &set.worst_plan(&queries), false);
    println!("\n{} mixed queries:", queries.len());
    for (kind, rep) in [("planned", &planned), ("always-scan", &scanned), ("worst", &worst)] {
        let routing: Vec<String> =
            rep.per_index.iter().map(|r| format!("{}:{}", r.index, r.queries)).collect();
        println!("  {kind:>12}: {:>8} read IOs  [{}]", rep.reads(), routing.join(" "));
    }
    println!(
        "  planner saves {:.1}% of reads vs always-scan",
        100.0 * (1.0 - planned.reads() as f64 / scanned.reads() as f64)
    );

    // Build once, serve many: persist the indexes *and* the calibration,
    // reopen in a fresh (simulated) process, and plan identically.
    let dir = TempDir::new("lcrs-planned-example");
    dev2.freeze();
    dev3.freeze();
    let mut cat = SnapshotCatalog::create(dir.path()).expect("create catalog");
    for slot in 0..set.len() {
        cat.add(&format!("idx{slot}"), set.structure(slot)).expect("add entry");
    }
    set.save_calibration_to_catalog(&cat).expect("persist calibration");
    let reopened = IndexSet::from_catalog(&cat, 32).expect("reopen catalog");
    assert_eq!(reopened.plan(&queries).assignments, set.plan(&queries).assignments);
    println!(
        "\ncatalog round trip: {} entries reopened read-only, calibration loaded, \
         plan decisions identical — no re-probing.",
        reopened.len()
    );
}
