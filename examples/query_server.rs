//! The query server end to end: a four-tenant virtual-time arrival
//! stream (`serve_trace`) replayed through a windowed `QueryServer` over
//! a calibrated `IndexSet` — window batching beating one-at-a-time cold
//! execution on read IOs, exact per-tenant attribution, and a noisy
//! tenant throttled by an IO quota with typed rejections while everyone
//! else's answers stay bit-identical.
//!
//! Run with: `cargo run --release --example query_server`

use lcrs::baselines::{ExternalKdTree, ExternalScan};
use lcrs::engine::{
    Arrival, IndexSet, Query, QueryServer, QuotaConfig, ServeConfig, ServeStatus, WindowPolicy,
};
use lcrs::extmem::{Device, DeviceConfig};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::workloads::{halfplane_with_selectivity, points2, serve_trace, Dist2};

fn build_set(dev: &Device, pts: &[(i64, i64)]) -> IndexSet {
    let mut set = IndexSet::new();
    set.add(Box::new(HalfspaceRS2::build(dev, pts, Hs2dConfig::default())));
    set.add(Box::new(ExternalKdTree::build(dev, pts)));
    set.add(Box::new(ExternalScan::build(dev, pts)));
    let probes: Vec<Query> = (0..16)
        .map(|i| {
            let (m, c) =
                halfplane_with_selectivity(pts, (i + 1) * pts.len() / 20, 48, 90 + i as u64);
            Query::Halfplane { m, c, inclusive: false }
        })
        .collect();
    set.calibrate(&probes);
    set
}

fn main() {
    let pts = points2(Dist2::Clustered, 4096, 1 << 20, 17);
    let stream: Vec<Arrival> = serve_trace(&pts, 4, 600, 1000, 48, 42)
        .into_iter()
        .map(|op| Arrival {
            at_ns: op.at_ns,
            tenant: op.tenant,
            query: Query::Halfplane { m: op.m, c: op.c, inclusive: op.inclusive },
        })
        .collect();

    // ---- the no-server baseline: every query pays its cold cost ---------
    let dev = Device::new(DeviceConfig::new(1024, 32));
    let set = build_set(&dev, &pts);
    let mut cold_reads = 0u64;
    for a in &stream {
        let one = [a.query];
        let plan = set.plan(&one);
        cold_reads += set.execute_plan(&one, &plan, false).total.reads;
    }

    // ---- the serving loop: 8 ms / 64-query windows -----------------------
    let dev = Device::new(DeviceConfig::new(1024, 32));
    let policy = WindowPolicy { max_wait_ns: 8_000_000, max_queries: 64 };
    let mut srv = QueryServer::new(build_set(&dev, &pts), ServeConfig { policy, workers: 1 });
    let rep = srv.run_trace(&stream, true);
    assert!(rep.reads() < cold_reads, "window batching must beat cold execution");
    println!(
        "windowed: {} arrivals in {} windows, {} read IOs vs {} cold ({}% saved)",
        stream.len(),
        rep.windows.len(),
        rep.reads(),
        cold_reads,
        100 * (cold_reads - rep.reads()) / cold_reads
    );
    for (tenant, io) in rep.per_tenant_io() {
        println!("  tenant {tenant}: {} read IOs attributed (exact)", io.reads);
    }
    let m = srv.metrics();
    println!(
        "  metrics: {} windows, {} queries, window wall p50={}µs p99={}µs",
        m.windows_served,
        m.queries_served,
        m.window_wall_p50_ns / 1000,
        m.window_wall_p99_ns / 1000
    );

    // ---- admission control: tenant 0 on a 256-read quota -----------------
    let dev = Device::new(DeviceConfig::new(1024, 32));
    let mut srv = QueryServer::new(build_set(&dev, &pts), ServeConfig { policy, workers: 1 });
    srv.set_quota(0, QuotaConfig { capacity: 256, refill: 16, interval_ns: 1_000_000 });
    let throttled = srv.run_trace(&stream, true);
    let rejected = throttled.rejected();
    assert!(rejected > 0, "the noisy tenant must hit its quota");
    let sample = throttled
        .outcomes
        .iter()
        .find(|o| matches!(o.status, ServeStatus::Rejected(_)))
        .expect("at least one typed rejection");
    println!(
        "throttled: tenant 0 got {rejected} typed rejections (first at arrival {}: {:?})",
        sample.arrival, sample.status
    );
    // Other tenants never notice: answers bit-identical to the free run.
    let free = rep.answers.as_ref().unwrap();
    let thr = throttled.answers.as_ref().unwrap();
    let unchanged =
        stream.iter().enumerate().filter(|(i, a)| a.tenant != 0 && thr[*i] == free[*i]).count();
    let others = stream.iter().filter(|a| a.tenant != 0).count();
    assert_eq!(unchanged, others);
    println!("  all {others} other-tenant answers bit-identical to the unthrottled run");
}
