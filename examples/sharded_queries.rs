//! Space-partitioned serving: split one dataset into S geometry-aware
//! shards (recursive ham-sandwich cuts), give each shard its own devices
//! and calibrated `IndexSet`, route each query only to the shards whose
//! region it can intersect, and scatter-gather with every shard on its
//! own thread — then persist the whole sharded deployment to one
//! directory and reopen it cold with identical answers and IO counts.
//!
//! Run with: `cargo run --release --example sharded_queries`

use lcrs::engine::{Query, ShardConfig, ShardedIndexSet};
use lcrs::extmem::{DeviceConfig, TempDir};
use lcrs::workloads::{halfplane_narrow, points2, points3, Dist2, Dist3};
use lcrs_bench::{full_index_set, mixed_oracle, mixed_probes};

fn main() {
    let pts2 = points2(Dist2::Clustered, 6000, 1000, 1);
    let pts3 = points3(Dist3::Uniform, 3000, 1 << 16, 2);
    let cfg = ShardConfig { shards: 8, device: DeviceConfig::new(1024, 32) };

    println!(
        "partitioning {} 2D + {} 3D points into {} shards...",
        pts2.len(),
        pts3.len(),
        cfg.shards
    );
    // Each shard gets its own 2D + 3D device and the canonical
    // eleven-structure planner set over its sub-dataset.
    let mut sharded = ShardedIndexSet::build(&pts2, &pts3, &cfg, full_index_set);
    sharded.calibrate(&mixed_probes(&pts2, &pts3, 10));
    sharded.freeze(); // lock-free reads for the per-shard threads
    for s in 0..sharded.shards() {
        let (n2, n3) = sharded.shard_sizes(s);
        println!("  shard {s}: {n2} 2D + {n3} 3D points");
    }

    // Routing: a narrow constraint crosses few cells of the partition, a
    // broad one fans out everywhere — and the cost model prices exactly
    // that: (shards touched) x (per-shard calibrated cost).
    let narrow = halfplane_narrow(&pts2, 1, 40, 60, 7)
        .into_iter()
        .map(|(m, c, inclusive)| Query::Halfplane { m, c, inclusive })
        .next()
        .unwrap();
    let broad = Query::Halfplane { m: 0, c: 1 << 40, inclusive: false };
    println!("\nrouting:");
    for (tag, q) in [("narrow", &narrow), ("broad", &broad)] {
        println!(
            "  {tag} halfplane -> {} of {} shards, predicted {:.1} reads",
            sharded.fanout(q),
            sharded.shards(),
            sharded.predicted_reads(q)
        );
    }

    // Scatter-gather a mixed batch: one OS thread per routed shard,
    // answers merged back to canonical order, per-shard IO exact.
    let queries = mixed_oracle(&pts2, &pts3, (300, 120, 80), 42);
    let report = sharded.execute_parallel(&queries, 1, false);
    println!(
        "\n{} mixed queries: {} read IOs, mean fan-out {:.2} of {} shards",
        queries.len(),
        report.reads(),
        report.mean_fanout(),
        sharded.shards()
    );
    for sr in &report.per_shard {
        println!("  shard {}: {} queries, {} reads", sr.shard, sr.queries, sr.io.reads);
    }

    // Build once, serve many: the whole sharded deployment persists to
    // one directory (S sub-catalogs + a shard manifest) and reopens cold
    // with bit-identical answers and read counts.
    let dir = TempDir::new("lcrs-sharded-example");
    sharded.save_to_catalog(dir.path()).expect("save sharded catalog");
    let reopened = ShardedIndexSet::from_catalog(dir.path(), 32).expect("reopen");
    let re_report = reopened.execute_parallel(&queries, 1, false);
    assert_eq!(re_report.total, report.total);
    println!(
        "\nreopened from {:?}: {} read IOs (identical) across {} shards",
        dir.path().file_name().unwrap(),
        re_report.reads(),
        reopened.shards()
    );
}
