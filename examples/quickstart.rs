//! Quickstart: build the optimal 2D structure (Theorem 3.5) over a point
//! set and run a linear-constraint query, printing the measured IO cost.
//!
//! Run with: `cargo run --release --example quickstart`

use lcrs::extmem::{Device, DeviceConfig};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::workloads::{points2, Dist2};

fn main() {
    // A simulated disk with 4 KiB pages and no cache: every page access
    // costs one IO, exactly the model of the paper.
    let dev = Device::new(DeviceConfig::new(4096, 0));

    // 100k uniform points.
    let points = points2(Dist2::Uniform, 100_000, 1 << 29, 42);
    println!("building the Theorem 3.5 structure over {} points...", points.len());
    let t0 = std::time::Instant::now();
    let index = HalfspaceRS2::build(&dev, &points, Hs2dConfig::default());
    println!(
        "built in {:.2}s: {} clusterings, {} disk pages (linear space)",
        t0.elapsed().as_secs_f64(),
        index.num_clusterings(),
        index.pages()
    );

    // Query: report all points with y <= 3x - 1_000_000_000 (strictly below
    // the line y = 3x - 10^9).
    let (m, c) = (3i64, -1_000_000_000i64);
    let (result, stats) = index.query_below_stats(m, c, false);
    println!(
        "query y < {m}·x + {c}: {} points reported in {} IOs \
         ({} clusterings visited, {} clusters read)",
        result.len(),
        stats.ios,
        stats.clusterings_visited,
        stats.clusters_read
    );

    // Verify against a scan.
    let brute =
        points.iter().filter(|&&(x, y)| (y as i128) < m as i128 * x as i128 + c as i128).count();
    assert_eq!(result.len(), brute);
    println!("verified against a full scan ({brute} matches).");
}
