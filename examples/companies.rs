//! The paper's Section 1.1 motivating example, end to end:
//!
//! ```sql
//! SELECT Name FROM Companies
//! WHERE (PricePerShare - 10 * EarningsPerShare < 0)
//! ```
//!
//! Interpreting each (EarningsPerShare, PricePerShare) row as a planar
//! point, the query asks for the points strictly below the line y = 10·x —
//! one halfspace range query. We compare the Theorem 3.5 index against the
//! full-table scan a row store would do.
//!
//! Run with: `cargo run --release --example companies`

use lcrs::baselines::ExternalScan;
use lcrs::extmem::{Device, DeviceConfig};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Synthesize a Companies relation: EPS in cents (can be negative),
    // price in cents, loosely correlated so the P/E < 10 band is selective.
    let n = 200_000usize;
    let mut rng = StdRng::seed_from_u64(7);
    let companies: Vec<(String, i64, i64)> = (0..n)
        .map(|i| {
            let eps = rng.gen_range(-2_000i64..20_000); // cents/share
            let price = (eps.max(100)) * rng.gen_range(8..120) + rng.gen_range(0..5_000);
            (format!("CO{i:06}"), eps, price)
        })
        .collect();

    // Points: (EarningsPerShare, PricePerShare).
    let points: Vec<(i64, i64)> = companies.iter().map(|r| (r.1, r.2)).collect();

    let dev = Device::new(DeviceConfig::new(4096, 0));
    let index = HalfspaceRS2::build(&dev, &points, Hs2dConfig::default());
    let dev_scan = Device::new(DeviceConfig::new(4096, 0));
    let table = ExternalScan::build(&dev_scan, &points);

    // WHERE PricePerShare - 10 * EarningsPerShare < 0  ⟺  y < 10·x.
    let (hits, stats) = index.query_below_stats(10, 0, false);
    let (scan_hits, scan_stats) = table.query_below(10, 0, false);
    assert_eq!(
        {
            let mut a = hits.clone();
            a.sort_unstable();
            a
        },
        scan_hits
    );

    println!("SELECT Name FROM Companies WHERE PricePerShare - 10*EarningsPerShare < 0;");
    println!("rows: {n}, matches: {}", hits.len());
    println!("  Theorem 3.5 index : {:>6} IOs", stats.ios);
    println!("  full table scan   : {:>6} IOs", scan_stats.ios);
    println!("sample answers:");
    for id in hits.iter().take(5) {
        let (name, eps, price) = &companies[*id as usize];
        println!(
            "  {name}: EPS = {:.2}, price = {:.2}, P/E = {:.2}",
            *eps as f64 / 100.0,
            *price as f64 / 100.0,
            *price as f64 / *eps as f64
        );
    }
}
