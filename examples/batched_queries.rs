//! Batched multi-query execution: serve a repeat-heavy batch of 1000
//! halfplane queries through the engine's `BatchExecutor` and compare its
//! total read IOs against issuing the same queries one at a time, cold.
//!
//! Run with: `cargo run --release --example batched_queries`

use lcrs::engine::{BatchExecutor, Query, RangeIndex};
use lcrs::extmem::{Device, DeviceConfig};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::workloads::{halfplane_batch, points2, BatchShape, Dist2};

fn main() {
    // A simulated disk with 4 KiB pages and a 512-page LRU cache — the
    // shared working memory the batch warms up.
    let dev = Device::new(DeviceConfig::new(4096, 512));
    let points = points2(Dist2::Uniform, 50_000, 1 << 29, 42);
    println!("building the Theorem 3.5 structure over {} points...", points.len());
    let index = HalfspaceRS2::build(&dev, &points, Hs2dConfig::default());
    println!("built: {} disk pages.", index.pages());

    // Production-style traffic: 1000 queries, Zipf-popular over 24
    // distinct hot queries.
    let batch: Vec<Query> =
        halfplane_batch(&points, BatchShape::ZipfRepeat { distinct: 24, s: 1.1 }, 1000, 48, 7)
            .into_iter()
            .map(|(m, c)| Query::Halfplane { m, c, inclusive: false })
            .collect();

    let ex = BatchExecutor::new(&index);
    let cold = ex.run_cold(&batch);
    let batched = ex.run_batched(&batch);
    assert_eq!(batched.attributed_total(), batched.total);

    println!("\n{} queries against `{}`:", batch.len(), index.name());
    println!("  one-at-a-time cold: {:>8} read IOs", cold.reads());
    println!(
        "  batched (locality-ordered, shared cache): {:>8} read IOs ({} cache hits)",
        batched.reads(),
        batched.total.cache_hits
    );
    println!(
        "  saved {:.1}% of reads",
        100.0 * (1.0 - batched.reads() as f64 / cold.reads() as f64)
    );

    // Per-query attribution: the three most expensive queries of the batch.
    let mut by_cost = batched.outcomes.clone();
    by_cost.sort_by_key(|o| std::cmp::Reverse(o.io.reads));
    println!("\nmost expensive queries inside the warm batch:");
    for o in by_cost.iter().take(3) {
        println!(
            "  query #{:>4}: {:>4} reads, {:>5} cache hits, {:>5} reported",
            o.query, o.io.reads, o.io.cache_hits, o.reported
        );
    }
}
