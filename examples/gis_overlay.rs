//! GIS-style convex-region reporting with a d-dimensional partition tree:
//! report all sensor sites inside a triangular survey area (the paper's
//! simplex queries, Theorem 5.2 Remark (i)), and a 3D linear constraint
//! combining position and elevation.
//!
//! Run with: `cargo run --release --example gis_overlay`

use lcrs::extmem::{Device, DeviceConfig};
use lcrs::geom::point::{HyperplaneD, PointD, Simplex};
use lcrs::halfspace::ptree::{PTreeConfig, PartitionTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 150_000usize;
    let mut rng = StdRng::seed_from_u64(2024);
    // Sites: (easting, northing) in meters over a 100 km square.
    let sites: Vec<PointD<2>> = (0..n)
        .map(|_| PointD::new([rng.gen_range(0..100_000), rng.gen_range(0..100_000)]))
        .collect();

    let dev = Device::new(DeviceConfig::new(4096, 0));
    let tree = PartitionTree::build(&dev, &sites, PTreeConfig::default());
    println!("partition tree over {n} sites: {} pages (linear space)", tree.pages());

    // Survey triangle: x >= 20km, y >= 30km, x + y <= 90km.
    let survey: Simplex<2> =
        Simplex::new(vec![([-1, 0], -20_000), ([0, -1], -30_000), ([1, 1], 90_000)]);
    let (inside, stats) = tree.query_simplex_stats(&survey);
    println!(
        "triangular survey area: {} sites inside, {} IOs ({} nodes, {} whole subtrees)",
        inside.len(),
        stats.ios,
        stats.nodes_visited,
        stats.subtrees_reported
    );
    let brute = sites.iter().filter(|p| survey.contains_point(p)).count();
    assert_eq!(inside.len(), brute);

    // 3D: sites with elevation; constraint "elevation below the inclined
    // plane z = 0.5·x - 0.2·y + 1000" (scaled to integers ×10).
    let sites3: Vec<PointD<3>> =
        sites.iter().map(|p| PointD::new([p.c[0], p.c[1], rng.gen_range(0..30_000)])).collect();
    let dev3 = Device::new(DeviceConfig::new(4096, 0));
    let tree3 = PartitionTree::build(&dev3, &sites3, PTreeConfig::default());
    let plane: HyperplaneD<3> = HyperplaneD::new([10_000, 5, -2]); // 10·z = ...
    let (below, st3) = tree3.query_halfspace_stats(&plane, false);
    println!(
        "3D linear constraint: {} sites below the inclined plane, {} IOs",
        below.len(),
        st3.ios
    );
    let brute3 = sites3.iter().filter(|p| plane.strictly_below(p)).count();
    assert_eq!(below.len(), brute3);
    println!("both queries verified against full scans.");
}
