//! Build once, serve many: persist a built index to disk with a
//! `SnapshotCatalog`, then reopen it read-only — as a later process would —
//! and serve a query batch straight from the snapshot file, with answers
//! and IO counts identical to the in-memory original.
//!
//! Run with: `cargo run --release --example persisted_index`

use lcrs::baselines::ExternalKdTree;
use lcrs::engine::{BatchExecutor, Query, SnapshotCatalog};
use lcrs::extmem::{Device, DeviceConfig, TempDir};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::workloads::{halfplane_batch, points2, BatchShape, Dist2};

fn main() {
    let dir = TempDir::new("lcrs-persisted-index");
    let points = points2(Dist2::Uniform, 50_000, 1 << 29, 42);
    let batch: Vec<Query> =
        halfplane_batch(&points, BatchShape::ZipfRepeat { distinct: 24, s: 1.1 }, 500, 48, 7)
            .into_iter()
            .map(|(m, c)| Query::Halfplane { m, c, inclusive: false })
            .collect();

    // ---- process 1: build, freeze, persist ------------------------------
    let dev = Device::new(DeviceConfig::new(4096, 512));
    println!("building two indexes over {} points...", points.len());
    let hs = HalfspaceRS2::build(&dev, &points, Hs2dConfig::default());
    let kd_dev = Device::new(DeviceConfig::new(4096, 512));
    let kd = ExternalKdTree::build(&kd_dev, &points);
    dev.freeze();
    kd_dev.freeze();

    let mem = BatchExecutor::new(&hs).keep_answers(true).run_batched(&batch);

    let mut catalog = SnapshotCatalog::create(dir.file("catalog")).expect("create catalog");
    catalog.add("optimal-2d", &hs).expect("persist hs2d");
    catalog.add("kdtree", &kd).expect("persist kdtree");
    println!(
        "persisted {} indexes to {} (versioned, per-page-checksummed snapshots)",
        catalog.entries().len(),
        catalog.dir().display()
    );

    // ---- process 2: reopen read-only and serve --------------------------
    let catalog = SnapshotCatalog::open(dir.file("catalog")).expect("open catalog");
    for entry in catalog.entries() {
        println!("  entry {:?}: kind {}", entry.label, entry.kind);
    }
    let served = catalog.load("optimal-2d", 512).expect("reload index");
    assert_eq!(
        served.device().stats().reads,
        0,
        "a cold reopened index pays nothing until the first query"
    );

    let reopened = BatchExecutor::new(&*served).keep_answers(true).run_batched(&batch);
    assert_eq!(reopened.answers, mem.answers, "answers must be bit-identical");
    assert_eq!(reopened.total, mem.total, "IO accounting must be identical");
    println!(
        "\nserved {} queries from the snapshot: {} read IOs, {} cache hits — \
         bit-identical to the in-memory build (which cost a full construction).",
        batch.len(),
        reopened.reads(),
        reopened.total.cache_hits
    );
}
