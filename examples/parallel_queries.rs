//! Parallel sharded query execution: freeze the storage layer after the
//! build, then serve a 1000-query batch across worker threads — each with
//! its own warm LRU and exactly-attributed IO counters — and check the
//! answers against the sequential batch executor.
//!
//! Run with: `cargo run --release --example parallel_queries`

use lcrs::engine::{BatchExecutor, ParallelExecutor, Query, RangeIndex};
use lcrs::extmem::{Device, DeviceConfig, IoDelta};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::workloads::{halfplane_batch, points2, BatchShape, Dist2};

fn main() {
    // Build phase: a mutable device, 4 KiB pages, a 512-page LRU budget
    // that each worker scope gets for itself.
    let dev = Device::new(DeviceConfig::new(4096, 512));
    let points = points2(Dist2::Uniform, 50_000, 1 << 29, 42);
    println!("building the Theorem 3.5 structure over {} points...", points.len());
    let index = HalfspaceRS2::build(&dev, &points, Hs2dConfig::default());
    println!("built: {} disk pages.", index.pages());

    // Read phase: freeze the store. Pages are now immutable, reads are
    // lock-free, and the index can fan out across threads.
    dev.freeze();
    println!("device frozen: {}", dev.is_frozen());

    let batch: Vec<Query> =
        halfplane_batch(&points, BatchShape::ZipfRepeat { distinct: 24, s: 1.1 }, 1000, 48, 7)
            .into_iter()
            .map(|(m, c)| Query::Halfplane { m, c, inclusive: false })
            .collect();

    // The sequential reference: one thread, one shared warm cache.
    let sequential = BatchExecutor::new(&index).keep_answers(true).run_batched(&batch);

    println!("\n{} queries against `{}`:", batch.len(), index.name());
    println!("  sequential batch: {:>6} read IOs on 1 thread", sequential.reads());
    for workers in [2usize, 4, 8] {
        let report = ParallelExecutor::new(&index, workers).keep_answers(true).run(&batch);
        // Answers are bit-identical to the sequential executor, and the
        // per-worker deltas sum exactly to the aggregate.
        assert_eq!(report.answers, sequential.answers);
        let worker_sum: IoDelta = report.per_worker.iter().map(|w| w.io).sum();
        assert_eq!(worker_sum, report.total);
        let detail: Vec<String> =
            report.per_worker.iter().map(|w| format!("{}q/{}r", w.queries, w.io.reads)).collect();
        println!(
            "  {workers} workers: {:>6} read IOs total, per worker [{}], answers identical",
            report.reads(),
            detail.join(", ")
        );
    }
    println!(
        "\nEach worker pays for warming its own cache, so sharded totals sit between\n\
         the 1-thread batch and the cold baseline — wall-clock, not IOs, is what\n\
         parallelism buys (see the exp_parallel experiment)."
    );
}
