//! The lifted and aggregated query classes (DESIGN.md §15): disk reporting
//! via the paraboloid lift, count/sum via internal-node annotations, and
//! ranked top-k — all served through the same cost-model planner as the
//! original halfplane/halfspace/k-NN classes. Builds a mixed `IndexSet`,
//! calibrates it, routes a six-class workload, and prints the planner's
//! routing table: which structure answers which class, and why.
//!
//! Run with: `cargo run --release --example lifted_queries`

use lcrs::baselines::{ExternalKdTree, ExternalScan, ExternalScan3};
use lcrs::engine::{decode_sum, IndexSet, LiftedIndex, LiftedKind, Query};
use lcrs::extmem::{Device, DeviceConfig};
use lcrs::halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs::workloads::{disk_mixed, points2, points3, Dist2, Dist3};
use lcrs_bench::{lifted_oracle, lifted_probes};

fn class(q: &Query) -> &'static str {
    match q {
        Query::Halfplane { .. } => "halfplane",
        Query::Halfspace { .. } => "halfspace",
        Query::Knn { .. } => "knn",
        Query::Disk { .. } => "disk",
        Query::Count { .. } => "count",
        Query::Sum { .. } => "sum",
        Query::TopK { .. } => "topk",
    }
}

fn main() {
    // Simulated disk: 4 KiB pages, 128-page cache.
    let dev = Device::new(DeviceConfig::new(4096, 128));
    let pts = points2(Dist2::Uniform, 16384, 1000, 1);
    let pts3 = points3(Dist3::Uniform, 2000, 1 << 16, 2);

    // The flat scans (answer everything in their dimension), the
    // annotated halfplane structures (count/sum without touching leaves),
    // and the paraboloid-lifted 3D structure (output-sensitive disks).
    let mut set = IndexSet::new();
    set.add(Box::new(HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default())));
    set.add(Box::new(ExternalKdTree::build(&dev, &pts)));
    set.add(Box::new(LiftedIndex::build(&dev, &pts, LiftedKind::Hs3d)));
    set.add(Box::new(ExternalScan::build(&dev, &pts)));
    set.add(Box::new(ExternalScan3::build(&dev, &pts3)));
    println!("built {} structures over {} 2D + {} 3D points", set.len(), pts.len(), pts3.len());

    // Calibrate: the probe pass fits report and aggregate constants
    // separately (an annotated count costs a different constant per node
    // than a full report — the dual calibration keeps both honest).
    set.calibrate(&lifted_probes(&pts, &pts3, 10));

    // With the canonical probe mix the planner sends disks to the flat
    // scan: one of the probe draws reports nearly the whole dataset, and
    // the per-structure cost model carries no output term, so that outlier
    // inflates the lift's fitted constant past the scan's fixed Θ(n/B).
    let sample_disk = Query::Disk { x: 120, y: -40, r2: 90 * 90, inclusive: true };
    let routed = |set: &IndexSet, q: &Query| -> &'static str {
        let plan = set.plan(std::slice::from_ref(q));
        set.structure(plan.assignments[0].expect("routed")).name()
    };
    println!("\ndisk routing, canonical probes:      {}", routed(&set, &sample_disk));

    // Re-calibrate with probes shaped like the traffic actually served —
    // bounded-radius disks — and the same planner flips the route to the
    // lift. Calibration is a statement about expected traffic, not a
    // property of the structure alone.
    let mut probes = lifted_probes(&pts, &pts3, 10);
    probes.retain(|p| !matches!(p, Query::Disk { .. }));
    probes.extend(
        disk_mixed(&pts, 60, 100, 1234)
            .into_iter()
            .filter(|&(_, _, r2, _)| r2 <= 100 * 100)
            .take(16)
            .map(|(x, y, r2, inclusive)| Query::Disk { x, y, r2, inclusive }),
    );
    set.calibrate(&probes);
    println!("disk routing, bounded-radius probes: {}", routed(&set, &sample_disk));

    // One of each derived class, answered through the planner.
    let samples = [
        Query::Disk { x: 120, y: -40, r2: 90 * 90, inclusive: true },
        Query::Count { m: 2, c: 50, inclusive: true },
        Query::Sum { m: 2, c: 50, inclusive: true },
        Query::TopK { m: 2, c: 50, k: 5 },
    ];
    println!("\nsample answers:");
    for q in &samples {
        let plan = set.plan(std::slice::from_ref(q));
        let routed = set.structure(plan.assignments[0].expect("routed")).name();
        let rep = set.execute_plan(std::slice::from_ref(q), &plan, true);
        let ans = &rep.answers.as_ref().unwrap()[0];
        let shown = match q {
            Query::Disk { .. } => format!("{} points in the disk", ans.len()),
            Query::Count { .. } => format!("count = {}", ans[0]),
            Query::Sum { .. } => format!("sum(x+y) = {}", decode_sum(ans)),
            Query::TopK { .. } => format!("ranked ids {ans:?}"),
            _ => unreachable!(),
        };
        println!("  {:>5} -> {:>9}: {}", class(q), routed, shown);
    }

    // A six-class mixed workload through the same planner: the routing
    // table shows each class landing on its cheapest capable structure.
    let queries = lifted_oracle(&pts, &pts3, (120, 40, 40, 60, 60, 40), 20);
    let plan = set.plan(&queries);
    let mut table: Vec<(String, usize)> = Vec::new();
    for (qi, a) in plan.assignments.iter().enumerate() {
        let key =
            format!("{:>5} -> {}", class(&queries[qi]), set.structure(a.expect("routed")).name());
        match table.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => *n += 1,
            None => table.push((key, 1)),
        }
    }
    table.sort();
    println!("\nplanner routing over {} mixed queries:", queries.len());
    for (route, n) in &table {
        println!("  {route:<20} {n:>4} queries");
    }

    // The lift has a center budget (|x|, |y| ≤ 2^21): beyond it the exact
    // u128 distance arithmetic of the flat scan is the only safe route —
    // supports() says so, and the planner falls back without being asked.
    let far = Query::Disk { x: 1 << 40, y: 0, r2: 1 << 30, inclusive: false };
    let far_plan = set.plan(std::slice::from_ref(&far));
    println!(
        "\nout-of-budget disk center (x = 2^40) routes to: {}",
        set.structure(far_plan.assignments[0].expect("routed")).name()
    );
}
