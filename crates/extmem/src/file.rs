//! Fixed-size records and typed record files.

use crate::device::{DeviceHandle, PageId};
use crate::snapshot::{MetaReader, MetaWriter, SnapshotError};

/// A fixed-size, byte-serializable record.
///
/// Implementations must write exactly [`Record::SIZE`] bytes. All structures
/// in the workspace store plain-old-data records, so the codec is trivial
/// little-endian packing — fast enough that (de)serialization never shows up
/// next to the simulated IO costs being measured.
pub trait Record: Copy {
    /// Encoded size in bytes.
    const SIZE: usize;
    fn store(&self, buf: &mut [u8]);
    fn load(buf: &[u8]) -> Self;
}

macro_rules! int_record {
    ($($t:ty),*) => {$(
        impl Record for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            fn store(&self, buf: &mut [u8]) {
                buf[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
            fn load(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf[..Self::SIZE].try_into().unwrap())
            }
        }
    )*};
}
int_record!(u8, u16, u32, u64, i8, i16, i32, i64, i128, u128);

impl<A: Record, B: Record> Record for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;
    fn store(&self, buf: &mut [u8]) {
        self.0.store(&mut buf[..A::SIZE]);
        self.1.store(&mut buf[A::SIZE..]);
    }
    fn load(buf: &[u8]) -> Self {
        (A::load(&buf[..A::SIZE]), B::load(&buf[A::SIZE..]))
    }
}

impl<A: Record, B: Record, C: Record> Record for (A, B, C) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE;
    fn store(&self, buf: &mut [u8]) {
        self.0.store(&mut buf[..A::SIZE]);
        self.1.store(&mut buf[A::SIZE..A::SIZE + B::SIZE]);
        self.2.store(&mut buf[A::SIZE + B::SIZE..]);
    }
    fn load(buf: &[u8]) -> Self {
        (
            A::load(&buf[..A::SIZE]),
            B::load(&buf[A::SIZE..A::SIZE + B::SIZE]),
            C::load(&buf[A::SIZE + B::SIZE..]),
        )
    }
}

impl<A: Record, B: Record, C: Record, D: Record> Record for (A, B, C, D) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE + D::SIZE;
    fn store(&self, buf: &mut [u8]) {
        self.0.store(&mut buf[..A::SIZE]);
        self.1.store(&mut buf[A::SIZE..A::SIZE + B::SIZE]);
        self.2.store(&mut buf[A::SIZE + B::SIZE..A::SIZE + B::SIZE + C::SIZE]);
        self.3.store(&mut buf[A::SIZE + B::SIZE + C::SIZE..]);
    }
    fn load(buf: &[u8]) -> Self {
        (
            A::load(&buf[..A::SIZE]),
            B::load(&buf[A::SIZE..A::SIZE + B::SIZE]),
            C::load(&buf[A::SIZE + B::SIZE..A::SIZE + B::SIZE + C::SIZE]),
            D::load(&buf[A::SIZE + B::SIZE + C::SIZE..]),
        )
    }
}

impl<const N: usize> Record for [i64; N] {
    const SIZE: usize = 8 * N;
    fn store(&self, buf: &mut [u8]) {
        for (i, v) in self.iter().enumerate() {
            v.store(&mut buf[i * 8..]);
        }
    }
    fn load(buf: &[u8]) -> Self {
        std::array::from_fn(|i| i64::load(&buf[i * 8..]))
    }
}

impl Record for PageId {
    const SIZE: usize = 8;
    fn store(&self, buf: &mut [u8]) {
        self.0.store(buf);
    }
    fn load(buf: &[u8]) -> Self {
        PageId(u64::load(buf))
    }
}

/// An immutable sequence of `T` records packed `B` per page into contiguous
/// pages of a device. Occupies `ceil(len/B)` pages — the paper's notion
/// of storing a list in `ceil(len/B)` blocks. Metadata is three words
/// (first page, length, device handle), mirroring an inode.
pub struct VecFile<T: Record> {
    dev: DeviceHandle,
    first: PageId,
    len: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Record> VecFile<T> {
    /// Build a file from a slice in one pass (pays the write IOs).
    pub fn from_slice(dev: &DeviceHandle, items: &[T]) -> Self {
        let mut b = FileBuilder::new(dev);
        for it in items {
            b.push(*it);
        }
        b.finish()
    }

    /// Build from an iterator with known length.
    pub fn from_iter<I: IntoIterator<Item = T>>(dev: &DeviceHandle, iter: I) -> Self {
        let mut b = FileBuilder::new(dev);
        for it in iter {
            b.push(it);
        }
        b.finish()
    }

    /// An empty file.
    pub fn empty(dev: &DeviceHandle) -> Self {
        VecFile { dev: dev.clone(), first: PageId(u64::MAX), len: 0, _marker: Default::default() }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records per page for this file's record type.
    pub fn per_page(&self) -> usize {
        self.dev.records_per_page(T::SIZE)
    }

    /// Pages occupied.
    pub fn pages(&self) -> usize {
        self.len.div_ceil(self.per_page())
    }

    /// Read one record (one IO unless its page is cached).
    pub fn get(&self, i: usize) -> T {
        assert!(i < self.len, "index {i} out of bounds {}", self.len);
        let per = self.per_page();
        let page = PageId(self.first.0 + (i / per) as u64);
        let off = (i % per) * T::SIZE;
        self.dev.read_page(page, |b| T::load(&b[off..]))
    }

    /// Read `range` into `out`, paying one IO per touched page.
    pub fn read_range(&self, range: std::ops::Range<usize>, out: &mut Vec<T>) {
        assert!(range.end <= self.len, "range out of bounds");
        if range.is_empty() {
            return;
        }
        let per = self.per_page();
        let first_page = range.start / per;
        let last_page = (range.end - 1) / per;
        for p in first_page..=last_page {
            let page = PageId(self.first.0 + p as u64);
            let lo = range.start.max(p * per) - p * per;
            let hi = range.end.min((p + 1) * per) - p * per;
            self.dev.read_page(page, |b| {
                for k in lo..hi {
                    out.push(T::load(&b[k * T::SIZE..]));
                }
            });
        }
    }

    /// Read the records at `sorted_indices` (ascending), paying one IO per
    /// *distinct page* touched instead of one per record.
    pub fn get_many(&self, sorted_indices: &[usize], out: &mut Vec<T>) {
        debug_assert!(sorted_indices.windows(2).all(|w| w[0] <= w[1]), "indices must be sorted");
        let per = self.per_page();
        let mut i = 0;
        while i < sorted_indices.len() {
            let page_no = sorted_indices[i] / per;
            let page = PageId(self.first.0 + page_no as u64);
            self.dev.read_page(page, |b| {
                while i < sorted_indices.len() && sorted_indices[i] / per == page_no {
                    let idx = sorted_indices[i];
                    assert!(idx < self.len, "index {idx} out of bounds {}", self.len);
                    out.push(T::load(&b[(idx % per) * T::SIZE..]));
                    i += 1;
                }
            });
        }
    }

    /// Read the whole file.
    pub fn read_all(&self) -> Vec<T> {
        let mut v = Vec::with_capacity(self.len);
        self.read_range(0..self.len, &mut v);
        v
    }

    /// Iterate page by page, invoking `f` on each record in order. One IO per
    /// page; stops early when `f` returns `false`.
    pub fn scan_while(&self, mut f: impl FnMut(usize, T) -> bool) {
        let per = self.per_page();
        let mut i = 0;
        'outer: while i < self.len {
            let page = PageId(self.first.0 + (i / per) as u64);
            let hi = (i / per * per + per).min(self.len);
            let cont = self.dev.read_page(page, |b| {
                while i < hi {
                    let t = T::load(&b[(i % per) * T::SIZE..]);
                    if !f(i, t) {
                        return false;
                    }
                    i += 1;
                }
                true
            });
            if !cont {
                break 'outer;
            }
        }
    }

    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// The same on-disk file viewed through a different handle scope
    /// (metadata copied, IOs accounted to `h`). The handle must target the
    /// store this file was built on.
    pub fn with_handle(&self, h: &DeviceHandle) -> VecFile<T> {
        assert!(h.same_store(&self.dev), "handle belongs to a different device");
        VecFile { dev: h.clone(), first: self.first, len: self.len, _marker: Default::default() }
    }

    /// Serialize the file's metadata — first page and length; the page
    /// *data* is captured separately by [`crate::Device::freeze_to_path`].
    pub fn save(&self, w: &mut MetaWriter) {
        w.u64(self.first.0);
        w.usize(self.len);
    }

    /// Rebuild from metadata written by [`Self::save`], reading pages
    /// through `dev`. Validates that the record type fits the device's
    /// page size and that the page range lies inside the store, so a
    /// cross-wired metadata/pages pair fails typed instead of panicking.
    pub fn load(dev: &DeviceHandle, r: &mut MetaReader) -> Result<VecFile<T>, SnapshotError> {
        let first = r.u64()?;
        let len = r.usize()?;
        if len == 0 {
            return Ok(VecFile::empty(dev));
        }
        if T::SIZE == 0 || T::SIZE > dev.page_bytes() {
            return Err(r.error(format!(
                "record size {} does not fit the {}-byte pages of this device",
                T::SIZE,
                dev.page_bytes()
            )));
        }
        let pages = len.div_ceil(dev.records_per_page(T::SIZE)) as u64;
        if first.checked_add(pages).is_none_or(|end| end > dev.pages_allocated()) {
            return Err(r.error(format!(
                "page range {first}..{} exceeds the {} allocated pages",
                first as u128 + pages as u128,
                dev.pages_allocated()
            )));
        }
        Ok(VecFile { dev: dev.clone(), first: PageId(first), len, _marker: Default::default() })
    }
}

/// Streaming writer producing a [`VecFile`]. Buffers one page in memory and
/// flushes it with one write IO when full.
pub struct FileBuilder<T: Record> {
    dev: DeviceHandle,
    items: Vec<T>,
}

impl<T: Record> FileBuilder<T> {
    pub fn new(dev: &DeviceHandle) -> Self {
        FileBuilder { dev: dev.clone(), items: Vec::new() }
    }

    pub fn push(&mut self, t: T) {
        self.items.push(t);
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Allocate contiguous pages and write everything out.
    pub fn finish(self) -> VecFile<T> {
        let per = self.dev.records_per_page(T::SIZE);
        let npages = self.items.len().div_ceil(per);
        if npages == 0 {
            return VecFile::empty(&self.dev);
        }
        let first = self.dev.alloc_pages(npages);
        for (p, chunk) in self.items.chunks(per).enumerate() {
            self.dev.write_page(PageId(first.0 + p as u64), |buf| {
                for (k, it) in chunk.iter().enumerate() {
                    it.store(&mut buf[k * T::SIZE..]);
                }
            });
        }
        VecFile { dev: self.dev, first, len: self.items.len(), _marker: Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceConfig};

    fn dev() -> Device {
        Device::new(DeviceConfig::new(64, 0)) // 8 i64s per page
    }

    #[test]
    fn roundtrip_and_page_count() {
        let d = dev();
        let data: Vec<i64> = (0..20).collect();
        let f = VecFile::from_slice(&d, &data);
        assert_eq!(f.len(), 20);
        assert_eq!(f.per_page(), 8);
        assert_eq!(f.pages(), 3);
        assert_eq!(f.read_all(), data);
    }

    #[test]
    fn get_costs_one_io() {
        let d = dev();
        let f = VecFile::from_slice(&d, &(0..100i64).collect::<Vec<_>>());
        d.reset_stats();
        assert_eq!(f.get(63), 63);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn read_range_touches_minimal_pages() {
        let d = dev();
        let f = VecFile::from_slice(&d, &(0..64i64).collect::<Vec<_>>());
        d.reset_stats();
        let mut out = Vec::new();
        f.read_range(6..18, &mut out); // spans pages 0,1,2
        assert_eq!(out, (6..18).collect::<Vec<i64>>());
        assert_eq!(d.stats().reads, 3);
    }

    #[test]
    fn scan_while_stops_early() {
        let d = dev();
        let f = VecFile::from_slice(&d, &(0..64i64).collect::<Vec<_>>());
        d.reset_stats();
        let mut seen = 0;
        f.scan_while(|_, v| {
            seen += 1;
            v < 10
        });
        assert_eq!(seen, 11);
        assert_eq!(d.stats().reads, 2); // pages 0 and 1 only
    }

    #[test]
    fn tuple_records_roundtrip() {
        let d = Device::new(DeviceConfig::new(256, 0));
        let data: Vec<(i64, i32, u16)> = (0..50i32).map(|i| (i as i64, -i, i as u16)).collect();
        let f = VecFile::from_slice(&d, &data);
        assert_eq!(f.read_all(), data);
    }

    #[test]
    fn empty_file() {
        let d = dev();
        let f: VecFile<i64> = VecFile::from_slice(&d, &[]);
        assert!(f.is_empty());
        assert_eq!(f.pages(), 0);
        assert_eq!(f.read_all(), Vec::<i64>::new());
    }
}
