//! # lcrs-extmem — simulated external memory
//!
//! This crate provides the cost model of the paper (Section 1.1): data lives
//! on a "disk" of fixed-size pages, every page access that misses the
//! (optional) internal-memory cache costs one IO, and a page holds `B`
//! records. All data structures in the workspace store their data through
//! [`Device`] so that the IO counts reported by the benchmark harness are
//! exact for the model rather than estimates.
//!
//! Components:
//! * [`Device`] — the simulated disk: page allocation, read/write with IO
//!   accounting, an optional LRU cache of `M/B` pages.
//! * [`Record`] — fixed-size little-endian record codec.
//! * [`VecFile`]/[`FileBuilder`] — a typed sequence of records packed into
//!   contiguous pages (the unit the paper calls "storing a list in
//!   `ceil(len/B)` blocks").
//! * [`btree::BPlusTree`] — an external B+-tree (the paper's 1-D baseline and
//!   a building block for boundary search in Section 3).
//! * [`sort`] — external merge sort.
//! * [`snapshot`] — persistent snapshots of frozen devices: a versioned,
//!   checksummed on-disk format ([`Device::freeze_to_path`] /
//!   [`Device::open_snapshot`]) plus the [`MetaWriter`]/[`MetaReader`]
//!   codec every structure's `save`/`load` pair uses.

pub mod btree;
pub mod device;
pub mod file;
pub mod snapshot;
pub mod sort;
pub mod stats;
#[cfg(unix)]
pub(crate) mod sys;

pub use device::{Device, DeviceConfig, DeviceHandle, PageBackend, PageId, ReopenBackend};
pub use file::{FileBuilder, Record, VecFile};
pub use snapshot::{MetaReader, MetaWriter, SnapshotError, TempDir};
pub use stats::{IoDelta, IoStats};
