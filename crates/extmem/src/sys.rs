//! Minimal unix syscall surface for the mmap page backend (DESIGN.md §13).
//!
//! The build environment is offline, so instead of a `libc` dependency this
//! module declares the three calls the mmap backend needs — `mmap`,
//! `munmap`, `madvise` — directly as `extern "C"` items, plus `sysconf` to
//! learn the system page size for madvise alignment. Everything here is
//! `pub(crate)`: the public API surface is `Device::open_snapshot_as` and
//! `DeviceHandle::prefetch`, never raw pointers.
//!
//! [`Mapping`] is the one abstraction: a read-only, private, whole-file
//! mapping that unmaps on drop. It is `Send + Sync` because the mapped
//! bytes are immutable for the life of the mapping (the snapshot file is
//! written once via atomic rename and never mutated in place by this
//! process; external truncation is the same unrecoverable environment
//! fault as deleting the file under the pread backend).

#![cfg(unix)]

use std::ffi::{c_int, c_void};
use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
    fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    fn sysconf(name: c_int) -> i64;
}

const PROT_READ: c_int = 1;
const MAP_PRIVATE: c_int = 2;
/// `MADV_WILLNEED` — same value on Linux, macOS, and the BSDs.
const MADV_WILLNEED: c_int = 3;
/// `(void *)-1`, the mmap failure sentinel.
const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

#[cfg(target_os = "linux")]
const SC_PAGESIZE: c_int = 30;
#[cfg(target_os = "macos")]
const SC_PAGESIZE: c_int = 29;

/// System page size for madvise address alignment. A wrong answer only
/// degrades the *hint* (madvise rejects unaligned addresses with EINVAL,
/// which we ignore), so unknown platforms just assume 4 KiB.
fn page_size() -> usize {
    #[cfg(any(target_os = "linux", target_os = "macos"))]
    {
        let n = unsafe { sysconf(SC_PAGESIZE) };
        if n > 0 {
            return n as usize;
        }
    }
    4096
}

/// A read-only private mapping of an entire file; unmapped on drop.
pub(crate) struct Mapping {
    ptr: *mut c_void,
    len: usize,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE over a file this process
// never writes; the bytes behind `ptr` are immutable for the mapping's
// lifetime, so shared references from any thread are sound.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Map the first `len` bytes of `file` read-only. `len` must be
    /// non-zero (a zero-length mmap is EINVAL); snapshot files are always
    /// at least one header long.
    pub(crate) fn map_file(file: &File, len: usize) -> io::Result<Mapping> {
        assert!(len > 0, "cannot map an empty file");
        let ptr =
            unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0) };
        if ptr == MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping { ptr, len })
    }

    /// The mapped bytes. Reading a byte may fault the page in — that is
    /// the real-hardware IO the model's `read` counter abstracts.
    pub(crate) fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// `madvise(MADV_WILLNEED)` over `[offset, offset + len)`, clamped to
    /// the mapping and aligned down to the system page size. Purely
    /// advisory: errors are ignored and no caller-observable state changes.
    pub(crate) fn advise_willneed(&self, offset: usize, len: usize) {
        if len == 0 || offset >= self.len {
            return;
        }
        let ps = page_size();
        let start = offset - offset % ps;
        let end = offset.saturating_add(len).min(self.len);
        // SAFETY: [start, end) lies inside the live mapping; madvise does
        // not invalidate any outstanding reference.
        unsafe {
            let _ = madvise(
                self.ptr.cast::<u8>().add(start).cast::<c_void>(),
                end - start,
                MADV_WILLNEED,
            );
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from a successful mmap and are unmapped
        // exactly once.
        unsafe {
            let _ = munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn map_reads_file_bytes_and_unmaps() {
        let dir = crate::snapshot::TempDir::new("lcrs-sys-map");
        let path = dir.file("bytes.bin");
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        File::create(&path).unwrap().write_all(&data).unwrap();
        let f = File::open(&path).unwrap();
        let map = Mapping::map_file(&f, data.len()).unwrap();
        assert_eq!(map.len(), data.len());
        assert_eq!(map.as_slice(), &data[..]);
        // Advice over any subrange (aligned or not) is accepted silently.
        map.advise_willneed(0, data.len());
        map.advise_willneed(4097, 100);
        map.advise_willneed(data.len() - 1, usize::MAX);
        map.advise_willneed(data.len() + 5, 10); // past the end: no-op
        map.advise_willneed(0, 0);
        drop(map);
        // The fd outlives the mapping and the mapping outlives the fd —
        // either order is fine; dropping both here must not disturb the
        // file contents.
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), data);
    }

    #[test]
    fn page_size_is_sane() {
        let ps = page_size();
        assert!(ps >= 512 && ps.is_power_of_two(), "page size {ps}");
    }
}
