//! IO accounting.

/// Cumulative IO counters of a [`crate::Device`].
///
/// `reads`/`writes` count page transfers that actually hit the simulated
/// disk; `cache_hits` counts page accesses absorbed by the internal-memory
/// cache (free in the external-memory model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    pub reads: u64,
    pub writes: u64,
    pub cache_hits: u64,
}

impl IoStats {
    /// Total IOs (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Counter difference `self - earlier`, for scoped measurement.
    pub fn since(&self, earlier: IoStats) -> IoDelta {
        IoDelta {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            cache_hits: self.cache_hits - earlier.cache_hits,
        }
    }
}

/// IOs spent between two [`IoStats`] snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoDelta {
    pub reads: u64,
    pub writes: u64,
    pub cache_hits: u64,
}

impl IoDelta {
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_componentwise() {
        let a = IoStats { reads: 10, writes: 4, cache_hits: 7 };
        let b = IoStats { reads: 25, writes: 9, cache_hits: 7 };
        let d = b.since(a);
        assert_eq!(d, IoDelta { reads: 15, writes: 5, cache_hits: 0 });
        assert_eq!(d.total(), 20);
        assert_eq!(b.total(), 34);
    }
}
