//! IO accounting.

/// Cumulative IO counters of a [`crate::Device`].
///
/// `reads`/`writes` count page transfers that actually hit the simulated
/// disk; `cache_hits` counts page accesses absorbed by the internal-memory
/// cache (free in the external-memory model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    pub reads: u64,
    pub writes: u64,
    pub cache_hits: u64,
}

impl IoStats {
    /// Total IOs (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Counter difference `self - earlier`, for scoped measurement.
    ///
    /// Saturating: if a counter went *backwards* between the snapshots
    /// (only possible when [`crate::DeviceHandle::reset_stats`] ran in between),
    /// that component clamps to 0 instead of panicking in debug builds or
    /// wrapping to ~2^64 in release builds.
    pub fn since(&self, earlier: IoStats) -> IoDelta {
        IoDelta {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
        }
    }
}

/// IOs spent between two [`IoStats`] snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoDelta {
    pub reads: u64,
    pub writes: u64,
    pub cache_hits: u64,
}

impl IoDelta {
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl std::ops::Add for IoDelta {
    type Output = IoDelta;

    fn add(self, rhs: IoDelta) -> IoDelta {
        IoDelta {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            cache_hits: self.cache_hits + rhs.cache_hits,
        }
    }
}

impl std::ops::AddAssign for IoDelta {
    fn add_assign(&mut self, rhs: IoDelta) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for IoDelta {
    fn sum<I: Iterator<Item = IoDelta>>(iter: I) -> IoDelta {
        iter.fold(IoDelta::default(), |acc, d| acc + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_componentwise() {
        let a = IoStats { reads: 10, writes: 4, cache_hits: 7 };
        let b = IoStats { reads: 25, writes: 9, cache_hits: 7 };
        let d = b.since(a);
        assert_eq!(d, IoDelta { reads: 15, writes: 5, cache_hits: 0 });
        assert_eq!(d.total(), 20);
        assert_eq!(b.total(), 34);
    }

    #[test]
    fn delta_arithmetic_is_componentwise() {
        let a = IoDelta { reads: 3, writes: 1, cache_hits: 9 };
        let b = IoDelta { reads: 10, writes: 0, cache_hits: 1 };
        assert_eq!(a + b, IoDelta { reads: 13, writes: 1, cache_hits: 10 });
        let mut acc = IoDelta::default();
        acc += a;
        acc += b;
        assert_eq!(acc, a + b);
        assert_eq!([a, b, a].into_iter().sum::<IoDelta>(), a + b + a);
    }

    #[test]
    fn since_saturates_after_reset() {
        // Regression: a reset_stats() between the two snapshots makes the
        // later counters smaller than the earlier ones; the delta must
        // clamp to zero, not underflow.
        let before = IoStats { reads: 100, writes: 40, cache_hits: 9 };
        let after_reset = IoStats { reads: 3, writes: 0, cache_hits: 12 };
        let d = after_reset.since(before);
        assert_eq!(d, IoDelta { reads: 0, writes: 0, cache_hits: 3 });
        assert_eq!(d.total(), 0);
    }
}
