//! Persistent snapshots of frozen devices (DESIGN.md §9).
//!
//! A [`crate::Device::freeze`]d page store is one serialization step away
//! from a real on-disk, reopen-read-only backend: the pages are immutable,
//! so a snapshot is a header (magic, format version, page geometry,
//! checksums) followed by the raw page bytes. This module owns that
//! format plus the small envelope used for *structure metadata* (roots,
//! fanouts, partition tables — everything a structure keeps host-side):
//!
//! * [`SnapshotFile`] — an opened, fully *validated* page snapshot;
//!   [`crate::Device::open_snapshot`] wraps one as a file-backed
//!   [`crate::device::PageBackend::File`] store.
//! * [`MetaWriter`]/[`MetaReader`] — a tiny tagged little-endian codec
//!   with a checksummed envelope, used by every structure's
//!   `save`/`load` pair and by the engine's `SnapshotCatalog`.
//! * [`SnapshotError`] — the typed error surface: corruption (truncation,
//!   bit flips, wrong magic, future versions) is always reported with the
//!   failing offset, never a panic.
//! * [`TempDir`] — a self-cleaning scratch directory so snapshot tests and
//!   benches never write outside the system temp dir, and clean up even
//!   when a test panics.
//!
//! All integers are little-endian. Checksums are 64-bit FNV-1a — not
//! cryptographic, but a deterministic, dependency-free detector for the
//! corruption classes the test matrix pins (truncated files, flipped
//! bytes in header, page body, or checksum table).

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening a page snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"LCRSSNAP";
/// Magic bytes opening a metadata envelope.
pub const META_MAGIC: [u8; 8] = *b"LCRSMETA";
/// Current format version of both file kinds. Readers reject anything
/// newer; older versions would be migrated here once they exist.
pub const FORMAT_VERSION: u32 = 1;

// Page-snapshot header layout (all offsets in bytes, little-endian):
//   0  magic            [u8; 8]   "LCRSSNAP"
//   8  format version   u32
//  12  page size        u32       bytes per page
//  16  page count       u64
//  24  table checksum   u64       FNV-1a of the per-page checksum table
//  32  header checksum  u64       FNV-1a of bytes 0..32
//  40  checksum table   page_count × u64 (FNV-1a of each page)
//  40 + 8·pc  pages     page_count × page_size raw bytes
const OFF_VERSION: u64 = 8;
const OFF_PAGE_BYTES: u64 = 12;
const OFF_TABLE_CHECKSUM: u64 = 24;
const OFF_HEADER_CHECKSUM: u64 = 32;
const HEADER_LEN: u64 = 40;

// Metadata envelope layout:
//   0  magic            [u8; 8]   "LCRSMETA"
//   8  format version   u32
//  12  payload length   u64
//  20  payload          tagged values ([`MetaWriter`])
//  20 + len  checksum   u64       FNV-1a of bytes 0..20+len
const META_HEADER_LEN: u64 = 20;

// Value tags of the metadata codec. Every value is tagged so a wrong-order
// or wrong-kind load fails with a typed error instead of decoding garbage.
const TAG_U64: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_BYTES: u8 = 3;
const TAG_SEQ: u8 = 4;
const TAG_OPT: u8 = 5;

/// 64-bit FNV-1a over `bytes` — the checksum of every snapshot artifact.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything that can go wrong opening, reading, or decoding a snapshot.
///
/// Corruption is always a typed error carrying the failing file offset —
/// the load path never panics on bad bytes (pinned by the corruption
/// matrix in `tests/snapshot_corruption.rs`).
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// An underlying filesystem error.
    Io(io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic { offset: u64, found: [u8; 8], expected: [u8; 8] },
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion { offset: u64, found: u32, supported: u32 },
    /// A header- or envelope-level checksum did not match.
    ChecksumMismatch { offset: u64, what: &'static str, expected: u64, actual: u64 },
    /// One page's body does not match its recorded checksum; `offset` is
    /// where that page starts in the file.
    PageChecksum { page: u64, offset: u64, expected: u64, actual: u64 },
    /// The file is shorter (or longer) than its header declares; `offset`
    /// is where the usable data ends.
    Truncated { offset: u64, expected: u64, actual: u64 },
    /// A header field holds a value that cannot describe a valid snapshot.
    InvalidField { offset: u64, what: &'static str, value: u64 },
    /// Serialization was requested on a device still in its build phase.
    NotFrozen,
    /// Structure metadata failed to decode at `offset` into the file.
    Meta { offset: u64, detail: String },
    /// A catalog label is empty, too long, or not `[A-Za-z0-9_-]`.
    InvalidLabel { label: String },
    /// A catalog label starts with the prefix reserved for engine-internal
    /// files (manifests, calibration data) living in the same directory.
    ReservedLabel { label: String, prefix: &'static str },
    /// A catalog already holds an entry with this label.
    DuplicateEntry { label: String },
    /// A catalog holds no entry with this label.
    NoSuchEntry { label: String },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot IO error: {e}"),
            SnapshotError::BadMagic { offset, found, expected } => {
                write!(f, "bad magic at offset {offset}: found {found:?}, expected {expected:?}")
            }
            SnapshotError::UnsupportedVersion { offset, found, supported } => write!(
                f,
                "unsupported format version {found} at offset {offset} (this reader supports \
                 up to {supported})"
            ),
            SnapshotError::ChecksumMismatch { offset, what, expected, actual } => write!(
                f,
                "{what} checksum mismatch at offset {offset}: expected {expected:#018x}, \
                 found {actual:#018x}"
            ),
            SnapshotError::PageChecksum { page, offset, expected, actual } => write!(
                f,
                "page {page} corrupt at offset {offset}: checksum expected {expected:#018x}, \
                 found {actual:#018x}"
            ),
            SnapshotError::Truncated { offset, expected, actual } => write!(
                f,
                "file length mismatch: expected {expected} bytes, found {actual} (data ends \
                 at offset {offset})"
            ),
            SnapshotError::InvalidField { offset, what, value } => {
                write!(f, "invalid {what} {value} at offset {offset}")
            }
            SnapshotError::NotFrozen => {
                write!(f, "device is not frozen (freeze() must end the build phase first)")
            }
            SnapshotError::Meta { offset, detail } => {
                write!(f, "metadata error at offset {offset}: {detail}")
            }
            SnapshotError::InvalidLabel { label } => write!(
                f,
                "invalid catalog label {label:?} (1..=64 chars of [A-Za-z0-9_-] required)"
            ),
            SnapshotError::ReservedLabel { label, prefix } => write!(
                f,
                "catalog label {label:?} uses the prefix {prefix:?} reserved for \
                 engine-internal files"
            ),
            SnapshotError::DuplicateEntry { label } => {
                write!(f, "catalog already holds an entry labeled {label:?}")
            }
            SnapshotError::NoSuchEntry { label } => {
                write!(f, "catalog holds no entry labeled {label:?}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Write a page snapshot to `path`: header + per-page checksum table +
/// raw pages, then an atomic rename from a `.tmp` sibling so a crash never
/// leaves a half-written file under the final name. `page` must fill the
/// buffer with the bytes of the page at the given index.
pub(crate) fn write_snapshot(
    path: &Path,
    page_bytes: usize,
    page_count: u64,
    mut page: impl FnMut(u64, &mut [u8]),
) -> Result<(), SnapshotError> {
    let page_bytes_u32 = u32::try_from(page_bytes).map_err(|_| SnapshotError::InvalidField {
        offset: OFF_PAGE_BYTES,
        what: "page size",
        value: page_bytes as u64,
    })?;
    let file_name = path.file_name().ok_or_else(|| {
        SnapshotError::Io(io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))
    })?;
    let tmp = path.with_file_name(format!("{}.tmp", file_name.to_string_lossy()));
    let mut f = File::create(&tmp)?;

    // Reserve header + table, stream the pages while computing checksums,
    // then seek back and fill the reserved region in.
    let table_len = 8 * page_count;
    f.seek(SeekFrom::Start(HEADER_LEN + table_len))?;
    let mut buf = vec![0u8; page_bytes];
    let mut table = Vec::with_capacity(page_count as usize);
    for i in 0..page_count {
        page(i, &mut buf);
        table.push(fnv1a64(&buf));
        f.write_all(&buf)?;
    }

    let mut table_bytes = Vec::with_capacity(table_len as usize);
    for sum in &table {
        table_bytes.extend_from_slice(&sum.to_le_bytes());
    }
    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(&SNAPSHOT_MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&page_bytes_u32.to_le_bytes());
    header.extend_from_slice(&page_count.to_le_bytes());
    header.extend_from_slice(&fnv1a64(&table_bytes).to_le_bytes());
    let header_checksum = fnv1a64(&header);
    header.extend_from_slice(&header_checksum.to_le_bytes());
    debug_assert_eq!(header.len() as u64, HEADER_LEN);
    f.seek(SeekFrom::Start(0))?;
    f.write_all(&header)?;
    f.write_all(&table_bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// An opened, fully validated page snapshot.
///
/// [`SnapshotFile::open`] reads the whole file once, verifying the header,
/// the checksum table, every page body, and the exact file length; any
/// mismatch is a typed [`SnapshotError`] with the failing offset. After
/// open, page reads are positional (`pread`) against the validated file —
/// no locks, so a file-backed store stays `Send + Sync` and lock-free
/// exactly like an in-memory frozen one.
pub struct SnapshotFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
    page_bytes: usize,
    page_count: u64,
    data_offset: u64,
    path: PathBuf,
}

impl SnapshotFile {
    /// Open and validate the snapshot at `path`.
    pub fn open(path: &Path) -> Result<SnapshotFile, SnapshotError> {
        let mut f = File::open(path)?;
        let actual_len = f.metadata()?.len();
        if actual_len < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                offset: actual_len,
                expected: HEADER_LEN,
                actual: actual_len,
            });
        }
        let mut header = [0u8; HEADER_LEN as usize];
        f.read_exact(&mut header)?;
        if header[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic {
                offset: 0,
                found: header[..8].try_into().unwrap(),
                expected: SNAPSHOT_MAGIC,
            });
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version > FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                offset: OFF_VERSION,
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let stored_header_sum = u64::from_le_bytes(header[32..40].try_into().unwrap());
        let computed_header_sum = fnv1a64(&header[..32]);
        if stored_header_sum != computed_header_sum {
            return Err(SnapshotError::ChecksumMismatch {
                offset: OFF_HEADER_CHECKSUM,
                what: "header",
                expected: stored_header_sum,
                actual: computed_header_sum,
            });
        }
        let page_bytes = u32::from_le_bytes(header[12..16].try_into().unwrap());
        if page_bytes == 0 {
            return Err(SnapshotError::InvalidField {
                offset: OFF_PAGE_BYTES,
                what: "page size",
                value: 0,
            });
        }
        let page_count = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let stored_table_sum = u64::from_le_bytes(header[24..32].try_into().unwrap());

        let table_len = page_count.checked_mul(8).ok_or(SnapshotError::InvalidField {
            offset: 16,
            what: "page count",
            value: page_count,
        })?;
        let data_offset = HEADER_LEN + table_len;
        let expected_len = page_count
            .checked_mul(page_bytes as u64)
            .and_then(|d| d.checked_add(data_offset))
            .ok_or(SnapshotError::InvalidField {
                offset: 16,
                what: "page count",
                value: page_count,
            })?;
        if actual_len != expected_len {
            return Err(SnapshotError::Truncated {
                offset: actual_len.min(expected_len),
                expected: expected_len,
                actual: actual_len,
            });
        }

        let mut table_bytes = vec![0u8; table_len as usize];
        f.read_exact(&mut table_bytes)?;
        let computed_table_sum = fnv1a64(&table_bytes);
        if stored_table_sum != computed_table_sum {
            return Err(SnapshotError::ChecksumMismatch {
                offset: OFF_TABLE_CHECKSUM,
                what: "page-checksum table",
                expected: stored_table_sum,
                actual: computed_table_sum,
            });
        }

        // Verify every page body once, up front: after open, reads can
        // trust the file without re-hashing on the hot path.
        let mut buf = vec![0u8; page_bytes as usize];
        for i in 0..page_count {
            f.read_exact(&mut buf)?;
            let expected =
                u64::from_le_bytes(table_bytes[i as usize * 8..][..8].try_into().unwrap());
            let actual = fnv1a64(&buf);
            if expected != actual {
                return Err(SnapshotError::PageChecksum {
                    page: i,
                    offset: data_offset + i * page_bytes as u64,
                    expected,
                    actual,
                });
            }
        }

        Ok(SnapshotFile {
            #[cfg(unix)]
            file: f,
            #[cfg(not(unix))]
            file: std::sync::Mutex::new(f),
            page_bytes: page_bytes as usize,
            page_count,
            data_offset,
            path: path.to_path_buf(),
        })
    }

    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// Read page `idx` into `buf` (positional read; no seek, no lock on
    /// unix). The content was checksum-verified at open, so a read failure
    /// here is an environment error (file deleted, device gone) and
    /// panics like any other unrecoverable IO fault in the cost model.
    pub fn read_page_into(&self, idx: u64, buf: &mut [u8]) {
        assert!(idx < self.page_count, "page {idx} out of range {}", self.page_count);
        assert_eq!(buf.len(), self.page_bytes);
        let offset = self.data_offset + idx * self.page_bytes as u64;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file
                .read_exact_at(buf, offset)
                .unwrap_or_else(|e| panic!("snapshot {:?}: read of page {idx}: {e}", self.path));
        }
        #[cfg(not(unix))]
        {
            let mut f = self.file.lock().unwrap();
            f.seek(SeekFrom::Start(offset))
                .and_then(|_| f.read_exact(buf))
                .unwrap_or_else(|e| panic!("snapshot {:?}: read of page {idx}: {e}", self.path));
        }
    }
}

/// A fully validated page snapshot exposed as one read-only memory
/// mapping — the zero-copy backend behind
/// [`crate::device::PageBackend::Mmap`] (DESIGN.md §13).
///
/// Construction goes through [`SnapshotFile::open`] first, so the header,
/// checksum table, every page body, and the exact file length are verified
/// by *the same code path* as the pread backend — corruption surfaces as
/// the identical typed [`SnapshotError`] no matter which backend was
/// requested (pinned by the corruption matrix). After that, a page read is
/// a pointer offset into the mapping: no syscall, no copy, no per-thread
/// buffer.
#[cfg(unix)]
pub struct MappedSnapshot {
    map: crate::sys::Mapping,
    page_bytes: usize,
    page_count: u64,
    data_offset: usize,
}

#[cfg(unix)]
impl MappedSnapshot {
    /// Map a snapshot that [`SnapshotFile::open`] already validated. The
    /// file descriptor is closed on return; the mapping keeps the pages
    /// reachable.
    pub(crate) fn from_snapshot_file(sf: SnapshotFile) -> Result<MappedSnapshot, SnapshotError> {
        // Validated at open: the file length is exactly header + table +
        // pages, and at least one header, so the whole-file mapping is
        // never empty and every page slice below is in bounds.
        let len = sf.data_offset + sf.page_count * sf.page_bytes as u64;
        let map = crate::sys::Mapping::map_file(&sf.file, len as usize)?;
        debug_assert_eq!(map.len() as u64, len);
        Ok(MappedSnapshot {
            map,
            page_bytes: sf.page_bytes,
            page_count: sf.page_count,
            data_offset: sf.data_offset as usize,
        })
    }

    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// The bytes of page `idx` — a borrow straight out of the mapping.
    pub fn page(&self, idx: u64) -> &[u8] {
        assert!(idx < self.page_count, "page {idx} out of range {}", self.page_count);
        let start = self.data_offset + idx as usize * self.page_bytes;
        &self.map.as_slice()[start..start + self.page_bytes]
    }

    /// Advise the kernel that `count` pages starting at `first` will be
    /// read soon (`madvise(MADV_WILLNEED)`). Out-of-range ranges are
    /// clamped; purely advisory, never an error, never model IO.
    pub fn advise_pages(&self, first: u64, count: u64) {
        if first >= self.page_count || count == 0 {
            return;
        }
        let n = count.min(self.page_count - first);
        self.map.advise_willneed(
            self.data_offset + first as usize * self.page_bytes,
            n as usize * self.page_bytes,
        );
    }
}

/// Builder for a structure-metadata payload: a flat stream of *tagged*
/// little-endian values wrapped in a checksummed envelope. The tag makes
/// a mis-ordered or wrong-kind load fail typed instead of decoding
/// garbage; the envelope checksum catches flipped bytes.
#[derive(Default)]
pub struct MetaWriter {
    buf: Vec<u8>,
}

impl MetaWriter {
    pub fn new() -> MetaWriter {
        MetaWriter { buf: Vec::new() }
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.push(TAG_U64);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.push(TAG_I64);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn u32(&mut self, v: u32) {
        self.u64(u64::from(v));
    }

    pub fn bool(&mut self, v: bool) {
        self.u64(u64::from(v));
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.push(TAG_BYTES);
        self.buf.extend_from_slice(&(b.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(b);
    }

    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Open a sequence of `len` elements; the caller then writes exactly
    /// `len` of them.
    pub fn seq(&mut self, len: usize) {
        self.buf.push(TAG_SEQ);
        self.buf.extend_from_slice(&(len as u64).to_le_bytes());
    }

    /// Presence marker for an optional value; written before the value
    /// itself when `some`.
    pub fn opt(&mut self, some: bool) {
        self.buf.push(TAG_OPT);
        self.buf.push(u8::from(some));
    }

    /// Seal the payload into its envelope (magic, version, length,
    /// trailing checksum) and return the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(META_HEADER_LEN as usize + self.buf.len() + 8);
        out.extend_from_slice(&META_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.buf);
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// [`Self::into_bytes`] written to `path` via sync + atomic rename, so
    /// a crash never leaves a half-written envelope under the final name
    /// (same durability contract as the page-snapshot writer).
    pub fn write_to_path(self, path: &Path) -> Result<(), SnapshotError> {
        let bytes = self.into_bytes();
        let file_name = path.file_name().ok_or_else(|| {
            SnapshotError::Io(io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))
        })?;
        let tmp = path.with_file_name(format!("{}.tmp", file_name.to_string_lossy()));
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

/// Reader for a [`MetaWriter`] envelope. Construction validates magic,
/// version, declared length, and the trailing checksum; the typed reads
/// then validate tags, so every decode failure is a [`SnapshotError`]
/// carrying the offset it happened at.
pub struct MetaReader {
    buf: Vec<u8>,
    pos: usize,
    payload_end: usize,
}

impl MetaReader {
    pub fn from_bytes(buf: Vec<u8>) -> Result<MetaReader, SnapshotError> {
        let min = META_HEADER_LEN + 8;
        if (buf.len() as u64) < min {
            return Err(SnapshotError::Truncated {
                offset: buf.len() as u64,
                expected: min,
                actual: buf.len() as u64,
            });
        }
        if buf[..8] != META_MAGIC {
            return Err(SnapshotError::BadMagic {
                offset: 0,
                found: buf[..8].try_into().unwrap(),
                expected: META_MAGIC,
            });
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version > FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                offset: OFF_VERSION,
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let payload_len = u64::from_le_bytes(buf[12..20].try_into().unwrap());
        let expected_len = payload_len.checked_add(min).ok_or(SnapshotError::InvalidField {
            offset: 12,
            what: "payload length",
            value: payload_len,
        })?;
        if buf.len() as u64 != expected_len {
            return Err(SnapshotError::Truncated {
                offset: (buf.len() as u64).min(expected_len),
                expected: expected_len,
                actual: buf.len() as u64,
            });
        }
        let payload_end = META_HEADER_LEN as usize + payload_len as usize;
        let stored = u64::from_le_bytes(buf[payload_end..][..8].try_into().unwrap());
        let actual = fnv1a64(&buf[..payload_end]);
        if stored != actual {
            return Err(SnapshotError::ChecksumMismatch {
                offset: payload_end as u64,
                what: "metadata envelope",
                expected: stored,
                actual,
            });
        }
        Ok(MetaReader { buf, pos: META_HEADER_LEN as usize, payload_end })
    }

    pub fn open(path: &Path) -> Result<MetaReader, SnapshotError> {
        MetaReader::from_bytes(std::fs::read(path)?)
    }

    /// A typed decode error at the current position — also the hook
    /// structure `load`s use to report semantic validation failures
    /// (out-of-range page ids, impossible field combinations).
    pub fn error(&self, detail: impl Into<String>) -> SnapshotError {
        SnapshotError::Meta { offset: self.pos as u64, detail: detail.into() }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], SnapshotError> {
        if self.payload_end - self.pos < n {
            return Err(self.error(format!(
                "unexpected end of payload reading {what} ({n} bytes needed, {} left)",
                self.payload_end - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn tag(&mut self, want: u8, what: &'static str) -> Result<(), SnapshotError> {
        let at = self.pos;
        let got = self.take(1, what)?[0];
        if got != want {
            return Err(SnapshotError::Meta {
                offset: at as u64,
                detail: format!("expected {what} (tag {want}), found tag {got}"),
            });
        }
        Ok(())
    }

    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        self.tag(TAG_U64, "u64")?;
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        self.tag(TAG_I64, "i64")?;
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.error(format!("value {v} exceeds usize")))
    }

    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| self.error(format!("value {v} exceeds u32")))
    }

    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(self.error(format!("boolean out of range: {v}"))),
        }
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        self.tag(TAG_BYTES, "bytes")?;
        let len = u64::from_le_bytes(self.take(8, "byte length")?.try_into().unwrap());
        let len = usize::try_from(len).map_err(|_| self.error("byte length exceeds usize"))?;
        Ok(self.take(len, "byte body")?.to_vec())
    }

    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let at = self.pos;
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|_| SnapshotError::Meta {
            offset: at as u64,
            detail: "string is not valid UTF-8".to_string(),
        })
    }

    /// Element count of a sequence; the caller then reads exactly that
    /// many elements. Counts that could not possibly fit in the remaining
    /// payload (every element is at least one tag byte) are rejected.
    pub fn seq(&mut self) -> Result<usize, SnapshotError> {
        self.tag(TAG_SEQ, "sequence")?;
        let len = u64::from_le_bytes(self.take(8, "sequence length")?.try_into().unwrap());
        let remaining = (self.payload_end - self.pos) as u64;
        if len > remaining {
            return Err(self.error(format!(
                "sequence of {len} elements cannot fit in {remaining} remaining payload bytes"
            )));
        }
        Ok(len as usize)
    }

    /// Presence marker written by [`MetaWriter::opt`].
    pub fn opt(&mut self) -> Result<bool, SnapshotError> {
        self.tag(TAG_OPT, "option")?;
        match self.take(1, "option marker")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(self.error(format!("option marker out of range: {v}"))),
        }
    }

    /// Assert the payload was fully consumed (catches truncated saves and
    /// loads that used the wrong structure kind but happened to parse).
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.pos != self.payload_end {
            return Err(SnapshotError::Meta {
                offset: self.pos as u64,
                detail: format!(
                    "{} bytes of trailing payload after the last value",
                    self.payload_end - self.pos
                ),
            });
        }
        Ok(())
    }
}

/// A scratch directory under the system temp dir that removes itself on
/// drop — including panic unwinds, so snapshot tests never leak files.
/// Uniqueness comes from the process id, a process-wide counter, and a
/// clock sample, so concurrent test binaries cannot collide.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub fn new(prefix: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{}-{nanos}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::SeqCst),
        ));
        std::fs::create_dir_all(&path).expect("create scratch directory");
        TempDir { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for `name` inside the scratch directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Reference values of FNV-1a 64 — the on-disk format depends on
        // these never changing.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn meta_roundtrip_all_kinds() {
        let mut w = MetaWriter::new();
        w.u64(42);
        w.i64(-7);
        w.usize(123456);
        w.u32(9);
        w.bool(true);
        w.bool(false);
        w.str("hello");
        w.bytes(&[1, 2, 3]);
        w.seq(2);
        w.u64(10);
        w.u64(11);
        w.opt(true);
        w.i64(5);
        w.opt(false);
        let mut r = MetaReader::from_bytes(w.into_bytes()).unwrap();
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.i64().unwrap(), -7);
        assert_eq!(r.usize().unwrap(), 123456);
        assert_eq!(r.u32().unwrap(), 9);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.seq().unwrap(), 2);
        assert_eq!(r.u64().unwrap(), 10);
        assert_eq!(r.u64().unwrap(), 11);
        assert!(r.opt().unwrap());
        assert_eq!(r.i64().unwrap(), 5);
        assert!(!r.opt().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn meta_tag_mismatch_is_typed() {
        let mut w = MetaWriter::new();
        w.u64(1);
        let mut r = MetaReader::from_bytes(w.into_bytes()).unwrap();
        match r.i64() {
            Err(SnapshotError::Meta { offset, .. }) => assert_eq!(offset, META_HEADER_LEN),
            other => panic!("expected a Meta error, got {other:?}"),
        }
    }

    #[test]
    fn meta_envelope_rejects_flip_truncation_magic_version() {
        let mut w = MetaWriter::new();
        w.u64(77);
        w.str("payload");
        let good = w.into_bytes();
        assert!(MetaReader::from_bytes(good.clone()).is_ok());

        let mut flipped = good.clone();
        let mid = META_HEADER_LEN as usize + 3;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            MetaReader::from_bytes(flipped),
            Err(SnapshotError::ChecksumMismatch { what: "metadata envelope", .. })
        ));

        let truncated = good[..good.len() - 5].to_vec();
        assert!(matches!(MetaReader::from_bytes(truncated), Err(SnapshotError::Truncated { .. })));

        let mut magic = good.clone();
        magic[0] = b'X';
        assert!(matches!(
            MetaReader::from_bytes(magic),
            Err(SnapshotError::BadMagic { offset: 0, .. })
        ));

        let mut future = good.clone();
        future[8] = (FORMAT_VERSION + 1) as u8;
        assert!(matches!(
            MetaReader::from_bytes(future),
            Err(SnapshotError::UnsupportedVersion { found, .. }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn meta_finish_catches_trailing_values() {
        let mut w = MetaWriter::new();
        w.u64(1);
        w.u64(2);
        let mut r = MetaReader::from_bytes(w.into_bytes()).unwrap();
        assert_eq!(r.u64().unwrap(), 1);
        assert!(matches!(r.finish(), Err(SnapshotError::Meta { .. })));
    }

    #[test]
    fn meta_seq_rejects_impossible_counts() {
        // A sequence claiming more elements than the payload has bytes.
        let mut w = MetaWriter::new();
        w.seq(3);
        w.u64(1); // only one element follows
        let bytes = w.into_bytes();
        // Craft: rewrite the count to a huge value and re-checksum.
        let mut bad = bytes.clone();
        let count_at = META_HEADER_LEN as usize + 1;
        bad[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let payload_end = bad.len() - 8;
        let sum = fnv1a64(&bad[..payload_end]);
        bad[payload_end..].copy_from_slice(&sum.to_le_bytes());
        let mut r = MetaReader::from_bytes(bad).unwrap();
        assert!(matches!(r.seq(), Err(SnapshotError::Meta { .. })));
    }

    #[test]
    fn tempdir_cleans_up() {
        let dir = TempDir::new("lcrs-snapshot-selftest");
        let p = dir.path().to_path_buf();
        std::fs::write(dir.file("x"), b"y").unwrap();
        assert!(p.exists());
        drop(dir);
        assert!(!p.exists());
    }

    #[test]
    fn snapshot_write_open_roundtrip() {
        let dir = TempDir::new("lcrs-snapfile");
        let path = dir.file("pages.snap");
        let pages: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 64]).collect();
        write_snapshot(&path, 64, 5, |i, buf| buf.copy_from_slice(&pages[i as usize])).unwrap();
        let sf = SnapshotFile::open(&path).unwrap();
        assert_eq!(sf.page_bytes(), 64);
        assert_eq!(sf.page_count(), 5);
        let mut buf = vec![0u8; 64];
        for i in 0..5u64 {
            sf.read_page_into(i, &mut buf);
            assert_eq!(buf, pages[i as usize]);
        }
        // No stray .tmp sibling after the atomic rename.
        assert!(!dir.file("pages.snap.tmp").exists());
    }

    #[test]
    fn snapshot_zero_pages() {
        let dir = TempDir::new("lcrs-snapfile-empty");
        let path = dir.file("empty.snap");
        write_snapshot(&path, 128, 0, |_, _| unreachable!()).unwrap();
        let sf = SnapshotFile::open(&path).unwrap();
        assert_eq!(sf.page_count(), 0);
        assert_eq!(sf.page_bytes(), 128);
    }
}
