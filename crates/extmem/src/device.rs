//! The simulated disk.
//!
//! Storage is split into a *build phase* and a *read phase* (DESIGN.md §8):
//! a [`Device`] starts mutable — structures allocate and write pages through
//! it, serialized by a store-level mutex — and [`Device::freeze`] ends that
//! phase by moving the pages into an immutable `PageSource` that is read
//! without any lock. Cache state and [`IoStats`] do not live in the store at
//! all: they belong to [`DeviceHandle`] scopes, so concurrent readers each
//! get their own LRU and exact, deterministic IO attribution.
//!
//! A frozen store can also live on a real disk (DESIGN.md §9):
//! [`Device::freeze_to_path`] serializes the frozen pages into a versioned,
//! checksummed snapshot file, and [`Device::open_snapshot`] reopens one as a
//! read-only, file-backed store — same handles, same fork semantics, same
//! IO accounting, so an index built once can serve queries from any number
//! of later processes without rebuilding.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

#[cfg(unix)]
use crate::snapshot::MappedSnapshot;
use crate::snapshot::{write_snapshot, SnapshotError, SnapshotFile};
use crate::stats::IoStats;

/// Identifier of a disk page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Configuration of a [`Device`].
#[derive(Debug, Clone, Copy)]
pub struct DeviceConfig {
    /// Page size in bytes; `B` for a record type is `page_bytes / SIZE`.
    pub page_bytes: usize,
    /// Number of pages the internal-memory cache may hold (the `M/B` of the
    /// external-memory model). `0` disables caching, so *every* page access
    /// counts as an IO — the setting used for query measurements. The
    /// budget applies to each [`DeviceHandle`] scope separately.
    pub cache_pages: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig { page_bytes: 4096, cache_pages: 0 }
    }
}

impl DeviceConfig {
    /// Convenience constructor.
    pub fn new(page_bytes: usize, cache_pages: usize) -> Self {
        DeviceConfig { page_bytes, cache_pages }
    }
}

/// Per-thread pool of page buffers for the pread backend. A stack (not a
/// single slot): a page closure that nests another frozen read — allowed
/// after freeze — pops a *second* buffer instead of degrading to a fresh
/// heap allocation per access, and both go back for reuse. The pool holds
/// at most `PAGE_BUF_POOL_CAP` buffers, so steady state allocates exactly
/// once per nesting depth per thread (pinned by regression test).
const PAGE_BUF_POOL_CAP: usize = 8;
thread_local! {
    static PAGE_BUF_POOL: std::cell::RefCell<Vec<Vec<u8>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

#[cfg(test)]
fn page_buf_pool_len() -> usize {
    PAGE_BUF_POOL.with(|pool| pool.borrow().len())
}

/// Where a frozen store's page data lives: the build-phase vector moved in
/// place ([`Device::freeze`]), a validated snapshot file read positionally
/// ([`ReopenBackend::Pread`]), or the same file memory-mapped once
/// ([`ReopenBackend::Mmap`]). All are immutable and read without a lock,
/// so the choice of backend never changes `Send + Sync` reads, fork
/// semantics, or IO accounting — only where the bytes come from.
enum PageSource {
    Memory(Vec<Box<[u8]>>),
    File(SnapshotFile),
    #[cfg(unix)]
    Mmap(MappedSnapshot),
}

impl PageSource {
    fn with_page<R>(
        &self,
        page_bytes: usize,
        id: PageId,
        op: &str,
        f: impl FnOnce(&[u8]) -> R,
    ) -> R {
        match self {
            PageSource::Memory(pages) => f(Store::page(pages, id, op)),
            PageSource::File(sf) => {
                assert!(id.0 < sf.page_count(), "{op} of unallocated page {id:?}");
                // Reuse a pooled buffer: file-backed page access is one
                // pread, not one heap allocation + one pread. The borrow
                // on the pool is released while `f` runs, so nested
                // frozen reads pop further buffers (see PAGE_BUF_POOL).
                let mut buf =
                    PAGE_BUF_POOL.with(|pool| pool.borrow_mut().pop()).unwrap_or_default();
                buf.resize(page_bytes, 0);
                sf.read_page_into(id.0, &mut buf);
                let r = f(&buf);
                PAGE_BUF_POOL.with(|pool| {
                    let mut pool = pool.borrow_mut();
                    if pool.len() < PAGE_BUF_POOL_CAP {
                        pool.push(buf);
                    }
                });
                r
            }
            // Zero-copy: the page is a slice of the validated mapping —
            // no syscall, no checksum pass, no buffer shuffle.
            #[cfg(unix)]
            PageSource::Mmap(m) => {
                assert!(id.0 < m.page_count(), "{op} of unallocated page {id:?}");
                f(m.page(id.0))
            }
        }
    }

    fn page_count(&self) -> u64 {
        match self {
            PageSource::Memory(pages) => pages.len() as u64,
            PageSource::File(sf) => sf.page_count(),
            #[cfg(unix)]
            PageSource::Mmap(m) => m.page_count(),
        }
    }

    /// Advisory readahead over `count` pages starting at `first`: kernel
    /// `madvise(MADV_WILLNEED)` on the mmap backend, a sequential warm
    /// read into a scratch buffer on the pread backend (heats the OS page
    /// cache the preads will hit), nothing on the memory backend. Clamped
    /// to the store; never a panic, never an error.
    fn prefetch(&self, page_bytes: usize, first: PageId, count: u64) {
        match self {
            PageSource::Memory(_) => {}
            PageSource::File(sf) => {
                let lo = first.0.min(sf.page_count());
                let hi = first.0.saturating_add(count).min(sf.page_count());
                if lo >= hi {
                    return;
                }
                let mut buf = vec![0u8; page_bytes];
                for i in lo..hi {
                    sf.read_page_into(i, &mut buf);
                }
            }
            #[cfg(unix)]
            PageSource::Mmap(m) => m.advise_pages(first.0, count),
        }
    }
}

/// Which backend a device's pages currently live on (see `PageSource`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageBackend {
    /// Still in the mutable build phase.
    Building,
    /// Frozen in memory ([`Device::freeze`]).
    Memory,
    /// Frozen on disk, read by positional `pread` ([`Device::open_snapshot`]).
    File,
    /// Frozen on disk, memory-mapped once and read zero-copy
    /// ([`Device::open_snapshot_as`] with [`ReopenBackend::Mmap`]).
    Mmap,
}

/// Which storage backend [`Device::open_snapshot_as`] should put the
/// reopened pages on. Answers and model read-IO counts are bit-identical
/// across backends — the choice only moves real-hardware wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReopenBackend {
    /// One positional `pread` into a pooled per-thread buffer per page
    /// miss. The portable default.
    #[default]
    Pread,
    /// Map the validated file once; every page read is a pointer offset
    /// into the mapping (unix only — silently falls back to
    /// [`ReopenBackend::Pread`] elsewhere).
    Mmap,
}

/// The shared page store. While building, pages live behind `building`;
/// `freeze` moves them into `frozen`, after which every read is a plain
/// indexed load guarded only by one atomic pointer check (`OnceLock::get`).
struct Store {
    /// Process-unique store identity. Scope state (cache, stats) may be
    /// shared across stores ([`DeviceHandle::scoped_to`]), so cache entries
    /// are keyed by `(store id, page id)` — the same `PageId` on two
    /// different stores never aliases in the LRU.
    id: u64,
    cfg: DeviceConfig,
    building: Mutex<Vec<Box<[u8]>>>,
    frozen: OnceLock<PageSource>,
}

fn next_store_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Store {
    // NOTE: on an *unfrozen* store both accessors run `f` while holding the
    // (non-reentrant) build mutex, so a page closure must never access the
    // device again — `read_page(p, |_| read_page(q, ..))` would deadlock.
    // The pre-split device rejected the same pattern with a RefCell borrow
    // panic; no structure in the workspace nests page accesses. After
    // freeze() the read path takes no lock and the constraint disappears.
    fn with_page<R>(&self, id: PageId, op: &str, f: impl FnOnce(&[u8]) -> R) -> R {
        if let Some(src) = self.frozen.get() {
            return src.with_page(self.cfg.page_bytes, id, op, f);
        }
        let guard = self.building.lock().unwrap();
        // Re-check: a freeze may have landed between the lock-free probe
        // and acquiring the build lock.
        if let Some(src) = self.frozen.get() {
            drop(guard);
            return src.with_page(self.cfg.page_bytes, id, op, f);
        }
        f(Self::page(&guard, id, op))
    }

    fn with_page_mut<R>(&self, id: PageId, op: &str, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut guard = self.building.lock().unwrap();
        // Checked under the build lock: freeze() takes it too, so a racing
        // freeze either completes before this (and the check fires) or
        // waits until this write is done.
        assert!(self.frozen.get().is_none(), "{op} of page {id:?} on a frozen device");
        let idx = id.0 as usize;
        assert!(idx < guard.len(), "{op} of unallocated page {id:?}");
        f(&mut guard[idx])
    }

    fn page<'a>(pages: &'a [Box<[u8]>], id: PageId, op: &str) -> &'a [u8] {
        pages.get(id.0 as usize).unwrap_or_else(|| panic!("{op} of unallocated page {id:?}"))
    }

    fn pages_allocated(&self) -> u64 {
        if let Some(src) = self.frozen.get() {
            return src.page_count();
        }
        self.building.lock().unwrap().len() as u64
    }

    fn is_frozen(&self) -> bool {
        self.frozen.get().is_some()
    }
}

/// Per-scope mutable state: the LRU cache and the IO counters. One of these
/// exists per [`DeviceHandle`] scope, so readers never contend on it.
struct HandleState {
    stats: IoStats,
    /// Clean LRU cache: pages are write-through, so eviction never writes.
    /// `cache` maps a resident page (keyed by store id + page id, so a
    /// scope spanning several stores never conflates their pages) to its
    /// last-use tick; `by_tick` is the exact inverse (ticks are unique),
    /// kept ordered so the LRU victim is always the first entry. Promotion
    /// and eviction are O(log cache) — the batch engine runs with caches
    /// of thousands of pages, where a per-access linear scan would distort
    /// wall-clock measurements.
    cache: HashMap<(u64, PageId), u64>,
    by_tick: BTreeMap<u64, (u64, PageId)>,
    tick: u64,
}

impl HandleState {
    fn new() -> Self {
        HandleState {
            stats: IoStats::default(),
            cache: HashMap::new(),
            by_tick: BTreeMap::new(),
            tick: 0,
        }
    }

    fn touch(&mut self, cache_pages: usize, key: (u64, PageId)) {
        self.tick += 1;
        let tick = self.tick;
        if cache_pages == 0 {
            return;
        }
        if let Some(t) = self.cache.get_mut(&key) {
            self.by_tick.remove(t);
            *t = tick;
            self.by_tick.insert(tick, key);
            return;
        }
        if self.cache.len() >= cache_pages {
            // Evict the least recently used page: the smallest tick. This
            // picks the same victim a full scan would (ticks are unique),
            // so IO counts are deterministic.
            if let Some((_, victim)) = self.by_tick.pop_first() {
                self.cache.remove(&victim);
            }
        }
        self.cache.insert(key, tick);
        self.by_tick.insert(tick, key);
    }

    fn account_read(&mut self, cache_pages: usize, key: (u64, PageId)) {
        if cache_pages > 0 && self.cache.contains_key(&key) {
            self.stats.cache_hits += 1;
        } else {
            self.stats.reads += 1;
        }
        self.touch(cache_pages, key);
    }

    fn account_write(&mut self, cache_pages: usize, key: (u64, PageId)) {
        self.stats.writes += 1;
        self.touch(cache_pages, key);
    }
}

/// One accounting scope onto a shared page store.
///
/// Cheap to clone; clones *share* the scope (same cache, same counters), so
/// a structure and the test that built it observe one coherent stream of
/// IOs — the pre-refactor `Device` semantics. [`DeviceHandle::fork`] opens
/// a fresh scope over the same pages (empty cache, zeroed stats), which is
/// how each worker of the parallel executor gets its own warm LRU and an
/// IO total that is exactly attributable to it.
///
/// Handles are `Send + Sync`. On a frozen store the page-data path is
/// lock-free; the per-scope state sits behind a mutex that is private to
/// the scope, so workers on distinct forks never contend.
#[derive(Clone)]
pub struct DeviceHandle {
    store: Arc<Store>,
    state: Arc<Mutex<HandleState>>,
}

impl DeviceHandle {
    pub fn config(&self) -> DeviceConfig {
        self.store.cfg
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.store.cfg.page_bytes
    }

    /// Records of `size` bytes that fit in one page (the model's `B`).
    pub fn records_per_page(&self, size: usize) -> usize {
        assert!(
            size > 0 && size <= self.page_bytes(),
            "record size {size} must be in 1..={} (the page size in bytes)",
            self.page_bytes()
        );
        self.page_bytes() / size
    }

    /// A fresh scope (empty cache, zeroed stats) over the same page store.
    pub fn fork(&self) -> DeviceHandle {
        DeviceHandle {
            store: Arc::clone(&self.store),
            state: Arc::new(Mutex::new(HandleState::new())),
        }
    }

    /// A handle on *this* store that accounts into `scope`'s state: same
    /// pages as `self`, but IO counters and LRU residency shared with
    /// `scope` (cache entries are keyed by store, so pages of different
    /// stores never alias). This is how a composite structure spread over
    /// several devices — e.g. one frozen level per device — presents one
    /// coherent accounting scope: every part reads through a view scoped
    /// to a single anchor handle, and a stats bracket around that anchor
    /// observes exactly the composite's IOs.
    ///
    /// The LRU capacity charged on each access is the *accessed* store's
    /// `cache_pages`; keep it uniform across the stores sharing a scope
    /// for a single well-defined budget.
    pub fn scoped_to(&self, scope: &DeviceHandle) -> DeviceHandle {
        DeviceHandle { store: Arc::clone(&self.store), state: Arc::clone(&scope.state) }
    }

    /// `true` once the store's build phase ended (see [`Device::freeze`]).
    pub fn is_frozen(&self) -> bool {
        self.store.is_frozen()
    }

    /// Which backend the pages currently live on.
    pub fn backend(&self) -> PageBackend {
        match self.store.frozen.get() {
            None => PageBackend::Building,
            Some(PageSource::Memory(_)) => PageBackend::Memory,
            Some(PageSource::File(_)) => PageBackend::File,
            #[cfg(unix)]
            Some(PageSource::Mmap(_)) => PageBackend::Mmap,
        }
    }

    /// Advisory readahead for `count` pages starting at `first` — the
    /// device half of a planner prefetch hint: on the mmap
    /// backend this is `madvise(MADV_WILLNEED)` over the page range, on
    /// the pread backend a sequential warm read that heats the OS page
    /// cache, on the memory backend (and during the build phase) nothing.
    ///
    /// A pure hint: it never touches this scope's LRU or [`IoStats`] —
    /// model IO counts and answers are bit-identical with prefetching on,
    /// off, or unsupported (pinned by regression test). Out-of-range
    /// ranges are clamped, never a panic.
    pub fn prefetch(&self, first: PageId, count: u64) {
        if let Some(src) = self.store.frozen.get() {
            src.prefetch(self.store.cfg.page_bytes, first, count);
        }
    }

    /// Serialize the *frozen* page store to a snapshot file (DESIGN.md §9:
    /// header, per-page checksums, raw pages; atomic rename). Errors with
    /// [`SnapshotError::NotFrozen`] while the build phase is still open —
    /// use [`Device::freeze_to_path`] to freeze-and-write in one step.
    ///
    /// Serialization is a host-side maintenance operation: it bypasses the
    /// cost model entirely (no reads are charged to any scope), exactly
    /// like construction-time page allocation models formatting.
    pub fn snapshot_to_path(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let page_bytes = self.store.cfg.page_bytes;
        match self.store.frozen.get() {
            None => Err(SnapshotError::NotFrozen),
            Some(PageSource::Memory(pages)) => {
                write_snapshot(path.as_ref(), page_bytes, pages.len() as u64, |i, buf| {
                    buf.copy_from_slice(&pages[i as usize])
                })
            }
            Some(PageSource::File(sf)) => {
                write_snapshot(path.as_ref(), page_bytes, sf.page_count(), |i, buf| {
                    sf.read_page_into(i, buf)
                })
            }
            #[cfg(unix)]
            Some(PageSource::Mmap(m)) => {
                write_snapshot(path.as_ref(), page_bytes, m.page_count(), |i, buf| {
                    buf.copy_from_slice(m.page(i))
                })
            }
        }
    }

    /// `true` when both handles read the same underlying page store.
    pub fn same_store(&self, other: &DeviceHandle) -> bool {
        Arc::ptr_eq(&self.store, &other.store)
    }

    /// Allocate `count` fresh zeroed pages with consecutive ids; returns the
    /// first id. Allocation itself is free (it models formatting, not IO).
    /// Panics on a frozen store.
    pub fn alloc_pages(&self, count: usize) -> PageId {
        let mut pages = self.store.building.lock().unwrap();
        // Checked under the build lock (freeze() takes it too), so a racing
        // freeze can never hand out ids aliasing frozen pages.
        assert!(!self.store.is_frozen(), "allocation on a frozen device");
        let first = pages.len() as u64;
        let page_bytes = self.store.cfg.page_bytes;
        for _ in 0..count {
            pages.push(vec![0u8; page_bytes].into_boxed_slice());
        }
        PageId(first)
    }

    /// Number of pages allocated so far (a space measure in blocks).
    pub fn pages_allocated(&self) -> u64 {
        self.store.pages_allocated()
    }

    // The accessors below account against the scope only *inside* the store
    // access, after the page is validated: a rejected access (unallocated
    // page, write-after-freeze) panics without leaving a phantom IO in the
    // counters or a bogus entry in the LRU. The scope mutex nests strictly
    // inside the store lock and is never held across user code.

    /// Read a page, paying one IO unless cached in this scope.
    pub fn read_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        self.store.with_page(id, "read", |page| {
            self.state
                .lock()
                .unwrap()
                .account_read(self.store.cfg.cache_pages, (self.store.id, id));
            f(page)
        })
    }

    /// Overwrite a page (write-through), paying one write IO. Panics on a
    /// frozen store.
    pub fn write_page(&self, id: PageId, f: impl FnOnce(&mut [u8])) {
        self.store.with_page_mut(id, "write", |page| {
            self.state
                .lock()
                .unwrap()
                .account_write(self.store.cfg.cache_pages, (self.store.id, id));
            f(page)
        })
    }

    /// Read-modify-write: one read IO (unless cached) plus one write IO.
    /// Panics on a frozen store.
    pub fn update_page<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.store.with_page_mut(id, "update", |page| {
            {
                let mut state = self.state.lock().unwrap();
                let cache_pages = self.store.cfg.cache_pages;
                state.account_read(cache_pages, (self.store.id, id));
                state.account_write(cache_pages, (self.store.id, id));
            }
            f(page)
        })
    }

    /// IO counters of this scope.
    pub fn stats(&self) -> IoStats {
        self.state.lock().unwrap().stats
    }

    pub fn reset_stats(&self) {
        self.state.lock().unwrap().stats = IoStats::default();
    }

    /// Drop this scope's cached pages (so the next accesses pay IOs)
    /// without touching the counters. Used to measure cold-cache queries.
    pub fn clear_cache(&self) {
        let mut state = self.state.lock().unwrap();
        state.cache.clear();
        state.by_tick.clear();
    }

    /// Number of pages currently resident in this scope's cache.
    pub fn cached_pages(&self) -> usize {
        self.state.lock().unwrap().cache.len()
    }
}

/// A simulated disk with IO accounting: the lifecycle owner of a page store
/// plus its *primary* [`DeviceHandle`].
///
/// Cheap to clone (clones share the primary scope). The device starts in
/// the build phase — structures allocate and write through it — and
/// [`Device::freeze`] ends that phase, making the pages immutable and the
/// read path lock-free so handles can fan out across threads. All of the
/// access API lives on [`DeviceHandle`], which `Device` derefs to.
#[derive(Clone)]
pub struct Device {
    primary: DeviceHandle,
}

impl Device {
    pub fn new(cfg: DeviceConfig) -> Self {
        Device {
            primary: DeviceHandle {
                store: Arc::new(Store {
                    id: next_store_id(),
                    cfg,
                    building: Mutex::new(Vec::new()),
                    frozen: OnceLock::new(),
                }),
                state: Arc::new(Mutex::new(HandleState::new())),
            },
        }
    }

    /// A device with default page size and no cache.
    pub fn default_device() -> Self {
        Device::new(DeviceConfig::default())
    }

    /// End the build phase: page data becomes immutable and the read path
    /// lock-free. Further writes or allocations panic; reads, caches and
    /// stats are unaffected. Idempotent.
    pub fn freeze(&self) {
        let store = &self.primary.store;
        let mut building = store.building.lock().unwrap();
        if store.is_frozen() {
            return;
        }
        let pages = std::mem::take(&mut *building);
        store
            .frozen
            .set(PageSource::Memory(pages))
            .unwrap_or_else(|_| unreachable!("freeze is serialized by the build lock"));
    }

    /// End the build phase (if still open) and serialize the frozen pages
    /// to a snapshot file at `path` — the "build once" half of the
    /// build-once/serve-many lifecycle. See
    /// [`DeviceHandle::snapshot_to_path`] for the format and accounting
    /// semantics, and [`Device::open_snapshot`] for the other half.
    pub fn freeze_to_path(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        self.freeze();
        self.primary.snapshot_to_path(path)
    }

    /// Reopen a snapshot written by [`Device::freeze_to_path`] as a
    /// frozen, read-only, file-backed device. The page size comes from the
    /// snapshot header; `cache_pages` is a runtime choice, exactly as for
    /// [`Device::new`]. The whole file is checksum-validated up front, so
    /// any corruption (truncation, bit flips, wrong magic, future format
    /// versions) surfaces here as a typed [`SnapshotError`] — never later
    /// as a bad page read.
    ///
    /// The reopened device starts with a fresh primary scope: zeroed
    /// [`IoStats`], empty cache. Validation reads are *not* charged — the
    /// cost model starts counting at the first query, so a cold reopened
    /// index measures exactly its query cost (pinned by regression test).
    pub fn open_snapshot(
        path: impl AsRef<Path>,
        cache_pages: usize,
    ) -> Result<Device, SnapshotError> {
        Device::open_snapshot_as(path, cache_pages, ReopenBackend::Pread)
    }

    /// [`Device::open_snapshot`] with an explicit storage backend.
    ///
    /// Both backends validate through the identical code path
    /// ([`SnapshotFile::open`]), so every corruption case surfaces as the
    /// same typed [`SnapshotError`] no matter which backend was requested
    /// — and never as a fault at read time. With [`ReopenBackend::Mmap`]
    /// the validated file is then mapped once and each page read is a
    /// pointer offset into the mapping (zero-copy); answers and model
    /// read-IO counts stay bit-identical to the pread backend, only real
    /// wall time changes. On non-unix platforms an mmap request silently
    /// uses the portable pread backend.
    pub fn open_snapshot_as(
        path: impl AsRef<Path>,
        cache_pages: usize,
        backend: ReopenBackend,
    ) -> Result<Device, SnapshotError> {
        let sf = SnapshotFile::open(path.as_ref())?;
        let cfg = DeviceConfig::new(sf.page_bytes(), cache_pages);
        let src = match backend {
            ReopenBackend::Pread => PageSource::File(sf),
            #[cfg(unix)]
            ReopenBackend::Mmap => PageSource::Mmap(MappedSnapshot::from_snapshot_file(sf)?),
            #[cfg(not(unix))]
            ReopenBackend::Mmap => PageSource::File(sf),
        };
        let frozen = OnceLock::new();
        frozen.set(src).unwrap_or_else(|_| unreachable!("freshly created OnceLock"));
        Ok(Device {
            primary: DeviceHandle {
                store: Arc::new(Store {
                    id: next_store_id(),
                    cfg,
                    building: Mutex::new(Vec::new()),
                    frozen,
                }),
                state: Arc::new(Mutex::new(HandleState::new())),
            },
        })
    }

    /// A fresh accounting scope (empty cache, zeroed stats) over this
    /// device's pages — shorthand for `device.fork()` on the primary.
    pub fn handle(&self) -> DeviceHandle {
        self.primary.fork()
    }
}

impl std::ops::Deref for Device {
    type Target = DeviceHandle;

    fn deref(&self) -> &DeviceHandle {
        &self.primary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_accounting_no_cache() {
        let dev = Device::new(DeviceConfig::new(128, 0));
        let p = dev.alloc_pages(2);
        dev.write_page(p, |b| b[0] = 7);
        let v = dev.read_page(p, |b| b[0]);
        assert_eq!(v, 7);
        let s = dev.stats();
        assert_eq!((s.reads, s.writes, s.cache_hits), (1, 1, 0));
    }

    #[test]
    fn consecutive_alloc_ids() {
        let dev = Device::default_device();
        let a = dev.alloc_pages(3);
        let b = dev.alloc_pages(1);
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(3));
        assert_eq!(dev.pages_allocated(), 4);
    }

    #[test]
    fn cache_absorbs_repeat_reads() {
        let dev = Device::new(DeviceConfig::new(128, 2));
        let p = dev.alloc_pages(3);
        let ids = [PageId(p.0), PageId(p.0 + 1), PageId(p.0 + 2)];
        dev.reset_stats();
        dev.read_page(ids[0], |_| ());
        dev.read_page(ids[0], |_| ());
        assert_eq!(dev.stats().reads, 1);
        assert_eq!(dev.stats().cache_hits, 1);
        // Fill beyond capacity: 0 is evicted as LRU after 1,2 are touched.
        dev.read_page(ids[1], |_| ());
        dev.read_page(ids[2], |_| ());
        dev.read_page(ids[0], |_| ());
        assert_eq!(dev.stats().reads, 4);
    }

    #[test]
    fn clear_cache_forces_io() {
        let dev = Device::new(DeviceConfig::new(128, 4));
        let p = dev.alloc_pages(1);
        dev.read_page(p, |_| ());
        dev.clear_cache();
        dev.read_page(p, |_| ());
        assert_eq!(dev.stats().reads, 2);
    }

    #[test]
    fn update_counts_read_and_write() {
        let dev = Device::default_device();
        let p = dev.alloc_pages(1);
        dev.update_page(p, |b| b[1] = 9);
        let s = dev.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn read_unallocated_panics() {
        let dev = Device::default_device();
        dev.read_page(PageId(0), |_| ());
    }

    #[test]
    fn write_counts_as_use_in_lru() {
        // Pinned semantics: a write-through write promotes the page, so a
        // recently *written* page survives eviction over a less recently
        // *read* one.
        let dev = Device::new(DeviceConfig::new(128, 2));
        let p = dev.alloc_pages(3);
        let ids = [PageId(p.0), PageId(p.0 + 1), PageId(p.0 + 2)];
        dev.read_page(ids[0], |_| ()); // cache: {0}
        dev.read_page(ids[1], |_| ()); // cache: {0, 1}
        dev.write_page(ids[0], |b| b[0] = 1); // promotes 0; LRU is now 1
        dev.reset_stats();
        dev.read_page(ids[2], |_| ()); // evicts 1, not 0
        dev.read_page(ids[0], |_| ()); // must be a hit
        let s = dev.stats();
        assert_eq!((s.reads, s.cache_hits), (1, 1), "written page must stay resident");
        dev.reset_stats();
        dev.read_page(ids[1], |_| ()); // was evicted: pays an IO
        assert_eq!(dev.stats().reads, 1);
    }

    #[test]
    fn write_caches_an_uncached_page() {
        // A write also *inserts* into the cache: the next read of that page
        // is free, even though the write itself always pays a write IO.
        let dev = Device::new(DeviceConfig::new(128, 4));
        let p = dev.alloc_pages(1);
        dev.write_page(p, |b| b[0] = 9);
        dev.read_page(p, |_| ());
        let s = dev.stats();
        assert_eq!((s.reads, s.writes, s.cache_hits), (0, 1, 1));
    }

    #[test]
    fn mixed_read_write_traffic_accounting() {
        // update_page = read (hit if resident) + unconditional write.
        let dev = Device::new(DeviceConfig::new(128, 2));
        let p = dev.alloc_pages(1);
        dev.update_page(p, |b| b[0] = 1); // cold: 1 read, 1 write
        dev.update_page(p, |b| b[0] = 2); // warm: hit + 1 write
        let s = dev.stats();
        assert_eq!((s.reads, s.writes, s.cache_hits), (1, 2, 1));
    }

    #[test]
    fn clear_cache_then_since_scopes_cold_queries() {
        // The per-query attribution pattern of the batch engine: snapshot,
        // access, snapshot — with clear_cache() marking query boundaries.
        let dev = Device::new(DeviceConfig::new(128, 8));
        let p = dev.alloc_pages(2);
        let ids = [PageId(p.0), PageId(p.0 + 1)];
        dev.read_page(ids[0], |_| ());
        // Cold scope: cache dropped, both accesses pay IOs.
        dev.clear_cache();
        let before = dev.stats();
        dev.read_page(ids[0], |_| ());
        dev.read_page(ids[1], |_| ());
        let cold = dev.stats().since(before);
        assert_eq!((cold.reads, cold.cache_hits), (2, 0));
        // Warm scope right after: same accesses, all absorbed.
        let before = dev.stats();
        dev.read_page(ids[0], |_| ());
        dev.read_page(ids[1], |_| ());
        let warm = dev.stats().since(before);
        assert_eq!((warm.reads, warm.cache_hits), (0, 2));
        // Deltas bracket a reset without underflow (saturating since).
        let before = dev.stats();
        dev.reset_stats();
        dev.read_page(ids[0], |_| ());
        let d = dev.stats().since(before);
        assert_eq!(d.total(), 0);
    }

    #[test]
    fn cached_pages_never_exceeds_capacity() {
        let dev = Device::new(DeviceConfig::new(128, 3));
        let p = dev.alloc_pages(10);
        for i in 0..10 {
            dev.read_page(PageId(p.0 + i), |_| ());
            assert!(dev.cached_pages() <= 3);
        }
        assert_eq!(dev.cached_pages(), 3);
        dev.clear_cache();
        assert_eq!(dev.cached_pages(), 0);
    }

    #[test]
    fn clones_share_scope_forks_do_not() {
        let dev = Device::new(DeviceConfig::new(128, 4));
        let p = dev.alloc_pages(1);
        let shared: DeviceHandle = (*dev).clone();
        shared.read_page(p, |_| ());
        // The clone's IO is visible on the device (same scope) …
        assert_eq!(dev.stats().reads, 1);
        // … and absorbed by the shared cache.
        dev.read_page(p, |_| ());
        assert_eq!(dev.stats().cache_hits, 1);
        // A fork starts cold and counts from zero, without touching the
        // primary scope.
        let fork = dev.handle();
        assert_eq!(fork.stats(), crate::IoStats::default());
        fork.read_page(p, |_| ());
        assert_eq!(fork.stats().reads, 1);
        assert_eq!(dev.stats().reads, 1, "fork IOs must not leak into the primary scope");
        assert!(fork.same_store(&dev));
    }

    #[test]
    fn freeze_keeps_reads_and_stops_writes() {
        let dev = Device::new(DeviceConfig::new(128, 0));
        let p = dev.alloc_pages(1);
        dev.write_page(p, |b| b[0] = 42);
        assert!(!dev.is_frozen());
        dev.freeze();
        dev.freeze(); // idempotent
        assert!(dev.is_frozen());
        assert_eq!(dev.read_page(p, |b| b[0]), 42);
        let stats_before = dev.stats();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.write_page(p, |b| b[0] = 0);
        }));
        assert!(result.is_err(), "writes after freeze must panic");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.alloc_pages(1);
        }));
        assert!(result.is_err(), "allocation after freeze must panic");
        assert_eq!(dev.pages_allocated(), 1);
        // Rejected accesses must not leave phantom IOs in the counters.
        assert_eq!(dev.stats(), stats_before, "rejected writes must not be accounted");
    }

    #[test]
    fn rejected_access_leaves_stats_and_cache_untouched() {
        let dev = Device::new(DeviceConfig::new(128, 4));
        let p = dev.alloc_pages(1);
        dev.read_page(p, |_| ());
        let (stats, cached) = (dev.stats(), dev.cached_pages());
        for op in [
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                dev.read_page(PageId(99), |_| ());
            })),
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                dev.write_page(PageId(99), |_| ());
            })),
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                dev.update_page(PageId(99), |_| ());
            })),
        ] {
            assert!(op.is_err(), "unallocated accesses must panic");
        }
        assert_eq!(dev.stats(), stats, "rejected accesses must not be accounted");
        assert_eq!(dev.cached_pages(), cached, "rejected accesses must not touch the LRU");
    }

    #[test]
    fn frozen_store_shared_across_threads() {
        let dev = Device::new(DeviceConfig::new(128, 8));
        let p = dev.alloc_pages(16);
        for i in 0..16 {
            dev.write_page(PageId(p.0 + i), |b| b[0] = i as u8);
        }
        dev.freeze();
        let totals: Vec<u64> = std::thread::scope(|s| {
            (0..4u8)
                .map(|_| {
                    let h = dev.handle();
                    s.spawn(move || {
                        for round in 0..3 {
                            for i in 0..16u64 {
                                let v = h.read_page(PageId(i), |b| b[0]);
                                assert_eq!(v, i as u8, "round {round}");
                            }
                        }
                        h.stats().reads
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.join().unwrap())
                .collect()
        });
        // Every worker has its own LRU of 8 pages cycling over 16: all 48
        // accesses miss, deterministically, regardless of interleaving.
        assert_eq!(totals, vec![48, 48, 48, 48]);
        assert_eq!(dev.stats().reads, 0, "worker IOs never land on the primary scope");
    }

    #[test]
    fn snapshot_roundtrip_preserves_pages_and_geometry() {
        let dir = crate::snapshot::TempDir::new("lcrs-device-snap");
        let dev = Device::new(DeviceConfig::new(128, 0));
        let p = dev.alloc_pages(6);
        for i in 0..6 {
            dev.write_page(PageId(p.0 + i), |b| {
                b[0] = i as u8;
                b[127] = 0xA0 + i as u8;
            });
        }
        // freeze_to_path freezes implicitly (build phase still open here).
        assert!(!dev.is_frozen());
        let path = dir.file("dev.pages");
        dev.freeze_to_path(&path).unwrap();
        assert!(dev.is_frozen());
        assert_eq!(dev.backend(), PageBackend::Memory);

        let re = Device::open_snapshot(&path, 0).unwrap();
        assert!(re.is_frozen());
        assert_eq!(re.backend(), PageBackend::File);
        assert_eq!(re.page_bytes(), 128);
        assert_eq!(re.pages_allocated(), 6);
        for i in 0..6u64 {
            let (a, z) = re.read_page(PageId(i), |b| (b[0], b[127]));
            assert_eq!((a, z), (i as u8, 0xA0 + i as u8));
        }
    }

    #[test]
    fn reopened_device_rejects_writes_and_allocs() {
        let dir = crate::snapshot::TempDir::new("lcrs-device-snap-ro");
        let dev = Device::new(DeviceConfig::new(64, 0));
        let p = dev.alloc_pages(1);
        dev.write_page(p, |b| b[0] = 1);
        dev.freeze_to_path(dir.file("ro.pages")).unwrap();
        let re = Device::open_snapshot(dir.file("ro.pages"), 0).unwrap();
        re.freeze(); // idempotent no-op on an already-frozen store
        for result in [
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                re.write_page(p, |b| b[0] = 2);
            })),
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                re.alloc_pages(1);
            })),
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                re.read_page(PageId(9), |_| ());
            })),
        ] {
            assert!(result.is_err(), "mutation / OOB reads on a snapshot must panic");
        }
        // The frozen read path takes no lock, so the caught panics above
        // (which poison the build mutex) never affect reads.
        assert_eq!(re.read_page(p, |b| b[0]), 1);
    }

    #[test]
    fn snapshot_of_unfrozen_handle_is_typed_error() {
        let dir = crate::snapshot::TempDir::new("lcrs-device-snap-unfrozen");
        let dev = Device::new(DeviceConfig::new(64, 0));
        dev.alloc_pages(1);
        let err = (*dev).snapshot_to_path(dir.file("x.pages")).unwrap_err();
        assert!(matches!(err, crate::snapshot::SnapshotError::NotFrozen));
    }

    #[test]
    fn reopened_device_starts_cold_and_accounts_reads() {
        // ISSUE 4 regression: opening a snapshot validates every page, but
        // none of that is model IO — the opening scope starts zeroed and
        // the first query pays real, attributed reads.
        let dir = crate::snapshot::TempDir::new("lcrs-device-snap-cold");
        let dev = Device::new(DeviceConfig::new(128, 4));
        let p = dev.alloc_pages(3);
        for i in 0..3 {
            dev.write_page(PageId(p.0 + i), |b| b[0] = i as u8);
        }
        dev.freeze_to_path(dir.file("cold.pages")).unwrap();
        let re = Device::open_snapshot(dir.file("cold.pages"), 4).unwrap();
        assert_eq!(re.stats(), IoStats::default(), "cold reopen must start with zeroed counters");
        assert_eq!(re.cached_pages(), 0);
        re.read_page(PageId(0), |_| ());
        re.read_page(PageId(0), |_| ());
        re.read_page(PageId(2), |_| ());
        let s = re.stats();
        assert_eq!((s.reads, s.writes, s.cache_hits), (2, 0, 1), "file-backed reads are charged");
        // Forked scopes are independent, exactly as on a memory store.
        let fork = re.handle();
        assert_eq!(fork.stats(), IoStats::default());
        fork.read_page(PageId(1), |_| ());
        assert_eq!(fork.stats().reads, 1);
        assert_eq!(re.stats().reads, 2, "fork IOs stay off the primary scope");
    }

    #[test]
    fn reopened_snapshot_can_be_resnapshotted() {
        // snapshot_to_path on a file-backed store copies the snapshot —
        // the catalog uses this to re-persist a reopened index.
        let dir = crate::snapshot::TempDir::new("lcrs-device-snap-copy");
        let dev = Device::new(DeviceConfig::new(64, 0));
        let p = dev.alloc_pages(2);
        dev.write_page(p, |b| b[0] = 7);
        dev.write_page(PageId(p.0 + 1), |b| b[0] = 8);
        dev.freeze_to_path(dir.file("a.pages")).unwrap();
        let re = Device::open_snapshot(dir.file("a.pages"), 0).unwrap();
        re.snapshot_to_path(dir.file("b.pages")).unwrap();
        let re2 = Device::open_snapshot(dir.file("b.pages"), 0).unwrap();
        assert_eq!(re2.read_page(p, |b| b[0]), 7);
        assert_eq!(re2.read_page(PageId(p.0 + 1), |b| b[0]), 8);
        assert_eq!(re2.pages_allocated(), 2);
    }

    #[test]
    fn empty_device_snapshot_roundtrip() {
        let dir = crate::snapshot::TempDir::new("lcrs-device-snap-zero");
        let dev = Device::new(DeviceConfig::new(256, 0));
        dev.freeze_to_path(dir.file("zero.pages")).unwrap();
        let re = Device::open_snapshot(dir.file("zero.pages"), 0).unwrap();
        assert_eq!(re.pages_allocated(), 0);
        assert_eq!(re.page_bytes(), 256);
        assert!(re.is_frozen());
    }

    #[test]
    fn scoped_to_shares_stats_across_stores() {
        // Two independent stores, one accounting scope: the anchor sees
        // every IO either part pays, which is what lets a multi-device
        // composite structure be measured through a single handle.
        let a = Device::new(DeviceConfig::new(128, 0));
        let b = Device::new(DeviceConfig::new(128, 0));
        let pa = a.alloc_pages(1);
        let pb = b.alloc_pages(2);
        let vb = (*b).scoped_to(&a);
        assert!(vb.same_store(&b) && !vb.same_store(&a));
        a.read_page(pa, |_| ());
        vb.read_page(pb, |_| ());
        vb.read_page(PageId(pb.0 + 1), |_| ());
        assert_eq!(a.stats().reads, 3, "view IOs must land on the anchor scope");
        assert_eq!(b.stats().reads, 0, "the viewed store's own scope stays untouched");
    }

    #[test]
    fn scoped_cache_never_aliases_equal_page_ids() {
        // Page 0 of store A and page 0 of store B are different pages; a
        // shared scope must cache them under distinct keys.
        let a = Device::new(DeviceConfig::new(128, 4));
        let b = Device::new(DeviceConfig::new(128, 4));
        let pa = a.alloc_pages(1);
        let pb = b.alloc_pages(1);
        a.write_page(pa, |buf| buf[0] = 1);
        b.write_page(pb, |buf| buf[0] = 2);
        a.freeze();
        b.freeze();
        let vb = (*b).scoped_to(&a);
        a.clear_cache();
        a.reset_stats();
        a.read_page(pa, |_| ());
        vb.read_page(pb, |_| ());
        let s = a.stats();
        assert_eq!((s.reads, s.cache_hits), (2, 0), "same PageId on two stores must both miss");
        a.read_page(pa, |_| ());
        vb.read_page(pb, |_| ());
        let s = a.stats();
        assert_eq!((s.reads, s.cache_hits), (2, 2), "…and both stay resident");
        assert_eq!(a.cached_pages(), 2);
    }

    #[test]
    fn scoped_view_shares_lru_budget_and_fork_detaches() {
        let a = Device::new(DeviceConfig::new(128, 1));
        let b = Device::new(DeviceConfig::new(128, 1));
        let pa = a.alloc_pages(1);
        let pb = b.alloc_pages(1);
        let vb = (*b).scoped_to(&a);
        // One shared slot: alternating stores evicts every time.
        a.read_page(pa, |_| ());
        vb.read_page(pb, |_| ());
        a.read_page(pa, |_| ());
        assert_eq!(a.stats().reads, 3, "a shared 1-page budget thrashes across stores");
        // A fork of the view opens a fresh scope over store B only.
        let f = vb.fork();
        assert!(f.same_store(&b));
        f.read_page(pb, |_| ());
        assert_eq!(f.stats().reads, 1);
        assert_eq!(a.stats().reads, 3, "fork IOs must not leak into the shared scope");
    }

    #[test]
    fn file_backed_reads_are_lock_free_across_threads() {
        let dir = crate::snapshot::TempDir::new("lcrs-device-snap-mt");
        let dev = Device::new(DeviceConfig::new(128, 0));
        let p = dev.alloc_pages(8);
        for i in 0..8 {
            dev.write_page(PageId(p.0 + i), |b| b[0] = i as u8);
        }
        dev.freeze_to_path(dir.file("mt.pages")).unwrap();
        let re = Device::open_snapshot(dir.file("mt.pages"), 0).unwrap();
        let totals: Vec<u64> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let h = re.handle();
                    s.spawn(move || {
                        for i in 0..8u64 {
                            assert_eq!(h.read_page(PageId(i), |b| b[0]), i as u8);
                        }
                        h.stats().reads
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.join().unwrap())
                .collect()
        });
        assert_eq!(totals, vec![8, 8, 8, 8]);
    }

    #[test]
    fn nested_file_reads_reuse_pooled_buffers() {
        // ISSUE 8 regression: the pread backend used a single per-thread
        // buffer slot, so *nested* frozen reads (outer closure reading
        // another page) degraded to one fresh heap allocation per access.
        // The pool must instead stabilize at one buffer per nesting depth.
        let dir = crate::snapshot::TempDir::new("lcrs-device-bufpool");
        let dev = Device::new(DeviceConfig::new(128, 0));
        let p = dev.alloc_pages(4);
        for i in 0..4 {
            dev.write_page(PageId(p.0 + i), |b| b[0] = 10 + i as u8);
        }
        let path = dir.file("pool.pages");
        dev.freeze_to_path(&path).unwrap();
        let re = Device::open_snapshot(&path, 0).unwrap();
        let re2 = Device::open_snapshot(&path, 0).unwrap();
        // A fresh thread starts with an empty pool, so the count below is
        // exact regardless of what other tests ran on this thread.
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(page_buf_pool_len(), 0);
                for round in 0..10 {
                    let v = re.read_page(PageId(0), |outer| {
                        let inner = re2.read_page(PageId(3), |b| b[0]);
                        // The outer borrow must survive the nested read:
                        // distinct buffers, no clobbering.
                        (outer[0], inner)
                    });
                    assert_eq!(v, (10, 13), "round {round}");
                    assert_eq!(
                        page_buf_pool_len(),
                        2,
                        "round {round}: depth-2 nesting must settle at exactly 2 pooled \
                         buffers, not allocate per access"
                    );
                }
            });
        });
    }

    #[cfg(unix)]
    #[test]
    fn mmap_reopen_is_bit_identical_to_pread() {
        let dir = crate::snapshot::TempDir::new("lcrs-device-mmap");
        let dev = Device::new(DeviceConfig::new(128, 2));
        let p = dev.alloc_pages(6);
        for i in 0..6 {
            dev.write_page(PageId(p.0 + i), |b| {
                b[0] = i as u8;
                b[127] = 0xB0 + i as u8;
            });
        }
        let path = dir.file("m.pages");
        dev.freeze_to_path(&path).unwrap();
        let pread = Device::open_snapshot_as(&path, 2, ReopenBackend::Pread).unwrap();
        let mmap = Device::open_snapshot_as(&path, 2, ReopenBackend::Mmap).unwrap();
        assert_eq!(pread.backend(), PageBackend::File);
        assert_eq!(mmap.backend(), PageBackend::Mmap);
        assert!(mmap.is_frozen());
        assert_eq!(mmap.page_bytes(), 128);
        assert_eq!(mmap.pages_allocated(), 6);
        assert_eq!(mmap.stats(), IoStats::default(), "mmap reopen starts cold");
        // Same access trace on both: identical bytes AND identical model
        // IO accounting (the LRU sees the same key stream).
        let trace = [0u64, 1, 0, 5, 2, 0, 5, 3];
        for &i in &trace {
            let a = pread.read_page(PageId(i), |b| (b[0], b[127]));
            let b = mmap.read_page(PageId(i), |b| (b[0], b[127]));
            assert_eq!(a, b);
            assert_eq!(a, (i as u8, 0xB0 + i as u8));
        }
        assert_eq!(pread.stats(), mmap.stats(), "model IOs must not depend on the backend");
        // Re-snapshotting from the mapping reproduces the file bit-exactly.
        mmap.snapshot_to_path(dir.file("copy.pages")).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(dir.file("copy.pages")).unwrap(),
            "snapshot of an mmap store must be byte-identical to its source"
        );
        // OOB reads panic exactly like the other backends.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mmap.read_page(PageId(6), |_| ());
        }));
        assert!(r.is_err(), "OOB read on mmap backend must panic, not fault");
    }

    #[cfg(unix)]
    #[test]
    fn mmap_reads_are_lock_free_across_threads() {
        let dir = crate::snapshot::TempDir::new("lcrs-device-mmap-mt");
        let dev = Device::new(DeviceConfig::new(128, 0));
        let p = dev.alloc_pages(8);
        for i in 0..8 {
            dev.write_page(PageId(p.0 + i), |b| b[0] = i as u8);
        }
        dev.freeze_to_path(dir.file("mt.pages")).unwrap();
        let re = Device::open_snapshot_as(dir.file("mt.pages"), 0, ReopenBackend::Mmap).unwrap();
        let totals: Vec<u64> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let h = re.handle();
                    s.spawn(move || {
                        for i in 0..8u64 {
                            assert_eq!(h.read_page(PageId(i), |b| b[0]), i as u8);
                        }
                        h.stats().reads
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.join().unwrap())
                .collect()
        });
        assert_eq!(totals, vec![8, 8, 8, 8]);
    }

    #[test]
    fn prefetch_is_invisible_to_the_cost_model() {
        // Prefetch must not touch stats or the LRU on any backend, and
        // must accept any range (including out of bounds) on any phase.
        let dir = crate::snapshot::TempDir::new("lcrs-device-prefetch");
        let dev = Device::new(DeviceConfig::new(128, 4));
        let p = dev.alloc_pages(4);
        for i in 0..4 {
            dev.write_page(PageId(p.0 + i), |b| b[0] = i as u8);
        }
        dev.prefetch(PageId(0), 4); // build phase: no-op
        let path = dir.file("pf.pages");
        dev.freeze_to_path(&path).unwrap();

        let mut devices = vec![Device::open_snapshot_as(&path, 4, ReopenBackend::Pread).unwrap()];
        #[cfg(unix)]
        devices.push(Device::open_snapshot_as(&path, 4, ReopenBackend::Mmap).unwrap());
        devices.push(dev); // memory backend
        for d in &devices {
            d.reset_stats();
            d.clear_cache();
            d.prefetch(PageId(0), 4);
            d.prefetch(PageId(2), u64::MAX); // clamped
            d.prefetch(PageId(99), 7); // fully out of range
            d.prefetch(PageId(1), 0); // empty
            assert_eq!(d.stats(), IoStats::default(), "prefetch must never be model IO");
            assert_eq!(d.cached_pages(), 0, "prefetch must never touch the LRU");
            // The subsequent reads still pay full, deterministic IOs.
            for i in 0..4u64 {
                assert_eq!(d.read_page(PageId(i), |b| b[0]), i as u8);
            }
            assert_eq!(d.stats().reads, 4);
        }
    }
}
