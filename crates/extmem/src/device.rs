//! The simulated disk.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use crate::stats::IoStats;

/// Identifier of a disk page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Configuration of a [`Device`].
#[derive(Debug, Clone, Copy)]
pub struct DeviceConfig {
    /// Page size in bytes; `B` for a record type is `page_bytes / SIZE`.
    pub page_bytes: usize,
    /// Number of pages the internal-memory cache may hold (the `M/B` of the
    /// external-memory model). `0` disables caching, so *every* page access
    /// counts as an IO — the setting used for query measurements.
    pub cache_pages: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig { page_bytes: 4096, cache_pages: 0 }
    }
}

impl DeviceConfig {
    /// Convenience constructor.
    pub fn new(page_bytes: usize, cache_pages: usize) -> Self {
        DeviceConfig { page_bytes, cache_pages }
    }
}

struct DeviceInner {
    cfg: DeviceConfig,
    pages: Vec<Box<[u8]>>,
    stats: IoStats,
    /// Clean LRU cache: pages are write-through, so eviction never writes.
    /// `cache` maps a resident page to its last-use tick; `by_tick` is the
    /// exact inverse (ticks are unique), kept ordered so the LRU victim is
    /// always the first entry. Promotion and eviction are O(log cache) —
    /// the batch engine runs with caches of thousands of pages, where a
    /// per-access linear scan would distort wall-clock measurements.
    cache: HashMap<PageId, u64>,
    by_tick: BTreeMap<u64, PageId>,
    tick: u64,
}

impl DeviceInner {
    fn touch(&mut self, id: PageId) {
        self.tick += 1;
        let tick = self.tick;
        if self.cfg.cache_pages == 0 {
            return;
        }
        if let Some(t) = self.cache.get_mut(&id) {
            self.by_tick.remove(t);
            *t = tick;
            self.by_tick.insert(tick, id);
            return;
        }
        if self.cache.len() >= self.cfg.cache_pages {
            // Evict the least recently used page: the smallest tick. This
            // picks the same victim the old full scan did (ticks are
            // unique), so IO counts are bit-identical.
            if let Some((_, victim)) = self.by_tick.pop_first() {
                self.cache.remove(&victim);
            }
        }
        self.cache.insert(id, tick);
        self.by_tick.insert(tick, id);
    }

    fn account_read(&mut self, id: PageId) {
        if self.cfg.cache_pages > 0 && self.cache.contains_key(&id) {
            self.stats.cache_hits += 1;
        } else {
            self.stats.reads += 1;
        }
        self.touch(id);
    }

    fn account_write(&mut self, id: PageId) {
        self.stats.writes += 1;
        self.touch(id);
    }
}

/// A simulated disk with IO accounting.
///
/// Cheap to clone (shared handle). Single-threaded by design: the whole
/// benchmark suite measures IO counts, not wall-clock parallelism.
#[derive(Clone)]
pub struct Device {
    inner: Rc<RefCell<DeviceInner>>,
}

impl Device {
    pub fn new(cfg: DeviceConfig) -> Self {
        Device {
            inner: Rc::new(RefCell::new(DeviceInner {
                cfg,
                pages: Vec::new(),
                stats: IoStats::default(),
                cache: HashMap::new(),
                by_tick: BTreeMap::new(),
                tick: 0,
            })),
        }
    }

    /// A device with default page size and no cache.
    pub fn default_device() -> Self {
        Device::new(DeviceConfig::default())
    }

    pub fn config(&self) -> DeviceConfig {
        self.inner.borrow().cfg
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.inner.borrow().cfg.page_bytes
    }

    /// Records of `size` bytes that fit in one page (the model's `B`).
    pub fn records_per_page(&self, size: usize) -> usize {
        assert!(
            size > 0 && size <= self.page_bytes(),
            "record size {size} must be in 1..={} (the page size in bytes)",
            self.page_bytes()
        );
        self.page_bytes() / size
    }

    /// Allocate `count` fresh zeroed pages with consecutive ids; returns the
    /// first id. Allocation itself is free (it models formatting, not IO).
    pub fn alloc_pages(&self, count: usize) -> PageId {
        let mut inner = self.inner.borrow_mut();
        let first = inner.pages.len() as u64;
        let page_bytes = inner.cfg.page_bytes;
        for _ in 0..count {
            inner.pages.push(vec![0u8; page_bytes].into_boxed_slice());
        }
        PageId(first)
    }

    /// Number of pages allocated so far (a space measure in blocks).
    pub fn pages_allocated(&self) -> u64 {
        self.inner.borrow().pages.len() as u64
    }

    /// Read a page, paying one IO unless cached.
    pub fn read_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        let mut inner = self.inner.borrow_mut();
        assert!((id.0 as usize) < inner.pages.len(), "read of unallocated page {id:?}");
        inner.account_read(id);
        f(&inner.pages[id.0 as usize])
    }

    /// Overwrite a page (write-through), paying one write IO.
    pub fn write_page(&self, id: PageId, f: impl FnOnce(&mut [u8])) {
        let mut inner = self.inner.borrow_mut();
        assert!((id.0 as usize) < inner.pages.len(), "write of unallocated page {id:?}");
        inner.account_write(id);
        f(&mut inner.pages[id.0 as usize])
    }

    /// Read-modify-write: one read IO (unless cached) plus one write IO.
    pub fn update_page<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut inner = self.inner.borrow_mut();
        assert!((id.0 as usize) < inner.pages.len(), "update of unallocated page {id:?}");
        inner.account_read(id);
        inner.account_write(id);
        f(&mut inner.pages[id.0 as usize])
    }

    pub fn stats(&self) -> IoStats {
        self.inner.borrow().stats
    }

    pub fn reset_stats(&self) {
        self.inner.borrow_mut().stats = IoStats::default();
    }

    /// Drop all cached pages (so the next accesses pay IOs) without touching
    /// the counters. Used to measure cold-cache queries.
    pub fn clear_cache(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.cache.clear();
        inner.by_tick.clear();
    }

    /// Number of pages currently resident in the cache.
    pub fn cached_pages(&self) -> usize {
        self.inner.borrow().cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_accounting_no_cache() {
        let dev = Device::new(DeviceConfig::new(128, 0));
        let p = dev.alloc_pages(2);
        dev.write_page(p, |b| b[0] = 7);
        let v = dev.read_page(p, |b| b[0]);
        assert_eq!(v, 7);
        let s = dev.stats();
        assert_eq!((s.reads, s.writes, s.cache_hits), (1, 1, 0));
    }

    #[test]
    fn consecutive_alloc_ids() {
        let dev = Device::default_device();
        let a = dev.alloc_pages(3);
        let b = dev.alloc_pages(1);
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(3));
        assert_eq!(dev.pages_allocated(), 4);
    }

    #[test]
    fn cache_absorbs_repeat_reads() {
        let dev = Device::new(DeviceConfig::new(128, 2));
        let p = dev.alloc_pages(3);
        let ids = [PageId(p.0), PageId(p.0 + 1), PageId(p.0 + 2)];
        dev.reset_stats();
        dev.read_page(ids[0], |_| ());
        dev.read_page(ids[0], |_| ());
        assert_eq!(dev.stats().reads, 1);
        assert_eq!(dev.stats().cache_hits, 1);
        // Fill beyond capacity: 0 is evicted as LRU after 1,2 are touched.
        dev.read_page(ids[1], |_| ());
        dev.read_page(ids[2], |_| ());
        dev.read_page(ids[0], |_| ());
        assert_eq!(dev.stats().reads, 4);
    }

    #[test]
    fn clear_cache_forces_io() {
        let dev = Device::new(DeviceConfig::new(128, 4));
        let p = dev.alloc_pages(1);
        dev.read_page(p, |_| ());
        dev.clear_cache();
        dev.read_page(p, |_| ());
        assert_eq!(dev.stats().reads, 2);
    }

    #[test]
    fn update_counts_read_and_write() {
        let dev = Device::default_device();
        let p = dev.alloc_pages(1);
        dev.update_page(p, |b| b[1] = 9);
        let s = dev.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn read_unallocated_panics() {
        let dev = Device::default_device();
        dev.read_page(PageId(0), |_| ());
    }

    #[test]
    fn write_counts_as_use_in_lru() {
        // Pinned semantics: a write-through write promotes the page, so a
        // recently *written* page survives eviction over a less recently
        // *read* one.
        let dev = Device::new(DeviceConfig::new(128, 2));
        let p = dev.alloc_pages(3);
        let ids = [PageId(p.0), PageId(p.0 + 1), PageId(p.0 + 2)];
        dev.read_page(ids[0], |_| ()); // cache: {0}
        dev.read_page(ids[1], |_| ()); // cache: {0, 1}
        dev.write_page(ids[0], |b| b[0] = 1); // promotes 0; LRU is now 1
        dev.reset_stats();
        dev.read_page(ids[2], |_| ()); // evicts 1, not 0
        dev.read_page(ids[0], |_| ()); // must be a hit
        let s = dev.stats();
        assert_eq!((s.reads, s.cache_hits), (1, 1), "written page must stay resident");
        dev.reset_stats();
        dev.read_page(ids[1], |_| ()); // was evicted: pays an IO
        assert_eq!(dev.stats().reads, 1);
    }

    #[test]
    fn write_caches_an_uncached_page() {
        // A write also *inserts* into the cache: the next read of that page
        // is free, even though the write itself always pays a write IO.
        let dev = Device::new(DeviceConfig::new(128, 4));
        let p = dev.alloc_pages(1);
        dev.write_page(p, |b| b[0] = 9);
        dev.read_page(p, |_| ());
        let s = dev.stats();
        assert_eq!((s.reads, s.writes, s.cache_hits), (0, 1, 1));
    }

    #[test]
    fn mixed_read_write_traffic_accounting() {
        // update_page = read (hit if resident) + unconditional write.
        let dev = Device::new(DeviceConfig::new(128, 2));
        let p = dev.alloc_pages(1);
        dev.update_page(p, |b| b[0] = 1); // cold: 1 read, 1 write
        dev.update_page(p, |b| b[0] = 2); // warm: hit + 1 write
        let s = dev.stats();
        assert_eq!((s.reads, s.writes, s.cache_hits), (1, 2, 1));
    }

    #[test]
    fn clear_cache_then_since_scopes_cold_queries() {
        // The per-query attribution pattern of the batch engine: snapshot,
        // access, snapshot — with clear_cache() marking query boundaries.
        let dev = Device::new(DeviceConfig::new(128, 8));
        let p = dev.alloc_pages(2);
        let ids = [PageId(p.0), PageId(p.0 + 1)];
        dev.read_page(ids[0], |_| ());
        // Cold scope: cache dropped, both accesses pay IOs.
        dev.clear_cache();
        let before = dev.stats();
        dev.read_page(ids[0], |_| ());
        dev.read_page(ids[1], |_| ());
        let cold = dev.stats().since(before);
        assert_eq!((cold.reads, cold.cache_hits), (2, 0));
        // Warm scope right after: same accesses, all absorbed.
        let before = dev.stats();
        dev.read_page(ids[0], |_| ());
        dev.read_page(ids[1], |_| ());
        let warm = dev.stats().since(before);
        assert_eq!((warm.reads, warm.cache_hits), (0, 2));
        // Deltas bracket a reset without underflow (saturating since).
        let before = dev.stats();
        dev.reset_stats();
        dev.read_page(ids[0], |_| ());
        let d = dev.stats().since(before);
        assert_eq!(d.total(), 0);
    }

    #[test]
    fn cached_pages_never_exceeds_capacity() {
        let dev = Device::new(DeviceConfig::new(128, 3));
        let p = dev.alloc_pages(10);
        for i in 0..10 {
            dev.read_page(PageId(p.0 + i), |_| ());
            assert!(dev.cached_pages() <= 3);
        }
        assert_eq!(dev.cached_pages(), 3);
        dev.clear_cache();
        assert_eq!(dev.cached_pages(), 0);
    }
}
