//! An external-memory B+-tree.
//!
//! This is the paper's Section 1.2 baseline ("B-trees answer one-dimensional
//! range queries in O(log_B n + t) IOs using linear space") and the building
//! block used in Section 3 to search clustering boundaries. Keys and values
//! are fixed-size [`Record`]s; internal nodes hold only keys and child
//! pointers, leaves hold key/value pairs and are chained for range scans.

use crate::device::{DeviceHandle, PageId};
use crate::file::Record;

/// Node header: 1 tag byte, 2 count bytes, 8 next-leaf bytes (leaves only).
const HDR: usize = 16;
const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 0;
const NO_PAGE: u64 = u64::MAX;

/// External B+-tree mapping `K` to `V`.
pub struct BPlusTree<K: Record + Ord, V: Record> {
    dev: DeviceHandle,
    root: PageId,
    height: usize,
    len: usize,
    pages: usize,
    _marker: std::marker::PhantomData<(K, V)>,
}

#[derive(Clone)]
struct Leaf<K, V> {
    keys: Vec<K>,
    vals: Vec<V>,
    next: Option<PageId>,
}

#[derive(Clone)]
struct Internal<K> {
    keys: Vec<K>,          // separator keys; child i holds keys < keys[i] ... standard
    children: Vec<PageId>, // keys.len() + 1 children
}

enum Node<K, V> {
    Leaf(Leaf<K, V>),
    Internal(Internal<K>),
}

impl<K: Record + Ord + Copy, V: Record> BPlusTree<K, V> {
    fn leaf_cap(dev: &DeviceHandle) -> usize {
        let c = (dev.page_bytes() - HDR) / (K::SIZE + V::SIZE);
        assert!(c >= 4, "page too small for B+-tree leaf");
        c
    }

    fn internal_cap(dev: &DeviceHandle) -> usize {
        // k keys + (k+1) children of 8 bytes.
        let c = (dev.page_bytes() - HDR - 8) / (K::SIZE + 8);
        assert!(c >= 4, "page too small for B+-tree internal node");
        c
    }

    /// The fanout (maximum number of children of an internal node).
    pub fn fanout(dev: &DeviceHandle) -> usize {
        Self::internal_cap(dev) + 1
    }

    fn read_node(&self, id: PageId) -> Node<K, V> {
        self.dev.read_page(id, |b| {
            let tag = b[0];
            let count = u16::load(&b[1..]) as usize;
            if tag == TAG_LEAF {
                let next = u64::load(&b[3..]);
                let mut keys = Vec::with_capacity(count);
                let mut vals = Vec::with_capacity(count);
                let mut off = HDR;
                for _ in 0..count {
                    keys.push(K::load(&b[off..]));
                    off += K::SIZE;
                    vals.push(V::load(&b[off..]));
                    off += V::SIZE;
                }
                Node::Leaf(Leaf {
                    keys,
                    vals,
                    next: if next == NO_PAGE { None } else { Some(PageId(next)) },
                })
            } else {
                let mut keys = Vec::with_capacity(count);
                let mut children = Vec::with_capacity(count + 1);
                let mut off = HDR;
                for _ in 0..count {
                    keys.push(K::load(&b[off..]));
                    off += K::SIZE;
                }
                for _ in 0..=count {
                    children.push(PageId(u64::load(&b[off..])));
                    off += 8;
                }
                Node::Internal(Internal { keys, children })
            }
        })
    }

    fn write_leaf(&mut self, id: PageId, leaf: &Leaf<K, V>) {
        self.dev.write_page(id, |b| {
            b[0] = TAG_LEAF;
            (leaf.keys.len() as u16).store(&mut b[1..]);
            leaf.next.map_or(NO_PAGE, |p| p.0).store(&mut b[3..]);
            let mut off = HDR;
            for (k, v) in leaf.keys.iter().zip(&leaf.vals) {
                k.store(&mut b[off..]);
                off += K::SIZE;
                v.store(&mut b[off..]);
                off += V::SIZE;
            }
        });
    }

    fn write_internal(&mut self, id: PageId, node: &Internal<K>) {
        self.dev.write_page(id, |b| {
            b[0] = TAG_INTERNAL;
            (node.keys.len() as u16).store(&mut b[1..]);
            let mut off = HDR;
            for k in &node.keys {
                k.store(&mut b[off..]);
                off += K::SIZE;
            }
            for c in &node.children {
                c.0.store(&mut b[off..]);
                off += 8;
            }
        });
    }

    fn alloc(&mut self) -> PageId {
        self.pages += 1;
        self.dev.alloc_pages(1)
    }

    /// An empty tree.
    pub fn new(dev: &DeviceHandle) -> Self {
        let mut t = BPlusTree {
            dev: dev.clone(),
            root: PageId(NO_PAGE),
            height: 0,
            len: 0,
            pages: 0,
            _marker: Default::default(),
        };
        let root = t.alloc();
        t.root = root;
        t.write_leaf(root, &Leaf { keys: vec![], vals: vec![], next: None });
        t.height = 1;
        t
    }

    /// Bulk-load from key-sorted pairs (keys must be strictly increasing).
    /// Packs leaves to ~full, building each level with one pass.
    pub fn bulk_load(dev: &DeviceHandle, pairs: &[(K, V)]) -> Self {
        let mut t = BPlusTree {
            dev: dev.clone(),
            root: PageId(NO_PAGE),
            height: 0,
            len: pairs.len(),
            pages: 0,
            _marker: Default::default(),
        };
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load requires sorted unique keys"
        );
        let leaf_cap = Self::leaf_cap(dev);
        // Build leaves.
        let mut level: Vec<(K, PageId)> = Vec::new(); // (min key, page)
        if pairs.is_empty() {
            return Self::new(dev);
        }
        let nleaves = pairs.len().div_ceil(leaf_cap);
        let per = pairs.len().div_ceil(nleaves); // balanced fill
        let mut ids: Vec<PageId> = (0..nleaves).map(|_| t.alloc()).collect();
        for (i, chunk) in pairs.chunks(per).enumerate() {
            let leaf = Leaf {
                keys: chunk.iter().map(|p| p.0).collect(),
                vals: chunk.iter().map(|p| p.1).collect(),
                next: ids.get(i + 1).copied(),
            };
            t.write_leaf(ids[i], &leaf);
            level.push((chunk[0].0, ids[i]));
        }
        t.height = 1;
        // Build internal levels.
        let icap = Self::internal_cap(dev);
        while level.len() > 1 {
            let nnodes = level.len().div_ceil(icap + 1);
            let per = level.len().div_ceil(nnodes);
            ids = (0..nnodes).map(|_| t.alloc()).collect();
            let mut next_level = Vec::with_capacity(nnodes);
            for (i, chunk) in level.chunks(per).enumerate() {
                let node = Internal {
                    keys: chunk[1..].iter().map(|e| e.0).collect(),
                    children: chunk.iter().map(|e| e.1).collect(),
                };
                t.write_internal(ids[i], &node);
                next_level.push((chunk[0].0, ids[i]));
            }
            level = next_level;
            t.height += 1;
        }
        t.root = level[0].1;
        t
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height in levels (1 = a single leaf). IO cost of a search.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pages occupied by the tree.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// The same on-disk tree viewed through a different handle scope
    /// (metadata copied, IOs accounted to `h`). The handle must target the
    /// store this tree was built on.
    ///
    /// The view is for *reading* (`get`/`floor`/`range`): the structural
    /// metadata (root, height, len) is a snapshot, so mutating through a
    /// view on an unfrozen store would desynchronize it from the original.
    /// Updates belong to the tree the pages were built through — on a
    /// frozen store the device enforces this by panicking on writes.
    pub fn with_handle(&self, h: &DeviceHandle) -> BPlusTree<K, V> {
        assert!(h.same_store(&self.dev), "handle belongs to a different device");
        BPlusTree {
            dev: h.clone(),
            root: self.root,
            height: self.height,
            len: self.len,
            pages: self.pages,
            _marker: Default::default(),
        }
    }

    /// Serialize the tree's metadata — root, height, length, page count;
    /// the node pages themselves are captured by
    /// [`crate::Device::freeze_to_path`].
    pub fn save(&self, w: &mut crate::snapshot::MetaWriter) {
        w.u64(self.root.0);
        w.usize(self.height);
        w.usize(self.len);
        w.usize(self.pages);
    }

    /// Rebuild from metadata written by [`Self::save`], reading node pages
    /// through `dev`. Like [`Self::with_handle`], the result is a *reader*;
    /// validation rejects roots outside the store and page geometries the
    /// tree's node layout cannot fit, with typed errors instead of panics.
    pub fn load(
        dev: &DeviceHandle,
        r: &mut crate::snapshot::MetaReader,
    ) -> Result<BPlusTree<K, V>, crate::snapshot::SnapshotError> {
        let root = r.u64()?;
        let height = r.usize()?;
        let len = r.usize()?;
        let pages = r.usize()?;
        let pb = dev.page_bytes();
        let caps_ok = pb > HDR + 8
            && (pb - HDR) / (K::SIZE + V::SIZE) >= 4
            && (pb - HDR - 8) / (K::SIZE + 8) >= 4;
        if !caps_ok {
            return Err(r.error(format!(
                "{pb}-byte pages cannot hold B+-tree nodes of this key/value size"
            )));
        }
        if root >= dev.pages_allocated() {
            return Err(r.error(format!(
                "root page {root} exceeds the {} allocated pages",
                dev.pages_allocated()
            )));
        }
        if height == 0 || pages as u64 > dev.pages_allocated() {
            return Err(r.error(format!("implausible tree shape (height {height}, {pages} pages)")));
        }
        Ok(BPlusTree {
            dev: dev.clone(),
            root: PageId(root),
            height,
            len,
            pages,
            _marker: Default::default(),
        })
    }

    fn descend(&self, key: &K) -> (PageId, Vec<PageId>) {
        let mut path = Vec::with_capacity(self.height);
        let mut cur = self.root;
        loop {
            match self.read_node(cur) {
                Node::Leaf(_) => return (cur, path),
                Node::Internal(node) => {
                    path.push(cur);
                    // child index = number of separator keys <= key
                    let idx = node.keys.partition_point(|k| k <= key);
                    cur = node.children[idx];
                }
            }
        }
    }

    /// Exact-match lookup: O(log_B n) IOs.
    pub fn get(&self, key: &K) -> Option<V> {
        let (leaf_id, _) = self.descend(key);
        match self.read_node(leaf_id) {
            Node::Leaf(leaf) => leaf.keys.binary_search(key).ok().map(|i| leaf.vals[i]),
            Node::Internal(_) => unreachable!(),
        }
    }

    /// Largest key `<= key`, with its value (predecessor search).
    pub fn floor(&self, key: &K) -> Option<(K, V)> {
        // Descend as in get; if the leaf has no key <= key, the answer is the
        // max of the previous leaf — but by the separator invariant this can
        // only happen at the leftmost position overall.
        let (leaf_id, _) = self.descend(key);
        match self.read_node(leaf_id) {
            Node::Leaf(leaf) => {
                let i = leaf.keys.partition_point(|k| k <= key);
                if i == 0 {
                    None
                } else {
                    Some((leaf.keys[i - 1], leaf.vals[i - 1]))
                }
            }
            Node::Internal(_) => unreachable!(),
        }
    }

    /// Visit all pairs with `lo <= key <= hi` in key order: O(log_B n + t)
    /// IOs by walking the leaf chain.
    pub fn range(&self, lo: &K, hi: &K, mut f: impl FnMut(&K, &V)) {
        if lo > hi {
            return;
        }
        let (leaf_id, _) = self.descend(lo);
        let mut cur = Some(leaf_id);
        while let Some(id) = cur {
            match self.read_node(id) {
                Node::Leaf(leaf) => {
                    for (k, v) in leaf.keys.iter().zip(&leaf.vals) {
                        if k > hi {
                            return;
                        }
                        if k >= lo {
                            f(k, v);
                        }
                    }
                    cur = leaf.next;
                }
                Node::Internal(_) => unreachable!(),
            }
        }
    }

    /// Insert (replacing any existing value). Amortized O(log_B n) IOs.
    pub fn insert(&mut self, key: K, val: V) {
        let (leaf_id, path) = self.descend(&key);
        let mut leaf = match self.read_node(leaf_id) {
            Node::Leaf(l) => l,
            Node::Internal(_) => unreachable!(),
        };
        match leaf.keys.binary_search(&key) {
            Ok(i) => {
                leaf.vals[i] = val;
                self.write_leaf(leaf_id, &leaf);
                return;
            }
            Err(i) => {
                leaf.keys.insert(i, key);
                leaf.vals.insert(i, val);
                self.len += 1;
            }
        }
        let cap = Self::leaf_cap(&self.dev);
        if leaf.keys.len() <= cap {
            self.write_leaf(leaf_id, &leaf);
            return;
        }
        // Split the leaf.
        let mid = leaf.keys.len() / 2;
        let right = Leaf {
            keys: leaf.keys.split_off(mid),
            vals: leaf.vals.split_off(mid),
            next: leaf.next,
        };
        let right_id = self.alloc();
        leaf.next = Some(right_id);
        let sep = right.keys[0];
        self.write_leaf(leaf_id, &leaf);
        self.write_leaf(right_id, &right);
        self.insert_into_parents(path, sep, right_id);
    }

    fn insert_into_parents(&mut self, mut path: Vec<PageId>, mut sep: K, mut new_child: PageId) {
        let icap = Self::internal_cap(&self.dev);
        while let Some(id) = path.pop() {
            let mut node = match self.read_node(id) {
                Node::Internal(n) => n,
                Node::Leaf(_) => unreachable!(),
            };
            let idx = node.keys.partition_point(|k| *k <= sep);
            node.keys.insert(idx, sep);
            node.children.insert(idx + 1, new_child);
            if node.keys.len() <= icap {
                self.write_internal(id, &node);
                return;
            }
            let mid = node.keys.len() / 2;
            let up = node.keys[mid];
            let right = Internal {
                keys: node.keys.split_off(mid + 1),
                children: node.children.split_off(mid + 1),
            };
            node.keys.pop();
            let right_id = self.alloc();
            self.write_internal(id, &node);
            self.write_internal(right_id, &right);
            sep = up;
            new_child = right_id;
        }
        // Split reached the root: grow the tree.
        let new_root = self.alloc();
        let node = Internal { keys: vec![sep], children: vec![self.root, new_child] };
        self.write_internal(new_root, &node);
        self.root = new_root;
        self.height += 1;
    }
}

impl<K: Record + Ord + Copy, V: Record> BPlusTree<K, V> {
    /// Delete `key`, returning its value. Amortized O(log_B n) IOs.
    ///
    /// Underflowing leaves first borrow from a sibling, then merge; interior
    /// underflow is repaired the same way up the path, and the root
    /// collapses when it has a single child.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (leaf_id, path) = self.descend(key);
        let mut leaf = match self.read_node(leaf_id) {
            Node::Leaf(l) => l,
            Node::Internal(_) => unreachable!(),
        };
        let i = leaf.keys.binary_search(key).ok()?;
        leaf.keys.remove(i);
        let val = leaf.vals.remove(i);
        self.len -= 1;
        let min_fill = Self::leaf_cap(&self.dev) / 2;
        self.write_leaf(leaf_id, &leaf);
        if leaf.keys.len() >= min_fill || path.is_empty() {
            return Some(val);
        }
        self.repair_leaf_underflow(leaf_id, leaf, path);
        Some(val)
    }

    fn repair_leaf_underflow(&mut self, leaf_id: PageId, leaf: Leaf<K, V>, mut path: Vec<PageId>) {
        let parent_id = path.pop().expect("non-root underflow has a parent");
        let mut parent = match self.read_node(parent_id) {
            Node::Internal(p) => p,
            Node::Leaf(_) => unreachable!(),
        };
        let idx = parent.children.iter().position(|&c| c == leaf_id).expect("parent lists child");
        let min_fill = Self::leaf_cap(&self.dev) / 2;
        // Try borrowing from the richer adjacent sibling.
        let try_sides: &[usize] = if idx == 0 {
            &[1]
        } else if idx + 1 == parent.children.len() {
            &[0]
        } else {
            &[0, 1] // 0 = left, 1 = right
        };
        let mut leaf = leaf;
        for &side in try_sides {
            let sib_idx = if side == 0 { idx - 1 } else { idx + 1 };
            let sib_id = parent.children[sib_idx];
            let mut sib = match self.read_node(sib_id) {
                Node::Leaf(l) => l,
                Node::Internal(_) => unreachable!(),
            };
            if sib.keys.len() > min_fill {
                if side == 0 {
                    // Move the left sibling's max into our front.
                    let k = sib.keys.pop().unwrap();
                    let v = sib.vals.pop().unwrap();
                    leaf.keys.insert(0, k);
                    leaf.vals.insert(0, v);
                    parent.keys[idx - 1] = k;
                } else {
                    // Move the right sibling's min onto our back.
                    let k = sib.keys.remove(0);
                    let v = sib.vals.remove(0);
                    leaf.keys.push(k);
                    leaf.vals.push(v);
                    parent.keys[idx] = sib.keys[0];
                }
                self.write_leaf(sib_id, &sib);
                self.write_leaf(leaf_id, &leaf);
                self.write_internal(parent_id, &parent);
                return;
            }
        }
        // Merge with a sibling (the left one when it exists).
        let (left_idx, left_id, mut left, right_id, right) = if idx > 0 {
            let lid = parent.children[idx - 1];
            let l = match self.read_node(lid) {
                Node::Leaf(x) => x,
                _ => unreachable!(),
            };
            (idx - 1, lid, l, leaf_id, leaf)
        } else {
            let rid = parent.children[idx + 1];
            let r = match self.read_node(rid) {
                Node::Leaf(x) => x,
                _ => unreachable!(),
            };
            (idx, leaf_id, leaf, rid, r)
        };
        left.keys.extend(right.keys);
        left.vals.extend(right.vals);
        left.next = right.next;
        self.write_leaf(left_id, &left);
        let _ = right_id; // page is abandoned (no free list in the model)
        parent.keys.remove(left_idx);
        parent.children.remove(left_idx + 1);
        self.write_internal(parent_id, &parent);
        self.repair_internal_underflow(parent_id, parent, path);
    }

    fn repair_internal_underflow(
        &mut self,
        node_id: PageId,
        node: Internal<K>,
        mut path: Vec<PageId>,
    ) {
        let min_fill = Self::internal_cap(&self.dev) / 2;
        if node.keys.len() >= min_fill {
            return;
        }
        let Some(parent_id) = path.pop() else {
            // Root: collapse when it lost all separators.
            if node.keys.is_empty() {
                self.root = node.children[0];
                self.height -= 1;
            }
            return;
        };
        let mut parent = match self.read_node(parent_id) {
            Node::Internal(p) => p,
            Node::Leaf(_) => unreachable!(),
        };
        let idx = parent.children.iter().position(|&c| c == node_id).expect("parent lists child");
        let mut node = node;
        // Borrow through the parent separator.
        let try_sides: &[usize] = if idx == 0 {
            &[1]
        } else if idx + 1 == parent.children.len() {
            &[0]
        } else {
            &[0, 1]
        };
        for &side in try_sides {
            let sib_idx = if side == 0 { idx - 1 } else { idx + 1 };
            let sib_id = parent.children[sib_idx];
            let mut sib = match self.read_node(sib_id) {
                Node::Internal(s) => s,
                Node::Leaf(_) => unreachable!(),
            };
            if sib.keys.len() > min_fill {
                if side == 0 {
                    let sep = parent.keys[idx - 1];
                    let k = sib.keys.pop().unwrap();
                    let c = sib.children.pop().unwrap();
                    node.keys.insert(0, sep);
                    node.children.insert(0, c);
                    parent.keys[idx - 1] = k;
                } else {
                    let sep = parent.keys[idx];
                    let k = sib.keys.remove(0);
                    let c = sib.children.remove(0);
                    node.keys.push(sep);
                    node.children.push(c);
                    parent.keys[idx] = k;
                }
                self.write_internal(sib_id, &sib);
                self.write_internal(node_id, &node);
                self.write_internal(parent_id, &parent);
                return;
            }
        }
        // Merge with a sibling through the separator.
        let (left_idx, left_id, mut left, right) = if idx > 0 {
            let lid = parent.children[idx - 1];
            let l = match self.read_node(lid) {
                Node::Internal(x) => x,
                _ => unreachable!(),
            };
            (idx - 1, lid, l, node)
        } else {
            let rid = parent.children[idx + 1];
            let r = match self.read_node(rid) {
                Node::Internal(x) => x,
                _ => unreachable!(),
            };
            (idx, node_id, node, r)
        };
        left.keys.push(parent.keys[left_idx]);
        left.keys.extend(right.keys);
        left.children.extend(right.children);
        self.write_internal(left_id, &left);
        parent.keys.remove(left_idx);
        parent.children.remove(left_idx + 1);
        self.write_internal(parent_id, &parent);
        self.repair_internal_underflow(parent_id, parent, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceConfig};

    fn dev() -> Device {
        Device::new(DeviceConfig::new(256, 0))
    }

    #[test]
    fn bulk_load_and_get() {
        let d = dev();
        let pairs: Vec<(i64, i64)> = (0..1000).map(|i| (i * 2, i)).collect();
        let t = BPlusTree::bulk_load(&d, &pairs);
        assert_eq!(t.len(), 1000);
        for i in 0..1000 {
            assert_eq!(t.get(&(i * 2)), Some(i));
            assert_eq!(t.get(&(i * 2 + 1)), None);
        }
    }

    #[test]
    fn floor_semantics() {
        let d = dev();
        let pairs: Vec<(i64, i64)> = (0..100).map(|i| (i * 10, i)).collect();
        let t = BPlusTree::bulk_load(&d, &pairs);
        assert_eq!(t.floor(&-1), None);
        assert_eq!(t.floor(&0), Some((0, 0)));
        assert_eq!(t.floor(&9), Some((0, 0)));
        assert_eq!(t.floor(&10), Some((10, 1)));
        assert_eq!(t.floor(&995), Some((990, 99)));
    }

    #[test]
    fn range_scan_is_sorted_and_complete() {
        let d = dev();
        let pairs: Vec<(i64, i64)> = (0..500).map(|i| (i, i * i)).collect();
        let t = BPlusTree::bulk_load(&d, &pairs);
        let mut got = Vec::new();
        t.range(&100, &200, |k, v| got.push((*k, *v)));
        assert_eq!(got, (100..=200).map(|i| (i, i * i)).collect::<Vec<_>>());
    }

    #[test]
    fn range_io_is_logarithmic_plus_output() {
        let d = dev();
        let pairs: Vec<(i64, i64)> = (0..10_000).map(|i| (i, i)).collect();
        let t = BPlusTree::bulk_load(&d, &pairs);
        d.reset_stats();
        let mut cnt = 0u64;
        t.range(&5000, &5100, |_, _| cnt += 1);
        assert_eq!(cnt, 101);
        let leaf_cap = BPlusTree::<i64, i64>::leaf_cap(&d) as u64;
        let io = d.stats().reads;
        // height + ceil(t/B) + slack
        assert!(
            io <= t.height() as u64 + 101 / leaf_cap + 3,
            "io {io} too large (height {})",
            t.height()
        );
    }

    #[test]
    fn inserts_match_reference_model() {
        let d = dev();
        let mut t: BPlusTree<i64, i64> = BPlusTree::new(&d);
        let mut model = std::collections::BTreeMap::new();
        // Deterministic pseudo-random insertion order.
        let mut x: i64 = 12345;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = x % 10_000;
            t.insert(k, x);
            model.insert(k, x);
        }
        assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(*v), "key {k}");
        }
        let mut got = Vec::new();
        t.range(&i64::MIN, &i64::MAX, |k, v| got.push((*k, *v)));
        assert_eq!(got, model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn insert_after_bulk_load() {
        let d = dev();
        let pairs: Vec<(i64, i64)> = (0..100).map(|i| (i * 3, i)).collect();
        let mut t = BPlusTree::bulk_load(&d, &pairs);
        for i in 0..100 {
            t.insert(i * 3 + 1, -i);
        }
        for i in 0..100 {
            assert_eq!(t.get(&(i * 3)), Some(i));
            assert_eq!(t.get(&(i * 3 + 1)), Some(-i));
        }
    }

    #[test]
    fn remove_simple() {
        let d = dev();
        let pairs: Vec<(i64, i64)> = (0..100).map(|i| (i, i * 10)).collect();
        let mut t = BPlusTree::bulk_load(&d, &pairs);
        assert_eq!(t.remove(&50), Some(500));
        assert_eq!(t.remove(&50), None);
        assert_eq!(t.get(&50), None);
        assert_eq!(t.len(), 99);
        assert_eq!(t.get(&49), Some(490));
        assert_eq!(t.get(&51), Some(510));
    }

    #[test]
    fn remove_everything_in_order() {
        let d = dev();
        let pairs: Vec<(i64, i64)> = (0..500).map(|i| (i, i)).collect();
        let mut t = BPlusTree::bulk_load(&d, &pairs);
        for i in 0..500 {
            assert_eq!(t.remove(&i), Some(i), "remove {i}");
            assert_eq!(t.get(&i), None);
            if i + 1 < 500 {
                assert_eq!(t.get(&(i + 1)), Some(i + 1), "successor of {i} must survive");
            }
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1, "tree must collapse back to a single leaf");
    }

    #[test]
    fn remove_reverse_and_reinsert() {
        let d = dev();
        let pairs: Vec<(i64, i64)> = (0..300).map(|i| (i * 2, i)).collect();
        let mut t = BPlusTree::bulk_load(&d, &pairs);
        for i in (0..300).rev() {
            assert_eq!(t.remove(&(i * 2)), Some(i));
        }
        assert!(t.is_empty());
        for i in 0..300 {
            t.insert(i, -i);
        }
        for i in 0..300 {
            assert_eq!(t.get(&i), Some(-i));
        }
    }

    #[test]
    fn interleaved_ops_match_reference_model() {
        let d = dev();
        let mut t: BPlusTree<i64, i64> = BPlusTree::new(&d);
        let mut model = std::collections::BTreeMap::new();
        let mut x: i64 = 999;
        for step in 0..6000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = (x >> 33) % 700;
            match step % 3 {
                0 | 1 => {
                    t.insert(k, x);
                    model.insert(k, x);
                }
                _ => {
                    assert_eq!(t.remove(&k), model.remove(&k), "step {step} key {k}");
                }
            }
            if step % 503 == 0 {
                let mut got = Vec::new();
                t.range(&i64::MIN, &i64::MAX, |k, v| got.push((*k, *v)));
                assert_eq!(got, model.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>());
            }
        }
        assert_eq!(t.len(), model.len());
    }

    #[test]
    fn range_scan_correct_after_merges() {
        let d = dev();
        let pairs: Vec<(i64, i64)> = (0..400).map(|i| (i, i)).collect();
        let mut t = BPlusTree::bulk_load(&d, &pairs);
        // Punch holes to force borrows and merges across leaves.
        for i in (0..400).step_by(3) {
            t.remove(&i);
        }
        let mut got = Vec::new();
        t.range(&0, &399, |k, _| got.push(*k));
        let want: Vec<i64> = (0..400).filter(|i| i % 3 != 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_tree_behaviour() {
        let d = dev();
        let t: BPlusTree<i64, i64> = BPlusTree::new(&d);
        assert_eq!(t.get(&5), None);
        assert_eq!(t.floor(&5), None);
        let mut n = 0;
        t.range(&0, &100, |_, _| n += 1);
        assert_eq!(n, 0);
    }
}
