//! External merge sort.
//!
//! Standard two-phase sort: read runs of `mem_records` items, sort them in
//! internal memory, write sorted runs; then merge all runs with a binary
//! heap, reading each run page by page. With `R` runs and memory for
//! `R + 1` page buffers this is the textbook O(n log_{M/B} n) IO sort — the
//! construction algorithms of the paper assume its existence.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::device::DeviceHandle;
use crate::file::{Record, VecFile};

/// Sort `input` by the key extracted with `key`, returning a new sorted file.
///
/// `mem_records` bounds the number of records held in internal memory during
/// run formation (must be at least twice the page capacity).
pub fn external_sort_by_key<T, K, F>(
    dev: &DeviceHandle,
    input: &VecFile<T>,
    mem_records: usize,
    key: F,
) -> VecFile<T>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    let per = dev.records_per_page(T::SIZE);
    assert!(mem_records >= 2 * per, "need memory for at least two pages of records");
    if input.len() <= 1 {
        return VecFile::from_slice(dev, &input.read_all());
    }

    // Phase 1: sorted runs.
    let mut runs: Vec<VecFile<T>> = Vec::new();
    let mut pos = 0;
    while pos < input.len() {
        let end = (pos + mem_records).min(input.len());
        let mut buf = Vec::with_capacity(end - pos);
        input.read_range(pos..end, &mut buf);
        buf.sort_by_key(|t| key(t));
        runs.push(VecFile::from_slice(dev, &buf));
        pos = end;
    }

    // Phase 2: k-way merge (single pass; the experiments never create more
    // runs than fit one page buffer each within any reasonable M).
    struct Cursor<T> {
        buf: Vec<T>,
        buf_pos: usize,
        file_pos: usize,
    }
    let mut cursors: Vec<Cursor<T>> =
        runs.iter().map(|_| Cursor { buf: Vec::new(), buf_pos: 0, file_pos: 0 }).collect();
    let refill = |c: &mut Cursor<T>, run: &VecFile<T>| {
        c.buf.clear();
        c.buf_pos = 0;
        let end = (c.file_pos + per).min(run.len());
        if c.file_pos < end {
            run.read_range(c.file_pos..end, &mut c.buf);
            c.file_pos = end;
        }
    };
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter_mut().enumerate() {
        refill(c, &runs[i]);
        if !c.buf.is_empty() {
            heap.push(Reverse((key(&c.buf[0]), i)));
        }
    }
    let mut out = crate::file::FileBuilder::new(dev);
    while let Some(Reverse((_, i))) = heap.pop() {
        let item;
        {
            let c = &mut cursors[i];
            item = c.buf[c.buf_pos];
            c.buf_pos += 1;
            if c.buf_pos == c.buf.len() {
                refill(c, &runs[i]);
            }
            if c.buf_pos < c.buf.len() {
                heap.push(Reverse((key(&c.buf[c.buf_pos]), i)));
            }
        }
        out.push(item);
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceConfig};

    #[test]
    fn sorts_reverse_input() {
        let dev = Device::new(DeviceConfig::new(64, 0)); // 8 i64/page
        let data: Vec<i64> = (0..500).rev().collect();
        let f = VecFile::from_slice(&dev, &data);
        let sorted = external_sort_by_key(&dev, &f, 32, |x| *x);
        assert_eq!(sorted.read_all(), (0..500).collect::<Vec<i64>>());
    }

    #[test]
    fn stable_on_already_sorted() {
        let dev = Device::new(DeviceConfig::new(64, 0));
        let data: Vec<i64> = (0..100).collect();
        let f = VecFile::from_slice(&dev, &data);
        let sorted = external_sort_by_key(&dev, &f, 16, |x| *x);
        assert_eq!(sorted.read_all(), data);
    }

    #[test]
    fn sorts_by_extracted_key() {
        let dev = Device::new(DeviceConfig::new(128, 0));
        let data: Vec<(i64, i64)> = (0..200).map(|i| (i, 199 - i)).collect();
        let f = VecFile::from_slice(&dev, &data);
        let sorted = external_sort_by_key(&dev, &f, 32, |p| p.1);
        let got = sorted.read_all();
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(got.len(), 200);
    }

    #[test]
    fn handles_tiny_inputs() {
        let dev = Device::new(DeviceConfig::new(64, 0));
        let f = VecFile::from_slice(&dev, &[42i64]);
        let sorted = external_sort_by_key(&dev, &f, 16, |x| *x);
        assert_eq!(sorted.read_all(), vec![42]);
        let e: VecFile<i64> = VecFile::from_slice(&dev, &[]);
        let sorted = external_sort_by_key(&dev, &e, 16, |x| *x);
        assert!(sorted.is_empty());
    }

    #[test]
    fn pseudo_random_large() {
        let dev = Device::new(DeviceConfig::new(64, 0));
        let mut x = 7u64;
        let data: Vec<i64> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
                (x >> 16) as i64 % 1000
            })
            .collect();
        let f = VecFile::from_slice(&dev, &data);
        let sorted = external_sort_by_key(&dev, &f, 64, |x| *x);
        let mut expect = data.clone();
        expect.sort();
        assert_eq!(sorted.read_all(), expect);
    }
}
