//! # lcrs-workloads — deterministic workload and query generators
//!
//! Point distributions and query generators used by the benchmark harness
//! (DESIGN.md §5). Everything is seeded, so every experiment is exactly
//! reproducible. The `diagonal` workload is the adversarial input of the
//! paper's Section 1.2: N points on a line, with queries bounded by a slight
//! perturbation of it, which drives quad-tree/kd-tree style indexes to
//! Ω(n) IOs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 2D point distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dist2 {
    /// Uniform in `[-range, range]²`.
    Uniform,
    /// Sum of three uniforms per coordinate (bell-shaped).
    Gaussianish,
    /// 32 uniform cluster centers with tight uniform clouds.
    Clustered,
    /// Points on the main diagonal (the §1.2 adversarial input).
    Diagonal,
    /// Points on a circle (convex position — every point is extreme).
    Circle,
}

/// Generate `n` 2D points with |coordinate| ≤ `range`.
pub fn points2(dist: Dist2, n: usize, range: i64, seed: u64) -> Vec<(i64, i64)> {
    assert!(range > 4);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2d2d);
    let mut u = |r: i64| rng.gen_range(-r..=r);
    match dist {
        Dist2::Uniform => (0..n).map(|_| (u(range), u(range))).collect(),
        Dist2::Gaussianish => (0..n)
            .map(|_| {
                let mut g = || (u(range) + u(range) + u(range)) / 3;
                let x = g();
                let y = g();
                (x, y)
            })
            .collect(),
        Dist2::Clustered => {
            let centers: Vec<(i64, i64)> =
                (0..32).map(|_| (u(range * 9 / 10), u(range * 9 / 10))).collect();
            (0..n)
                .map(|i| {
                    let c = centers[i % centers.len()];
                    (c.0 + u(range / 50), c.1 + u(range / 50))
                })
                .collect()
        }
        Dist2::Diagonal => {
            // Distinct points marching up the diagonal.
            let step = ((2 * range) / (n.max(1) as i64 + 1)).max(1);
            (0..n)
                .map(|i| (-range + step * (i as i64 + 1), -range + step * (i as i64 + 1)))
                .collect()
        }
        Dist2::Circle => (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                let x = (t.cos() * range as f64 * 0.9) as i64;
                let y = (t.sin() * range as f64 * 0.9) as i64;
                (x, y)
            })
            .collect(),
    }
}

/// 3D point distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dist3 {
    Uniform,
    Clustered,
    /// Points near the plane z = x + y (3D analogue of `Diagonal`).
    Slab,
}

/// Generate `n` 3D points with |x|,|y| ≤ `range` (and |z| ≤ 2·range).
pub fn points3(dist: Dist3, n: usize, range: i64, seed: u64) -> Vec<(i64, i64, i64)> {
    assert!(range > 4);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3d3d);
    let mut u = |r: i64| rng.gen_range(-r..=r);
    match dist {
        Dist3::Uniform => (0..n).map(|_| (u(range), u(range), u(range))).collect(),
        Dist3::Clustered => {
            let centers: Vec<(i64, i64, i64)> = (0..16)
                .map(|_| (u(range * 9 / 10), u(range * 9 / 10), u(range * 9 / 10)))
                .collect();
            (0..n)
                .map(|i| {
                    let c = centers[i % centers.len()];
                    (c.0 + u(range / 40), c.1 + u(range / 40), c.2 + u(range / 40))
                })
                .collect()
        }
        Dist3::Slab => (0..n)
            .map(|_| {
                let (x, y) = (u(range / 2), u(range / 2));
                (x, y, x + y + u(8))
            })
            .collect(),
    }
}

/// A halfplane query `y <= m·x + c` with exactly `t` points of `pts`
/// strictly below it (exact when the t-th projected value is unique).
/// Slope is drawn from `[-slope..slope]`.
pub fn halfplane_with_selectivity(
    pts: &[(i64, i64)],
    t: usize,
    slope: i64,
    seed: u64,
) -> (i64, i64) {
    assert!(t <= pts.len() && !pts.is_empty());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e11);
    let m = rng.gen_range(-slope..=slope);
    let mut vals: Vec<i128> =
        pts.iter().map(|&(x, y)| y as i128 - m as i128 * x as i128).collect();
    vals.sort_unstable();
    let c = if t == 0 {
        vals[0] - 1
    } else if t == pts.len() {
        vals[t - 1] + 1
    } else {
        vals[t]
    };
    (m, i64::try_from(c).expect("intercept fits i64"))
}

/// Number of points strictly below `y = m·x + c`.
pub fn count_below2(pts: &[(i64, i64)], m: i64, c: i64) -> usize {
    pts.iter()
        .filter(|&&(x, y)| (y as i128) < m as i128 * x as i128 + c as i128)
        .count()
}

/// A halfspace query `z <= u·x + v·y + w` with exactly-ish `t` points
/// strictly below.
pub fn halfspace3_with_selectivity(
    pts: &[(i64, i64, i64)],
    t: usize,
    slope: i64,
    seed: u64,
) -> (i64, i64, i64) {
    assert!(t <= pts.len() && !pts.is_empty());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e33);
    let (u, v) = (rng.gen_range(-slope..=slope), rng.gen_range(-slope..=slope));
    let mut vals: Vec<i128> = pts
        .iter()
        .map(|&(x, y, z)| z as i128 - u as i128 * x as i128 - v as i128 * y as i128)
        .collect();
    vals.sort_unstable();
    let w = if t == 0 {
        vals[0] - 1
    } else if t == pts.len() {
        vals[t - 1] + 1
    } else {
        vals[t]
    };
    (u, v, i64::try_from(w).expect("offset fits i64"))
}

/// Number of points strictly below `z = u·x + v·y + w`.
pub fn count_below3(pts: &[(i64, i64, i64)], u: i64, v: i64, w: i64) -> usize {
    pts.iter()
        .filter(|&&(x, y, z)| {
            (z as i128) < u as i128 * x as i128 + v as i128 * y as i128 + w as i128
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_is_exact_2d() {
        let pts = points2(Dist2::Uniform, 500, 100_000, 1);
        for t in [0usize, 1, 10, 250, 499, 500] {
            let (m, c) = halfplane_with_selectivity(&pts, t, 50, t as u64);
            assert_eq!(count_below2(&pts, m, c), t, "t={t}");
        }
    }

    #[test]
    fn selectivity_is_exact_3d() {
        let pts = points3(Dist3::Uniform, 400, 50_000, 2);
        for t in [0usize, 5, 200, 400] {
            let (u, v, w) = halfspace3_with_selectivity(&pts, t, 30, t as u64);
            assert_eq!(count_below3(&pts, u, v, w), t, "t={t}");
        }
    }

    #[test]
    fn distributions_have_expected_shapes() {
        let d = points2(Dist2::Diagonal, 100, 1 << 20, 3);
        assert!(d.iter().all(|&(x, y)| x == y));
        let mut dd = d.clone();
        dd.dedup();
        assert_eq!(dd.len(), 100, "diagonal points must be distinct");
        let c = points2(Dist2::Circle, 64, 1 << 20, 4);
        assert_eq!(c.len(), 64);
        let s = points3(Dist3::Slab, 50, 10_000, 5);
        assert!(s.iter().all(|&(x, y, z)| (z - x - y).abs() <= 8));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(points2(Dist2::Uniform, 50, 1000, 7), points2(Dist2::Uniform, 50, 1000, 7));
        assert_eq!(
            points3(Dist3::Clustered, 50, 1000, 7),
            points3(Dist3::Clustered, 50, 1000, 7)
        );
    }

    #[test]
    fn coordinates_respect_range() {
        for dist in [Dist2::Uniform, Dist2::Gaussianish, Dist2::Clustered, Dist2::Circle] {
            let pts = points2(dist, 300, 1 << 20, 9);
            assert!(pts.iter().all(|&(x, y)| x.abs() <= 1 << 20 && y.abs() <= 1 << 20));
        }
    }
}
