//! # lcrs-workloads — deterministic workload and query generators
//!
//! Point distributions and query generators used by the benchmark harness
//! (DESIGN.md §5). Everything is seeded, so every experiment is exactly
//! reproducible. The `diagonal` workload is the adversarial input of the
//! paper's Section 1.2: N points on a line, with queries bounded by a slight
//! perturbation of it, which drives quad-tree/kd-tree style indexes to
//! Ω(n) IOs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 2D point distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dist2 {
    /// Uniform in `[-range, range]²`.
    Uniform,
    /// Sum of three uniforms per coordinate (bell-shaped).
    Gaussianish,
    /// 32 uniform cluster centers with tight uniform clouds.
    Clustered,
    /// Points on the main diagonal (the §1.2 adversarial input).
    Diagonal,
    /// Points on a circle (convex position — every point is extreme).
    Circle,
}

/// Generate `n` 2D points with |coordinate| ≤ `range`.
pub fn points2(dist: Dist2, n: usize, range: i64, seed: u64) -> Vec<(i64, i64)> {
    assert!(range > 4);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2d2d);
    let mut u = |r: i64| rng.gen_range(-r..=r);
    match dist {
        Dist2::Uniform => (0..n).map(|_| (u(range), u(range))).collect(),
        Dist2::Gaussianish => (0..n)
            .map(|_| {
                let mut g = || (u(range) + u(range) + u(range)) / 3;
                let x = g();
                let y = g();
                (x, y)
            })
            .collect(),
        Dist2::Clustered => {
            let centers: Vec<(i64, i64)> =
                (0..32).map(|_| (u(range * 9 / 10), u(range * 9 / 10))).collect();
            (0..n)
                .map(|i| {
                    let c = centers[i % centers.len()];
                    (c.0 + u(range / 50), c.1 + u(range / 50))
                })
                .collect()
        }
        Dist2::Diagonal => {
            // Distinct points marching up the diagonal.
            let step = ((2 * range) / (n.max(1) as i64 + 1)).max(1);
            (0..n)
                .map(|i| (-range + step * (i as i64 + 1), -range + step * (i as i64 + 1)))
                .collect()
        }
        Dist2::Circle => (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                let x = (t.cos() * range as f64 * 0.9) as i64;
                let y = (t.sin() * range as f64 * 0.9) as i64;
                (x, y)
            })
            .collect(),
    }
}

/// 3D point distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dist3 {
    Uniform,
    Clustered,
    /// Points near the plane z = x + y (3D analogue of `Diagonal`).
    Slab,
}

/// Generate `n` 3D points with |x|,|y| ≤ `range` (and |z| ≤ 2·range).
pub fn points3(dist: Dist3, n: usize, range: i64, seed: u64) -> Vec<(i64, i64, i64)> {
    assert!(range > 4);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3d3d);
    let mut u = |r: i64| rng.gen_range(-r..=r);
    match dist {
        Dist3::Uniform => (0..n).map(|_| (u(range), u(range), u(range))).collect(),
        Dist3::Clustered => {
            let centers: Vec<(i64, i64, i64)> = (0..16)
                .map(|_| (u(range * 9 / 10), u(range * 9 / 10), u(range * 9 / 10)))
                .collect();
            (0..n)
                .map(|i| {
                    let c = centers[i % centers.len()];
                    (c.0 + u(range / 40), c.1 + u(range / 40), c.2 + u(range / 40))
                })
                .collect()
        }
        Dist3::Slab => (0..n)
            .map(|_| {
                let (x, y) = (u(range / 2), u(range / 2));
                (x, y, x + y + u(8))
            })
            .collect(),
    }
}

/// A halfplane query `y <= m·x + c` with exactly `t` points of `pts`
/// strictly below it (exact when the t-th projected value is unique).
/// Slope is drawn from `[-slope..slope]`.
pub fn halfplane_with_selectivity(
    pts: &[(i64, i64)],
    t: usize,
    slope: i64,
    seed: u64,
) -> (i64, i64) {
    assert!(t <= pts.len() && !pts.is_empty());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e11);
    let m = rng.gen_range(-slope..=slope);
    let mut vals: Vec<i128> = pts.iter().map(|&(x, y)| y as i128 - m as i128 * x as i128).collect();
    vals.sort_unstable();
    let c = if t == 0 {
        vals[0] - 1
    } else if t == pts.len() {
        vals[t - 1] + 1
    } else {
        vals[t]
    };
    (m, i64::try_from(c).expect("intercept fits i64"))
}

/// Number of points strictly below `y = m·x + c`.
pub fn count_below2(pts: &[(i64, i64)], m: i64, c: i64) -> usize {
    pts.iter().filter(|&&(x, y)| (y as i128) < m as i128 * x as i128 + c as i128).count()
}

/// A halfspace query `z <= u·x + v·y + w` with exactly-ish `t` points
/// strictly below.
pub fn halfspace3_with_selectivity(
    pts: &[(i64, i64, i64)],
    t: usize,
    slope: i64,
    seed: u64,
) -> (i64, i64, i64) {
    assert!(t <= pts.len() && !pts.is_empty());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e33);
    let (u, v) = (rng.gen_range(-slope..=slope), rng.gen_range(-slope..=slope));
    let mut vals: Vec<i128> = pts
        .iter()
        .map(|&(x, y, z)| z as i128 - u as i128 * x as i128 - v as i128 * y as i128)
        .collect();
    vals.sort_unstable();
    let w = if t == 0 {
        vals[0] - 1
    } else if t == pts.len() {
        vals[t - 1] + 1
    } else {
        vals[t]
    };
    (u, v, i64::try_from(w).expect("offset fits i64"))
}

/// Number of points strictly below `z = u·x + v·y + w`.
pub fn count_below3(pts: &[(i64, i64, i64)], u: i64, v: i64, w: i64) -> usize {
    pts.iter()
        .filter(|&&(x, y, z)| {
            (z as i128) < u as i128 * x as i128 + v as i128 * y as i128 + w as i128
        })
        .count()
}

/// Shape of a multi-query batch (DESIGN.md §7). Batches model production
/// traffic, where the interesting axis is how much page locality
/// consecutive queries share — the two shapes bracket it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchShape {
    /// `distinct` base queries sampled under a Zipf-like popularity law
    /// with exponent `s` (weight of the i-th base query ∝ 1/(i+1)^s):
    /// heavy repetition of a few hot queries, the cache-friendliest
    /// traffic a real workload produces.
    ZipfRepeat { distinct: usize, s: f64 },
    /// All-distinct parallel halfplanes with selectivities sweeping
    /// 0..=n in submission order — a sorted scan across the point set
    /// where consecutive queries share most of their output pages.
    SortedSweep,
}

/// Thresholds of a sorted-sweep batch over projected values: entry `j`
/// admits exactly `t = j·n/(len-1)` of the values strictly below it
/// (`vals` need not be sorted; endpoints over/undershoot by 1 like the
/// single-query selectivity generators).
fn sweep_thresholds(mut vals: Vec<i128>, len: usize) -> Vec<i128> {
    let n = vals.len();
    vals.sort_unstable();
    (0..len)
        .map(|j| {
            let t = if len <= 1 { 0 } else { j * n / (len - 1) };
            if t == 0 {
                vals[0] - 1
            } else if t == n {
                vals[t - 1] + 1
            } else {
                vals[t]
            }
        })
        .collect()
}

/// Sample `len` indices into `distinct` items under the Zipf(s) law.
fn zipf_indices(rng: &mut StdRng, distinct: usize, s: f64, len: usize) -> Vec<usize> {
    assert!(distinct > 0);
    let cum: Vec<f64> = (0..distinct)
        .scan(0.0f64, |acc, i| {
            *acc += 1.0 / ((i + 1) as f64).powf(s);
            Some(*acc)
        })
        .collect();
    let total = *cum.last().unwrap();
    (0..len)
        .map(|_| {
            let r = rng.gen_range(0.0..total);
            cum.partition_point(|&c| c <= r).min(distinct - 1)
        })
        .collect()
}

/// A batch of `len` halfplane queries `(m, c)` over `pts`, shaped by
/// `shape`. Deterministic in `(pts, shape, len, slope, seed)`.
pub fn halfplane_batch(
    pts: &[(i64, i64)],
    shape: BatchShape,
    len: usize,
    slope: i64,
    seed: u64,
) -> Vec<(i64, i64)> {
    assert!(!pts.is_empty());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c2);
    match shape {
        BatchShape::ZipfRepeat { distinct, s } => {
            let base: Vec<(i64, i64)> = (0..distinct)
                .map(|i| {
                    let t = (i + 1) * pts.len() / (distinct + 1);
                    halfplane_with_selectivity(pts, t, slope, seed ^ ((i as u64) << 8))
                })
                .collect();
            zipf_indices(&mut rng, distinct, s, len).into_iter().map(|i| base[i]).collect()
        }
        BatchShape::SortedSweep => {
            // One shared slope; intercepts at evenly spaced selectivities,
            // emitted in ascending order.
            let m = rng.gen_range(-slope..=slope);
            let vals: Vec<i128> =
                pts.iter().map(|&(x, y)| y as i128 - m as i128 * x as i128).collect();
            sweep_thresholds(vals, len)
                .into_iter()
                .map(|c| (m, i64::try_from(c).expect("intercept fits i64")))
                .collect()
        }
    }
}

/// A batch of `len` halfspace queries `(u, v, w)` over 3D `pts`, shaped by
/// `shape`. Deterministic in `(pts, shape, len, slope, seed)`.
pub fn halfspace3_batch(
    pts: &[(i64, i64, i64)],
    shape: BatchShape,
    len: usize,
    slope: i64,
    seed: u64,
) -> Vec<(i64, i64, i64)> {
    assert!(!pts.is_empty());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c3);
    match shape {
        BatchShape::ZipfRepeat { distinct, s } => {
            let base: Vec<(i64, i64, i64)> = (0..distinct)
                .map(|i| {
                    let t = (i + 1) * pts.len() / (distinct + 1);
                    halfspace3_with_selectivity(pts, t, slope, seed ^ ((i as u64) << 8))
                })
                .collect();
            zipf_indices(&mut rng, distinct, s, len).into_iter().map(|i| base[i]).collect()
        }
        BatchShape::SortedSweep => {
            let (u, v) = (rng.gen_range(-slope..=slope), rng.gen_range(-slope..=slope));
            let vals: Vec<i128> = pts
                .iter()
                .map(|&(x, y, z)| z as i128 - u as i128 * x as i128 - v as i128 * y as i128)
                .collect();
            sweep_thresholds(vals, len)
                .into_iter()
                .map(|w| (u, v, i64::try_from(w).expect("offset fits i64")))
                .collect()
        }
    }
}

/// A batch of `len` k-NN queries `(x, y, k)` over 2D `pts`, shaped by
/// `shape`. Centers come from the point set itself (so queries land where
/// the data lives); `k` is fixed per batch. Deterministic in
/// `(pts, shape, len, k, seed)`.
pub fn knn_batch(
    pts: &[(i64, i64)],
    shape: BatchShape,
    len: usize,
    k: usize,
    seed: u64,
) -> Vec<(i64, i64, usize)> {
    assert!(!pts.is_empty());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c4);
    match shape {
        BatchShape::ZipfRepeat { distinct, s } => {
            // `distinct` hot centers spread evenly through the x-sorted
            // point set, repeated under the Zipf law.
            let mut order: Vec<usize> = (0..pts.len()).collect();
            order.sort_by_key(|&i| pts[i]);
            let base: Vec<(i64, i64)> =
                (0..distinct).map(|i| pts[order[(i + 1) * pts.len() / (distinct + 1)]]).collect();
            zipf_indices(&mut rng, distinct, s, len)
                .into_iter()
                .map(|i| (base[i].0, base[i].1, k))
                .collect()
        }
        BatchShape::SortedSweep => {
            // All-distinct centers sweeping the point set in (x, y) order —
            // consecutive queries probe neighboring regions.
            let mut centers: Vec<(i64, i64)> = (0..len)
                .map(|j| {
                    let t = if len <= 1 { 0 } else { j * (pts.len() - 1) / (len - 1) };
                    pts[t]
                })
                .collect();
            centers.sort_unstable();
            centers.into_iter().map(|(x, y)| (x, y, k)).collect()
        }
    }
}

/// A seeded batch of `len` *mixed* halfplane queries `(m, c, inclusive)`:
/// slopes drawn from `[-slope..slope]`, selectivities spanning empty
/// through roughly half the input on a pseudo-random schedule, strict and
/// inclusive variants interleaved. This is the oracle workload of
/// `tests/cross_structure.rs` — diverse enough that a silent answer
/// corruption in any structure (in-memory or reopened from a snapshot)
/// collides with the linear-scan reference. Deterministic in
/// `(pts, len, slope, seed)`.
pub fn halfplane_mixed(
    pts: &[(i64, i64)],
    len: usize,
    slope: i64,
    seed: u64,
) -> Vec<(i64, i64, bool)> {
    assert!(!pts.is_empty());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c5);
    (0..len)
        .map(|i| {
            // Selectivity schedule: sprinkle exact edge cases among
            // random targets up to n/2.
            let t = match i % 8 {
                0 => 0,
                1 => 1,
                2 => pts.len().min(2),
                _ => rng.gen_range(0..=pts.len() / 2),
            };
            let (m, c) = halfplane_with_selectivity(pts, t, slope, seed ^ ((i as u64) << 7));
            (m, c, rng.gen_range(0u32..2) == 1)
        })
        .collect()
}

/// A seeded batch of `len` *mixed* halfspace queries `(u, v, w, inclusive)`
/// over 3D `pts` — the 3D leg of the oracle/planner workload, mirroring
/// [`halfplane_mixed`]: slopes from `[-slope..slope]`, selectivities from
/// exact edge cases up to roughly half the input, strictness interleaved.
/// Deterministic in `(pts, len, slope, seed)`.
pub fn halfspace3_mixed(
    pts: &[(i64, i64, i64)],
    len: usize,
    slope: i64,
    seed: u64,
) -> Vec<(i64, i64, i64, bool)> {
    assert!(!pts.is_empty());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c6);
    (0..len)
        .map(|i| {
            let t = match i % 8 {
                0 => 0,
                1 => 1,
                2 => pts.len().min(2),
                _ => rng.gen_range(0..=pts.len() / 2),
            };
            let (u, v, w) = halfspace3_with_selectivity(pts, t, slope, seed ^ ((i as u64) << 7));
            (u, v, w, rng.gen_range(0u32..2) == 1)
        })
        .collect()
}

/// A seeded batch of `len` *narrow* halfplane queries `(m, c, inclusive)`:
/// every query admits at most `max_t` points (selectivity drawn uniformly
/// from `0..=max_t`), slopes drawn independently from `[-slope..slope]`.
/// This is the shard-stressing workload of DESIGN.md §11 — narrow
/// constraints with diverse orientations cross few cells of a balanced
/// spatial partition, so geometric routing (`shards_intersecting`) should
/// prune most shards; broad-selectivity batches are the adversarial
/// opposite. Deterministic in `(pts, len, slope, max_t, seed)`.
pub fn halfplane_narrow(
    pts: &[(i64, i64)],
    len: usize,
    slope: i64,
    max_t: usize,
    seed: u64,
) -> Vec<(i64, i64, bool)> {
    assert!(!pts.is_empty() && max_t <= pts.len());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c8);
    (0..len)
        .map(|i| {
            let t = rng.gen_range(0..=max_t);
            let (m, c) = halfplane_with_selectivity(pts, t, slope, seed ^ ((i as u64) << 9));
            (m, c, rng.gen_range(0u32..2) == 1)
        })
        .collect()
}

/// A seeded batch of `len` *mixed* k-NN queries `(x, y, k)` over 2D `pts` —
/// the k-NN leg of the oracle/planner workload: centers jittered around
/// data points (queries land where the data lives, plus some that do not),
/// `k` spanning 1 up to `k_max`. Deterministic in `(pts, len, k_max, seed)`.
pub fn knn_mixed(
    pts: &[(i64, i64)],
    len: usize,
    k_max: usize,
    seed: u64,
) -> Vec<(i64, i64, usize)> {
    assert!(!pts.is_empty() && k_max >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c7);
    (0..len)
        .map(|_| {
            let (px, py) = pts[rng.gen_range(0..pts.len())];
            let jitter = 1 + k_max as i64;
            let x = px + rng.gen_range(-jitter..=jitter);
            let y = py + rng.gen_range(-jitter..=jitter);
            (x, y, 1 + rng.gen_range(0..k_max))
        })
        .collect()
}

/// A seeded batch of `len` *mixed* disk queries `(x, y, r2, inclusive)`
/// over 2D `pts` — the circular-range leg of the oracle workload
/// (DESIGN.md §15), mirroring [`halfplane_mixed`]'s diversity contract:
/// centers jittered around data points (queries land where the data
/// lives), squared radii spanning degenerate (`r2 = 0`, only an exact
/// center hit) through `r_max²`, with every 8th query's radius set to the
/// *exact* squared distance of a data point so the strict/inclusive
/// boundary distinction is exercised, strictness interleaved.
/// Deterministic and prefix-stable in `(pts, len, r_max, seed)`.
pub fn disk_mixed(
    pts: &[(i64, i64)],
    len: usize,
    r_max: i64,
    seed: u64,
) -> Vec<(i64, i64, i64, bool)> {
    assert!(!pts.is_empty() && (1..=1 << 30).contains(&r_max));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd15c);
    (0..len)
        .map(|i| {
            let (px, py) = pts[rng.gen_range(0..pts.len())];
            let jitter = r_max / 4 + 1;
            let x = px.saturating_add(rng.gen_range(-jitter..=jitter));
            let y = py.saturating_add(rng.gen_range(-jitter..=jitter));
            let r2 = match i % 8 {
                0 => 0,
                1 => {
                    // Boundary case: squared distance to a data point, so
                    // strict and inclusive variants genuinely differ.
                    let (qx, qy) = pts[rng.gen_range(0..pts.len())];
                    let (dx, dy) = (x as i128 - qx as i128, y as i128 - qy as i128);
                    i64::try_from(dx * dx + dy * dy).unwrap_or(r_max * r_max)
                }
                _ => {
                    let r = rng.gen_range(1..=r_max);
                    r * r
                }
            };
            (x, y, r2, rng.gen_range(0u32..2) == 1)
        })
        .collect()
}

/// A seeded batch of `len` *mixed* aggregate queries
/// `(m, c, inclusive, sum)` over 2D `pts` — the count/sum leg of the
/// oracle workload (DESIGN.md §15). The halfplane material mirrors
/// [`halfplane_mixed`] exactly (same selectivity schedule from empty
/// through half the input, strictness interleaved); the trailing flag
/// alternates deterministically between count (`false`) and weight-sum
/// (`true`) so both aggregate classes get equal coverage. Deterministic
/// and prefix-stable in `(pts, len, slope, seed)`.
pub fn aggregate_mixed(
    pts: &[(i64, i64)],
    len: usize,
    slope: i64,
    seed: u64,
) -> Vec<(i64, i64, bool, bool)> {
    assert!(!pts.is_empty());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa66a);
    (0..len)
        .map(|i| {
            let t = match i % 8 {
                0 => 0,
                1 => 1,
                2 => pts.len().min(2),
                _ => rng.gen_range(0..=pts.len() / 2),
            };
            let (m, c) = halfplane_with_selectivity(pts, t, slope, seed ^ ((i as u64) << 7));
            (m, c, rng.gen_range(0u32..2) == 1, i % 2 == 1)
        })
        .collect()
}

/// A seeded batch of `len` *mixed* top-k queries `(m, c, k)` over 2D
/// `pts` — the ranked-reporting leg of the oracle workload
/// (DESIGN.md §15): candidate thresholds follow the
/// [`halfplane_mixed`] selectivity schedule (so some queries admit no
/// candidate at all and some admit far more than `k`, exercising both
/// truncation and short answers), `k` drawn from `1..=k_max`.
/// Deterministic and prefix-stable in `(pts, len, slope, k_max, seed)`.
pub fn topk_mixed(
    pts: &[(i64, i64)],
    len: usize,
    slope: i64,
    k_max: usize,
    seed: u64,
) -> Vec<(i64, i64, usize)> {
    assert!(!pts.is_empty() && k_max >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x709b);
    (0..len)
        .map(|i| {
            let t = match i % 8 {
                0 => 0,
                1 => 1,
                2 => pts.len().min(2),
                _ => rng.gen_range(0..=pts.len() / 2),
            };
            let (m, c) = halfplane_with_selectivity(pts, t, slope, seed ^ ((i as u64) << 7));
            (m, c, 1 + rng.gen_range(0..k_max))
        })
        .collect()
}

/// A sequential *page-sweep* trace of `len` halfplane queries `(m, c)`:
/// one shared slope, selectivity climbing by a constant `stride` per query
/// from 0 (clamped at n), emitted in submission order. Consecutive answer
/// sets are nested prefixes growing `stride` records at a time, so an
/// index laid out in rank order reads its pages strictly front to back
/// across the batch — the prefetch-friendliest traffic there is (the
/// `exp_mmap` readahead showcase), the opposite extreme from the cold
/// random access of a wide [`BatchShape::ZipfRepeat`]. Differs from
/// [`BatchShape::SortedSweep`] in pacing: the sweep spreads `len` queries
/// over the whole selectivity range, the page sweep advances a fixed
/// number of *records* (hence pages) per query. Deterministic in
/// `(pts, len, stride, slope, seed)`.
pub fn halfplane_page_sweep(
    pts: &[(i64, i64)],
    len: usize,
    stride: usize,
    slope: i64,
    seed: u64,
) -> Vec<(i64, i64)> {
    assert!(!pts.is_empty() && stride > 0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c9);
    let m = rng.gen_range(-slope..=slope);
    let mut vals: Vec<i128> = pts.iter().map(|&(x, y)| y as i128 - m as i128 * x as i128).collect();
    vals.sort_unstable();
    let n = vals.len();
    (0..len)
        .map(|j| {
            let t = (j * stride).min(n);
            let c = if t == 0 {
                vals[0] - 1
            } else if t == n {
                vals[n - 1] + 1
            } else {
                vals[t]
            };
            (m, i64::try_from(c).expect("intercept fits i64"))
        })
        .collect()
}

/// One operation of a live-update trace (the workload of the engine's
/// `LiveIndex`: mutation and queries interleaved on one timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Insert a point under a fresh tag (tags are assigned sequentially,
    /// so every insert in a trace carries a distinct one).
    Insert { x: i64, y: i64, tag: u64 },
    /// Delete a previously inserted, still-live tag.
    Delete { tag: u64 },
    /// Report all live points below `y = m·x + c`.
    Query { m: i64, c: i64, inclusive: bool },
}

/// Relative op weights of a [`live_trace`]. Weights need not sum to
/// anything particular; `inserts` must be positive (a delete drawn while
/// nothing is live falls back to an insert).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceMix {
    pub inserts: u32,
    pub deletes: u32,
    pub queries: u32,
}

impl Default for TraceMix {
    /// The serving mix the live-tier experiments run: mostly ingest, with
    /// enough deletes to exercise tombstones and enough queries to probe
    /// every intermediate state.
    fn default() -> Self {
        TraceMix { inserts: 5, deletes: 2, queries: 3 }
    }
}

/// A seeded interleaved insert/delete/query trace of `len` operations.
///
/// Inserts draw coordinates uniformly from `[-range, range]²` and tag
/// points `0, 1, 2, …` in insertion order; deletes target a uniformly
/// random *live* tag (never a missing or already-deleted one); queries
/// draw slopes from `[-slope..slope]` and intercepts wide enough to span
/// empty through everything, strictness interleaved. Deterministic in
/// `(mix, len, range, slope, seed)` — the pinning test keeps it that way,
/// so a trace name plus a seed fully identifies an experiment.
pub fn live_trace(mix: TraceMix, len: usize, range: i64, slope: i64, seed: u64) -> Vec<TraceOp> {
    assert!(range > 4 && slope >= 0 && mix.inserts > 0);
    let total = u64::from(mix.inserts) + u64::from(mix.deletes) + u64::from(mix.queries);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x117e);
    let mut live: Vec<u64> = Vec::new();
    let mut next_tag = 0u64;
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = rng.gen_range(0..total);
        let op = if roll < u64::from(mix.inserts) + u64::from(mix.deletes) {
            let delete = roll >= u64::from(mix.inserts) && !live.is_empty();
            if delete {
                let i = rng.gen_range(0..live.len());
                TraceOp::Delete { tag: live.swap_remove(i) }
            } else {
                let (x, y) = (rng.gen_range(-range..=range), rng.gen_range(-range..=range));
                let tag = next_tag;
                next_tag += 1;
                live.push(tag);
                TraceOp::Insert { x, y, tag }
            }
        } else {
            let m = rng.gen_range(-slope..=slope);
            // Wide enough that some queries are empty and some catch
            // everything, whatever the slope tilted the values to.
            let spread = range * (m.abs() + 2);
            TraceOp::Query {
                m,
                c: rng.gen_range(-spread..=spread),
                inclusive: rng.gen_range(0u32..2) == 1,
            }
        };
        ops.push(op);
    }
    ops
}

/// One arrival of an open-loop serving trace (the workload of the
/// engine's `QueryServer`): a tenant-tagged halfplane query with a
/// virtual arrival timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOp {
    /// Virtual arrival time in nanoseconds from trace start; strictly
    /// increasing along the trace (the open-loop arrival process).
    pub at_ns: u64,
    /// Issuing tenant, in `0..tenants`.
    pub tenant: u32,
    /// Halfplane query `y <= m·x + c`.
    pub m: i64,
    pub c: i64,
    pub inclusive: bool,
}

/// A seeded open-loop serving trace of `len` tenant-tagged halfplane
/// arrivals over `pts`.
///
/// Arrival gaps are drawn uniformly from `1..=2·mean_gap_ns` (so
/// timestamps strictly increase and the mean inter-arrival time is about
/// `mean_gap_ns`); the issuing tenant is drawn uniformly per arrival.
/// Tenants split into two traffic classes, bracketing the locality a
/// window-batching server can harvest: *even* tenants replay a private
/// set of 8 hot queries under a square-law popularity bias (heavy
/// repetition — the cache-friendliest traffic), *odd* tenants walk a
/// private 64-rung selectivity ladder in ascending order (a sweep —
/// consecutive arrivals share most of their output pages). Deterministic
/// in `(pts, tenants, len, mean_gap_ns, slope, seed)`, and prefix-stable
/// like [`live_trace`]: the first `k` ops of one seed agree whatever the
/// requested length — the pinning test keeps it that way, so a trace
/// name plus a seed fully identifies a serving experiment.
pub fn serve_trace(
    pts: &[(i64, i64)],
    tenants: u32,
    len: usize,
    mean_gap_ns: u64,
    slope: i64,
    seed: u64,
) -> Vec<ServeOp> {
    assert!(!pts.is_empty() && tenants > 0 && mean_gap_ns > 0 && slope >= 0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e7e);
    // Per-tenant query material, derived from (pts, slope, seed, tenant)
    // only — never from the arrival rng — so prefixes stay stable.
    let hot: Vec<Vec<(i64, i64)>> = (0..tenants)
        .map(|t| {
            (0..8)
                .map(|i| {
                    let sel = (i + 1) * pts.len() / 9;
                    halfplane_with_selectivity(
                        pts,
                        sel,
                        slope,
                        seed ^ ((u64::from(t) << 16) | i as u64),
                    )
                })
                .collect()
        })
        .collect();
    let ladders: Vec<Vec<i128>> = (0..tenants)
        .map(|t| {
            let mut r = StdRng::seed_from_u64(seed ^ 0x5e7f ^ u64::from(t));
            let m = r.gen_range(-slope..=slope);
            let vals: Vec<i128> =
                pts.iter().map(|&(x, y)| y as i128 - m as i128 * x as i128).collect();
            let mut ladder = sweep_thresholds(vals, 64);
            ladder.insert(0, m as i128); // slot 0 carries the shared slope
            ladder
        })
        .collect();
    let mut cursors = vec![0usize; tenants as usize];
    let mut ops = Vec::with_capacity(len);
    let mut t_ns = 0u64;
    for _ in 0..len {
        t_ns = t_ns.saturating_add(rng.gen_range(1..=mean_gap_ns * 2));
        let tenant = rng.gen_range(0..tenants);
        let inclusive = rng.gen_range(0u32..2) == 1;
        let (m, c) = if tenant % 2 == 0 {
            // Hot tenant: square-law bias toward its first base queries.
            let r = rng.gen_range(0.0..1.0f64);
            hot[tenant as usize][((r * r * 8.0) as usize).min(7)]
        } else {
            // Sweep tenant: next rung of its private ascending ladder.
            let ladder = &ladders[tenant as usize];
            let cur = &mut cursors[tenant as usize];
            let c = ladder[1 + (*cur % 64)];
            *cur += 1;
            (ladder[0] as i64, i64::try_from(c).expect("intercept fits i64"))
        };
        ops.push(ServeOp { at_ns: t_ns, tenant, m, c, inclusive });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_is_exact_2d() {
        let pts = points2(Dist2::Uniform, 500, 100_000, 1);
        for t in [0usize, 1, 10, 250, 499, 500] {
            let (m, c) = halfplane_with_selectivity(&pts, t, 50, t as u64);
            assert_eq!(count_below2(&pts, m, c), t, "t={t}");
        }
    }

    #[test]
    fn selectivity_is_exact_3d() {
        let pts = points3(Dist3::Uniform, 400, 50_000, 2);
        for t in [0usize, 5, 200, 400] {
            let (u, v, w) = halfspace3_with_selectivity(&pts, t, 30, t as u64);
            assert_eq!(count_below3(&pts, u, v, w), t, "t={t}");
        }
    }

    #[test]
    fn distributions_have_expected_shapes() {
        let d = points2(Dist2::Diagonal, 100, 1 << 20, 3);
        assert!(d.iter().all(|&(x, y)| x == y));
        let mut dd = d.clone();
        dd.dedup();
        assert_eq!(dd.len(), 100, "diagonal points must be distinct");
        let c = points2(Dist2::Circle, 64, 1 << 20, 4);
        assert_eq!(c.len(), 64);
        let s = points3(Dist3::Slab, 50, 10_000, 5);
        assert!(s.iter().all(|&(x, y, z)| (z - x - y).abs() <= 8));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(points2(Dist2::Uniform, 50, 1000, 7), points2(Dist2::Uniform, 50, 1000, 7));
        assert_eq!(points3(Dist3::Clustered, 50, 1000, 7), points3(Dist3::Clustered, 50, 1000, 7));
    }

    #[test]
    fn zipf_batch_repeats_hot_queries() {
        let pts = points2(Dist2::Uniform, 400, 100_000, 6);
        let shape = BatchShape::ZipfRepeat { distinct: 8, s: 1.1 };
        let batch = halfplane_batch(&pts, shape, 200, 40, 99);
        assert_eq!(batch.len(), 200);
        let mut uniq = batch.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() <= 8, "at most `distinct` distinct queries");
        assert!(uniq.len() >= 2, "zipf must not degenerate to one query");
        // The hottest query dominates: it appears more often than 200/8.
        let top = uniq.iter().map(|u| batch.iter().filter(|&&q| q == *u).count()).max().unwrap();
        assert!(top > 25, "hot query should repeat heavily, saw {top}");
    }

    #[test]
    fn sweep_batch_is_sorted_and_spans_selectivities() {
        let pts = points2(Dist2::Uniform, 300, 100_000, 7);
        let batch = halfplane_batch(&pts, BatchShape::SortedSweep, 50, 40, 5);
        assert_eq!(batch.len(), 50);
        let m = batch[0].0;
        assert!(batch.iter().all(|&(bm, _)| bm == m), "sweep shares one slope");
        assert!(batch.windows(2).all(|w| w[0].1 <= w[1].1), "intercepts ascend");
        assert_eq!(count_below2(&pts, m, batch[0].1), 0);
        assert_eq!(count_below2(&pts, m, batch[49].1), pts.len());
    }

    #[test]
    fn batch3_generators_match_2d_contracts() {
        let pts = points3(Dist3::Uniform, 300, 50_000, 8);
        let zipf =
            halfspace3_batch(&pts, BatchShape::ZipfRepeat { distinct: 6, s: 1.0 }, 120, 30, 11);
        assert_eq!(zipf.len(), 120);
        let mut uniq = zipf.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() <= 6 && uniq.len() >= 2);
        let sweep = halfspace3_batch(&pts, BatchShape::SortedSweep, 40, 30, 12);
        assert!(sweep.windows(2).all(|w| w[0].2 <= w[1].2), "offsets ascend");
        let (u, v) = (sweep[0].0, sweep[0].1);
        assert_eq!(count_below3(&pts, u, v, sweep[0].2), 0);
        assert_eq!(count_below3(&pts, u, v, sweep[39].2), pts.len());
    }

    #[test]
    fn batch_generators_are_deterministic() {
        let pts = points2(Dist2::Clustered, 200, 100_000, 9);
        let shape = BatchShape::ZipfRepeat { distinct: 5, s: 0.9 };
        assert_eq!(
            halfplane_batch(&pts, shape, 64, 40, 13),
            halfplane_batch(&pts, shape, 64, 40, 13)
        );
        let pts3 = points3(Dist3::Slab, 200, 50_000, 10);
        assert_eq!(
            halfspace3_batch(&pts3, BatchShape::SortedSweep, 32, 30, 14),
            halfspace3_batch(&pts3, BatchShape::SortedSweep, 32, 30, 14)
        );
        assert_eq!(knn_batch(&pts, shape, 64, 8, 15), knn_batch(&pts, shape, 64, 8, 15));
    }

    #[test]
    fn knn_batch_matches_2d_contracts() {
        let pts = points2(Dist2::Uniform, 300, 1000, 11);
        let shape = BatchShape::ZipfRepeat { distinct: 6, s: 1.1 };
        let zipf = knn_batch(&pts, shape, 96, 8, 16);
        assert_eq!(zipf.len(), 96);
        assert!(zipf.iter().all(|&(_, _, k)| k == 8));
        // Few distinct hot centers, all drawn from the point set.
        let distinct: std::collections::HashSet<(i64, i64)> =
            zipf.iter().map(|&(x, y, _)| (x, y)).collect();
        assert!(distinct.len() <= 6);
        assert!(distinct.iter().all(|c| pts.contains(c)));
        // Sweep: all centers from the point set, emitted in sorted order.
        let sweep = knn_batch(&pts, BatchShape::SortedSweep, 40, 4, 17);
        assert_eq!(sweep.len(), 40);
        assert!(sweep.windows(2).all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)));
        assert!(sweep.iter().all(|&(x, y, _)| pts.contains(&(x, y))));
    }

    #[test]
    fn mixed_batch_is_deterministic_and_diverse() {
        let pts = points2(Dist2::Uniform, 400, 100_000, 12);
        let batch = halfplane_mixed(&pts, 64, 40, 21);
        assert_eq!(batch.len(), 64);
        assert_eq!(batch, halfplane_mixed(&pts, 64, 40, 21));
        // Both strictness variants present, selectivities span the range:
        // at least one empty query and one with a big answer.
        assert!(batch.iter().any(|&(_, _, inc)| inc));
        assert!(batch.iter().any(|&(_, _, inc)| !inc));
        let counts: Vec<usize> = batch.iter().map(|&(m, c, _)| count_below2(&pts, m, c)).collect();
        assert!(counts.contains(&0), "must include an empty-answer query");
        assert!(counts.iter().any(|&t| t >= 100), "must include a heavy query");
    }

    #[test]
    fn mixed_3d_batch_is_deterministic_and_diverse() {
        let pts = points3(Dist3::Uniform, 300, 50_000, 13);
        let batch = halfspace3_mixed(&pts, 64, 30, 22);
        assert_eq!(batch.len(), 64);
        assert_eq!(batch, halfspace3_mixed(&pts, 64, 30, 22));
        assert!(batch.iter().any(|&(_, _, _, inc)| inc));
        assert!(batch.iter().any(|&(_, _, _, inc)| !inc));
        let counts: Vec<usize> =
            batch.iter().map(|&(u, v, w, _)| count_below3(&pts, u, v, w)).collect();
        assert!(counts.contains(&0), "must include an empty-answer query");
        assert!(counts.iter().any(|&t| t >= 75), "must include a heavy query");
    }

    #[test]
    fn mixed_knn_batch_is_deterministic_and_diverse() {
        let pts = points2(Dist2::Clustered, 300, 1000, 14);
        let batch = knn_mixed(&pts, 64, 20, 23);
        assert_eq!(batch.len(), 64);
        assert_eq!(batch, knn_mixed(&pts, 64, 20, 23));
        assert!(batch.iter().all(|&(_, _, k)| (1..=20).contains(&k)));
        let ks: std::collections::HashSet<usize> = batch.iter().map(|&(_, _, k)| k).collect();
        assert!(ks.len() >= 5, "k must vary, saw {ks:?}");
        // Centers stay near the data (within the jitter of some point).
        assert!(batch.iter().all(|&(x, y, _)| pts
            .iter()
            .any(|&(px, py)| (x - px).abs() <= 21 && (y - py).abs() <= 21)));
    }

    #[test]
    fn disk_mixed_is_deterministic_and_diverse() {
        let pts = points2(Dist2::Uniform, 400, 1000, 18);
        let batch = disk_mixed(&pts, 64, 200, 24);
        assert_eq!(batch.len(), 64);
        assert_eq!(batch, disk_mixed(&pts, 64, 200, 24));
        assert_ne!(batch, disk_mixed(&pts, 64, 200, 25), "seed must matter");
        assert_eq!(&batch[..9], &disk_mixed(&pts, 9, 200, 24)[..], "prefix-stable");
        assert!(batch.iter().any(|&(_, _, _, inc)| inc));
        assert!(batch.iter().any(|&(_, _, _, inc)| !inc));
        assert!(batch.iter().all(|&(_, _, r2, _)| r2 >= 0));
        assert!(batch.iter().any(|&(_, _, r2, _)| r2 == 0), "degenerate disk present");
        // Boundary radii (i % 8 == 1) hit a data point's exact squared
        // distance, so some answers differ between strictness variants.
        let in_count = |&(x, y, r2, inc): &(i64, i64, i64, bool)| {
            pts.iter()
                .filter(|&&(px, py)| {
                    let (dx, dy) = (x as i128 - px as i128, y as i128 - py as i128);
                    let d2 = dx * dx + dy * dy;
                    if inc {
                        d2 <= r2 as i128
                    } else {
                        d2 < r2 as i128
                    }
                })
                .count()
        };
        assert!(
            batch
                .iter()
                .any(|&(x, y, r2, _)| in_count(&(x, y, r2, true)) != in_count(&(x, y, r2, false))),
            "some radius must land exactly on a point"
        );
        assert!(batch.iter().map(in_count).any(|t| t >= 3), "must include a heavy disk");
    }

    #[test]
    fn aggregate_mixed_is_deterministic_and_diverse() {
        let pts = points2(Dist2::Uniform, 400, 100_000, 19);
        let batch = aggregate_mixed(&pts, 64, 40, 26);
        assert_eq!(batch.len(), 64);
        assert_eq!(batch, aggregate_mixed(&pts, 64, 40, 26));
        assert_ne!(batch, aggregate_mixed(&pts, 64, 40, 27), "seed must matter");
        assert_eq!(&batch[..9], &aggregate_mixed(&pts, 9, 40, 26)[..], "prefix-stable");
        // Count and sum alternate exactly; both strictness variants occur.
        assert_eq!(batch.iter().filter(|&&(_, _, _, sum)| sum).count(), 32);
        assert!(batch.iter().any(|&(_, _, inc, _)| inc));
        assert!(batch.iter().any(|&(_, _, inc, _)| !inc));
        let counts: Vec<usize> =
            batch.iter().map(|&(m, c, _, _)| count_below2(&pts, m, c)).collect();
        assert!(counts.contains(&0), "must include an empty aggregate");
        assert!(counts.iter().any(|&t| t >= 100), "must include a heavy aggregate");
    }

    #[test]
    fn topk_mixed_is_deterministic_and_diverse() {
        let pts = points2(Dist2::Uniform, 400, 100_000, 20);
        let batch = topk_mixed(&pts, 64, 40, 12, 28);
        assert_eq!(batch.len(), 64);
        assert_eq!(batch, topk_mixed(&pts, 64, 40, 12, 28));
        assert_ne!(batch, topk_mixed(&pts, 64, 40, 12, 29), "seed must matter");
        assert_eq!(&batch[..9], &topk_mixed(&pts, 9, 40, 12, 28)[..], "prefix-stable");
        assert!(batch.iter().all(|&(_, _, k)| (1..=12).contains(&k)));
        let ks: std::collections::HashSet<usize> = batch.iter().map(|&(_, _, k)| k).collect();
        assert!(ks.len() >= 5, "k must vary, saw {ks:?}");
        // The selectivity schedule spans empty through far-more-than-k
        // candidate pools (truncation and short answers both exercised).
        let counts: Vec<usize> = batch.iter().map(|&(m, c, _)| count_below2(&pts, m, c)).collect();
        assert!(counts.contains(&0), "must include a no-candidate query");
        assert!(counts.iter().any(|&t| t >= 100), "must include a truncating query");
    }

    #[test]
    fn narrow_batch_is_deterministic_and_bounded() {
        let pts = points2(Dist2::Uniform, 400, 100_000, 15);
        let batch = halfplane_narrow(&pts, 64, 40, 20, 31);
        assert_eq!(batch.len(), 64);
        assert_eq!(batch, halfplane_narrow(&pts, 64, 40, 20, 31));
        // Every query is narrow: strictly-below count within the bound
        // (inclusive variants can pick up boundary ties on top).
        for &(m, c, _) in &batch {
            assert!(count_below2(&pts, m, c) <= 20, "query admits too much");
        }
        // Slopes vary — the point of the workload is diverse orientations.
        let slopes: std::collections::HashSet<i64> = batch.iter().map(|&(m, _, _)| m).collect();
        assert!(slopes.len() >= 8, "slopes must vary, saw {}", slopes.len());
        assert!(batch.iter().any(|&(_, _, inc)| inc));
        assert!(batch.iter().any(|&(_, _, inc)| !inc));
    }

    #[test]
    fn page_sweep_is_pinned_and_strictly_paced() {
        let pts = points2(Dist2::Uniform, 300, 100_000, 16);
        let batch = halfplane_page_sweep(&pts, 40, 10, 40, 33);
        assert_eq!(batch.len(), 40);
        assert_eq!(batch, halfplane_page_sweep(&pts, 40, 10, 40, 33), "deterministic");
        assert_ne!(batch, halfplane_page_sweep(&pts, 40, 10, 40, 34), "seed must matter");
        // One shared slope; intercepts never descend (nested prefixes).
        let m = batch[0].0;
        assert!(batch.iter().all(|&(bm, _)| bm == m), "page sweep shares one slope");
        assert!(batch.windows(2).all(|w| w[0].1 <= w[1].1), "intercepts ascend");
        // Exact pacing: query j admits exactly min(j·stride, n) points —
        // a constant number of fresh records (hence pages) per query.
        for (j, &(bm, c)) in batch.iter().enumerate() {
            assert_eq!(count_below2(&pts, bm, c), (j * 10).min(pts.len()), "query {j}");
        }
        // Prefixes of one seed agree whatever the length (the pinning
        // contract every trace generator keeps).
        assert_eq!(&batch[..5], &halfplane_page_sweep(&pts, 5, 10, 40, 33)[..]);
    }

    #[test]
    fn live_trace_is_pinned_and_well_formed() {
        let mix = TraceMix::default();
        let trace = live_trace(mix, 600, 1000, 8, 42);
        assert_eq!(trace.len(), 600);
        assert_eq!(trace, live_trace(mix, 600, 1000, 8, 42), "byte-for-byte deterministic");
        assert_ne!(trace, live_trace(mix, 600, 1000, 8, 43), "seed must matter");

        // Replay: deletes only ever target live tags, inserts never reuse
        // one, and the mix lands near its weights.
        let mut live = std::collections::HashSet::new();
        let (mut ni, mut nd, mut nq) = (0usize, 0usize, 0usize);
        for op in &trace {
            match *op {
                TraceOp::Insert { tag, .. } => {
                    assert!(live.insert(tag), "tag {tag} reused");
                    ni += 1;
                }
                TraceOp::Delete { tag } => {
                    assert!(live.remove(&tag), "delete of non-live tag {tag}");
                    nd += 1;
                }
                TraceOp::Query { .. } => nq += 1,
            }
        }
        assert!(ni >= 250 && nd >= 60 && nq >= 120, "mix degenerated: {ni}/{nd}/{nq}");

        // Pin the exact head of the default-mix trace: any change to the
        // generator's sampling order is a breaking change for recorded
        // experiment names and must be deliberate.
        assert_eq!(
            &trace[..3],
            &live_trace(TraceMix::default(), 3, 1000, 8, 42)[..],
            "prefixes of one seed agree whatever the length"
        );
    }

    #[test]
    fn serve_trace_is_pinned_and_well_formed() {
        let pts = points2(Dist2::Uniform, 400, 100_000, 17);
        let trace = serve_trace(&pts, 4, 500, 1000, 40, 55);
        assert_eq!(trace.len(), 500);
        assert_eq!(trace, serve_trace(&pts, 4, 500, 1000, 40, 55), "byte-for-byte deterministic");
        assert_ne!(trace, serve_trace(&pts, 4, 500, 1000, 40, 56), "seed must matter");
        assert_eq!(
            &trace[..20],
            &serve_trace(&pts, 4, 20, 1000, 40, 55)[..],
            "prefixes of one seed agree whatever the length"
        );

        // Open-loop arrival process: timestamps strictly increase, gaps
        // bounded by 2×mean, tenants in range, both strictness variants.
        assert!(trace.windows(2).all(|w| w[0].at_ns < w[1].at_ns), "timestamps ascend strictly");
        assert!(trace[0].at_ns >= 1 && trace[0].at_ns <= 2000);
        assert!(trace.windows(2).all(|w| w[1].at_ns - w[0].at_ns <= 2000), "gap bound");
        assert!(trace.iter().all(|op| op.tenant < 4));
        for t in 0..4u32 {
            assert!(trace.iter().filter(|op| op.tenant == t).count() >= 50, "tenant {t} starved");
        }
        assert!(trace.iter().any(|op| op.inclusive));
        assert!(trace.iter().any(|op| !op.inclusive));

        // Even tenants repeat few hot queries; odd tenants sweep ascending
        // intercepts on one shared slope.
        let hot: std::collections::HashSet<(i64, i64)> =
            trace.iter().filter(|op| op.tenant == 0).map(|op| (op.m, op.c)).collect();
        assert!(hot.len() <= 8, "hot tenant must replay at most 8 base queries");
        assert!(hot.len() >= 2, "hot tenant must not degenerate to one query");
        let sweep: Vec<(i64, i64)> =
            trace.iter().filter(|op| op.tenant == 1).map(|op| (op.m, op.c)).collect();
        assert!(sweep.len() >= 2);
        assert!(sweep.iter().all(|&(m, _)| m == sweep[0].0), "sweep tenant shares one slope");
        // Cursor walks the 64-rung ladder in ascending order per lap.
        assert!(
            sweep.windows(2).take(40).all(|w| w[0].1 <= w[1].1),
            "sweep intercepts ascend within the first lap"
        );
    }

    #[test]
    fn coordinates_respect_range() {
        for dist in [Dist2::Uniform, Dist2::Gaussianish, Dist2::Clustered, Dist2::Circle] {
            let pts = points2(dist, 300, 1 << 20, 9);
            assert!(pts.iter().all(|&(x, y)| x.abs() <= 1 << 20 && y.abs() <= 1 << 20));
        }
    }
}
