//! The duality transform of Section 2.1 (Lemma 2.1).
//!
//! Dual of a point `(a_1,…,a_d)` is the hyperplane
//! `x_d = -a_1·x_1 - … - a_{d-1}·x_{d-1} + a_d`; dual of a hyperplane
//! `x_d = b_1·x_1 + … + b_{d-1}·x_{d-1} + b_d` is the point `(b_1,…,b_d)`.
//! The transform preserves the above/below relation, so "points of S below a
//! query hyperplane h" becomes "dual lines/planes of S below the dual point
//! h*" — the formulation all structures in this workspace are built in.

use crate::line2::Line2;
use crate::plane3::Plane3;

/// Dual line of the 2D point `(a, b)`: `y = -a·x + b`.
pub fn point2_to_line(a: i64, b: i64) -> Line2 {
    Line2::new(-a, b)
}

/// Dual point of the 2D line `y = m·x + c`: `(m, c)`.
pub fn line_to_point2(l: Line2) -> (i64, i64) {
    (l.m, l.b)
}

/// Dual plane of the 3D point `(a, b, c)`: `z = -a·x - b·y + c`.
pub fn point3_to_plane(a: i64, b: i64, c: i64) -> Plane3 {
    Plane3::new(-a, -b, c)
}

/// Dual point of the 3D plane `z = u·x + v·y + w`: `(u, v, w)`.
pub fn plane_to_point3(p: Plane3) -> (i64, i64, i64) {
    (p.a, p.b, p.c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duality_preserves_above_below_2d() {
        let mut s = 3u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as i64 % 1000) - 500
        };
        for _ in 0..500 {
            let (px, py) = (next(), next());
            let h = Line2::new(next(), next());
            // p strictly above h  <=>  dual line p* strictly above dual point h*.
            let p_above_h = (py as i128) > h.eval(px);
            let pstar = point2_to_line(px, py);
            let (hx, hy) = line_to_point2(h);
            let pstar_above_hstar = pstar.eval(hx) > hy as i128;
            assert_eq!(p_above_h, pstar_above_hstar);
            // And the same with "on".
            let p_on_h = (py as i128) == h.eval(px);
            let pstar_on_hstar = pstar.eval(hx) == hy as i128;
            assert_eq!(p_on_h, pstar_on_hstar);
        }
    }

    #[test]
    fn duality_preserves_above_below_3d() {
        let mut s = 11u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((s >> 33) as i64 % 1000) - 500
        };
        for _ in 0..500 {
            let (px, py, pz) = (next(), next(), next());
            let h = Plane3::new(next(), next(), next());
            let p_above_h = (pz as i128) > h.eval(px, py);
            let pstar = point3_to_plane(px, py, pz);
            let (hx, hy, hz) = plane_to_point3(h);
            let pstar_above_hstar = pstar.eval(hx, hy) > hz as i128;
            assert_eq!(p_above_h, pstar_above_hstar);
        }
    }

    #[test]
    fn duality_is_involutive_on_coefficients() {
        let l = Line2::new(17, -4);
        let (a, b) = line_to_point2(l);
        // Dualizing the point gives y = -17x - 4... the transform is not an
        // involution on lines, but round-tripping point→line→point is exact:
        let p = (5i64, 9i64);
        let back = line_to_point2(point2_to_line(p.0, p.1));
        assert_eq!(back, (-5, 9));
        let _ = (a, b);
    }
}
