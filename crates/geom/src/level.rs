//! Exact k-level traversal of a line arrangement (Section 2.3).
//!
//! The k-level A_k(L) is the closure of the points lying on a line of `L`
//! with exactly `k` lines strictly below — an x-monotone polygonal chain.
//! [`LevelWalk`] traverses it left to right in the style of Edelsbrunner and
//! Welzl: it maintains the sets of lines strictly above (`L+`) and strictly
//! below (`L-`) the walk point in two [`DynEnvelope`]s and repeatedly jumps
//! to the earlier of the two first-ray-hits. Each hit is a vertex of the
//! level:
//!
//! * hit with a line `g ∈ L-` → **convex** (downward) vertex: the level
//!   continues on `g`, the old line dives below (it is the minimum-slope
//!   line through the vertex used by the greedy clustering of Lemma 3.2);
//! * hit with a line `h ∈ L+` → **concave** (upward) vertex: the level
//!   continues on `h`, the old line rises above.

use crate::dyn_envelope::{DynEnvelope, Side};
use crate::line2::Line2;
use crate::rational::Rat;

/// A vertex of the level, i.e., a crossing the walk passed through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelVertex {
    /// Abscissa of the crossing.
    pub x: Rat,
    /// Line the level arrived on.
    pub old_line: u32,
    /// Line the level continues on (the crossing partner).
    pub new_line: u32,
    /// Downward (convex) vertex: the crossing partner came from below.
    pub convex: bool,
}

/// Left-to-right traversal of the k-level of a set of lines.
pub struct LevelWalk<'a> {
    lines: &'a [Line2],
    above: DynEnvelope,
    below: DynEnvelope,
    current: u32,
    x: Rat,
    k: usize,
    /// Every line that has been strictly below the level at some abscissa so
    /// far (the paper's L_i membership: lines passing below some point of
    /// the level).
    touched_below: Vec<bool>,
}

impl<'a> LevelWalk<'a> {
    /// Start the walk of the `k`-level (0-based: points with exactly `k`
    /// lines strictly below) of `members` (indices into `lines`, distinct
    /// lines). Requires `k < members.len()`.
    pub fn new(lines: &'a [Line2], members: &[u32], k: usize) -> LevelWalk<'a> {
        assert!(k < members.len(), "level {k} of {} lines", members.len());
        let mut sorted: Vec<u32> = members.to_vec();
        // Order at x = -∞: slope descending, intercept ascending.
        sorted.sort_by(|&i, &j| lines[i as usize].cmp_at(&lines[j as usize], Rat::NegInf));
        debug_assert!(
            sorted.windows(2).all(|w| lines[w[0] as usize] != lines[w[1] as usize]),
            "LevelWalk requires distinct lines"
        );
        let current = sorted[k];
        let below = DynEnvelope::new(lines, &sorted[..k], Side::Upper);
        let above = DynEnvelope::new(lines, &sorted[k + 1..], Side::Lower);
        let mut touched_below = vec![false; lines.len()];
        for &id in &sorted[..k] {
            touched_below[id as usize] = true;
        }
        LevelWalk { lines, above, below, current, x: Rat::NegInf, k, touched_below }
    }

    /// The line currently carrying the level.
    pub fn current_line(&self) -> u32 {
        self.current
    }

    /// Current abscissa (last vertex processed; `-∞` initially).
    pub fn x(&self) -> Rat {
        self.x
    }

    /// The level index being walked.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Ids of lines strictly below the walk point right now.
    pub fn below_members(&self) -> Vec<u32> {
        self.below.members()
    }

    /// Has `id` ever been strictly below the level so far?
    pub fn touched_below(&self, id: u32) -> bool {
        self.touched_below[id as usize]
    }

    /// Advance to the next vertex; `None` when the level runs off to +∞.
    pub fn step(&mut self) -> Option<LevelVertex> {
        let l = self.lines[self.current as usize];
        let ha = self.above.first_hit(l, self.x);
        let hb = self.below.first_hit(l, self.x);
        // Prefer the earlier event; at equal abscissae process the below-side
        // swap first (any fixed rule works: concurrent events all sit at the
        // same x and are handled one by one).
        let (x, partner, convex) = match (ha, hb) {
            (None, None) => return None,
            (Some((xa, a)), None) => (xa, a, false),
            (None, Some((xb, b))) => (xb, b, true),
            (Some((xa, a)), Some((xb, b))) => {
                if xb <= xa {
                    (xb, b, true)
                } else {
                    (xa, a, false)
                }
            }
        };
        let old = self.current;
        if convex {
            self.below.remove(partner);
            self.below.insert(old);
            self.touched_below[old as usize] = true;
        } else {
            self.above.remove(partner);
            self.above.insert(old);
        }
        self.current = partner;
        self.x = x;
        Some(LevelVertex { x, old_line: old, new_line: partner, convex })
    }
}

/// Compute all vertices of the k-level (convenience wrapper).
pub fn level_vertices(lines: &[Line2], members: &[u32], k: usize) -> Vec<LevelVertex> {
    let mut walk = LevelWalk::new(lines, members, k);
    let mut out = Vec::new();
    while let Some(v) = walk.step() {
        out.push(v);
    }
    out
}

/// Test oracle: number of `members` lines strictly below the point of
/// `carrier` at `x+ε`.
pub fn count_strictly_below_at_plus(
    lines: &[Line2],
    members: &[u32],
    carrier: u32,
    x: Rat,
) -> usize {
    let c = lines[carrier as usize];
    members
        .iter()
        .filter(|&&id| {
            id != carrier && lines[id as usize].cmp_at_plus(&c, x) == std::cmp::Ordering::Less
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(lines: &[(i64, i64)]) -> Vec<Line2> {
        lines.iter().map(|&(m, b)| Line2::new(m, b)).collect()
    }

    /// Full invariant check: after every vertex, the current line carries
    /// exactly k lines strictly below (evaluated symbolically at x+ε), and
    /// vertex abscissae are non-decreasing.
    fn verify_walk(lines: &[Line2], members: &[u32], k: usize) -> usize {
        let mut walk = LevelWalk::new(lines, members, k);
        assert_eq!(
            count_strictly_below_at_plus(lines, members, walk.current_line(), Rat::NegInf),
            k,
            "initial position"
        );
        let mut count = 0;
        let mut last_x = Rat::NegInf;
        while let Some(v) = walk.step() {
            assert!(v.x >= last_x, "x must be monotone");
            last_x = v.x;
            count += 1;
            assert_eq!(
                count_strictly_below_at_plus(lines, members, walk.current_line(), v.x),
                k,
                "level invariant broken after vertex #{count} at {:?}",
                v.x
            );
            assert!(count <= members.len() * members.len(), "walk does not terminate");
        }
        count
    }

    #[test]
    fn zero_level_is_lower_envelope() {
        let lines = mk(&[(1, 0), (-1, 0), (0, 100)]);
        let ids = [0u32, 1, 2];
        let vs = level_vertices(&lines, &ids, 0);
        // Lower envelope = min(x,-x): single vertex at x=0 switching 0→1.
        assert_eq!(vs.len(), 1);
        assert_eq!((vs[0].old_line, vs[0].new_line, vs[0].convex), (0, 1, false));
        assert_eq!(vs[0].x, Rat::int(0));
    }

    #[test]
    fn one_level_of_three_lines() {
        // Triangle arrangement: the 1-level has both convex and concave
        // vertices; verify invariants throughout.
        let lines = mk(&[(1, 0), (-1, 0), (0, -10)]);
        let n = verify_walk(&lines, &[0, 1, 2], 1);
        assert!(n >= 2, "expected at least two vertices, got {n}");
    }

    #[test]
    fn convexity_classification() {
        // y = x, y = -x, k=1 (top level): at x=0 the level switches from
        // line 1 (lower at -inf? slope desc order: line0 m=1 first) ...
        // just assert the vertex is convex: the partner comes from below.
        let lines = mk(&[(1, 0), (-1, 0)]);
        let vs = level_vertices(&lines, &[0, 1], 1);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].convex);
        assert_eq!((vs[0].old_line, vs[0].new_line), (1, 0));
    }

    #[test]
    fn touched_below_tracks_membership() {
        let lines = mk(&[(1, 0), (-1, 0), (0, -10)]);
        let mut walk = LevelWalk::new(&lines, &[0, 1, 2], 1);
        while walk.step().is_some() {}
        // Every line dips below the 1-level of this triangle at some point.
        assert!(walk.touched_below(0) && walk.touched_below(1) && walk.touched_below(2));
    }

    #[test]
    fn randomized_walks_hold_invariants() {
        let mut s = 7u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as i64
        };
        for trial in 0..30 {
            let n = 5 + (trial % 18);
            let lines: Vec<Line2> = (0..n)
                .map(|_| Line2::new(next() % 1000 - 500, next() % 100_000 - 50_000))
                .collect();
            // Skip trials with duplicate lines (the walk requires distinct).
            let mut dedup = lines.clone();
            dedup.sort_by_key(|l| (l.m, l.b));
            dedup.dedup();
            if dedup.len() != lines.len() {
                continue;
            }
            let ids: Vec<u32> = (0..n as u32).collect();
            for k in [0, 1, n / 2, n - 1] {
                verify_walk(&lines, &ids, k);
            }
        }
    }

    #[test]
    fn parallel_lines_level() {
        // All-parallel arrangement: no crossings, level is a single line.
        let lines = mk(&[(2, 0), (2, 10), (2, 20), (2, 30)]);
        let ids = [0u32, 1, 2, 3];
        for k in 0..4 {
            let vs = level_vertices(&lines, &ids, k);
            assert!(vs.is_empty());
        }
    }

    #[test]
    fn concurrent_lines_through_origin() {
        // Degenerate: many lines concurrent at the origin. The walk must
        // terminate and keep the invariant away from the singular point.
        let lines = mk(&[(2, 0), (1, 0), (0, 0), (-1, 0), (-2, 0)]);
        let ids: Vec<u32> = (0..5).collect();
        for k in 0..5 {
            let mut walk = LevelWalk::new(&lines, &ids, k);
            let mut steps = 0;
            while walk.step().is_some() {
                steps += 1;
                assert!(steps <= 25, "must terminate");
            }
            // After the pencil point the order is fully reversed; the level
            // invariant must hold at a point right of the singularity.
            assert_eq!(
                count_strictly_below_at_plus(&lines, &ids, walk.current_line(), Rat::int(1)),
                k,
                "k={k}"
            );
        }
    }
}
