//! Non-vertical planes `z = a·x + b·y + c` in R³.

use std::cmp::Ordering;

/// A non-vertical plane `z = a·x + b·y + c` with integer coefficients.
///
/// Exactness budget (see crate docs): `|a|,|b| <= 2^20`, `|c| <= 2^47`
/// internally (sentinel planes use large intercepts); user-supplied planes
/// should satisfy `|a|,|b| <= 2^20`, `|c| <= 2^21`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Plane3 {
    pub a: i64,
    pub b: i64,
    pub c: i64,
}

impl Plane3 {
    pub fn new(a: i64, b: i64, c: i64) -> Plane3 {
        Plane3 { a, b, c }
    }

    /// `z` value over `(x, y)` (exact, widened).
    pub fn eval(&self, x: i64, y: i64) -> i128 {
        self.a as i128 * x as i128 + self.b as i128 * y as i128 + self.c as i128
    }

    /// Is this plane strictly below the point `(px, py, pz)`?
    pub fn strictly_below_point(&self, px: i64, py: i64, pz: i64) -> bool {
        self.eval(px, py) < pz as i128
    }

    /// Compare `z` values of two planes over `(x, y)`.
    pub fn cmp_at(&self, other: &Plane3, x: i64, y: i64) -> Ordering {
        self.eval(x, y).cmp(&other.eval(x, y))
    }

    /// The dual point `(a, b, c)` of this plane — the representation the
    /// lower-hull machinery of [`crate::hull3`] works on.
    pub fn dual_point(&self) -> [i64; 3] {
        [self.a, self.b, self.c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_side() {
        let p = Plane3::new(1, 2, 3);
        assert_eq!(p.eval(10, -1), 10 - 2 + 3);
        assert!(p.strictly_below_point(10, -1, 12));
        assert!(!p.strictly_below_point(10, -1, 11));
    }

    #[test]
    fn cmp_at_orders_planes() {
        let lo = Plane3::new(0, 0, 0);
        let hi = Plane3::new(1, 1, 0);
        assert_eq!(lo.cmp_at(&hi, 5, 5), Ordering::Less);
        assert_eq!(lo.cmp_at(&hi, 0, 0), Ordering::Equal);
        assert_eq!(lo.cmp_at(&hi, -3, 0), Ordering::Greater);
    }
}
