//! Brute-force arrangement utilities — the test oracle for the level walk.
//!
//! [`naive_level_carriers`] reconstructs the k-level of an arrangement the
//! slow, obviously-correct way: enumerate every pairwise crossing abscissa,
//! and between consecutive crossings select the line with exactly k others
//! strictly below at an exact rational midpoint. O(N³ log N) — usable as an
//! oracle up to a few dozen lines, which is exactly its job.

use crate::line2::Line2;
use crate::rational::Rat;

/// Exact midpoint of two finite rationals.
fn midpoint(a: Rat, b: Rat) -> Rat {
    let (an, ad) = a.parts();
    let (bn, bd) = b.parts();
    Rat::new(an * bd + bn * ad, 2 * ad * bd)
}

/// The carrier sequence of the k-level: `(interval_start, line_id)` pairs,
/// left to right, with consecutive duplicates merged. The first interval
/// starts at `-∞`.
pub fn naive_level_carriers(lines: &[Line2], members: &[u32], k: usize) -> Vec<(Rat, u32)> {
    assert!(k < members.len());
    // All crossing abscissae, deduplicated.
    let mut xs: Vec<Rat> = Vec::new();
    for (i, &a) in members.iter().enumerate() {
        for &b in &members[i + 1..] {
            if let Some(x) = lines[a as usize].crossing_x(&lines[b as usize]) {
                xs.push(x);
            }
        }
    }
    xs.sort();
    xs.dedup();

    // Evaluation abscissae: one per open interval.
    let mut probes: Vec<Rat> = Vec::new();
    if xs.is_empty() {
        probes.push(Rat::int(0));
    } else {
        probes.push(Rat::NegInf); // compare by slope order at -∞
        for w in xs.windows(2) {
            probes.push(midpoint(w[0], w[1]));
        }
        probes.push(Rat::PosInf);
    }

    let mut out: Vec<(Rat, u32)> = Vec::new();
    for (pi, &probe) in probes.iter().enumerate() {
        // Carrier = the member with exactly k others strictly below. With
        // ±∞ probes we compare via cmp_at (slope order).
        let mut carrier = None;
        for &cand in members {
            let below = members
                .iter()
                .filter(|&&o| {
                    o != cand
                        && lines[o as usize].cmp_at(&lines[cand as usize], probe)
                            == std::cmp::Ordering::Less
                })
                .count();
            if below == k {
                carrier = Some(cand);
                break;
            }
        }
        let carrier = carrier.expect("every interval has a level carrier");
        let start = if pi == 0 { Rat::NegInf } else { xs[pi - 1] };
        match out.last() {
            Some(&(_, last)) if last == carrier => {}
            _ => out.push((start, carrier)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::LevelWalk;

    fn pseudo_lines(n: usize, seed: u64) -> Vec<Line2> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as i64
        };
        let mut out: Vec<Line2> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        while out.len() < n {
            let l = Line2::new(next() % 201 - 100, next() % 20_001 - 10_000);
            if seen.insert((l.m, l.b)) {
                out.push(l);
            }
        }
        out
    }

    /// The carrier sequence produced by the fast walk, in the same format.
    fn walk_carriers(lines: &[Line2], members: &[u32], k: usize) -> Vec<(Rat, u32)> {
        let mut walk = LevelWalk::new(lines, members, k);
        let mut out = vec![(Rat::NegInf, walk.current_line())];
        while let Some(v) = walk.step() {
            match out.last() {
                Some(&(_, last)) if last == v.new_line => {}
                _ => out.push((v.x, v.new_line)),
            }
        }
        out
    }

    #[test]
    fn walk_matches_naive_oracle_exactly() {
        for seed in [1u64, 2, 3, 4, 5] {
            let n = 8 + (seed as usize) * 3;
            let lines = pseudo_lines(n, seed);
            let ids: Vec<u32> = (0..n as u32).collect();
            for k in [0usize, 1, n / 3, n - 1] {
                let naive = naive_level_carriers(&lines, &ids, k);
                let walk = walk_carriers(&lines, &ids, k);
                assert_eq!(walk, naive, "seed {seed} n {n} k {k}");
            }
        }
    }

    #[test]
    fn oracle_on_three_line_triangle() {
        let lines = vec![Line2::new(1, 0), Line2::new(-1, 0), Line2::new(0, -10)];
        let ids = [0u32, 1, 2];
        // 1-level: starts on line 1 (middle at -∞: slopes desc 0(m=1) low, then 2... )
        let c = naive_level_carriers(&lines, &ids, 1);
        assert!(c.len() >= 3, "triangle mid-level has at least two bends: {c:?}");
        // And it agrees with the walk (also covered by the random test).
        assert_eq!(c, walk_carriers(&lines, &ids, 1));
    }

    #[test]
    fn parallel_bundle_has_single_carrier() {
        let lines = vec![Line2::new(3, 0), Line2::new(3, 100), Line2::new(3, 200)];
        let ids = [0u32, 1, 2];
        for k in 0..3 {
            let c = naive_level_carriers(&lines, &ids, k);
            assert_eq!(c.len(), 1);
            assert_eq!(c[0].1, k as u32);
        }
    }
}
