//! Non-vertical lines `y = m·x + b` with exact integer predicates.

use std::cmp::Ordering;

use crate::rational::Rat;

/// A non-vertical line `y = m·x + b` with integer coefficients.
///
/// All predicates are exact (i128 cross-multiplication) within the
/// [`crate::MAX_COORD_2D`] coordinate budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Line2 {
    pub m: i64,
    pub b: i64,
}

impl Line2 {
    pub fn new(m: i64, b: i64) -> Line2 {
        Line2 { m, b }
    }

    /// `y` value at integer `x` (exact, widened).
    pub fn eval(&self, x: i64) -> i128 {
        self.m as i128 * x as i128 + self.b as i128
    }

    /// Is this line strictly below the point `(px, py)`?
    pub fn strictly_below_point(&self, px: i64, py: i64) -> bool {
        self.eval(px) < py as i128
    }

    /// Is this line on or below the point `(px, py)`?
    pub fn below_point(&self, px: i64, py: i64) -> bool {
        self.eval(px) <= py as i128
    }

    /// Abscissa where `self` and `other` cross; `None` for parallel lines.
    pub fn crossing_x(&self, other: &Line2) -> Option<Rat> {
        if self.m == other.m {
            return None;
        }
        // m1 x + b1 = m2 x + b2  =>  x = (b2 - b1) / (m1 - m2)
        Some(Rat::new(other.b as i128 - self.b as i128, self.m as i128 - other.m as i128))
    }

    /// Compare the `y` values of `self` and `other` at abscissa `x`
    /// (±∞ compare by slope: at `-∞` the larger slope is lower).
    pub fn cmp_at(&self, other: &Line2, x: Rat) -> Ordering {
        match x {
            Rat::NegInf => other.m.cmp(&self.m).then(self.b.cmp(&other.b)),
            Rat::PosInf => self.m.cmp(&other.m).then(self.b.cmp(&other.b)),
            Rat::Fin { num, den } => {
                // y_i * den = m_i * num + b_i * den; den > 0.
                let l = self.m as i128 * num + self.b as i128 * den;
                let r = other.m as i128 * num + other.b as i128 * den;
                l.cmp(&r)
            }
        }
    }

    /// Compare `y` values *just right of* `x` — the symbolic `x + ε`
    /// evaluation used to break ties at arrangement vertices: compare values
    /// at `x`, then slopes.
    pub fn cmp_at_plus(&self, other: &Line2, x: Rat) -> Ordering {
        match x {
            Rat::NegInf | Rat::PosInf => self.cmp_at(other, x),
            Rat::Fin { .. } => self.cmp_at(other, x).then(self.m.cmp(&other.m)),
        }
    }

    /// The reflected line `-y = -m·x - b`, mapping upper envelopes to lower
    /// envelopes.
    pub fn negated(&self) -> Line2 {
        Line2 { m: -self.m, b: -self.b }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_of_simple_lines() {
        let a = Line2::new(1, 0);
        let b = Line2::new(-1, 4);
        assert_eq!(a.crossing_x(&b), Some(Rat::int(2)));
        assert_eq!(a.crossing_x(&Line2::new(1, 5)), None);
    }

    #[test]
    fn cmp_at_finite() {
        let a = Line2::new(1, 0);
        let b = Line2::new(-1, 4);
        assert_eq!(a.cmp_at(&b, Rat::int(0)), Ordering::Less);
        assert_eq!(a.cmp_at(&b, Rat::int(2)), Ordering::Equal);
        assert_eq!(a.cmp_at(&b, Rat::int(3)), Ordering::Greater);
    }

    #[test]
    fn cmp_at_infinity_orders_by_slope() {
        let steep = Line2::new(10, 0);
        let flat = Line2::new(1, 0);
        // At -inf the steeper line is lower.
        assert_eq!(steep.cmp_at(&flat, Rat::NegInf), Ordering::Less);
        assert_eq!(steep.cmp_at(&flat, Rat::PosInf), Ordering::Greater);
        // Parallel: intercept decides at both ends.
        let lo = Line2::new(3, -5);
        let hi = Line2::new(3, 5);
        assert_eq!(lo.cmp_at(&hi, Rat::NegInf), Ordering::Less);
        assert_eq!(lo.cmp_at(&hi, Rat::PosInf), Ordering::Less);
    }

    #[test]
    fn eps_comparison_breaks_ties_by_slope() {
        let a = Line2::new(1, 0);
        let b = Line2::new(-1, 0); // cross at x=0
        assert_eq!(a.cmp_at(&b, Rat::int(0)), Ordering::Equal);
        assert_eq!(a.cmp_at_plus(&b, Rat::int(0)), Ordering::Greater);
        assert_eq!(b.cmp_at_plus(&a, Rat::int(0)), Ordering::Less);
    }

    #[test]
    fn point_side_tests() {
        let l = Line2::new(2, 1);
        assert!(l.strictly_below_point(3, 8)); // l(3)=7 < 8
        assert!(!l.strictly_below_point(3, 7));
        assert!(l.below_point(3, 7));
        assert!(!l.below_point(3, 6));
    }

    #[test]
    fn negation_flips_order() {
        let a = Line2::new(2, 3);
        let b = Line2::new(-1, 7);
        let x = Rat::new(5, 3);
        assert_eq!(a.cmp_at(&b, x), b.negated().cmp_at(&a.negated(), x));
    }
}
