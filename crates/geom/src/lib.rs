//! # lcrs-geom — exact integer computational geometry
//!
//! The geometric substrate of the reproduction (Section 2 of the paper):
//!
//! * [`rational`] — exact rational x-coordinates (i128) with ±∞, used for
//!   arrangement vertices;
//! * [`line2`] — lines `y = m·x + b` with integer coefficients and exact
//!   predicates (crossing order, above/below at a rational abscissa, and
//!   symbolic `x+ε` evaluation for degeneracy handling);
//! * [`dual`] — the point↔hyperplane duality of Lemma 2.1 in 2D and 3D;
//! * [`envelope`] — static lower/upper envelopes of lines;
//! * [`dyn_envelope`] — a dynamic "first ray hit" envelope (sqrt
//!   decomposition), the engine of the Edelsbrunner–Welzl level traversal;
//! * [`level`] — exact k-level computation of a line arrangement (walk +
//!   naive O(N²) oracle);
//! * [`plane3`]/[`hull3`] — planes in R³ and a randomized incremental lower
//!   convex hull (dual of the lower envelope of planes) with Clarkson–Shor
//!   conflict lists and prefix snapshots, powering Section 4;
//! * [`point`] — d-dimensional integer points, hyperplanes, boxes and
//!   simplices for the partition trees of Section 5;
//! * [`lift`] — the paraboloid lift turning disk queries into 3D
//!   halfspace queries, with exact carry-aware distance predicates.
//!
//! ## Coordinate budgets
//!
//! All predicates are exact in `i128` provided inputs respect:
//! * 2D points and query lines: `|coordinate| <= 2^30` ([`MAX_COORD_2D`]);
//! * 3D plane coefficients: `|a|,|b| <= 2^20`, `|c| <= 2^21`, and query
//!   points `|x|,|y| <= 2^22` ([`MAX_COORD_3D`]);
//! * paraboloid-lift inputs (k-NN and lifted disk structures):
//!   `|x|,|y| <= 1024` ([`lift::MAX_LIFT_COORD`] — squares must fit the
//!   3D budget), disk centers `|x|,|y| <= 2^21`
//!   ([`lift::MAX_DISK_CENTER`]). Points and disks outside these budgets
//!   fall back to exact carry-aware `u128` scans ([`lift::dist2_carry`]).

pub mod arrangement;
pub mod dual;
pub mod dyn_envelope;
pub mod envelope;
pub mod hull3;
pub mod level;
pub mod lift;
pub mod line2;
pub mod plane3;
pub mod point;
pub mod rational;

/// Maximum absolute coordinate for 2D inputs (points, line slopes and
/// intercepts) for which all predicates are exact.
pub const MAX_COORD_2D: i64 = 1 << 30;

/// Maximum absolute value of 3D plane gradient coefficients `a`, `b`
/// (intercepts `c` may be up to twice this) for exact predicates.
pub const MAX_COORD_3D: i64 = 1 << 20;

pub use line2::Line2;
pub use plane3::Plane3;
pub use point::{Aabb, HyperplaneD, PointD, Simplex};
pub use rational::Rat;
