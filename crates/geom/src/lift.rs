//! The paraboloid lift (Section 4.3): disks become halfspaces.
//!
//! A 2D point `p = (px, py)` lifts to the 3D point
//! `(px, py, px² + py²)` on the unit paraboloid. For a disk of center
//! `(x, y)` and squared radius `r2`,
//!
//! ```text
//! z − 2x·px − 2y·py − (r2 − x² − y²)
//!     = px² + py² − 2x·px − 2y·py − r2 + x² + y²
//!     = (px − x)² + (py − y)² − r2,
//! ```
//!
//! so `p` lies in the disk (distance² ≤ r2) exactly when the lifted point
//! lies below the plane `z = 2x·px + 2y·py + (r2 − x² − y²)` — a 3D
//! halfspace query the Section 4/6 structures already answer, strictness
//! preserved. This module holds the lift algebra and its overflow
//! analysis; the engine's `LiftedIndex` applies it to whole point sets.
//!
//! ## Overflow analysis
//!
//! * Build side: `|px|, |py| ≤ 2^10` ([`MAX_LIFT_COORD`]) keeps the
//!   lifted `z = px² + py² ≤ 2^21` inside the 3D build budget
//!   (`|a|,|b| ≤ 2^20`, `|c| ≤ 2^21` — see [`crate::MAX_COORD_3D`]).
//!   Points outside this budget cannot be lifted exactly into the 3D
//!   structures; callers keep them in an exact-scan tail instead
//!   ([`lift_z`] returns `None` for them).
//! * Query side: `|x|, |y| ≤ 2^21` ([`MAX_DISK_CENTER`]) keeps the plane
//!   gradient `(2x, 2y)` inside the 3D query budget (`|u|,|v| ≤ 2^22`)
//!   and `x² + y² ≤ 2^43` inside `i64`, so the offset
//!   `w = r2 − x² − y²` is exact for every `r2 ≥ 0` (`w ≤ r2` and
//!   `w ≥ −2^43`, both in range). Negative `r2` means an empty disk —
//!   [`disk_to_halfspace`] rejects it so callers can short-circuit.
//! * Membership tests that bypass the lift (scan tails, brute-force
//!   oracles) must still be exact at `i64` extremes: a squared distance
//!   reaches `2·(2^64)² = 2^129`, one bit past `u128`. Use
//!   [`dist2_carry`], which widens differences to `u128` and keeps the
//!   single possible carry bit explicit.

/// Maximum absolute 2D coordinate a point may have and still lift exactly
/// onto the paraboloid within the 3D coordinate budget (`px² + py²` must
/// fit `|z| ≤ 2^21`). Identical to the k-NN structure's input budget,
/// which rides the same lift.
pub const MAX_LIFT_COORD: i64 = 1 << 10;

/// Maximum absolute disk-center coordinate for which the lifted query
/// plane is exact: the gradient `2x` must respect the 3D query budget
/// (`|u| ≤ 2^22`) and `x² + y²` must fit `i64`.
pub const MAX_DISK_CENTER: i64 = 1 << 21;

/// The lifted third coordinate `px² + py²`, or `None` when `(px, py)` is
/// outside [`MAX_LIFT_COORD`] (the lift would leave the 3D budget).
pub fn lift_z(px: i64, py: i64) -> Option<i64> {
    if px.unsigned_abs() > MAX_LIFT_COORD as u64 || py.unsigned_abs() > MAX_LIFT_COORD as u64 {
        return None;
    }
    Some(px * px + py * py)
}

/// The halfspace `z ≤ u·px + v·py + w` equivalent (on lifted points) to
/// the disk of center `(x, y)` and squared radius `r2`: returns
/// `(u, v, w) = (2x, 2y, r2 − x² − y²)`. `None` when the disk is empty
/// (`r2 < 0`) or the center exceeds [`MAX_DISK_CENTER`].
pub fn disk_to_halfspace(x: i64, y: i64, r2: i64) -> Option<(i64, i64, i64)> {
    if r2 < 0
        || x.unsigned_abs() > MAX_DISK_CENTER as u64
        || y.unsigned_abs() > MAX_DISK_CENTER as u64
    {
        return None;
    }
    Some((2 * x, 2 * y, r2 - x * x - y * y))
}

/// Exact squared distance between arbitrary `i64` points as
/// `(carry, low)`: the value is `carry·2^128 + low`. Compare
/// lexicographically — `(false, r2 as u128)` against a disk's radius.
pub fn dist2_carry(x: i64, y: i64, px: i64, py: i64) -> (bool, u128) {
    let dx = (x as i128 - px as i128).unsigned_abs();
    let dy = (y as i128 - py as i128).unsigned_abs();
    let (lo, carry) = (dx * dx).overflowing_add(dy * dy);
    (carry, lo)
}

/// Exact disk membership for arbitrary `i64` points: distance² ≤ `r2`
/// (`<` when `inclusive` is false). Negative `r2` admits nothing.
pub fn in_disk(x: i64, y: i64, r2: i64, px: i64, py: i64, inclusive: bool) -> bool {
    if r2 < 0 {
        return false;
    }
    let d2 = dist2_carry(x, y, px, py);
    let r2 = (false, r2 as u128);
    if inclusive {
        d2 <= r2
    } else {
        d2 < r2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lift_budget_is_exact() {
        assert_eq!(lift_z(0, 0), Some(0));
        assert_eq!(lift_z(MAX_LIFT_COORD, -MAX_LIFT_COORD), Some(1 << 21));
        assert_eq!(lift_z(MAX_LIFT_COORD + 1, 0), None);
        assert_eq!(lift_z(0, i64::MIN), None);
        // The extreme lift stays inside the 3D budget |z| <= 2^21.
        assert!(lift_z(MAX_LIFT_COORD, MAX_LIFT_COORD).unwrap() <= 2 * crate::MAX_COORD_3D);
    }

    #[test]
    fn disk_halfspace_matches_membership_on_lifted_points() {
        // For every in-budget point and every in-budget disk, the lifted
        // halfspace test must agree with the exact distance test.
        let pts = [(0i64, 0i64), (3, -4), (-1024, 1024), (1000, 999), (-7, 0)];
        let disks = [
            (0i64, 0i64, 25i64),
            (3, -4, 0),
            (-1024, 1024, 1),
            (2000, -2000, 9_000_000),
            (5, 5, 2),
        ];
        for &(px, py) in &pts {
            let z = lift_z(px, py).unwrap();
            for &(x, y, r2) in &disks {
                let (u, v, w) = disk_to_halfspace(x, y, r2).unwrap();
                for inclusive in [false, true] {
                    let val = u as i128 * px as i128 + v as i128 * py as i128 + w as i128;
                    let below = if inclusive { z as i128 <= val } else { (z as i128) < val };
                    assert_eq!(
                        below,
                        in_disk(x, y, r2, px, py, inclusive),
                        "p=({px},{py}) disk=({x},{y},{r2}) inclusive={inclusive}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_oversized_disks_are_rejected() {
        assert_eq!(disk_to_halfspace(0, 0, -1), None);
        assert_eq!(disk_to_halfspace(MAX_DISK_CENTER + 1, 0, 1), None);
        assert_eq!(disk_to_halfspace(0, i64::MIN, 1), None);
        // The extreme admissible center keeps every output coefficient
        // representable: u = 2^22, w = r2 − 2^43.
        let (u, v, w) = disk_to_halfspace(MAX_DISK_CENTER, -MAX_DISK_CENTER, 0).unwrap();
        assert_eq!((u, v), (1 << 22, -(1 << 22)));
        assert_eq!(w, -(1i64 << 43));
    }

    #[test]
    fn carry_distance_is_exact_at_i64_extremes() {
        // (MAX − MIN)² + (MAX − MIN)² overflows u128 by exactly one bit.
        let (carry, lo) = dist2_carry(i64::MAX, i64::MAX, i64::MIN, i64::MIN);
        assert!(carry);
        let d = (i64::MAX as i128 - i64::MIN as i128).unsigned_abs();
        let (want_lo, want_carry) = (d * d).overflowing_add(d * d);
        assert_eq!((carry, lo), (want_carry, want_lo));
        // No i64 radius ever admits that distance…
        assert!(!in_disk(i64::MAX, i64::MAX, i64::MAX, i64::MIN, i64::MIN, true));
        // …while a zero-distance pair at the extremes is admitted by r2=0.
        assert!(in_disk(i64::MIN, i64::MAX, 0, i64::MIN, i64::MAX, true));
        assert!(!in_disk(i64::MIN, i64::MAX, 0, i64::MIN, i64::MAX, false));
    }
}
