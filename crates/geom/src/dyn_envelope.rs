//! Dynamic first-ray-hit envelope queries under insertions and deletions.
//!
//! The Edelsbrunner–Welzl level traversal (Section 2.3 of the paper) needs a
//! dynamic structure over the lines above (resp. below) the walk point that
//! answers: *where does a rightward ray along the current line first meet the
//! lower (resp. upper) envelope of the set?* The paper uses Overmars–van
//! Leeuwen dynamic hulls (O(log² n) per operation); we substitute a simpler
//! sqrt-decomposition — lines are kept in O(√n) groups, each group stores its
//! static [`LowerEnvelope`], rebuilt on update — trading the polylog for
//! O(√n log n) per operation. This affects construction time only, never the
//! structure produced (see DESIGN.md §3.1).
//!
//! Upper-envelope queries are served by the same code via negation.

use crate::envelope::LowerEnvelope;
use crate::line2::Line2;
use crate::rational::Rat;

/// Which envelope of the set the structure answers hits against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Set of lines above a walk point: ray hits the *lower* envelope.
    Lower,
    /// Set of lines below a walk point: ray hits the *upper* envelope
    /// (implemented by negating every line).
    Upper,
}

struct Group {
    members: Vec<u32>,
    env: LowerEnvelope,
}

/// Dynamic set of lines supporting insert, remove and first-ray-hit.
pub struct DynEnvelope {
    /// Working copies of all lines, indexed by the caller's line ids;
    /// negated when `side == Upper` so every query is a lower-envelope query.
    lines: Vec<Line2>,
    side: Side,
    groups: Vec<Group>,
    /// Group index of each member line, `NONE` when absent.
    loc: Vec<u32>,
    cap: usize,
    len: usize,
}

const NONE: u32 = u32::MAX;

impl DynEnvelope {
    /// Create over the universe `all_lines` (indexed by id) containing the
    /// subset `members`.
    pub fn new(all_lines: &[Line2], members: &[u32], side: Side) -> DynEnvelope {
        let lines: Vec<Line2> = match side {
            Side::Lower => all_lines.to_vec(),
            Side::Upper => all_lines.iter().map(|l| l.negated()).collect(),
        };
        let cap = ((members.len() as f64).sqrt() as usize).max(8);
        let mut s = DynEnvelope {
            lines,
            side,
            groups: Vec::new(),
            loc: vec![NONE; all_lines.len()],
            cap,
            len: 0,
        };
        for chunk in members.chunks(cap) {
            let gi = s.groups.len() as u32;
            for &id in chunk {
                debug_assert_eq!(s.loc[id as usize], NONE, "duplicate member {id}");
                s.loc[id as usize] = gi;
            }
            s.groups.push(Group {
                members: chunk.to_vec(),
                env: LowerEnvelope::build(&s.lines, chunk),
            });
            s.len += chunk.len();
        }
        s
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn contains(&self, id: u32) -> bool {
        self.loc[id as usize] != NONE
    }

    fn rebuild(&mut self, gi: usize) {
        self.groups[gi].env = LowerEnvelope::build(&self.lines, &self.groups[gi].members);
    }

    /// Insert line `id` (must be absent).
    pub fn insert(&mut self, id: u32) {
        assert_eq!(self.loc[id as usize], NONE, "insert of present line {id}");
        // Append to the last group; spill into a fresh group at 2×cap.
        if self.groups.last().is_none_or(|g| g.members.len() >= 2 * self.cap) {
            self.groups
                .push(Group { members: Vec::new(), env: LowerEnvelope::build(&self.lines, &[]) });
        }
        let gi = self.groups.len() - 1;
        self.groups[gi].members.push(id);
        self.loc[id as usize] = gi as u32;
        self.len += 1;
        self.rebuild(gi);
    }

    /// Remove line `id` (must be present).
    pub fn remove(&mut self, id: u32) {
        let gi = self.loc[id as usize];
        assert_ne!(gi, NONE, "remove of absent line {id}");
        let gi = gi as usize;
        let g = &mut self.groups[gi];
        let pos = g.members.iter().position(|&m| m == id).expect("loc consistent");
        g.members.swap_remove(pos);
        self.loc[id as usize] = NONE;
        self.len -= 1;
        self.rebuild(gi);
    }

    /// First abscissa (in the `x0+ε` sense) where the rightward ray along
    /// the caller's line `l` meets the envelope, with the line hit.
    ///
    /// Precondition: at `x0+ε`, `l` is strictly below every member
    /// (`Side::Lower`) resp. strictly above every member (`Side::Upper`).
    pub fn first_hit(&self, l: Line2, x0: Rat) -> Option<(Rat, u32)> {
        let l = match self.side {
            Side::Lower => l,
            Side::Upper => l.negated(),
        };
        let mut best: Option<(Rat, u32)> = None;
        for g in &self.groups {
            if g.env.is_empty() {
                continue;
            }
            if let Some((x, id)) = g.env.first_hit(&self.lines, l, x0) {
                best = match best {
                    Some((bx, bid)) if bx <= x => Some((bx, bid)),
                    _ => Some((x, id)),
                };
            }
        }
        best
    }

    /// All member ids (unordered); test helper.
    pub fn members(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.groups.iter().flat_map(|g| g.members.iter().copied()).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(lines: &[(i64, i64)]) -> Vec<Line2> {
        lines.iter().map(|&(m, b)| Line2::new(m, b)).collect()
    }

    /// Oracle: earliest crossing (>= x0, flipping after x0+ε) of `l` with
    /// any member, by brute force.
    fn naive_first_hit(
        all: &[Line2],
        members: &[u32],
        l: Line2,
        x0: Rat,
        side: Side,
    ) -> Option<Rat> {
        use std::cmp::Ordering::*;
        let mut best: Option<Rat> = None;
        for &id in members {
            let g = all[id as usize];
            let want = match side {
                Side::Lower => Less,    // l below g after x0
                Side::Upper => Greater, // l above g after x0
            };
            assert_eq!(l.cmp_at_plus(&g, x0), want, "precondition");
            if let Some(xc) = l.crossing_x(&g) {
                if xc >= x0 && l.cmp_at_plus(&g, xc) != want {
                    best = Some(best.map_or(xc, |b| b.min(xc)));
                }
            }
        }
        best
    }

    #[test]
    fn lower_side_hits_nearest_line_above() {
        let all = mk(&[(0, 10), (0, 5), (1, 100)]);
        let d = DynEnvelope::new(&all, &[0, 1, 2], Side::Lower);
        let ray = Line2::new(2, 0); // crosses y=5 at 2.5, y=10 at 5
        let hit = d.first_hit(ray, Rat::int(0)).unwrap();
        assert_eq!(hit, (Rat::new(5, 2), 1));
    }

    #[test]
    fn upper_side_hits_nearest_line_below() {
        let all = mk(&[(0, -10), (0, -5), (1, -100)]);
        let d = DynEnvelope::new(&all, &[0, 1, 2], Side::Upper);
        let ray = Line2::new(-2, 0); // descending; meets y=-5 at 2.5
        let hit = d.first_hit(ray, Rat::int(0)).unwrap();
        assert_eq!(hit, (Rat::new(5, 2), 1));
    }

    #[test]
    fn insert_remove_affect_hits() {
        let all = mk(&[(0, 10), (0, 5), (0, 2)]);
        let mut d = DynEnvelope::new(&all, &[0, 1], Side::Lower);
        let ray = Line2::new(1, 0);
        assert_eq!(d.first_hit(ray, Rat::int(0)).unwrap().1, 1);
        d.insert(2);
        assert_eq!(d.first_hit(ray, Rat::int(0)).unwrap().1, 2);
        d.remove(2);
        d.remove(1);
        assert_eq!(d.first_hit(ray, Rat::int(0)).unwrap().1, 0);
        d.remove(0);
        assert!(d.first_hit(ray, Rat::int(0)).is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn randomized_against_naive_with_churn() {
        let mut s = 42u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as i64
        };
        for side in [Side::Lower, Side::Upper] {
            let n = 60usize;
            // Universe of distinct lines.
            let all: Vec<Line2> = (0..n)
                .map(|i| Line2::new(next() % 50, (next() % 2000) + i as i64 * 4096))
                .collect();
            // Members: offset so the ray (below/above all) has valid precondition:
            // choose ray far below (Lower) / above (Upper) everything with an
            // extreme slope so crossings exist.
            let members: Vec<u32> = (0..n as u32).filter(|i| i % 3 != 0).collect();
            let mut d = DynEnvelope::new(&all, &members, side);
            let mut live = members.clone();
            for step in 0..40 {
                // Ray: steeper than all member slopes so it eventually crosses
                // everything; positioned on the correct side at x0.
                let x0 = Rat::int((step as i64 % 7) - 3);
                let ray = match side {
                    Side::Lower => Line2::new(100, -1_000_000),
                    Side::Upper => Line2::new(-100, 1_000_000),
                };
                let got = d.first_hit(ray, x0).map(|(x, _)| x);
                let want = naive_first_hit(&all, &live, ray, x0, side);
                assert_eq!(got, want, "side {side:?} step {step}");
                // Churn.
                if step % 2 == 0 && !live.is_empty() {
                    let victim = live[(next() as usize) % live.len()];
                    live.retain(|&x| x != victim);
                    d.remove(victim);
                } else {
                    let absent: Vec<u32> = (0..n as u32).filter(|i| !live.contains(i)).collect();
                    if !absent.is_empty() {
                        let add = absent[(next() as usize) % absent.len()];
                        live.push(add);
                        d.insert(add);
                    }
                }
                assert_eq!(d.len(), live.len());
            }
        }
    }
}
