//! d-dimensional integer points, hyperplanes, boxes, and simplices — the
//! primal-space vocabulary of the partition trees (Section 5).

/// A point in R^D with integer coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PointD<const D: usize> {
    pub c: [i64; D],
}

impl<const D: usize> PointD<D> {
    pub fn new(c: [i64; D]) -> Self {
        PointD { c }
    }
}

/// A query hyperplane `x_{D-1} = a_0 + a_1·x_0 + … + a_{D-1}·x_{D-2}` — the
/// linear constraint of the paper's problem statement. A point *satisfies*
/// the constraint when it lies strictly below the hyperplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HyperplaneD<const D: usize> {
    /// `coef[0]` is the constant `a_0`; `coef[i]` multiplies `x_{i-1}`.
    pub coef: [i64; D],
}

impl<const D: usize> HyperplaneD<D> {
    pub fn new(coef: [i64; D]) -> Self {
        HyperplaneD { coef }
    }

    /// Signed slack `rhs(p) - p_{D-1}`: positive iff `p` is strictly below.
    pub fn slack(&self, p: &PointD<D>) -> i128 {
        let mut s = self.coef[0] as i128;
        for i in 0..D - 1 {
            s += self.coef[i + 1] as i128 * p.c[i] as i128;
        }
        s - p.c[D - 1] as i128
    }

    /// Does `p` satisfy the linear constraint (lie strictly below)?
    pub fn strictly_below(&self, p: &PointD<D>) -> bool {
        self.slack(p) > 0
    }

    /// Minimum and maximum of the slack over the box (attained at corners,
    /// computed coordinate-wise).
    fn slack_range(&self, b: &Aabb<D>) -> (i128, i128) {
        let mut lo = self.coef[0] as i128;
        let mut hi = lo;
        for i in 0..D {
            // Coefficient of coordinate i in the slack.
            // x_{D-1} enters the slack with coefficient -1.
            let a: i128 = if i == D - 1 { -1 } else { self.coef[i + 1] as i128 };
            let (l, h) = (b.lo[i] as i128, b.hi[i] as i128);
            if a >= 0 {
                lo += a * l;
                hi += a * h;
            } else {
                lo += a * h;
                hi += a * l;
            }
        }
        // Careful: when D == 1 the slack is coef[0] - x_0 and the loop above
        // already handled i == D-1 == 0 with a = -1.
        (lo, hi)
    }

    /// Classify a box against the constraint.
    pub fn classify_box(&self, b: &Aabb<D>) -> BoxSide {
        let (lo, hi) = self.slack_range(b);
        if lo > 0 {
            BoxSide::FullyBelow
        } else if hi <= 0 {
            BoxSide::FullyAbove
        } else {
            BoxSide::Crossing
        }
    }
}

/// Position of a box relative to a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoxSide {
    /// Every point of the box satisfies the constraint.
    FullyBelow,
    /// No point of the box satisfies it.
    FullyAbove,
    /// The boundary hyperplane crosses the box.
    Crossing,
}

/// An axis-aligned box with inclusive integer bounds (the cell shape our
/// partitioners produce; see DESIGN.md §3.4 for the simplex substitution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aabb<const D: usize> {
    pub lo: [i64; D],
    pub hi: [i64; D],
}

impl<const D: usize> Aabb<D> {
    /// Smallest box containing `pts`; `None` for an empty set.
    pub fn bounding(pts: &[PointD<D>]) -> Option<Aabb<D>> {
        let first = pts.first()?;
        let mut lo = first.c;
        let mut hi = first.c;
        for p in &pts[1..] {
            for i in 0..D {
                lo[i] = lo[i].min(p.c[i]);
                hi[i] = hi[i].max(p.c[i]);
            }
        }
        Some(Aabb { lo, hi })
    }

    /// The whole coordinate budget.
    pub fn universe() -> Aabb<D> {
        Aabb { lo: [-crate::MAX_COORD_2D; D], hi: [crate::MAX_COORD_2D; D] }
    }

    pub fn contains(&self, p: &PointD<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= p.c[i] && p.c[i] <= self.hi[i])
    }
}

/// A convex query region given as an intersection of halfspaces
/// `Σ coef_i · x_i <= rhs` — a simplex when there are `D+1` of them, but any
/// number is accepted (the paper's Remark (i): polyhedra are triangulated
/// into simplices; we support the general convex form directly).
#[derive(Debug, Clone)]
pub struct Simplex<const D: usize> {
    pub facets: Vec<([i64; D], i64)>,
}

/// Position of a box relative to a simplex (conservative for `Maybe`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimplexSide {
    /// Box entirely inside the region.
    Inside,
    /// Box provably disjoint from the region.
    Outside,
    /// Undetermined — recurse.
    Maybe,
}

impl<const D: usize> Simplex<D> {
    pub fn new(facets: Vec<([i64; D], i64)>) -> Self {
        Simplex { facets }
    }

    pub fn contains_point(&self, p: &PointD<D>) -> bool {
        self.facets.iter().all(|(c, r)| {
            let mut s = 0i128;
            for i in 0..D {
                s += c[i] as i128 * p.c[i] as i128;
            }
            s <= *r as i128
        })
    }

    /// Conservative box classification: exact `Inside`/facet-separated
    /// `Outside`, otherwise `Maybe`. (A separating-axis test over the
    /// simplex facets only: sufficient for correctness of the query
    /// procedure — `Maybe` boxes are recursed into — and exact whenever a
    /// facet hyperplane separates; see DESIGN.md §3.4.)
    pub fn classify_box(&self, b: &Aabb<D>) -> SimplexSide {
        let mut all_inside = true;
        for (c, r) in &self.facets {
            let mut min = 0i128;
            let mut max = 0i128;
            for i in 0..D {
                let a = c[i] as i128;
                let (l, h) = (b.lo[i] as i128, b.hi[i] as i128);
                if a >= 0 {
                    min += a * l;
                    max += a * h;
                } else {
                    min += a * h;
                    max += a * l;
                }
            }
            if min > *r as i128 {
                return SimplexSide::Outside;
            }
            if max > *r as i128 {
                all_inside = false;
            }
        }
        if all_inside {
            SimplexSide::Inside
        } else {
            SimplexSide::Maybe
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperplane_below_matches_direct_eval() {
        // y = 2 + 3x in 2D.
        let h: HyperplaneD<2> = HyperplaneD::new([2, 3]);
        assert!(h.strictly_below(&PointD::new([1, 4]))); // 4 < 5
        assert!(!h.strictly_below(&PointD::new([1, 5])));
        assert!(!h.strictly_below(&PointD::new([1, 6])));
    }

    #[test]
    fn classify_box_2d() {
        let h: HyperplaneD<2> = HyperplaneD::new([0, 1]); // y = x
        let below = Aabb { lo: [5, -10], hi: [10, 4] }; // y <= 4 < x >= 5
        let above = Aabb { lo: [-10, 5], hi: [4, 10] };
        let cross = Aabb { lo: [-1, -1], hi: [1, 1] };
        assert_eq!(h.classify_box(&below), BoxSide::FullyBelow);
        assert_eq!(h.classify_box(&above), BoxSide::FullyAbove);
        assert_eq!(h.classify_box(&cross), BoxSide::Crossing);
    }

    #[test]
    fn classify_box_boundary_touch_is_not_fully_below() {
        let h: HyperplaneD<2> = HyperplaneD::new([0, 0]); // y = 0
                                                          // Box touching y = 0: its y=0 corners are NOT strictly below.
        let touch = Aabb { lo: [0, -5], hi: [1, 0] };
        assert_eq!(h.classify_box(&touch), BoxSide::Crossing);
        // Entirely on/above: prune.
        let on_above = Aabb { lo: [0, 0], hi: [1, 5] };
        assert_eq!(h.classify_box(&on_above), BoxSide::FullyAbove);
    }

    #[test]
    fn classify_matches_corner_enumeration_randomly() {
        let mut s = 5u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(11);
            ((s >> 33) as i64 % 41) - 20
        };
        for _ in 0..300 {
            let h: HyperplaneD<3> = HyperplaneD::new([next(), next(), next()]);
            let mut lo = [next(), next(), next()];
            let mut hi = [next(), next(), next()];
            for i in 0..3 {
                if lo[i] > hi[i] {
                    std::mem::swap(&mut lo[i], &mut hi[i]);
                }
            }
            let b = Aabb { lo, hi };
            // Enumerate corners.
            let mut any_below = false;
            let mut all_below = true;
            for mask in 0..8 {
                let p = PointD::new([
                    if mask & 1 == 0 { lo[0] } else { hi[0] },
                    if mask & 2 == 0 { lo[1] } else { hi[1] },
                    if mask & 4 == 0 { lo[2] } else { hi[2] },
                ]);
                if h.strictly_below(&p) {
                    any_below = true;
                } else {
                    all_below = false;
                }
            }
            let got = h.classify_box(&b);
            // Classification must agree exactly with corner enumeration
            // (the slack is linear, so extremes are attained at corners).
            let want = if all_below {
                BoxSide::FullyBelow
            } else if !any_below {
                BoxSide::FullyAbove
            } else {
                BoxSide::Crossing
            };
            assert_eq!(got, want);
        }
    }

    #[test]
    fn bounding_box() {
        let pts = vec![PointD::new([1, 5]), PointD::new([-3, 2]), PointD::new([4, -1])];
        let b = Aabb::bounding(&pts).unwrap();
        assert_eq!(b.lo, [-3, -1]);
        assert_eq!(b.hi, [4, 5]);
        assert!(Aabb::<2>::bounding(&[]).is_none());
    }

    #[test]
    fn simplex_triangle_classification() {
        // Triangle x >= 0, y >= 0, x + y <= 10 (as <=-facets).
        let t: Simplex<2> = Simplex::new(vec![([-1, 0], 0), ([0, -1], 0), ([1, 1], 10)]);
        assert!(t.contains_point(&PointD::new([2, 3])));
        assert!(!t.contains_point(&PointD::new([8, 8])));
        let inside = Aabb { lo: [1, 1], hi: [3, 3] };
        let outside = Aabb { lo: [20, 20], hi: [30, 30] };
        let cross = Aabb { lo: [-5, -5], hi: [5, 5] };
        assert_eq!(t.classify_box(&inside), SimplexSide::Inside);
        assert_eq!(t.classify_box(&outside), SimplexSide::Outside);
        assert_eq!(t.classify_box(&cross), SimplexSide::Maybe);
    }
}
