//! Randomized incremental lower convex hull with Clarkson–Shor conflict
//! lists — the dual of the lower envelope of planes (Section 4.1).
//!
//! The lower envelope of planes `z = a·x + b·y + c` corresponds, under the
//! map `plane ↦ point (a,b,c)`, to the lower convex hull of the dual points:
//! envelope *faces* are hull *vertices*, envelope *vertices* are hull
//! *facets*, and "plane `q` passes strictly below envelope vertex `v`" is
//! exactly the facet-visibility predicate `q sees facet(v)`.
//!
//! To keep every face bounded we add four *sentinel* planes with huge
//! gradients (they own the envelope at infinity but lie far above every real
//! plane inside the query region, see DESIGN.md §3.2) and one *apex* dual
//! point that caps the upper hull so the polytope stays closed; facets
//! incident to the apex are ignored by [`LowerHull::snapshot`].
//!
//! Insertion follows the textbook randomized incremental construction with
//! full bipartite conflict lists (de Berg et al., ch. 11): candidates for a
//! new facet's conflicts are the conflicts of the two old facets flanking
//! its horizon edge. Because the paper's samples `R_i` are *prefixes of one
//! random permutation*, a single incremental run, paused at the right
//! prefix sizes, yields every layer's triangulated envelope *and* conflict
//! lists (DESIGN.md §3.2).

use crate::plane3::Plane3;

/// Sentinel gradient magnitude; must exceed four times the real-coefficient
/// budget so sentinels win at infinity in every direction.
pub const SENTINEL_L: i64 = 1 << 22;
/// Sentinel plane intercept: `2·L·W'` with `W' = 2^24`.
pub const SENTINEL_Z: i64 = 2 * SENTINEL_L * (1 << 24);
/// Apex height (any value above `SENTINEL_Z` works).
const APEX_Z: i64 = 2 * SENTINEL_Z;
/// Number of artificial dual points (4 sentinels + 1 apex).
const ARTIFICIAL: u32 = 5;
const APEX: u32 = 4;

const NO_FACET: u32 = u32::MAX;

#[derive(Debug)]
struct Facet {
    /// Vertex ids, counter-clockwise seen from outside.
    v: [u32; 3],
    /// `nbr[i]` is the facet across the edge `(v[i], v[(i+1)%3])`.
    nbr: [u32; 3],
    /// Uninserted real point indices that strictly see this facet.
    conflicts: Vec<u32>,
}

/// A facet of a [`LowerHull::snapshot`]: an envelope vertex with the three
/// planes meeting there and the not-yet-sampled planes strictly below it.
#[derive(Debug, Clone)]
pub struct SnapFacet {
    /// The three defining planes: `Ok(i)` = the i-th real input plane,
    /// `Err(s)` = sentinel number `s` (0..4).
    pub verts: [Result<u32, u32>; 3],
    /// Real input planes not in the current prefix that pass strictly below
    /// this envelope vertex, ascending by input index.
    pub conflicts: Vec<u32>,
}

/// Incremental lower hull over a fixed insertion order of planes.
pub struct LowerHull {
    /// Dual point coordinates: 0..4 sentinels, 4 apex, `5 + i` = plane `i`.
    pts: Vec<[i64; 3]>,
    facets: Vec<Facet>,
    alive: Vec<bool>,
    /// Per real point: facets it sees (may contain dead ids, cleaned lazily).
    point_conflicts: Vec<Vec<u32>>,
    inserted: usize,
    n_real: usize,
    /// Scratch marks for BFS / candidate dedup.
    facet_mark: Vec<u32>,
    point_mark: Vec<u32>,
    stamp: u32,
}

fn det3(u: [i128; 3], v: [i128; 3], w: [i128; 3]) -> i128 {
    u[0] * (v[1] * w[2] - v[2] * w[1]) - u[1] * (v[0] * w[2] - v[2] * w[0])
        + u[2] * (v[0] * w[1] - v[1] * w[0])
}

impl LowerHull {
    /// Set up the initial sentinel pyramid and the conflict lists of all
    /// `planes` (which all see the two base facets). `planes` must already
    /// be in the desired (random) insertion order.
    pub fn new(planes: &[Plane3]) -> LowerHull {
        let l = SENTINEL_L;
        let s = SENTINEL_Z;
        let mut pts = vec![[-l, -l, s], [l, -l, s], [l, l, s], [-l, l, s], [0, 0, APEX_Z]];
        for p in planes {
            debug_assert!(
                p.a.abs() <= crate::MAX_COORD_3D
                    && p.b.abs() <= crate::MAX_COORD_3D
                    && p.c.abs() <= 2 * crate::MAX_COORD_3D,
                "plane {p:?} outside the 3D coordinate budget"
            );
            pts.push([p.a, p.b, p.c]);
        }
        // Initial polytope: square base (two triangles, outward = down) and
        // four apex side facets (outward = away from the axis).
        //   base0 = (0,2,1)  base1 = (0,3,2)   [down-facing: vertices CW
        //   seen from above = CCW seen from below]
        //   side_i = (i, i+1, APEX) for the quad edge (i, i+1).
        let mut facets = Vec::with_capacity(6);
        let mut alive = Vec::new();
        // ids: 0 = base0 (0,2,1), 1 = base1 (0,3,2),
        //      2 = side (0,1,A), 3 = side (1,2,A), 4 = side (2,3,A), 5 = side (3,0,A)
        facets.push(Facet { v: [0, 2, 1], nbr: [1, 3, 2], conflicts: vec![] });
        facets.push(Facet { v: [0, 3, 2], nbr: [5, 4, 0], conflicts: vec![] });
        facets.push(Facet { v: [0, 1, APEX], nbr: [0, 3, 5], conflicts: vec![] });
        facets.push(Facet { v: [1, 2, APEX], nbr: [0, 4, 2], conflicts: vec![] });
        facets.push(Facet { v: [2, 3, APEX], nbr: [1, 5, 3], conflicts: vec![] });
        facets.push(Facet { v: [3, 0, APEX], nbr: [1, 2, 4], conflicts: vec![] });
        alive.extend([true; 6]);
        let mut hull = LowerHull {
            pts,
            facets,
            alive,
            point_conflicts: vec![Vec::new(); planes.len()],
            inserted: 0,
            n_real: planes.len(),
            facet_mark: vec![0; 6],
            point_mark: vec![0; planes.len()],
            stamp: 0,
        };
        hull.debug_check_initial();
        // Every real point lies strictly below the base plane, hence sees
        // both base facets and nothing else.
        for i in 0..planes.len() as u32 {
            hull.facets[0].conflicts.push(i);
            hull.facets[1].conflicts.push(i);
            hull.point_conflicts[i as usize].extend([0u32, 1]);
            debug_assert!(hull.sees(i, 0) && hull.sees(i, 1), "plane {i} must see the base");
        }
        hull
    }

    fn debug_check_initial(&self) {
        #[cfg(debug_assertions)]
        {
            // Neighbor pointers must be mutually consistent.
            for (fi, f) in self.facets.iter().enumerate() {
                for i in 0..3 {
                    let (u, v) = (f.v[i], f.v[(i + 1) % 3]);
                    let g = &self.facets[f.nbr[i] as usize];
                    let found = (0..3).any(|j| g.v[j] == v && g.v[(j + 1) % 3] == u);
                    assert!(found, "facet {fi} edge {i} neighbor mismatch");
                }
            }
        }
    }

    /// Does real point `pi` strictly see facet `fi`?
    fn sees(&self, pi: u32, fi: u32) -> bool {
        self.sees_vertex(ARTIFICIAL + pi, fi)
    }

    fn sees_vertex(&self, vid: u32, fi: u32) -> bool {
        let f = &self.facets[fi as usize];
        let a = self.pts[f.v[0] as usize];
        let b = self.pts[f.v[1] as usize];
        let c = self.pts[f.v[2] as usize];
        let p = self.pts[vid as usize];
        let sub = |x: [i64; 3], y: [i64; 3]| {
            [x[0] as i128 - y[0] as i128, x[1] as i128 - y[1] as i128, x[2] as i128 - y[2] as i128]
        };
        det3(sub(b, a), sub(c, a), sub(p, a)) > 0
    }

    /// Number of real points inserted so far.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    pub fn n_real(&self) -> usize {
        self.n_real
    }

    /// Insert the next point of the order; returns `false` when the point
    /// was inside the hull (its plane nowhere on the envelope of the prefix).
    pub fn insert_next(&mut self) -> bool {
        assert!(self.inserted < self.n_real, "all points inserted");
        let pi = self.inserted as u32;
        self.inserted += 1;
        let pv = ARTIFICIAL + pi;

        // A facet the point sees (visibility is static while a facet lives).
        let start = {
            let lst = &mut self.point_conflicts[pi as usize];
            let alive = &self.alive;
            lst.retain(|&f| alive[f as usize]);
            match lst.first() {
                Some(&f) => f,
                None => return false, // interior: never on the envelope
            }
        };
        debug_assert!(self.sees(pi, start));

        // BFS the visible region.
        self.stamp += 1;
        let visible_stamp = self.stamp;
        let mut visible = vec![start];
        self.facet_mark[start as usize] = visible_stamp;
        let mut qi = 0;
        while qi < visible.len() {
            let f = visible[qi];
            qi += 1;
            for i in 0..3 {
                let nb = self.facets[f as usize].nbr[i];
                if self.facet_mark[nb as usize] == visible_stamp {
                    continue;
                }
                debug_assert!(self.alive[nb as usize]);
                if self.sees(pi, nb) {
                    self.facet_mark[nb as usize] = visible_stamp;
                    visible.push(nb);
                }
            }
        }

        // Horizon: for each visible facet edge whose neighbor is not
        // visible, record (u, v, dead_inside, outside). The horizon of a
        // convex-position insertion is a single cycle; key the map by `u`.
        struct HorizonEdge {
            v: u32,
            inside: u32,
            outside: u32,
        }
        let mut horizon: std::collections::HashMap<u32, HorizonEdge> =
            std::collections::HashMap::new();
        for &f in &visible {
            for i in 0..3 {
                let nb = self.facets[f as usize].nbr[i];
                if self.facet_mark[nb as usize] == visible_stamp {
                    continue;
                }
                let (u, v) = (self.facets[f as usize].v[i], self.facets[f as usize].v[(i + 1) % 3]);
                let prev = horizon.insert(u, HorizonEdge { v, inside: f, outside: nb });
                debug_assert!(prev.is_none(), "horizon is not a simple cycle");
            }
        }
        debug_assert!(!horizon.is_empty());

        // Create the new cone of facets (u, v, pv) and stitch neighbors.
        let mut new_ids: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (&u, e) in &horizon {
            let id = self.facets.len() as u32;
            self.facets.push(Facet {
                v: [u, e.v, pv],
                nbr: [e.outside, NO_FACET, NO_FACET],
                conflicts: vec![],
            });
            self.alive.push(true);
            self.facet_mark.push(0);
            new_ids.insert(u, id);
        }
        for (&u, e) in &horizon {
            let id = new_ids[&u];
            // Across (v, pv): the new facet starting at v. Across (pv, u):
            // the new facet ending at u, i.e., the one whose v == u.
            let next = new_ids[&e.v];
            self.facets[id as usize].nbr[1] = next;
            self.facets[next as usize].nbr[2] = id;
            // Fix the outside facet's pointer for edge (v, u).
            let of = e.outside as usize;
            let j = (0..3)
                .find(|&j| self.facets[of].v[j] == e.v && self.facets[of].v[(j + 1) % 3] == u)
                .expect("outside facet must share the horizon edge");
            self.facets[of].nbr[j] = id;
        }

        // Redistribute conflicts: candidates for facet (u,v,pv) are the
        // conflicts of the dead facet inside the edge and of the outside
        // facet (de Berg Lemma 11.6 — complete by induction).
        for (&u, e) in &horizon {
            let id = new_ids[&u];
            self.stamp += 1;
            let cand_stamp = self.stamp;
            let mut cands: Vec<u32> = Vec::new();
            for src in [e.inside, e.outside] {
                for k in 0..self.facets[src as usize].conflicts.len() {
                    let q = self.facets[src as usize].conflicts[k];
                    if q <= pi {
                        continue; // already inserted (or the point itself)
                    }
                    if self.point_mark[q as usize] != cand_stamp {
                        self.point_mark[q as usize] = cand_stamp;
                        cands.push(q);
                    }
                }
            }
            cands.sort_unstable();
            for q in cands {
                if self.sees(q, id) {
                    self.facets[id as usize].conflicts.push(q);
                    self.point_conflicts[q as usize].push(id);
                }
            }
            // Sanity: every new facet must not be seen from the interior.
            #[cfg(debug_assertions)]
            {
                let f = &self.facets[id as usize];
                let a = self.pts[f.v[0] as usize];
                let b = self.pts[f.v[1] as usize];
                let c = self.pts[f.v[2] as usize];
                let interior = [0i128, 0, (SENTINEL_Z as i128 + APEX_Z as i128) / 2];
                let sub = |x: [i64; 3]| {
                    [
                        x[0] as i128 - a[0] as i128,
                        x[1] as i128 - a[1] as i128,
                        x[2] as i128 - a[2] as i128,
                    ]
                };
                let subi = [
                    interior[0] - a[0] as i128,
                    interior[1] - a[1] as i128,
                    interior[2] - a[2] as i128,
                ];
                assert!(det3(sub(b), sub(c), subi) < 0, "new facet oriented inward");
            }
        }

        // Retire the visible facets.
        for &f in &visible {
            self.alive[f as usize] = false;
            self.facets[f as usize].conflicts = Vec::new();
        }
        true
    }

    /// Insert points until `count` real points have been processed.
    pub fn insert_until(&mut self, count: usize) {
        while self.inserted < count.min(self.n_real) {
            self.insert_next();
        }
    }

    /// Snapshot of the current *lower* hull: every alive facet not incident
    /// to the apex, with conflicts (uninserted real planes strictly below
    /// the corresponding envelope vertex).
    pub fn snapshot(&self) -> Vec<SnapFacet> {
        let mut out = Vec::new();
        for (fi, f) in self.facets.iter().enumerate() {
            if !self.alive[fi] || f.v.contains(&APEX) {
                continue;
            }
            let verts = [
                Self::classify_vert(f.v[0]),
                Self::classify_vert(f.v[1]),
                Self::classify_vert(f.v[2]),
            ];
            out.push(SnapFacet { verts, conflicts: f.conflicts.clone() });
        }
        out
    }

    fn classify_vert(v: u32) -> Result<u32, u32> {
        if v >= ARTIFICIAL {
            Ok(v - ARTIFICIAL)
        } else {
            Err(v)
        }
    }

    /// The four sentinel planes (duals of the sentinel points).
    pub fn sentinel_planes() -> [Plane3; 4] {
        let l = SENTINEL_L;
        let s = SENTINEL_Z;
        [Plane3::new(-l, -l, s), Plane3::new(l, -l, s), Plane3::new(l, l, s), Plane3::new(-l, l, s)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_of_vert(v: Result<u32, u32>, planes: &[Plane3]) -> Plane3 {
        match v {
            Ok(i) => planes[i as usize],
            Err(s) => LowerHull::sentinel_planes()[s as usize],
        }
    }

    /// Brute-force minimum plane over (x, y) among a prefix (plus
    /// sentinels — which must never win inside the region).
    fn envelope_min(planes: &[Plane3], prefix: usize, x: i64, y: i64) -> (usize, i128) {
        let mut best = (usize::MAX, i128::MAX);
        for (i, p) in planes[..prefix].iter().enumerate() {
            let v = p.eval(x, y);
            if v < best.1 {
                best = (i, v);
            }
        }
        for s in LowerHull::sentinel_planes() {
            assert!(s.eval(x, y) > best.1, "sentinel interferes in the query region");
        }
        best
    }

    fn pseudo_planes(n: usize, seed: u64) -> Vec<Plane3> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as i64
        };
        (0..n)
            .map(|_| {
                Plane3::new(next() % 1000 - 500, next() % 1000 - 500, next() % 100_000 - 50_000)
            })
            .collect()
    }

    #[test]
    fn single_plane_cone() {
        let planes = vec![Plane3::new(3, -2, 10)];
        let mut h = LowerHull::new(&planes);
        assert!(h.insert_next());
        let snap = h.snapshot();
        // Four facets: the point with each sentinel edge.
        assert_eq!(snap.len(), 4);
        for f in &snap {
            let reals: Vec<_> = f.verts.iter().filter(|v| v.is_ok()).collect();
            assert_eq!(reals.len(), 1);
            assert!(f.conflicts.is_empty());
        }
    }

    #[test]
    fn interior_point_detected() {
        // Second plane strictly above the first everywhere (parallel).
        let planes = vec![Plane3::new(0, 0, 0), Plane3::new(0, 0, 100)];
        let mut h = LowerHull::new(&planes);
        assert!(h.insert_next());
        assert!(!h.insert_next(), "dominated plane must be interior");
        let snap = h.snapshot();
        for f in &snap {
            assert!(!f.verts.contains(&Ok(1)));
        }
    }

    #[test]
    fn envelope_vertices_match_brute_force_min() {
        for seed in [1u64, 7, 42] {
            let planes = pseudo_planes(40, seed);
            let mut h = LowerHull::new(&planes);
            h.insert_until(planes.len());
            let snap = h.snapshot();
            let hull_vertices: std::collections::HashSet<u32> =
                snap.iter().flat_map(|f| f.verts.iter().filter_map(|v| v.ok())).collect();
            // At many probe locations, the minimum plane must be a hull
            // vertex (it owns a face of the envelope there).
            let mut s = seed ^ 0x55;
            let mut next = move || {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((s >> 33) as i64 % 2_000_000) - 1_000_000
            };
            for _ in 0..200 {
                let (x, y) = (next() % 100_000, next() % 100_000);
                let (who, val) = envelope_min(&planes, planes.len(), x, y);
                // Unique minimum ⇒ must be a vertex.
                let unique = planes.iter().enumerate().all(|(i, p)| i == who || p.eval(x, y) > val);
                if unique {
                    assert!(
                        hull_vertices.contains(&(who as u32)),
                        "seed {seed}: min plane {who} at ({x},{y}) missing from hull"
                    );
                }
            }
        }
    }

    #[test]
    fn conflicts_are_exactly_planes_below_vertices() {
        // Verify conflict lists against the definition via an independent
        // rational computation of each envelope vertex.
        let planes = pseudo_planes(24, 99);
        let prefix = 10;
        let mut h = LowerHull::new(&planes);
        h.insert_until(prefix);
        let snap = h.snapshot();
        for f in &snap {
            let p1 = plane_of_vert(f.verts[0], &planes);
            let p2 = plane_of_vert(f.verts[1], &planes);
            let p3 = plane_of_vert(f.verts[2], &planes);
            // Solve p1=p2=p3: Cramer on (a1-a2)x + (b1-b2)y = c2-c1 etc.
            let (a1, b1) = (p1.a as i128 - p2.a as i128, p1.b as i128 - p2.b as i128);
            let r1 = p2.c as i128 - p1.c as i128;
            let (a2, b2) = (p1.a as i128 - p3.a as i128, p1.b as i128 - p3.b as i128);
            let r2 = p3.c as i128 - p1.c as i128;
            let den = a1 * b2 - a2 * b1;
            assert!(den != 0, "degenerate facet");
            let xn = r1 * b2 - r2 * b1;
            let yn = a1 * r2 - a2 * r1;
            // z·den = a1'·xn + b1'·yn + c1·den for plane 1.
            let zn = p1.a as i128 * xn + p1.b as i128 * yn + p1.c as i128 * den;
            for q in prefix..planes.len() {
                let p = planes[q];
                // q strictly below the vertex ⟺ (a·xn + b·yn + c·den) · sign(den) < zn · sign(den)
                let lhs = p.a as i128 * xn + p.b as i128 * yn + p.c as i128 * den;
                let below = if den > 0 { lhs < zn } else { lhs > zn };
                assert_eq!(
                    f.conflicts.contains(&(q as u32)),
                    below,
                    "conflict mismatch plane {q} vs facet {:?}",
                    f.verts
                );
            }
        }
    }

    #[test]
    fn parallel_planes_only_lowest_survives() {
        // A stack of parallel planes: exactly one (the lowest) is ever on
        // the envelope; the rest are interior points of the dual hull.
        let planes: Vec<Plane3> = (0..10).map(|i| Plane3::new(5, -3, i * 100)).collect();
        let mut h = LowerHull::new(&planes);
        h.insert_until(planes.len());
        let snap = h.snapshot();
        let verts: std::collections::HashSet<u32> =
            snap.iter().flat_map(|f| f.verts.iter().filter_map(|v| v.ok())).collect();
        assert_eq!(verts, std::collections::HashSet::from([0u32]));
        // And every higher plane conflicts with nothing (it is above the
        // envelope everywhere).
        for f in &snap {
            assert!(f.conflicts.is_empty(), "parallel planes above cannot conflict");
        }
    }

    #[test]
    fn two_crossing_plane_families() {
        // Two tilted families crossing along a line: both extremes appear.
        let planes = vec![
            Plane3::new(100, 0, 0),
            Plane3::new(-100, 0, 0),
            Plane3::new(0, 100, 50_000),
            Plane3::new(0, -100, 50_000),
        ];
        let mut h = LowerHull::new(&planes);
        h.insert_until(planes.len());
        let snap = h.snapshot();
        let verts: std::collections::HashSet<u32> =
            snap.iter().flat_map(|f| f.verts.iter().filter_map(|v| v.ok())).collect();
        // The first two planes dominate far out along x and must be
        // vertices; the y-family sits 50k higher at the crossing line but
        // still wins far out along y.
        for i in 0..4u32 {
            assert!(verts.contains(&i), "plane {i} missing from envelope");
        }
    }

    #[test]
    fn insertion_order_does_not_change_the_vertex_set() {
        let planes = pseudo_planes(30, 1234);
        let mut reference: Option<std::collections::HashSet<u32>> = None;
        for rot in [0usize, 7, 19] {
            let rotated: Vec<Plane3> =
                (0..planes.len()).map(|i| planes[(i + rot) % planes.len()]).collect();
            let mut h = LowerHull::new(&rotated);
            h.insert_until(rotated.len());
            let verts: std::collections::HashSet<u32> = h
                .snapshot()
                .iter()
                .flat_map(|f| f.verts.iter().filter_map(|v| v.ok()))
                .map(|i| (i as usize + rot) as u32 % planes.len() as u32)
                .collect();
            match &reference {
                None => reference = Some(verts),
                Some(r) => assert_eq!(&verts, r, "rotation {rot}"),
            }
        }
    }

    #[test]
    fn snapshot_prefix_sizes_are_monotone() {
        let planes = pseudo_planes(64, 5);
        let mut h = LowerHull::new(&planes);
        let mut last_faces = 0;
        for c in [4usize, 8, 16, 32, 64] {
            h.insert_until(c);
            let snap = h.snapshot();
            assert!(!snap.is_empty());
            // Conflicts only mention uninserted planes.
            for f in &snap {
                for &q in &f.conflicts {
                    assert!((q as usize) >= c);
                }
            }
            // Face count grows at most linearly with the sample.
            assert!(snap.len() <= 2 * (c + 4) * 3);
            last_faces = snap.len();
        }
        assert!(last_faces > 0);
    }
}
