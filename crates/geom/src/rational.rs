//! Exact rational numbers for arrangement coordinates.
//!
//! A [`Rat`] is `num/den` with `den > 0`, stored in `i128` and *not* reduced:
//! values are only ever constructed from bounded integer inputs (crossings of
//! two integer lines), so magnitudes stay far below overflow, and all
//! comparisons cross-multiply exactly. `Rat` also models `-∞`/`+∞` so that
//! level walks and clusterings can carry their unbounded boundary abscissae.

use std::cmp::Ordering;

/// An exact rational with ±∞, totally ordered.
#[derive(Debug, Clone, Copy)]
pub enum Rat {
    NegInf,
    Fin { num: i128, den: i128 },
    PosInf,
}

impl Rat {
    /// `num/den`; `den` must be nonzero (sign is normalized).
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "zero denominator");
        if den < 0 {
            Rat::Fin { num: -num, den: -den }
        } else {
            Rat::Fin { num, den }
        }
    }

    pub fn int(v: i64) -> Rat {
        Rat::Fin { num: v as i128, den: 1 }
    }

    pub fn is_finite(&self) -> bool {
        matches!(self, Rat::Fin { .. })
    }

    /// Numerator/denominator of a finite value.
    pub fn parts(&self) -> (i128, i128) {
        match self {
            Rat::Fin { num, den } => (*num, *den),
            _ => panic!("parts() of infinite Rat"),
        }
    }

    /// Approximate f64 value (for printing only; never used in predicates).
    pub fn to_f64(&self) -> f64 {
        match self {
            Rat::NegInf => f64::NEG_INFINITY,
            Rat::PosInf => f64::INFINITY,
            Rat::Fin { num, den } => *num as f64 / *den as f64,
        }
    }

    /// Compare against an integer.
    pub fn cmp_int(&self, v: i64) -> Ordering {
        match self {
            Rat::NegInf => Ordering::Less,
            Rat::PosInf => Ordering::Greater,
            Rat::Fin { num, den } => num.cmp(&(v as i128 * den)),
        }
    }
}

impl PartialEq for Rat {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Rat {}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        use Rat::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Ordering::Equal,
            (NegInf, _) | (_, PosInf) => Ordering::Less,
            (PosInf, _) | (_, NegInf) => Ordering::Greater,
            (Fin { num: n1, den: d1 }, Fin { num: n2, den: d2 }) => (n1 * d2).cmp(&(n2 * d1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_with_infinities() {
        assert!(Rat::NegInf < Rat::int(-1_000_000));
        assert!(Rat::int(5) < Rat::PosInf);
        assert!(Rat::NegInf < Rat::PosInf);
        assert_eq!(Rat::NegInf, Rat::NegInf);
    }

    #[test]
    fn cross_multiplied_compare() {
        assert_eq!(Rat::new(1, 3).cmp(&Rat::new(2, 6)), Ordering::Equal);
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 3) > Rat::new(-1, 2));
        // Negative denominators are normalized.
        assert_eq!(Rat::new(1, -2), Rat::new(-1, 2));
    }

    #[test]
    fn cmp_int_matches_cmp() {
        assert_eq!(Rat::new(7, 2).cmp_int(3), Ordering::Greater);
        assert_eq!(Rat::new(6, 2).cmp_int(3), Ordering::Equal);
        assert_eq!(Rat::new(5, 2).cmp_int(3), Ordering::Less);
        assert_eq!(Rat::NegInf.cmp_int(i64::MIN), Ordering::Less);
        assert_eq!(Rat::PosInf.cmp_int(i64::MAX), Ordering::Greater);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }
}
