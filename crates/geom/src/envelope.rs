//! Static lower envelopes of lines.
//!
//! The lower envelope (pointwise minimum, the paper's 0-level) of a set of
//! lines is a concave chain: lines appear in strictly decreasing slope order
//! from left to right. Upper envelopes are obtained by negation
//! ([`crate::line2::Line2::negated`]).

use crate::line2::Line2;
use crate::rational::Rat;

/// Lower envelope of a set of lines, as a left-to-right chain.
///
/// `chain[i]` is the index (into the line slice the envelope was built from)
/// of the line forming the `i`-th piece; `breaks[i]` is the abscissa where
/// piece `i` hands over to piece `i+1` (`breaks.len() == chain.len() - 1`).
#[derive(Debug, Clone)]
pub struct LowerEnvelope {
    pub chain: Vec<u32>,
    pub breaks: Vec<Rat>,
}

impl LowerEnvelope {
    /// Build the lower envelope of `members` (indices into `lines`).
    pub fn build(lines: &[Line2], members: &[u32]) -> LowerEnvelope {
        let mut ids: Vec<u32> = members.to_vec();
        // Slope descending (leftmost piece first); among parallels the lower
        // intercept wins and the rest can never appear on the envelope.
        ids.sort_by(|&i, &j| {
            let (a, b) = (lines[i as usize], lines[j as usize]);
            b.m.cmp(&a.m).then(a.b.cmp(&b.b))
        });
        ids.dedup_by(|i, j| lines[*i as usize].m == lines[*j as usize].m);

        let mut chain: Vec<u32> = Vec::with_capacity(ids.len());
        let mut breaks: Vec<Rat> = Vec::new();
        for id in ids {
            let cand = lines[id as usize];
            loop {
                if chain.len() < 2 {
                    break;
                }
                let second = lines[chain[chain.len() - 2] as usize];
                // The top of the chain is useless if `cand` takes over from
                // `second` no later than the top did.
                let x_sc = second.crossing_x(&cand).expect("distinct slopes");
                let x_st = *breaks.last().unwrap();
                if x_sc <= x_st {
                    chain.pop();
                    breaks.pop();
                } else {
                    break;
                }
            }
            if let Some(&last) = chain.last() {
                let x = lines[last as usize].crossing_x(&cand).expect("distinct slopes");
                breaks.push(x);
            }
            chain.push(id);
        }
        LowerEnvelope { chain, breaks }
    }

    pub fn is_empty(&self) -> bool {
        self.chain.is_empty()
    }

    /// Index (into `chain`) of the piece active just right of `x`.
    pub fn piece_at_plus(&self, x: Rat) -> usize {
        // Piece j is active on (breaks[j-1], breaks[j]); x+ε falls in piece
        // j where j = #breaks <= x.
        self.breaks.partition_point(|b| *b <= x)
    }

    /// The line of the envelope attaining the minimum just right of `x`.
    pub fn line_at_plus(&self, x: Rat) -> Option<u32> {
        if self.chain.is_empty() {
            None
        } else {
            Some(self.chain[self.piece_at_plus(x)])
        }
    }

    /// First abscissa `x_c` (in the symbolic `x0+ε` sense) where the ray
    /// along `l` starting at `x0` going right meets the envelope, together
    /// with the envelope line hit. Requires `l` strictly below the envelope
    /// at `x0+ε`; returns `None` if `l` stays below forever.
    pub fn first_hit(&self, lines: &[Line2], l: Line2, x0: Rat) -> Option<(Rat, u32)> {
        if self.chain.is_empty() {
            return None;
        }
        let j0 = self.piece_at_plus(x0);
        if l.cmp_at_plus(&lines[self.chain[j0] as usize], x0) != std::cmp::Ordering::Less {
            // The ray is not strictly below the envelope just right of x0.
            // In a simple arrangement this cannot happen; at a point where
            // three or more lines are concurrent the level walk transiently
            // violates the invariant while it resolves the simultaneous
            // swaps, and reporting an immediate hit at x0 processes them one
            // by one (see level.rs).
            return Some((x0, self.chain[j0]));
        }
        // Q(j) = "l still strictly below the envelope just right of the END
        // of piece j" is monotone (true..true,false..false) for j >= j0
        // because env - l is concave and positive at x0+ε.
        let q = |j: usize| -> bool {
            if j + 1 >= self.chain.len() {
                // Last piece extends to +∞.
                return l.cmp_at_plus(&lines[*self.chain.last().unwrap() as usize], Rat::PosInf)
                    == std::cmp::Ordering::Less;
            }
            let xe = self.breaks[j];
            // Just right of the break the next piece is the envelope.
            l.cmp_at_plus(&lines[self.chain[j + 1] as usize], xe) == std::cmp::Ordering::Less
        };
        let (mut lo, mut hi) = (j0, self.chain.len() - 1);
        if q(hi) {
            return None; // below at +∞: never hits
        }
        // Invariant: q(lo) unknown-but-start, q(hi) false. Find first false.
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if q(mid) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let k = lo; // crossing happens within piece k
        let env_line = lines[self.chain[k] as usize];
        let xc = l.crossing_x(&env_line).expect("sign change within a piece implies non-parallel");
        Some((xc, self.chain[k]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(lines: &[Line2]) -> LowerEnvelope {
        let ids: Vec<u32> = (0..lines.len() as u32).collect();
        LowerEnvelope::build(lines, &ids)
    }

    /// Brute-force minimum line just right of x.
    fn naive_min_at_plus(lines: &[Line2], x: Rat) -> u32 {
        let mut best = 0u32;
        for i in 1..lines.len() as u32 {
            if lines[i as usize].cmp_at_plus(&lines[best as usize], x) == std::cmp::Ordering::Less {
                best = i;
            }
        }
        best
    }

    #[test]
    fn simple_vee() {
        let lines = vec![Line2::new(1, 0), Line2::new(-1, 0)];
        let e = env(&lines);
        assert_eq!(e.chain, vec![0, 1]); // slope desc: +1 then -1
        assert_eq!(e.breaks, vec![Rat::int(0)]);
    }

    #[test]
    fn dominated_line_is_dropped() {
        let lines = vec![Line2::new(1, 0), Line2::new(-1, 0), Line2::new(0, 100)];
        let e = env(&lines);
        assert_eq!(e.chain, vec![0, 1]);
    }

    #[test]
    fn parallel_keeps_lowest() {
        let lines = vec![Line2::new(2, 5), Line2::new(2, -5), Line2::new(-2, 0)];
        let e = env(&lines);
        assert!(e.chain.contains(&1));
        assert!(!e.chain.contains(&0));
    }

    #[test]
    fn matches_naive_on_pseudorandom() {
        let mut s = 0xdeadbeefu64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i64 % 2000) - 1000
        };
        for trial in 0..50 {
            let n = 3 + (trial % 20);
            let lines: Vec<Line2> = (0..n).map(|_| Line2::new(next(), next())).collect();
            let e = env(&lines);
            for xq in [-3000, -500, -1, 0, 1, 7, 499, 2999] {
                let x = Rat::int(xq);
                let got = e.line_at_plus(x).unwrap();
                let want = naive_min_at_plus(&lines, x);
                assert_eq!(
                    lines[got as usize].cmp_at_plus(&lines[want as usize], x),
                    std::cmp::Ordering::Equal,
                    "trial {trial} x {xq}"
                );
            }
        }
    }

    #[test]
    fn first_hit_finds_earliest_crossing() {
        // Envelope: vee of slopes +1/-1 through origin; ray along y = -10.
        let lines = vec![Line2::new(1, 0), Line2::new(-1, 0)];
        let e = env(&lines);
        let ray = Line2::new(0, -10);
        // Starting left of the vee bottom, the ray never rises above either
        // line? env(x) = -|x| ... env dips to -inf both sides; at x0=-20,
        // env(-20) = -20 < -10: precondition fails there. Start at x0 = -5:
        // env(-5) = -5 > -10 ok; first hit where -10 = -x → x = 10 on line 1.
        let hit = e.first_hit(&lines, ray, Rat::int(-5));
        assert_eq!(hit, Some((Rat::int(10), 1)));
    }

    #[test]
    fn first_hit_none_when_always_below() {
        // Envelope of a single line above the ray with the same slope.
        let lines = vec![Line2::new(3, 50)];
        let e = env(&lines);
        let ray = Line2::new(3, 0);
        assert_eq!(e.first_hit(&lines, ray, Rat::NegInf), None);
    }

    #[test]
    fn first_hit_within_first_piece() {
        // Envelope min(x, -x) = -|x|; ray y = x - 1 is below it at x = -1/2
        // (ray -3/2 < env -1/2) and crosses piece 1 (y = -x) at x = 1/2.
        let lines = vec![Line2::new(1, 0), Line2::new(-1, 0)];
        let e = env(&lines);
        let ray = Line2::new(1, -1);
        let hit = e.first_hit(&lines, ray, Rat::new(-1, 2));
        assert_eq!(hit, Some((Rat::new(1, 2), 1)));
    }

    #[test]
    fn first_hit_random_against_naive() {
        let mut s = 99u64;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as i64 % 200) - 100
        };
        for trial in 0..200 {
            let n = 2 + (trial % 12);
            let lines: Vec<Line2> = (0..n).map(|_| Line2::new(next(), next())).collect();
            let e = env(&lines);
            // Pick a ray strictly below the envelope at x0.
            let x0 = Rat::int(next());
            let min_id = e.line_at_plus(x0).unwrap();
            let minline = lines[min_id as usize];
            let ray = Line2::new(minline.m - 1 - (trial as i64 % 3), minline.b - 1);
            if ray.cmp_at_plus(&minline, x0) != std::cmp::Ordering::Less {
                continue;
            }
            let hit = e.first_hit(&lines, ray, x0);
            // Naive: earliest crossing x > x0(+ε) with any envelope-minimum
            // transition... simply scan candidate crossings with all lines
            // and verify the reported one is a true envelope hit and minimal.
            let mut best: Option<Rat> = None;
            for l in &lines {
                if let Some(xc) = ray.crossing_x(l) {
                    if xc >= x0 {
                        // The crossing is an envelope hit iff ray >= env just
                        // right of xc.
                        let envline = lines[e.line_at_plus(xc).unwrap() as usize];
                        if ray.cmp_at_plus(&envline, xc) != std::cmp::Ordering::Less {
                            best = Some(best.map_or(xc, |b| b.min(xc)));
                        }
                    }
                }
            }
            match (hit, best) {
                (None, None) => {}
                (Some((xh, _)), Some(xb)) => assert_eq!(xh, xb, "trial {trial}"),
                other => panic!("trial {trial}: mismatch {other:?}"),
            }
        }
    }
}
