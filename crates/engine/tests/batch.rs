//! Engine-level contracts: every RangeIndex impl answers exactly, batching
//! never changes answers, per-query attribution sums to the batch total,
//! and a repeat-heavy batch over a warm shared cache costs strictly fewer
//! read IOs than the cold one-at-a-time baseline.

use lcrs_baselines::{ExternalKdTree, ExternalScan, StrRTree};
use lcrs_engine::{BatchExecutor, ExecMode, Query, QueryStatus, RangeIndex};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_geom::point::PointD;
use lcrs_halfspace::hs2d::Hs2dConfig;
use lcrs_halfspace::hs3d::Hs3dConfig;
use lcrs_halfspace::ptree::PTreeConfig;
use lcrs_halfspace::tradeoff::{HybridConfig, ShallowConfig};
use lcrs_halfspace::{
    DynamicHalfspace2, HalfspaceRS2, HalfspaceRS3, HybridTree3, KnnStructure, PartitionTree,
    ShallowTree3,
};
use lcrs_workloads::{
    count_below2, count_below3, halfplane_with_selectivity, halfspace3_with_selectivity, points2,
    points3, Dist2, Dist3,
};

fn warm_device() -> Device {
    Device::new(DeviceConfig::new(512, 128))
}

#[test]
fn every_2d_impl_answers_exactly() {
    let pts = points2(Dist2::Uniform, 800, 1 << 20, 11);
    let dev = warm_device();
    let hs2d = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let scan = ExternalScan::build(&dev, &pts);
    let kd = ExternalKdTree::build(&dev, &pts);
    let rt = StrRTree::build(&dev, &pts);
    let pd: Vec<PointD<2>> = pts.iter().map(|&(x, y)| PointD::new([x, y])).collect();
    let pt = PartitionTree::<2>::build(&dev, &pd, PTreeConfig::default());
    let mut dynm = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
    for (i, &(x, y)) in pts.iter().enumerate() {
        dynm.insert(x, y, i as u64);
    }
    let indexes: Vec<&dyn RangeIndex> = vec![&hs2d, &scan, &kd, &rt, &pt, &dynm];
    for t in [0usize, 40, 400] {
        let (m, c) = halfplane_with_selectivity(&pts, t, 40, t as u64 + 1);
        let q = Query::Halfplane { m, c, inclusive: false };
        let want = count_below2(&pts, m, c);
        for idx in &indexes {
            assert!(idx.supports(&q));
            // Every 2D index answers halfplanes; only the scan (which can
            // compute anything from its flat file) also covers k-NN.
            assert_eq!(
                idx.supports(&Query::Knn { x: 0, y: 0, k: 1 }),
                idx.name() == "scan",
                "{}",
                idx.name()
            );
            let (ids, io) = idx.execute_measured(&q);
            assert_eq!(ids.len(), want, "{} at t={t}", idx.name());
            assert_eq!(io.writes, 0, "{}: queries must not write", idx.name());
        }
    }
}

#[test]
fn every_3d_impl_answers_exactly() {
    let pts = points3(Dist3::Uniform, 600, 1 << 18, 12);
    let dev = warm_device();
    let hs3d = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
    let hybrid = HybridTree3::build(&dev, &pts, HybridConfig::default());
    let shallow = ShallowTree3::build(&dev, &pts, ShallowConfig::default());
    let indexes: Vec<&dyn RangeIndex> = vec![&hs3d, &hybrid, &shallow];
    for t in [0usize, 30, 300] {
        let (u, v, w) = halfspace3_with_selectivity(&pts, t, 30, t as u64 + 5);
        let q = Query::Halfspace { u, v, w, inclusive: false };
        let want = count_below3(&pts, u, v, w);
        for idx in &indexes {
            assert!(idx.supports(&q));
            let ids = idx.execute(&q);
            assert_eq!(ids.len(), want, "{} at t={t}", idx.name());
        }
    }
}

#[test]
fn knn_impl_answers_exactly() {
    // Stay inside the lift coordinate budget (|coord| <= 1024).
    let pts = points2(Dist2::Uniform, 300, 1000, 13);
    let dev = warm_device();
    let knn = KnnStructure::build(&dev, &pts, Hs3dConfig::default());
    let q = Query::Knn { x: 7, y: -3, k: 12 };
    assert!(knn.supports(&q));
    assert!(!knn.supports(&Query::Halfplane { m: 0, c: 0, inclusive: false }));
    let ids = knn.execute(&q);
    let mut by_dist: Vec<(i128, u64)> = pts
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| {
            let (dx, dy) = ((7 - a) as i128, (-3 - b) as i128);
            (dx * dx + dy * dy, i as u64)
        })
        .collect();
    by_dist.sort();
    let want: Vec<u64> = by_dist.iter().take(12).map(|&(_, i)| i).collect();
    assert_eq!(ids, want);
}

#[test]
fn attribution_sums_to_batch_total_and_order_is_submission() {
    let pts = points2(Dist2::Clustered, 2000, 1 << 20, 14);
    let dev = warm_device();
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let queries: Vec<Query> = (0..40)
        .map(|i| {
            let (m, c) = halfplane_with_selectivity(&pts, 25 * (i % 8), 40, 900 + i as u64);
            Query::Halfplane { m, c, inclusive: false }
        })
        .collect();
    let ex = BatchExecutor::new(&hs);
    for report in [ex.run_cold(&queries), ex.run_batched(&queries)] {
        assert_eq!(report.outcomes.len(), queries.len());
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.query, i, "outcomes must be in submission order");
        }
        let attr = report.attributed_total();
        assert_eq!(attr, report.total, "per-query deltas must sum to the batch total");
    }
}

#[test]
fn schedule_is_a_locality_sorted_permutation() {
    let queries = vec![
        Query::Halfplane { m: 5, c: 0, inclusive: false },
        Query::Halfplane { m: -3, c: 10, inclusive: false },
        Query::Halfplane { m: 5, c: -2, inclusive: false },
        Query::Halfplane { m: -3, c: 10, inclusive: true },
    ];
    let pts = points2(Dist2::Uniform, 50, 1 << 20, 15);
    let dev = warm_device();
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let ex = BatchExecutor::new(&hs);
    let order = ex.schedule(&queries);
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![0, 1, 2, 3], "schedule must be a permutation");
    // Duals: (-3,10) twice (submission order 1 then 3), then (5,-2), (5,0).
    assert_eq!(order, vec![1, 3, 2, 0]);
}

#[test]
fn batched_saves_reads_and_preserves_answers() {
    let pts = points2(Dist2::Uniform, 3000, 1 << 20, 16);
    let dev = Device::new(DeviceConfig::new(512, 256));
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    // A repeat-heavy batch: 8 distinct queries, 120 occurrences.
    let base: Vec<(i64, i64)> =
        (0..8).map(|i| halfplane_with_selectivity(&pts, 60 + 10 * i, 40, 300 + i as u64)).collect();
    let queries: Vec<Query> = (0..120)
        .map(|i| {
            let (m, c) = base[i * 7 % base.len()];
            Query::Halfplane { m, c, inclusive: false }
        })
        .collect();
    let ex = BatchExecutor::new(&hs).keep_answers(true);
    let cold = ex.run_cold(&queries);
    let batched = ex.run_batched(&queries);
    assert_eq!(cold.mode, ExecMode::Cold);
    assert_eq!(batched.mode, ExecMode::Batched);
    assert!(
        batched.reads() < cold.reads(),
        "warm shared cache must save reads: batched {} vs cold {}",
        batched.reads(),
        cold.reads()
    );
    assert_eq!(batched.total.writes, 0, "report queries never write");
    // Batching must not change any answer.
    let (ca, ba) = (cold.answers.unwrap(), batched.answers.unwrap());
    assert_eq!(ca, ba);
    for (o, a) in batched.outcomes.iter().zip(&ba) {
        assert_eq!(o.reported, a.len());
    }
}

#[test]
fn cacheless_device_makes_batching_a_no_op() {
    let pts = points2(Dist2::Uniform, 1000, 1 << 20, 17);
    let dev = Device::new(DeviceConfig::new(512, 0));
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let queries: Vec<Query> = (0..20)
        .map(|i| {
            let (m, c) = halfplane_with_selectivity(&pts, 50, 40, i);
            Query::Halfplane { m, c, inclusive: false }
        })
        .collect();
    let ex = BatchExecutor::new(&hs);
    let cold = ex.run_cold(&queries);
    let batched = ex.run_batched(&queries);
    assert_eq!(cold.reads(), batched.reads(), "no cache, no savings");
    assert_eq!(cold.total.cache_hits, 0);
}

#[test]
fn executor_reports_unsupported_queries_without_aborting() {
    // A mixed batch: the unsupported k-NN query gets an Unsupported
    // outcome (zero ids, zero IOs) while the halfplane queries around it
    // still run — the batch is never aborted.
    let pts = points2(Dist2::Uniform, 100, 1 << 20, 18);
    let dev = warm_device();
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let queries = [
        Query::Halfplane { m: 1, c: 0, inclusive: false },
        Query::Knn { x: 0, y: 0, k: 3 },
        Query::Halfplane { m: -2, c: 100, inclusive: true },
    ];
    let report = BatchExecutor::new(&hs).keep_answers(true).run_batched(&queries);
    assert_eq!(report.unsupported(), 1);
    assert_eq!(report.outcomes[1].status, QueryStatus::Unsupported);
    assert_eq!(report.outcomes[1].reported, 0);
    assert_eq!(report.outcomes[1].io, lcrs_extmem::IoDelta::default());
    for qi in [0, 2] {
        assert_eq!(report.outcomes[qi].status, QueryStatus::Ok);
        assert_eq!(
            report.answers.as_ref().unwrap()[qi].len(),
            report.outcomes[qi].reported,
            "supported queries still answer"
        );
    }
    assert_eq!(report.attributed_total(), report.total);
    // try_execute surfaces the same condition as a value.
    let err = hs.try_execute(&queries[1]).unwrap_err();
    assert_eq!(err.index, "hs2d");
}
