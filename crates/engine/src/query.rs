//! The unified query interface: [`Query`] values and the [`RangeIndex`]
//! trait implemented by every structure in the workspace.

use lcrs_baselines::{ExternalKdTree, ExternalScan, StrRTree};
use lcrs_extmem::{Device, IoDelta};
use lcrs_geom::point::HyperplaneD;
use lcrs_halfspace::{
    DynamicHalfspace2, HalfspaceRS2, HalfspaceRS3, HybridTree3, KnnStructure, PartitionTree,
    ShallowTree3,
};

/// A structure-agnostic report query.
///
/// Coordinates follow the conventions of the underlying structures: 2D
/// halfplanes are `y <= m·x + c`, 3D halfspaces are `z <= u·x + v·y + w`
/// (strict unless `inclusive`), and k-NN reports the `k` points closest to
/// `(x, y)` in Euclidean distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Points below the line `y = m·x + c` (2D structures).
    Halfplane { m: i64, c: i64, inclusive: bool },
    /// Points below the plane `z = u·x + v·y + w` (3D structures).
    Halfspace { u: i64, v: i64, w: i64, inclusive: bool },
    /// The `k` nearest neighbors of `(x, y)` ([`KnnStructure`] only).
    Knn { x: i64, y: i64, k: usize },
}

impl Query {
    /// Sort key for page locality: nearby keys tend to touch the same
    /// pages. Halfplanes map to their dual point `(m, c)` — queries with
    /// close duals cross the same levels of the 2D structure; halfspaces
    /// and k-NN queries sort by their region of interest.
    pub fn locality_key(&self) -> [i64; 3] {
        match *self {
            Query::Halfplane { m, c, .. } => [m, c, 0],
            Query::Halfspace { u, v, w, .. } => [u, v, w],
            Query::Knn { x, y, k } => [x, y, k as i64],
        }
    }
}

/// A queryable index living on a [`Device`].
///
/// `execute` answers one [`Query`] and returns the reported ids (input
/// indices, or caller tags for [`DynamicHalfspace2`]), widened to `u64`.
/// `execute_measured` brackets the call with device-stats snapshots so
/// each query gets exact [`IoDelta`] attribution — the primitive the
/// [`crate::BatchExecutor`] builds on.
pub trait RangeIndex {
    /// Short structure name for reports and tables.
    fn name(&self) -> &'static str;

    /// The device the structure was built on (all IOs flow through it).
    fn device(&self) -> &Device;

    /// Can this index answer `q` at all?
    fn supports(&self, q: &Query) -> bool;

    /// Answer `q`, returning reported ids. Panics if `!self.supports(q)`.
    fn execute(&self, q: &Query) -> Vec<u64>;

    /// [`Self::execute`] with exact IO attribution via stats snapshots.
    fn execute_measured(&self, q: &Query) -> (Vec<u64>, IoDelta) {
        let before = self.device().stats();
        let out = self.execute(q);
        (out, self.device().stats().since(before))
    }
}

fn widen(v: Vec<u32>) -> Vec<u64> {
    v.into_iter().map(u64::from).collect()
}

fn unsupported(name: &str, q: &Query) -> ! {
    panic!("{name} does not support {q:?} (check RangeIndex::supports first)")
}

impl RangeIndex for HalfspaceRS2 {
    fn name(&self) -> &'static str {
        "hs2d"
    }

    fn device(&self) -> &Device {
        HalfspaceRS2::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfplane { .. })
    }

    fn execute(&self, q: &Query) -> Vec<u64> {
        match *q {
            Query::Halfplane { m, c, inclusive } => widen(self.query_below(m, c, inclusive)),
            _ => unsupported(RangeIndex::name(self), q),
        }
    }
}

impl RangeIndex for DynamicHalfspace2 {
    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn device(&self) -> &Device {
        DynamicHalfspace2::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfplane { .. })
    }

    fn execute(&self, q: &Query) -> Vec<u64> {
        match *q {
            Query::Halfplane { m, c, inclusive } => self.query_below(m, c, inclusive),
            _ => unsupported(RangeIndex::name(self), q),
        }
    }
}

impl RangeIndex for PartitionTree<2> {
    fn name(&self) -> &'static str {
        "ptree"
    }

    fn device(&self) -> &Device {
        PartitionTree::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfplane { .. })
    }

    fn execute(&self, q: &Query) -> Vec<u64> {
        match *q {
            Query::Halfplane { m, c, inclusive } => {
                // y <= m·x + c as the 2D hyperplane [a0, a1] = [c, m].
                let h: HyperplaneD<2> = HyperplaneD::new([c, m]);
                widen(self.query_halfspace(&h, inclusive))
            }
            _ => unsupported(RangeIndex::name(self), q),
        }
    }
}

impl RangeIndex for HalfspaceRS3 {
    fn name(&self) -> &'static str {
        "hs3d"
    }

    fn device(&self) -> &Device {
        HalfspaceRS3::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfspace { .. })
    }

    fn execute(&self, q: &Query) -> Vec<u64> {
        match *q {
            Query::Halfspace { u, v, w, inclusive } => widen(self.query_below(u, v, w, inclusive)),
            _ => unsupported(RangeIndex::name(self), q),
        }
    }
}

impl RangeIndex for HybridTree3 {
    fn name(&self) -> &'static str {
        "tradeoff-hybrid"
    }

    fn device(&self) -> &Device {
        HybridTree3::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfspace { .. })
    }

    fn execute(&self, q: &Query) -> Vec<u64> {
        match *q {
            Query::Halfspace { u, v, w, inclusive } => widen(self.query_below(u, v, w, inclusive)),
            _ => unsupported(RangeIndex::name(self), q),
        }
    }
}

impl RangeIndex for ShallowTree3 {
    fn name(&self) -> &'static str {
        "tradeoff-shallow"
    }

    fn device(&self) -> &Device {
        ShallowTree3::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfspace { .. })
    }

    fn execute(&self, q: &Query) -> Vec<u64> {
        match *q {
            Query::Halfspace { u, v, w, inclusive } => widen(self.query_below(u, v, w, inclusive)),
            _ => unsupported(RangeIndex::name(self), q),
        }
    }
}

impl RangeIndex for KnnStructure {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn device(&self) -> &Device {
        KnnStructure::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Knn { .. })
    }

    fn execute(&self, q: &Query) -> Vec<u64> {
        match *q {
            Query::Knn { x, y, k } => widen(self.k_nearest(x, y, k)),
            _ => unsupported(RangeIndex::name(self), q),
        }
    }
}

impl RangeIndex for ExternalScan {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn device(&self) -> &Device {
        ExternalScan::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfplane { .. })
    }

    fn execute(&self, q: &Query) -> Vec<u64> {
        match *q {
            Query::Halfplane { m, c, inclusive } => widen(self.query_below(m, c, inclusive).0),
            _ => unsupported(RangeIndex::name(self), q),
        }
    }
}

impl RangeIndex for ExternalKdTree {
    fn name(&self) -> &'static str {
        "kdtree"
    }

    fn device(&self) -> &Device {
        ExternalKdTree::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfplane { .. })
    }

    fn execute(&self, q: &Query) -> Vec<u64> {
        match *q {
            Query::Halfplane { m, c, inclusive } => widen(self.query_below(m, c, inclusive).0),
            _ => unsupported(RangeIndex::name(self), q),
        }
    }
}

impl RangeIndex for StrRTree {
    fn name(&self) -> &'static str {
        "rtree"
    }

    fn device(&self) -> &Device {
        StrRTree::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfplane { .. })
    }

    fn execute(&self, q: &Query) -> Vec<u64> {
        match *q {
            Query::Halfplane { m, c, inclusive } => widen(self.query_below(m, c, inclusive).0),
            _ => unsupported(RangeIndex::name(self), q),
        }
    }
}
