//! The unified query interface: [`Query`] values and the [`RangeIndex`]
//! trait implemented by every structure in the workspace.

use lcrs_baselines::{ExternalKdTree, ExternalScan, ExternalScan3, StrRTree};
use lcrs_extmem::{DeviceHandle, IoDelta, MetaReader, MetaWriter, SnapshotError};
use lcrs_geom::point::HyperplaneD;
use lcrs_halfspace::cost::{CostHint, CostShape};
use lcrs_halfspace::{
    DynamicHalfspace2, HalfspaceRS2, HalfspaceRS3, HybridTree3, KnnStructure, PartitionTree,
    ShallowTree3,
};

/// A structure-agnostic query.
///
/// Seven query classes share one answer channel (`Vec<u64>` of ids or
/// encoded scalars — see each variant). Coordinates follow the
/// conventions of the underlying structures: 2D halfplanes are
/// `y <= m·x + c`, 3D halfspaces are `z <= u·x + v·y + w` (strict unless
/// `inclusive`). Three classes are *derived* — answered by existing
/// structures without any new index:
///
/// * [`Query::Disk`] reduces to a 3D halfspace over paraboloid-lifted
///   points ([`lcrs_geom::lift`], served by [`crate::LiftedIndex`]);
/// * [`Query::Count`] / [`Query::Sum`] ride annotated canonical nodes
///   (subtree counts and weight sums, weight = `x + y`) so covered nodes
///   answer without enumerating leaves;
/// * [`Query::TopK`] ranks the halfplane candidates by `y − m·x`, the
///   dual-line value the 2D walk computes anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Points below the line `y = m·x + c` (2D structures). Answer: ids.
    Halfplane { m: i64, c: i64, inclusive: bool },
    /// Points below the plane `z = u·x + v·y + w` (3D structures).
    /// Answer: ids.
    Halfspace { u: i64, v: i64, w: i64, inclusive: bool },
    /// The `k` nearest neighbors of `(x, y)` ([`KnnStructure`] and the 2D
    /// scan). Answer: ids, closest first (ties by id) — order matters.
    Knn { x: i64, y: i64, k: usize },
    /// Points within squared distance `r2` of `(x, y)` (circular range
    /// reporting via the lift — DESIGN.md §15). `r2 < 0` is an empty
    /// disk. Answer: ids.
    Disk { x: i64, y: i64, r2: i64, inclusive: bool },
    /// How many points lie below `y = m·x + c`. Answer: `vec![count]`.
    Count { m: i64, c: i64, inclusive: bool },
    /// Exact `Σ (x + y)` over points below `y = m·x + c`, an `i128`.
    /// Answer: two words — see [`encode_sum`] / [`decode_sum`].
    Sum { m: i64, c: i64, inclusive: bool },
    /// The `k` points with the lowest key `y − m·x` among those with
    /// key ≤ `c` (always inclusive). Answer: ids ordered by
    /// `(key, id)` — order matters, like [`Query::Knn`].
    TopK { m: i64, c: i64, k: usize },
}

impl Query {
    /// Sort key for page locality: nearby keys tend to touch the same
    /// pages. Halfplanes and their derived classes (count/sum/top-k) map
    /// to their dual point `(m, c)` — queries with close duals cross the
    /// same levels of the 2D structure; halfspaces, disks, and k-NN
    /// queries sort by their region of interest.
    pub fn locality_key(&self) -> [i64; 3] {
        match *self {
            Query::Halfplane { m, c, .. } => [m, c, 0],
            Query::Halfspace { u, v, w, .. } => [u, v, w],
            Query::Knn { x, y, k } => [x, y, k as i64],
            Query::Disk { x, y, r2, .. } => [x, y, r2],
            Query::Count { m, c, .. } => [m, c, 1],
            Query::Sum { m, c, .. } => [m, c, 2],
            Query::TopK { m, c, k } => [m, c, k as i64],
        }
    }

    /// `true` for the scalar-answer classes ([`Query::Count`] /
    /// [`Query::Sum`]): their answers are aggregates, not id reports, so
    /// sharded execution merges them by summing and the planner prices
    /// them with the separately calibrated aggregate constant.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Query::Count { .. } | Query::Sum { .. })
    }

    /// `true` when the answer's *order* is part of the contract
    /// ([`Query::Knn`] distance-ranked, [`Query::TopK`] key-ranked):
    /// comparing or merging such answers must never sort them by id.
    pub fn is_ranked(&self) -> bool {
        matches!(self, Query::Knn { .. } | Query::TopK { .. })
    }
}

/// Encode an exact `i128` weight sum into the `Vec<u64>` answer channel:
/// `[low 64 bits, high 64 bits]`. [`decode_sum`] inverts this.
pub fn encode_sum(s: i128) -> Vec<u64> {
    vec![s as u64, (s >> 64) as u64]
}

/// Decode a [`Query::Sum`] answer produced by [`encode_sum`].
pub fn decode_sum(ans: &[u64]) -> i128 {
    assert_eq!(ans.len(), 2, "a Sum answer is exactly two words");
    ((ans[1] as i64 as i128) << 64) | ans[0] as i128
}

/// A query an index cannot answer (wrong query class for the structure).
///
/// Returned by [`RangeIndex::try_execute`] so batch executors can record a
/// per-query [`crate::QueryStatus::Unsupported`] outcome and keep going
/// instead of aborting the whole batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unsupported {
    /// [`RangeIndex::name`] of the index that rejected the query.
    pub index: &'static str,
    /// The rejected query.
    pub query: Query,
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} does not support {:?}", self.index, self.query)
    }
}

impl std::error::Error for Unsupported {}

/// A queryable index living on a device.
///
/// `try_execute` answers one [`Query`] and returns the reported ids (input
/// indices, or caller tags for [`DynamicHalfspace2`]), widened to `u64`,
/// or [`Unsupported`] when the index cannot answer that query class.
/// `execute_measured` brackets the call with device-stats snapshots so
/// each query gets exact [`IoDelta`] attribution — the primitive the
/// [`crate::BatchExecutor`] builds on.
///
/// The `Send + Sync` supertraits are what lets the [`crate::ParallelExecutor`]
/// share an index across worker threads; they hold for every structure in
/// the workspace because all device state lives behind [`DeviceHandle`]s.
/// `fork_reader` is the other half of that story: it clones the index onto
/// a fresh handle scope (own LRU, zeroed stats, same pages), giving each
/// worker deterministic, exactly-attributable IO counts.
pub trait RangeIndex: Send + Sync {
    /// Short structure name for reports and tables.
    fn name(&self) -> &'static str;

    /// The device handle the structure reads through (all its IOs flow
    /// through this scope).
    fn device(&self) -> &DeviceHandle;

    /// Can this index answer `q` at all?
    fn supports(&self, q: &Query) -> bool;

    /// The structure's self-reported asymptotic query bound (DESIGN.md
    /// §10) — the shape the [`crate::IndexSet`] planner's cost model is
    /// seeded from before calibration fits the constant.
    fn cost_hint(&self) -> CostHint;

    /// The hint this index would answer `q` with. Defaults to
    /// [`Self::cost_hint`]; structures with an annotated aggregate path
    /// override it to return [`CostHint::as_aggregate`] for
    /// [`Query::Count`] / [`Query::Sum`], which the calibrated planner
    /// prices with a separately fitted constant (DESIGN.md §15).
    fn cost_hint_for(&self, q: &Query) -> CostHint {
        let _ = q;
        self.cost_hint()
    }

    /// Answer `q`, returning reported ids, or [`Unsupported`] when
    /// `!self.supports(q)`.
    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported>;

    /// Answer `q`, returning reported ids. Panics if `!self.supports(q)`;
    /// use [`Self::try_execute`] to keep a batch alive instead.
    fn execute(&self, q: &Query) -> Vec<u64> {
        self.try_execute(q).unwrap_or_else(|e| panic!("{e} (check RangeIndex::supports first)"))
    }

    /// [`Self::try_execute`] with exact IO attribution via stats snapshots.
    fn try_execute_measured(&self, q: &Query) -> (Result<Vec<u64>, Unsupported>, IoDelta) {
        let before = self.device().stats();
        let out = self.try_execute(q);
        (out, self.device().stats().since(before))
    }

    /// [`Self::execute`] with exact IO attribution via stats snapshots.
    fn execute_measured(&self, q: &Query) -> (Vec<u64>, IoDelta) {
        let before = self.device().stats();
        let out = self.execute(q);
        (out, self.device().stats().since(before))
    }

    /// A reader clone of this index on a fresh device-handle scope (its own
    /// cache and stats) over the same pages, for one parallel worker.
    fn fork_reader(&self) -> Box<dyn RangeIndex>;

    /// Serialize this index's host-side metadata (roots, fanouts,
    /// partition tables — recursively through nested sub-structures); the
    /// page data is captured separately by
    /// [`lcrs_extmem::Device::freeze_to_path`]. [`load_index`] re-creates
    /// the index from [`Self::name`] plus these bytes — the dispatch the
    /// [`crate::SnapshotCatalog`] is built on.
    fn save_meta(&self, w: &mut MetaWriter);
}

/// Reconstruct an index persisted through [`RangeIndex::save_meta`] from
/// its [`RangeIndex::name`], reading pages through `h` (typically the
/// primary handle of a [`lcrs_extmem::Device::open_snapshot`] device).
pub fn load_index(
    kind: &str,
    h: &DeviceHandle,
    r: &mut MetaReader,
) -> Result<Box<dyn RangeIndex>, SnapshotError> {
    Ok(match kind {
        "hs2d" => Box::new(HalfspaceRS2::load(h, r)?),
        "dynamic" => Box::new(DynamicHalfspace2::load(h, r)?),
        "live-level" => Box::new(crate::live::LiveLevel::load(h, r)?),
        "ptree" => Box::new(PartitionTree::<2>::load(h, r)?),
        "hs3d" => Box::new(HalfspaceRS3::load(h, r)?),
        "tradeoff-hybrid" => Box::new(HybridTree3::load(h, r)?),
        "tradeoff-shallow" => Box::new(ShallowTree3::load(h, r)?),
        "knn" => Box::new(KnnStructure::load(h, r)?),
        "scan" => Box::new(ExternalScan::load(h, r)?),
        "scan3" => Box::new(ExternalScan3::load(h, r)?),
        "kdtree" => Box::new(ExternalKdTree::load(h, r)?),
        "rtree" => Box::new(StrRTree::load(h, r)?),
        "lift-hs3d" | "lift-hybrid" | "lift-shallow" | "lift-scan3" => {
            Box::new(crate::lift::LiftedIndex::load(kind, h, r)?)
        }
        other => {
            return Err(SnapshotError::Meta {
                offset: 0,
                detail: format!("unknown index kind {other:?}"),
            })
        }
    })
}

fn widen(v: Vec<u32>) -> Vec<u64> {
    v.into_iter().map(u64::from).collect()
}

pub(crate) fn unsupported(name: &'static str, q: &Query) -> Result<Vec<u64>, Unsupported> {
    Err(Unsupported { index: name, query: *q })
}

impl RangeIndex for HalfspaceRS2 {
    fn name(&self) -> &'static str {
        "hs2d"
    }

    fn device(&self) -> &DeviceHandle {
        HalfspaceRS2::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(
            q,
            Query::Halfplane { .. } | Query::Count { .. } | Query::Sum { .. } | Query::TopK { .. }
        )
    }

    fn cost_hint(&self) -> CostHint {
        HalfspaceRS2::cost_hint(self)
    }

    fn cost_hint_for(&self, q: &Query) -> CostHint {
        let hint = HalfspaceRS2::cost_hint(self);
        if q.is_aggregate() {
            hint.as_aggregate()
        } else {
            hint
        }
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Halfplane { m, c, inclusive } => Ok(widen(self.query_below(m, c, inclusive))),
            Query::Count { m, c, inclusive } => Ok(vec![self.aggregate_below(m, c, inclusive).0]),
            Query::Sum { m, c, inclusive } => {
                Ok(encode_sum(self.aggregate_below(m, c, inclusive).1))
            }
            Query::TopK { m, c, k } => Ok(widen(self.top_k(m, c, k))),
            _ => unsupported(RangeIndex::name(self), q),
        }
    }

    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(HalfspaceRS2::fork_reader(self))
    }

    fn save_meta(&self, w: &mut MetaWriter) {
        HalfspaceRS2::save(self, w)
    }
}

impl RangeIndex for DynamicHalfspace2 {
    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn device(&self) -> &DeviceHandle {
        DynamicHalfspace2::device(self)
    }

    /// The live tier answers every 2D-derived class (aggregates, top-k,
    /// disks for arbitrary centers) by exact host-side enumeration of its
    /// catalog state — the mutable tier favors exactness over IO wins.
    fn supports(&self, q: &Query) -> bool {
        matches!(
            q,
            Query::Halfplane { .. }
                | Query::Count { .. }
                | Query::Sum { .. }
                | Query::TopK { .. }
                | Query::Disk { .. }
        )
    }

    fn cost_hint(&self) -> CostHint {
        DynamicHalfspace2::cost_hint(self)
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Halfplane { m, c, inclusive } => Ok(self.query_below(m, c, inclusive)),
            Query::Count { m, c, inclusive } => Ok(vec![self.aggregate_below(m, c, inclusive).0]),
            Query::Sum { m, c, inclusive } => {
                Ok(encode_sum(self.aggregate_below(m, c, inclusive).1))
            }
            Query::TopK { m, c, k } => Ok(self.top_k(m, c, k)),
            Query::Disk { x, y, r2, inclusive } => Ok(self.disk_report(x, y, r2, inclusive)),
            _ => unsupported(RangeIndex::name(self), q),
        }
    }

    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(DynamicHalfspace2::fork_reader(self))
    }

    fn save_meta(&self, w: &mut MetaWriter) {
        DynamicHalfspace2::save(self, w)
    }
}

impl RangeIndex for PartitionTree<2> {
    fn name(&self) -> &'static str {
        "ptree"
    }

    fn device(&self) -> &DeviceHandle {
        PartitionTree::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfplane { .. })
    }

    fn cost_hint(&self) -> CostHint {
        PartitionTree::cost_hint(self)
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Halfplane { m, c, inclusive } => {
                // y <= m·x + c as the 2D hyperplane [a0, a1] = [c, m].
                let h: HyperplaneD<2> = HyperplaneD::new([c, m]);
                Ok(widen(self.query_halfspace(&h, inclusive)))
            }
            _ => unsupported(RangeIndex::name(self), q),
        }
    }

    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(PartitionTree::fork_reader(self))
    }

    fn save_meta(&self, w: &mut MetaWriter) {
        PartitionTree::save(self, w)
    }
}

impl RangeIndex for HalfspaceRS3 {
    fn name(&self) -> &'static str {
        "hs3d"
    }

    fn device(&self) -> &DeviceHandle {
        HalfspaceRS3::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfspace { .. })
    }

    fn cost_hint(&self) -> CostHint {
        HalfspaceRS3::cost_hint(self)
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Halfspace { u, v, w, inclusive } => {
                Ok(widen(self.query_below(u, v, w, inclusive)))
            }
            _ => unsupported(RangeIndex::name(self), q),
        }
    }

    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(HalfspaceRS3::fork_reader(self))
    }

    fn save_meta(&self, w: &mut MetaWriter) {
        HalfspaceRS3::save(self, w)
    }
}

impl RangeIndex for HybridTree3 {
    fn name(&self) -> &'static str {
        "tradeoff-hybrid"
    }

    fn device(&self) -> &DeviceHandle {
        HybridTree3::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfspace { .. })
    }

    fn cost_hint(&self) -> CostHint {
        HybridTree3::cost_hint(self)
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Halfspace { u, v, w, inclusive } => {
                Ok(widen(self.query_below(u, v, w, inclusive)))
            }
            _ => unsupported(RangeIndex::name(self), q),
        }
    }

    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(HybridTree3::fork_reader(self))
    }

    fn save_meta(&self, w: &mut MetaWriter) {
        HybridTree3::save(self, w)
    }
}

impl RangeIndex for ShallowTree3 {
    fn name(&self) -> &'static str {
        "tradeoff-shallow"
    }

    fn device(&self) -> &DeviceHandle {
        ShallowTree3::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfspace { .. })
    }

    fn cost_hint(&self) -> CostHint {
        ShallowTree3::cost_hint(self)
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Halfspace { u, v, w, inclusive } => {
                Ok(widen(self.query_below(u, v, w, inclusive)))
            }
            _ => unsupported(RangeIndex::name(self), q),
        }
    }

    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(ShallowTree3::fork_reader(self))
    }

    fn save_meta(&self, w: &mut MetaWriter) {
        ShallowTree3::save(self, w)
    }
}

impl RangeIndex for KnnStructure {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn device(&self) -> &DeviceHandle {
        KnnStructure::device(self)
    }

    /// The k-NN structure already lives on the paraboloid lift, so it
    /// answers [`Query::Disk`] directly ([`KnnStructure::within_radius`])
    /// for non-empty disks whose center keeps the lifted plane exact
    /// (`|x|, |y| ≤ 2^21` — [`lcrs_geom::lift::MAX_DISK_CENTER`]).
    fn supports(&self, q: &Query) -> bool {
        match *q {
            Query::Knn { .. } => true,
            Query::Disk { x, y, r2, .. } => {
                r2 >= 0
                    && x.unsigned_abs() <= lcrs_geom::lift::MAX_DISK_CENTER as u64
                    && y.unsigned_abs() <= lcrs_geom::lift::MAX_DISK_CENTER as u64
            }
            _ => false,
        }
    }

    fn cost_hint(&self) -> CostHint {
        KnnStructure::cost_hint(self)
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Knn { x, y, k } => Ok(widen(self.k_nearest(x, y, k))),
            Query::Disk { x, y, r2, inclusive } if RangeIndex::supports(self, q) => {
                Ok(widen(self.within_radius(x, y, r2, inclusive)))
            }
            _ => unsupported(RangeIndex::name(self), q),
        }
    }

    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(KnnStructure::fork_reader(self))
    }

    fn save_meta(&self, w: &mut MetaWriter) {
        KnnStructure::save(self, w)
    }
}

impl RangeIndex for ExternalScan {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn device(&self) -> &DeviceHandle {
        ExternalScan::device(self)
    }

    /// A 2D scan can answer anything computable from its points — every
    /// query class except 3D halfspaces, at Θ(n/B) IOs. In particular it
    /// is the only structure answering [`Query::Disk`] for *arbitrary*
    /// centers (exact carry-aware `u128` distances), so every disk query
    /// has at least one capable structure in a full index set.
    fn supports(&self, q: &Query) -> bool {
        !matches!(q, Query::Halfspace { .. })
    }

    fn cost_hint(&self) -> CostHint {
        CostHint::new(CostShape::Scan { data_pages: self.data_pages() }, self.len())
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Halfplane { m, c, inclusive } => Ok(widen(self.query_below(m, c, inclusive).0)),
            Query::Knn { x, y, k } => Ok(widen(self.k_nearest(x, y, k))),
            Query::Disk { x, y, r2, inclusive } => {
                Ok(widen(self.disk_report(x, y, r2, inclusive).0))
            }
            Query::Count { m, c, inclusive } => {
                Ok(vec![self.aggregate_below(m, c, inclusive).0 .0])
            }
            Query::Sum { m, c, inclusive } => {
                Ok(encode_sum(self.aggregate_below(m, c, inclusive).0 .1))
            }
            Query::TopK { m, c, k } => Ok(widen(self.top_k(m, c, k).0)),
            Query::Halfspace { .. } => unsupported(RangeIndex::name(self), q),
        }
    }

    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(ExternalScan::fork_reader(self))
    }

    fn save_meta(&self, w: &mut MetaWriter) {
        ExternalScan::save(self, w)
    }
}

impl RangeIndex for ExternalKdTree {
    fn name(&self) -> &'static str {
        "kdtree"
    }

    fn device(&self) -> &DeviceHandle {
        ExternalKdTree::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(
            q,
            Query::Halfplane { .. } | Query::Count { .. } | Query::Sum { .. } | Query::TopK { .. }
        )
    }

    fn cost_hint(&self) -> CostHint {
        // k-d-B tree: the classic O(sqrt(n/B) + t/B) 2D envelope.
        CostHint::new(CostShape::RootD { d: 2 }, self.len())
    }

    fn cost_hint_for(&self, q: &Query) -> CostHint {
        let hint = RangeIndex::cost_hint(self);
        if q.is_aggregate() {
            hint.as_aggregate()
        } else {
            hint
        }
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Halfplane { m, c, inclusive } => Ok(widen(self.query_below(m, c, inclusive).0)),
            Query::Count { m, c, inclusive } => {
                Ok(vec![self.aggregate_below(m, c, inclusive).0 .0])
            }
            Query::Sum { m, c, inclusive } => {
                Ok(encode_sum(self.aggregate_below(m, c, inclusive).0 .1))
            }
            Query::TopK { m, c, k } => Ok(widen(self.top_k(m, c, k).0)),
            _ => unsupported(RangeIndex::name(self), q),
        }
    }

    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(ExternalKdTree::fork_reader(self))
    }

    fn save_meta(&self, w: &mut MetaWriter) {
        ExternalKdTree::save(self, w)
    }
}

impl RangeIndex for StrRTree {
    fn name(&self) -> &'static str {
        "rtree"
    }

    fn device(&self) -> &DeviceHandle {
        StrRTree::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfplane { .. })
    }

    fn cost_hint(&self) -> CostHint {
        // STR R-tree: no worst-case guarantee; behaves like the sqrt
        // envelope on non-adversarial inputs (the constant is fitted).
        CostHint::new(CostShape::RootD { d: 2 }, self.len())
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Halfplane { m, c, inclusive } => Ok(widen(self.query_below(m, c, inclusive).0)),
            _ => unsupported(RangeIndex::name(self), q),
        }
    }

    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(StrRTree::fork_reader(self))
    }

    fn save_meta(&self, w: &mut MetaWriter) {
        StrRTree::save(self, w)
    }
}

impl RangeIndex for ExternalScan3 {
    fn name(&self) -> &'static str {
        "scan3"
    }

    fn device(&self) -> &DeviceHandle {
        ExternalScan3::device(self)
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Halfspace { .. })
    }

    fn cost_hint(&self) -> CostHint {
        CostHint::new(CostShape::Scan { data_pages: self.data_pages() }, self.len())
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Halfspace { u, v, w, inclusive } => {
                Ok(widen(self.query_below(u, v, w, inclusive).0))
            }
            _ => unsupported(RangeIndex::name(self), q),
        }
    }

    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(ExternalScan3::fork_reader(self))
    }

    fn save_meta(&self, w: &mut MetaWriter) {
        ExternalScan3::save(self, w)
    }
}
