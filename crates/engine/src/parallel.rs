//! The parallel executor: locality-ordered shards across OS threads, one
//! forked device-handle scope per worker (DESIGN.md §8).
//!
//! The [`crate::BatchExecutor`] exploits inter-query locality on one
//! thread; this executor adds the other production axis — wall-clock
//! throughput — without giving up a single property of the sequential
//! engine:
//!
//! * **Answers are bit-identical** to the sequential executor's: workers
//!   only change *when* pages are resident, never what a query reports.
//! * **IO attribution stays exact and deterministic**: every worker runs
//!   on its own [`lcrs_extmem::DeviceHandle`] fork (own LRU, own
//!   counters), its shard is a contiguous slice of the same locality
//!   schedule the batched executor uses, and the per-worker deltas sum
//!   exactly to the aggregate. Nothing depends on thread scheduling.
//!
//! Freeze the device ([`lcrs_extmem::Device::freeze`]) before running:
//! reads then bypass the store lock entirely, which is where the speedup
//! comes from. An unfrozen store still produces identical answers and
//! counts — its reads just serialize on the build-phase mutex.
//!
//! This executor parallelizes *within* one device; the space-partitioned
//! [`crate::ShardedIndexSet`] (DESIGN.md §11) parallelizes *across*
//! shard devices, running each routed shard's sub-batch — itself
//! executed through this machinery — on its own thread.

use lcrs_extmem::IoDelta;

use crate::batch::{locality_schedule, QueryOutcome, QueryStatus};
use crate::query::{Query, RangeIndex};

/// IO accounting of one worker thread.
#[derive(Debug, Clone, Copy)]
pub struct WorkerReport {
    /// Worker index in `0..workers`.
    pub worker: usize,
    /// Queries this worker executed (its shard length).
    pub queries: usize,
    /// IOs measured on the worker's own handle fork across its shard.
    pub io: IoDelta,
}

/// Result of executing a batch across worker threads.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Workers actually spawned (`min(requested, queries)`).
    pub workers: usize,
    /// Per-query outcomes, in *submission* order.
    pub outcomes: Vec<QueryOutcome>,
    /// Per-worker IO totals; deterministic for a fixed (batch, workers).
    pub per_worker: Vec<WorkerReport>,
    /// Aggregate IOs: the sum of the per-worker totals (exact — each
    /// worker's fork sees no traffic besides its own shard).
    pub total: IoDelta,
    /// The answers, in submission order (kept only when requested).
    pub answers: Option<Vec<Vec<u64>>>,
}

impl ParallelReport {
    /// Sum of the per-query deltas; equals [`Self::total`] exactly.
    pub fn attributed_total(&self) -> IoDelta {
        crate::batch::sum_outcome_io(&self.outcomes)
    }

    /// Total read IOs.
    pub fn reads(&self) -> u64 {
        self.total.reads
    }

    /// Queries the index declined ([`QueryStatus::Unsupported`]).
    pub fn unsupported(&self) -> usize {
        crate::batch::count_unsupported(&self.outcomes)
    }
}

/// Executes batches of queries against one [`RangeIndex`] on N threads.
///
/// The batch is put into the same locality order the [`crate::BatchExecutor`]
/// uses, cut into `workers` contiguous shards (so each shard keeps the
/// locality the schedule created), and every worker runs its shard in
/// order against a [`RangeIndex::fork_reader`] clone — its own warm LRU,
/// its own exactly-attributed IO counters.
pub struct ParallelExecutor<'a> {
    index: &'a dyn RangeIndex,
    workers: usize,
    keep_answers: bool,
}

impl<'a> ParallelExecutor<'a> {
    /// An executor fanning out over `workers` OS threads (at least 1).
    pub fn new(index: &'a dyn RangeIndex, workers: usize) -> Self {
        ParallelExecutor { index, workers: workers.max(1), keep_answers: false }
    }

    /// Also collect every query's answer into the report (off by default).
    pub fn keep_answers(mut self, keep: bool) -> Self {
        self.keep_answers = keep;
        self
    }

    /// The shards workers will execute: the locality schedule cut into
    /// exactly `min(workers, len)` contiguous pieces whose sizes differ by
    /// at most one (the first `len % workers` shards hold the extra
    /// query). Deterministic in (queries, workers).
    pub fn shards(&self, queries: &[Query]) -> Vec<Vec<usize>> {
        let order = locality_schedule(queries);
        if order.is_empty() {
            return Vec::new();
        }
        let workers = self.workers.min(order.len());
        let base = order.len() / workers;
        let extra = order.len() % workers;
        let mut shards = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            shards.push(order[start..start + len].to_vec());
            start += len;
        }
        debug_assert_eq!(start, order.len());
        shards
    }

    /// Run the batch across the workers and merge the outcomes back into
    /// submission order.
    pub fn run(&self, queries: &[Query]) -> ParallelReport {
        let shards = self.shards(queries);
        let keep_answers = self.keep_answers;
        let index = self.index;

        // One reader fork per shard, all created up front on this thread:
        // fork order (and thus any allocation pattern) never depends on
        // worker scheduling.
        let readers: Vec<Box<dyn RangeIndex>> =
            shards.iter().map(|_| index.fork_reader()).collect();
        for reader in &readers {
            assert!(
                reader.device().same_store(index.device()),
                "fork_reader must stay on the index's store"
            );
        }

        struct ShardResult {
            outcomes: Vec<QueryOutcome>,
            answers: Vec<(usize, Vec<u64>)>,
            io: IoDelta,
        }

        let results: Vec<ShardResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .zip(readers.iter())
                .map(|(shard, reader)| {
                    scope.spawn(move || {
                        let dev = reader.device();
                        let before = dev.stats();
                        let mut outcomes = Vec::with_capacity(shard.len());
                        let mut answers = Vec::new();
                        for &qi in shard {
                            let (result, io) = reader.try_execute_measured(&queries[qi]);
                            match result {
                                Ok(ids) => {
                                    outcomes.push(QueryOutcome {
                                        query: qi,
                                        status: QueryStatus::Ok,
                                        reported: ids.len(),
                                        io,
                                    });
                                    if keep_answers {
                                        answers.push((qi, ids));
                                    }
                                }
                                Err(_) => outcomes.push(QueryOutcome {
                                    query: qi,
                                    status: QueryStatus::Unsupported,
                                    reported: 0,
                                    io,
                                }),
                            }
                        }
                        let io = dev.stats().since(before);
                        ShardResult { outcomes, answers, io }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; queries.len()];
        let mut answers: Vec<Vec<u64>> =
            if keep_answers { vec![Vec::new(); queries.len()] } else { Vec::new() };
        let mut per_worker = Vec::with_capacity(results.len());
        let mut total = IoDelta::default();
        for (worker, shard) in results.into_iter().enumerate() {
            let attributed = crate::batch::sum_outcome_io(&shard.outcomes);
            assert_eq!(
                attributed, shard.io,
                "worker {worker}: per-query deltas must sum to the worker total"
            );
            per_worker.push(WorkerReport { worker, queries: shard.outcomes.len(), io: shard.io });
            total += shard.io;
            for o in shard.outcomes {
                outcomes[o.query] = Some(o);
            }
            for (qi, ids) in shard.answers {
                answers[qi] = ids;
            }
        }
        ParallelReport {
            workers: per_worker.len(),
            outcomes: outcomes.into_iter().map(|o| o.expect("every query ran")).collect(),
            per_worker,
            total,
            answers: keep_answers.then_some(answers),
        }
    }
}
