//! The query server: time-window batching with per-tenant IO quotas
//! (DESIGN.md §14).
//!
//! Everything below this module is a library call; this is the
//! long-running front end. A [`QueryServer`] owns a calibrated
//! [`IndexSet`] and consumes a deterministic stream of tenant-tagged
//! [`Arrival`]s (virtual-time-stamped, e.g. from
//! `lcrs_workloads::serve_trace`). Arrivals accumulate into a
//! time/size-bounded window ([`WindowPolicy`]); when the window closes it
//! runs as ONE planned batch through [`IndexSet::execute_plan`] (prefetch
//! hints included) — or through [`IndexSet::execute_parallel_plan`] over
//! the [`crate::ParallelExecutor`]'s thread-per-core forks — harvesting
//! the locality wins the batch engine already proves on stream traffic.
//!
//! * **Admission control.** Each tenant can carry an IO quota
//!   ([`QuotaConfig`]): a token bucket holding read-IO tokens, refilled on
//!   a virtual-time interval and debited with the *measured* read IOs the
//!   tenant's queries actually cost (exact per-query [`IoDelta`]
//!   attribution, the PR 3 invariant). An arrival finding the bucket empty
//!   gets a typed [`ServeStatus::Rejected`] outcome — never a panic, never
//!   a silent drop — and tenants without a quota are never throttled.
//!   Rejection changes *which* queries run, never what an admitted query
//!   answers: answers are cache-independent by construction.
//! * **Attribution.** Every outcome carries its exact [`IoDelta`]; the
//!   per-tenant sums equal the per-window sums equal the aggregate
//!   (asserted at runtime — the PR 3/PR 6 invariant one level up).
//! * **Metrics.** [`QueryServer::metrics`] is a pull-style snapshot:
//!   windows and queries served, rejections, read IOs per tenant, and
//!   p50/p99 measured window execution latency.
//! * **Determinism.** Window boundaries, admission decisions, plans, and
//!   IO totals depend only on (set, config, quotas, stream) — virtual
//!   time comes from the arrivals, not the wall clock — so a replayed
//!   trace reproduces byte-identical reports (`exp_serve` gates this).
//!   Only the *measured wall latencies* are real time.
//!
//! All window/quota arithmetic saturates instead of wrapping: quota
//! refills near `u64::MAX`, window deadlines at the end of virtual time,
//! and `Duration`→ns conversions are each pinned by unit tests.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use lcrs_extmem::IoDelta;

use crate::planner::IndexSet;
use crate::query::Query;

/// Client identity attached to every arrival (quota and attribution key).
pub type TenantId = u32;

/// One tenant-tagged query arrival in the deterministic input stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival time in nanoseconds from stream start. The server
    /// treats time as monotone: an out-of-order timestamp is clamped up
    /// to the latest one seen (robustness — client input never panics).
    pub at_ns: u64,
    /// The issuing tenant.
    pub tenant: TenantId,
    /// The query itself.
    pub query: Query,
}

/// Why the server refused an arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's quota bucket held no read-IO tokens at arrival time
    /// (next refill at the embedded virtual instant).
    QuotaExhausted {
        /// When the bucket refills next (virtual ns; `u64::MAX` when the
        /// quota never refills).
        retry_at_ns: u64,
    },
}

/// How one arrival fared, in stream order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeStatus {
    /// Admitted, planned, and answered inside its window.
    Ok,
    /// Admitted, but no structure in the set supports the query class
    /// (zero-IO outcome, like [`crate::QueryStatus::Unsupported`]).
    Unsupported,
    /// Refused at admission; the query never entered a window.
    Rejected(RejectReason),
}

/// Outcome of one arrival.
#[derive(Debug, Clone, Copy)]
pub struct ServeOutcome {
    /// Index of the arrival in the submitted stream.
    pub arrival: usize,
    /// The issuing tenant.
    pub tenant: TenantId,
    /// Admission/execution status. Typed, total: every arrival gets
    /// exactly one outcome.
    pub status: ServeStatus,
    /// Window sequence number the query executed in (`None` when
    /// rejected).
    pub window: Option<u64>,
    /// Number of ids reported.
    pub reported: usize,
    /// IOs attributed to exactly this query (zero when rejected).
    pub io: IoDelta,
}

/// When a pending window closes (both bounds active at once; whichever
/// trips first wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowPolicy {
    /// Time bound: the window closes `max_wait_ns` virtual ns after it
    /// opened (saturating — a deadline past the end of virtual time
    /// never trips).
    pub max_wait_ns: u64,
    /// Size bound: the window closes as soon as it holds this many
    /// admitted queries (at least 1).
    pub max_queries: usize,
}

impl Default for WindowPolicy {
    /// 1 ms windows of at most 256 queries — small enough for interactive
    /// latency, large enough that locality batching pays.
    fn default() -> Self {
        WindowPolicy { max_wait_ns: 1_000_000, max_queries: 256 }
    }
}

impl WindowPolicy {
    /// The virtual close deadline of a window opened at `open_ns`.
    /// Saturating: near the end of virtual time the deadline clamps to
    /// `u64::MAX` instead of wrapping to the past.
    pub fn deadline(&self, open_ns: u64) -> u64 {
        open_ns.saturating_add(self.max_wait_ns)
    }
}

/// A per-tenant IO quota: a token bucket in read-IO units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Bucket capacity (and initial fill) in read-IO tokens.
    pub capacity: u64,
    /// Tokens added per elapsed `interval_ns` (clamped at `capacity`).
    pub refill: u64,
    /// Virtual refill interval in nanoseconds (> 0).
    pub interval_ns: u64,
}

/// Token-bucket state behind one tenant's [`QuotaConfig`].
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    cfg: QuotaConfig,
    tokens: u64,
    /// Interval-aligned virtual time of the last refill.
    refilled_at_ns: u64,
}

impl TokenBucket {
    fn new(cfg: QuotaConfig) -> TokenBucket {
        assert!(cfg.interval_ns > 0, "quota refill interval must be positive");
        TokenBucket { cfg, tokens: cfg.capacity, refilled_at_ns: 0 }
    }

    /// Credit every whole refill interval elapsed up to `now_ns`.
    /// Saturating throughout: `intervals × refill` and `tokens + credit`
    /// near `u64::MAX` clamp instead of wrapping (then cap at capacity).
    fn refill_to(&mut self, now_ns: u64) {
        let intervals = now_ns.saturating_sub(self.refilled_at_ns) / self.cfg.interval_ns;
        if intervals == 0 {
            return;
        }
        let credit = intervals.saturating_mul(self.cfg.refill);
        self.tokens = self.tokens.saturating_add(credit).min(self.cfg.capacity);
        self.refilled_at_ns =
            self.refilled_at_ns.saturating_add(intervals.saturating_mul(self.cfg.interval_ns));
    }

    /// Charge measured cost; an over-budget query drains the bucket to
    /// zero (the *next* arrival is what gets rejected) rather than
    /// underflowing into a huge balance.
    fn debit(&mut self, reads: u64) {
        self.tokens = self.tokens.saturating_sub(reads);
    }

    /// Virtual instant of the next token credit (`u64::MAX` when the
    /// quota never refills).
    fn next_refill_ns(&self) -> u64 {
        if self.cfg.refill == 0 {
            u64::MAX
        } else {
            self.refilled_at_ns.saturating_add(self.cfg.interval_ns)
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Window close policy.
    pub policy: WindowPolicy,
    /// Worker threads per window execution: 1 runs each window through
    /// [`IndexSet::execute_plan`]; more shards every routed group across
    /// that many [`crate::ParallelExecutor`] forks (answers bit-identical
    /// either way — pinned by the serve suite).
    pub workers: usize,
}

impl Default for ServeConfig {
    /// Thread-per-core windows under the default [`WindowPolicy`].
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        ServeConfig { policy: WindowPolicy::default(), workers }
    }
}

/// Accounting of one executed window.
#[derive(Debug, Clone, Copy)]
pub struct WindowSummary {
    /// Window sequence number (0-based, in close order).
    pub seq: u64,
    /// Virtual time the window opened (first admitted arrival).
    pub open_ns: u64,
    /// Virtual time the window closed (deadline, size trip, or flush).
    pub close_ns: u64,
    /// Admitted queries executed in this window.
    pub queries: usize,
    /// Aggregate IOs of the window's planned batch.
    pub io: IoDelta,
    /// Measured wall-clock of the window's execution (saturating ns).
    pub wall_ns: u64,
}

/// Result of replaying one arrival stream through [`QueryServer::run_trace`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// One outcome per arrival, in stream order.
    pub outcomes: Vec<ServeOutcome>,
    /// Executed windows, in close order. Empty when every arrival was
    /// rejected (an all-rejected stream executes nothing).
    pub windows: Vec<WindowSummary>,
    /// Aggregate IOs across all windows.
    pub total: IoDelta,
    /// The answers, in stream order (kept only when requested; rejected
    /// and unsupported arrivals keep an empty slot).
    pub answers: Option<Vec<Vec<u64>>>,
}

impl ServeReport {
    /// Sum of the per-arrival deltas; equals [`Self::total`] exactly.
    pub fn attributed_total(&self) -> IoDelta {
        self.outcomes.iter().map(|o| o.io).sum()
    }

    /// Per-tenant attributed IOs (tenant → summed delta), ascending by
    /// tenant. Sums exactly to [`Self::total`].
    pub fn per_tenant_io(&self) -> Vec<(TenantId, IoDelta)> {
        let mut map: BTreeMap<TenantId, IoDelta> = BTreeMap::new();
        for o in &self.outcomes {
            *map.entry(o.tenant).or_default() += o.io;
        }
        map.into_iter().collect()
    }

    /// Total read IOs.
    pub fn reads(&self) -> u64 {
        self.total.reads
    }

    /// Arrivals refused at admission.
    pub fn rejected(&self) -> usize {
        self.outcomes.iter().filter(|o| matches!(o.status, ServeStatus::Rejected(_))).count()
    }
}

/// Cumulative per-tenant counters in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantMetrics {
    pub tenant: TenantId,
    /// Queries answered (incl. unsupported outcomes).
    pub queries: u64,
    /// Arrivals rejected at admission.
    pub rejected: u64,
    /// Read IOs attributed to this tenant.
    pub read_ios: u64,
}

/// A pull-style snapshot of the server's cumulative counters (across all
/// [`QueryServer::run_trace`] calls so far).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Windows executed.
    pub windows_served: u64,
    /// Queries answered inside windows.
    pub queries_served: u64,
    /// Arrivals rejected at admission.
    pub queries_rejected: u64,
    /// Aggregate read IOs.
    pub read_ios: u64,
    /// Median measured window execution latency (ns; 0 with no windows).
    pub window_wall_p50_ns: u64,
    /// 99th-percentile measured window execution latency (ns).
    pub window_wall_p99_ns: u64,
    /// Per-tenant counters, ascending by tenant.
    pub tenants: Vec<TenantMetrics>,
}

/// `Duration` → whole nanoseconds, saturating at `u64::MAX` instead of
/// truncating high bits (a `Duration` can hold > 2^64 ns).
pub fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Percentile over raw u64 samples (nearest-rank on a sorted copy).
fn percentile_ns(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut s = samples.to_vec();
    s.sort_unstable();
    let idx = ((p / 100.0) * (s.len() - 1) as f64).round() as usize;
    s[idx.min(s.len() - 1)]
}

/// A pending (admitted, not yet executed) arrival.
struct Pending {
    arrival: usize,
    tenant: TenantId,
    query: Query,
}

/// The serving front end. See the module docs.
pub struct QueryServer {
    set: IndexSet,
    cfg: ServeConfig,
    quotas: BTreeMap<TenantId, TokenBucket>,
    // Cumulative metrics state (survives across run_trace calls).
    windows_served: u64,
    queries_served: u64,
    queries_rejected: u64,
    read_ios: u64,
    window_walls: Vec<u64>,
    tenants: BTreeMap<TenantId, TenantMetrics>,
}

impl QueryServer {
    /// A server over a built (and ideally calibrated) set.
    pub fn new(set: IndexSet, cfg: ServeConfig) -> QueryServer {
        assert!(cfg.policy.max_queries >= 1, "window size bound must be at least 1");
        assert!(cfg.workers >= 1, "need at least one worker");
        QueryServer {
            set,
            cfg,
            quotas: BTreeMap::new(),
            windows_served: 0,
            queries_served: 0,
            queries_rejected: 0,
            read_ios: 0,
            window_walls: Vec::new(),
            tenants: BTreeMap::new(),
        }
    }

    /// The planner behind the server (e.g. to inspect calibration).
    pub fn index_set(&self) -> &IndexSet {
        &self.set
    }

    /// Attach (or replace) `tenant`'s IO quota. Tenants without a quota
    /// are never throttled.
    pub fn set_quota(&mut self, tenant: TenantId, quota: QuotaConfig) {
        self.quotas.insert(tenant, TokenBucket::new(quota));
    }

    /// Remove `tenant`'s quota (back to unthrottled).
    pub fn clear_quota(&mut self, tenant: TenantId) {
        self.quotas.remove(&tenant);
    }

    /// Replay a virtual-time arrival stream through the windowed serving
    /// loop: admit or reject each arrival, close windows per the
    /// [`WindowPolicy`], execute each closed window as one planned batch,
    /// and return one typed outcome per arrival. Deterministic in
    /// (set, config, quotas, stream) except for the measured wall fields.
    pub fn run_trace(&mut self, arrivals: &[Arrival], keep_answers: bool) -> ServeReport {
        let mut outcomes: Vec<Option<ServeOutcome>> = (0..arrivals.len()).map(|_| None).collect();
        let mut answers: Vec<Vec<u64>> =
            if keep_answers { vec![Vec::new(); arrivals.len()] } else { Vec::new() };
        let mut windows: Vec<WindowSummary> = Vec::new();
        let mut total = IoDelta::default();
        let mut pending: Vec<Pending> = Vec::new();
        let mut window_open_ns = 0u64;
        let mut now_ns = 0u64;

        let close = |pending: &mut Vec<Pending>,
                     close_ns: u64,
                     open_ns: u64,
                     outcomes: &mut Vec<Option<ServeOutcome>>,
                     answers: &mut Vec<Vec<u64>>,
                     windows: &mut Vec<WindowSummary>,
                     total: &mut IoDelta,
                     this: &mut Self| {
            if pending.is_empty() {
                return;
            }
            let batch = std::mem::take(pending);
            let summary =
                this.execute_window(&batch, open_ns, close_ns, keep_answers, outcomes, answers);
            *total += summary.io;
            windows.push(summary);
        };

        for (i, a) in arrivals.iter().enumerate() {
            // Monotone virtual time: a timestamp going backwards clamps
            // up (malformed client input must never panic the loop).
            now_ns = now_ns.max(a.at_ns);

            // The time bound: an arrival past the open window's deadline
            // seals that window *before* joining the next one.
            if !pending.is_empty() && now_ns > self.cfg.policy.deadline(window_open_ns) {
                let deadline = self.cfg.policy.deadline(window_open_ns);
                close(
                    &mut pending,
                    deadline,
                    window_open_ns,
                    &mut outcomes,
                    &mut answers,
                    &mut windows,
                    &mut total,
                    self,
                );
            }

            // Admission: refill the tenant's bucket to now and reject on
            // an empty one (typed outcome, zero IO, no window).
            if let Some(bucket) = self.quotas.get_mut(&a.tenant) {
                bucket.refill_to(now_ns);
                if bucket.tokens == 0 {
                    let reason =
                        RejectReason::QuotaExhausted { retry_at_ns: bucket.next_refill_ns() };
                    outcomes[i] = Some(ServeOutcome {
                        arrival: i,
                        tenant: a.tenant,
                        status: ServeStatus::Rejected(reason),
                        window: None,
                        reported: 0,
                        io: IoDelta::default(),
                    });
                    self.queries_rejected += 1;
                    self.tenants.entry(a.tenant).or_default().rejected += 1;
                    continue;
                }
            }

            if pending.is_empty() {
                window_open_ns = now_ns;
            }
            pending.push(Pending { arrival: i, tenant: a.tenant, query: a.query });

            // The size bound: a full window executes immediately.
            if pending.len() >= self.cfg.policy.max_queries {
                close(
                    &mut pending,
                    now_ns,
                    window_open_ns,
                    &mut outcomes,
                    &mut answers,
                    &mut windows,
                    &mut total,
                    self,
                );
            }
        }
        // End of stream: flush the tail window.
        close(
            &mut pending,
            now_ns,
            window_open_ns,
            &mut outcomes,
            &mut answers,
            &mut windows,
            &mut total,
            self,
        );

        for (t, m) in &mut self.tenants {
            m.tenant = *t;
        }
        let report = ServeReport {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every arrival gets exactly one outcome"))
                .collect(),
            windows,
            total,
            answers: keep_answers.then_some(answers),
        };
        // The attribution invariant, one level up: per-arrival deltas
        // (and hence the per-tenant sums) equal the aggregate exactly.
        assert_eq!(
            report.attributed_total(),
            report.total,
            "per-arrival deltas must sum to the aggregate"
        );
        report
    }

    /// A pull-style snapshot of the cumulative counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            windows_served: self.windows_served,
            queries_served: self.queries_served,
            queries_rejected: self.queries_rejected,
            read_ios: self.read_ios,
            window_wall_p50_ns: percentile_ns(&self.window_walls, 50.0),
            window_wall_p99_ns: percentile_ns(&self.window_walls, 99.0),
            tenants: self.tenants.values().copied().collect(),
        }
    }

    /// Execute one closed window as a planned batch; record outcomes (in
    /// stream slots), debit quotas with measured reads, update metrics.
    /// A zero-query window produces a zeroed summary and touches nothing.
    fn execute_window(
        &mut self,
        batch: &[Pending],
        open_ns: u64,
        close_ns: u64,
        keep_answers: bool,
        outcomes: &mut [Option<ServeOutcome>],
        answers: &mut [Vec<u64>],
    ) -> WindowSummary {
        let seq = self.windows_served;
        if batch.is_empty() {
            return WindowSummary {
                seq,
                open_ns,
                close_ns,
                queries: 0,
                io: IoDelta::default(),
                wall_ns: 0,
            };
        }
        let queries: Vec<Query> = batch.iter().map(|p| p.query).collect();
        let plan = self.set.plan(&queries);
        let t0 = Instant::now();
        let rep = if self.cfg.workers > 1 {
            self.set.execute_parallel_plan(&queries, &plan, self.cfg.workers, keep_answers)
        } else {
            self.set.execute_plan(&queries, &plan, keep_answers)
        };
        let wall_ns = saturating_ns(t0.elapsed());

        for (slot, o) in rep.outcomes.iter().enumerate() {
            let p = &batch[slot];
            let status = match o.status {
                crate::QueryStatus::Ok => ServeStatus::Ok,
                crate::QueryStatus::Unsupported => ServeStatus::Unsupported,
            };
            outcomes[p.arrival] = Some(ServeOutcome {
                arrival: p.arrival,
                tenant: p.tenant,
                status,
                window: Some(seq),
                reported: o.reported,
                io: o.io,
            });
            if let Some(bucket) = self.quotas.get_mut(&p.tenant) {
                bucket.debit(o.io.reads);
            }
            let tm = self.tenants.entry(p.tenant).or_default();
            tm.queries += 1;
            tm.read_ios += o.io.reads;
        }
        if let Some(sub_answers) = rep.answers {
            for (slot, ids) in sub_answers.into_iter().enumerate() {
                answers[batch[slot].arrival] = ids;
            }
        }
        self.windows_served += 1;
        self.queries_served += batch.len() as u64;
        self.read_ios += rep.total.reads;
        self.window_walls.push(wall_ns);
        WindowSummary { seq, open_ns, close_ns, queries: batch.len(), io: rep.total, wall_ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_refill_saturates_near_u64_max() {
        // Satellite: `tokens + refill` and `intervals × refill` near
        // u64::MAX must clamp, never wrap (the PR 5 overflow class).
        let mut b = TokenBucket::new(QuotaConfig {
            capacity: u64::MAX,
            refill: u64::MAX / 2,
            interval_ns: 1,
        });
        b.tokens = u64::MAX - 3;
        b.refill_to(u64::MAX); // u64::MAX intervals × huge refill
        assert_eq!(b.tokens, u64::MAX, "refill must saturate at capacity, not wrap");
        assert_eq!(b.refilled_at_ns, u64::MAX, "refill clock must saturate too");
        // And the clamp at capacity still applies on a sane bucket.
        let mut b = TokenBucket::new(QuotaConfig { capacity: 10, refill: 4, interval_ns: 100 });
        b.tokens = 9;
        b.refill_to(250); // two whole intervals → +8, clamped at 10
        assert_eq!(b.tokens, 10);
        assert_eq!(b.refilled_at_ns, 200, "refill clock advances interval-aligned");
        b.refill_to(299); // partial interval: no credit
        assert_eq!((b.tokens, b.refilled_at_ns), (10, 200));
    }

    #[test]
    fn quota_debit_saturates_at_zero() {
        let mut b = TokenBucket::new(QuotaConfig { capacity: 5, refill: 1, interval_ns: 100 });
        b.debit(1_000_000); // one giant query drains, never underflows
        assert_eq!(b.tokens, 0);
        assert_eq!(b.next_refill_ns(), 100);
        let b = TokenBucket::new(QuotaConfig { capacity: 5, refill: 0, interval_ns: 100 });
        assert_eq!(b.next_refill_ns(), u64::MAX, "a never-refilling quota has no retry time");
    }

    #[test]
    fn window_deadline_saturates_at_end_of_virtual_time() {
        // Satellite: `open + interval` near u64::MAX must clamp to
        // u64::MAX (a deadline that never trips), not wrap to the past
        // (which would close every window instantly).
        let p = WindowPolicy { max_wait_ns: 1_000_000, max_queries: 64 };
        assert_eq!(p.deadline(u64::MAX - 10), u64::MAX);
        assert_eq!(p.deadline(0), 1_000_000);
    }

    #[test]
    fn wall_conversion_saturates_not_wraps() {
        // Satellite: Duration::as_nanos() is u128; the u64 metric must
        // clamp instead of truncating high bits.
        assert_eq!(saturating_ns(Duration::from_nanos(42)), 42);
        let huge = Duration::from_secs(u64::MAX); // ≫ 2^64 ns
        assert!(huge.as_nanos() > u128::from(u64::MAX));
        assert_eq!(saturating_ns(huge), u64::MAX);
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile_ns(&[], 99.0), 0);
        assert_eq!(percentile_ns(&[7], 50.0), 7);
        let s = [10, 20, 30, 40, 50];
        assert_eq!(percentile_ns(&s, 0.0), 10);
        assert_eq!(percentile_ns(&s, 50.0), 30);
        assert_eq!(percentile_ns(&s, 100.0), 50);
    }
}
