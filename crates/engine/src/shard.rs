//! The space-partitioned index set: geometry-aware shards with per-shard
//! catalogs and scatter-gather planning (DESIGN.md §11).
//!
//! A [`ShardedIndexSet`] splits one logical 2D + 3D dataset into S
//! near-even geometric shards ([`lcrs_halfspace::partition`]: recursive
//! ham-sandwich cuts in 2D, axis-median boxes in 3D) and gives every
//! shard its own devices plus a full calibrated [`IndexSet`] over its
//! sub-dataset. Serving then scatter-gathers:
//!
//! * **Route** — the pure [`ShardedIndexSet::shards_intersecting`]
//!   predicate keeps only the shards whose region can intersect the
//!   query constraint (conservative and exact: a shard holding a
//!   reported answer is never pruned; k-NN fans out to every shard).
//!   The derived classes of DESIGN.md §15 route by the same geometry:
//!   disks clamp the center to the shard box and compare exact
//!   carry-aware distances
//!   ([`lcrs_halfspace::ShardRegion2::may_intersect_disk`]), while
//!   count/sum/top-k reduce to their halfplane constraint.
//! * **Execute** — each routed sub-batch runs through the shard's own
//!   planner ([`IndexSet::execute_plan`]), sequentially or with every
//!   shard on its own OS thread ([`ShardedIndexSet::execute_parallel`],
//!   which also forks [`crate::ParallelExecutor`] workers *within* each
//!   shard) — shards live on disjoint devices, so concurrency never
//!   changes counts.
//! * **Merge** — per-shard answers translate back to global ids and
//!   merge to the canonical order (sorted ids for reports; `(distance,
//!   id)` for k-NN and `(key, id)` for top-k, recomputed exactly in
//!   `i128` and truncated to `k`; count/sum scalars summed across the
//!   disjoint shards — zero-synthesized when routing pruned every
//!   shard), and per-shard [`IoDelta`]s sum *exactly* to the aggregate
//!   (runtime assert, the same invariant the batch/parallel executors
//!   pin).
//!
//! The cost model is fan-out aware: [`ShardedIndexSet::predicted_reads`]
//! prices a query as the sum over routed shards of the cheapest capable
//! slot inside each shard — (shards touched) × (per-shard calibrated
//! `CostHint` cost). Broad queries fan out everywhere, so their predicted
//! cost grows with S while a narrow query's shrinks — which is exactly
//! the signal [`cheapest_tier`] uses to fall back to fewer/bigger shards
//! (or S=1, the unsharded set with its scan baseline) when routing
//! cannot prune.
//!
//! At S=1 the sharded set *is* the unsharded set: one shard, identity
//! routing (no region pruning — so IO totals reproduce the unsharded
//! planner exactly, pinned by the differential suite).

use std::path::{Path, PathBuf};

use lcrs_extmem::{
    Device, DeviceConfig, DeviceHandle, IoDelta, MetaReader, MetaWriter, ReopenBackend,
    SnapshotError,
};
use lcrs_halfspace::partition::{partition2, partition3, Partition2, Partition3};
use lcrs_halfspace::{ShardRegion2, ShardRegion3};

use crate::batch::{QueryOutcome, QueryStatus};
use crate::catalog::SnapshotCatalog;
use crate::planner::{IndexSet, PlanReport};
use crate::query::Query;

/// File name of the shard manifest inside a sharded-catalog directory
/// (next to the `shard<i>/` sub-catalogs). Uses the engine-internal
/// [`crate::catalog::RESERVED_PREFIX`], which entry labels may not start
/// with, so a flat catalog sharing the directory can never overwrite it.
pub const SHARD_MANIFEST: &str = "__shards.meta";

/// Magic string guarding the shard manifest.
const MANIFEST_MAGIC: &str = "lcrs-shards";
const MANIFEST_VERSION: u64 = 1;

/// Configuration of a sharded build.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Number of shards: a power of two ≥ 1, at most the size of either
    /// dataset.
    pub shards: usize,
    /// Device geometry for every shard's 2D and 3D device.
    pub device: DeviceConfig,
}

struct Shard {
    set: IndexSet,
    region2: ShardRegion2,
    region3: ShardRegion3,
    /// Local id → global id for the 2D structures (ascending input order).
    ids2: Vec<u32>,
    /// The shard's 2D points in local-id order (the k-NN merge recomputes
    /// exact distances from these).
    pts2: Vec<(i64, i64)>,
    /// Local id → global id for the 3D structures.
    ids3: Vec<u32>,
}

/// IO accounting of one shard's routed sub-batch.
#[derive(Debug, Clone, Copy)]
pub struct ShardReport {
    /// Shard index in `0..shards`.
    pub shard: usize,
    /// Queries routed to this shard.
    pub queries: usize,
    /// Aggregate IOs across the shard's devices (its planner sub-report
    /// total).
    pub io: IoDelta,
}

/// Result of scatter-gather execution over a [`ShardedIndexSet`].
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Per-query outcomes in *submission* order. A query routed to
    /// several shards carries the **sum** of its per-shard deltas;
    /// `reported` counts the *merged* answer.
    pub outcomes: Vec<QueryOutcome>,
    /// Per-shard sub-batch totals, ascending by shard, non-empty
    /// sub-batches only.
    pub per_shard: Vec<ShardReport>,
    /// Aggregate IOs: the sum of the per-shard totals (exact — shards
    /// live on disjoint devices).
    pub total: IoDelta,
    /// Merged answers in submission order, already canonical: sorted
    /// global ids for reports, `(distance, id)` order for k-NN.
    pub answers: Option<Vec<Vec<u64>>>,
    /// Shards touched per query (submission order) — the fan-out the
    /// cost model prices.
    pub fanout: Vec<usize>,
}

impl ShardedReport {
    /// Sum of the per-query deltas; equals [`Self::total`] exactly.
    pub fn attributed_total(&self) -> IoDelta {
        crate::batch::sum_outcome_io(&self.outcomes)
    }

    /// Total read IOs.
    pub fn reads(&self) -> u64 {
        self.total.reads
    }

    /// Queries no shard's set supports.
    pub fn unsupported(&self) -> usize {
        crate::batch::count_unsupported(&self.outcomes)
    }

    /// Mean shards touched per query (0.0 for an empty batch).
    pub fn mean_fanout(&self) -> f64 {
        if self.fanout.is_empty() {
            0.0
        } else {
            self.fanout.iter().sum::<usize>() as f64 / self.fanout.len() as f64
        }
    }
}

/// S geometry-aware shards, each a full calibrated [`IndexSet`] on its
/// own devices — see the module docs.
pub struct ShardedIndexSet {
    shards: Vec<Shard>,
    /// The owned per-shard devices (2D, 3D per shard) when built
    /// in-memory; empty after [`Self::from_catalog`] (reopened structures
    /// own their snapshot-backed devices through their handles).
    devices: Vec<Device>,
}

impl ShardedIndexSet {
    /// Partition `(pts2, pts3)` into `cfg.shards` geometric shards and
    /// build every shard's [`IndexSet`] with `build_shard`, which
    /// receives the shard's 2D/3D device handles and its local point
    /// slices (local id = position in the slice; the sharded set
    /// translates reported ids back to global input indices). The
    /// canonical builder is `lcrs_bench::full_index_set`; any builder
    /// works as long as every shard gets the same structure kinds in the
    /// same slot order (asserted).
    pub fn build<F>(
        pts2: &[(i64, i64)],
        pts3: &[(i64, i64, i64)],
        cfg: &ShardConfig,
        build_shard: F,
    ) -> ShardedIndexSet
    where
        F: Fn(&DeviceHandle, &DeviceHandle, &[(i64, i64)], &[(i64, i64, i64)]) -> IndexSet,
    {
        let p2 = partition2(pts2, cfg.shards);
        let p3 = partition3(pts3, cfg.shards);
        Self::assemble(pts2, pts3, p2, p3, cfg, build_shard)
    }

    fn assemble<F>(
        pts2: &[(i64, i64)],
        pts3: &[(i64, i64, i64)],
        p2: Partition2,
        p3: Partition3,
        cfg: &ShardConfig,
        build_shard: F,
    ) -> ShardedIndexSet
    where
        F: Fn(&DeviceHandle, &DeviceHandle, &[(i64, i64)], &[(i64, i64, i64)]) -> IndexSet,
    {
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut devices = Vec::with_capacity(2 * cfg.shards);
        for (s, (ids2, ids3)) in p2.groups.iter().zip(&p3.groups).enumerate() {
            let local2: Vec<(i64, i64)> = ids2.iter().map(|&i| pts2[i as usize]).collect();
            let local3: Vec<(i64, i64, i64)> = ids3.iter().map(|&i| pts3[i as usize]).collect();
            let dev2 = Device::new(cfg.device);
            let dev3 = Device::new(cfg.device);
            let set = build_shard(&dev2, &dev3, &local2, &local3);
            assert!(!set.is_empty(), "shard {s}: build_shard returned an empty set");
            shards.push(Shard {
                set,
                region2: p2.regions[s].clone(),
                region3: p3.regions[s].clone(),
                ids2: ids2.clone(),
                pts2: local2,
                ids3: ids3.clone(),
            });
            devices.push(dev2);
            devices.push(dev3);
        }
        let sharded = ShardedIndexSet { shards, devices };
        sharded.assert_uniform_kinds();
        sharded
    }

    /// Every shard must hold the same structure kinds in the same slot
    /// order — the contract that makes per-class support uniform across
    /// shards (a query is answerable by all routed shards or by none).
    fn assert_uniform_kinds(&self) {
        let reference: Vec<&str> =
            (0..self.shards[0].set.len()).map(|i| self.shards[0].set.structure(i).name()).collect();
        for (s, shard) in self.shards.iter().enumerate() {
            let kinds: Vec<&str> =
                (0..shard.set.len()).map(|i| shard.set.structure(i).name()).collect();
            assert_eq!(kinds, reference, "shard {s}: structure kinds must match shard 0");
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard's planner set (probe access for tests and tools).
    pub fn shard_set(&self, shard: usize) -> &IndexSet {
        &self.shards[shard].set
    }

    /// The shard's 2D region.
    pub fn region2(&self, shard: usize) -> &ShardRegion2 {
        &self.shards[shard].region2
    }

    /// The shard's 3D region.
    pub fn region3(&self, shard: usize) -> &ShardRegion3 {
        &self.shards[shard].region3
    }

    /// Points held by `shard` as `(2D count, 3D count)`.
    pub fn shard_sizes(&self, shard: usize) -> (usize, usize) {
        (self.shards[shard].ids2.len(), self.shards[shard].ids3.len())
    }

    /// Calibrate every shard's planner with the same measured probe pass
    /// (each shard fits its own constants over its own sub-dataset).
    pub fn calibrate(&mut self, probes: &[Query]) {
        for shard in &mut self.shards {
            shard.set.calibrate(probes);
        }
    }

    /// Freeze every owned shard device (no-op after
    /// [`Self::from_catalog`] — snapshot-backed devices are born frozen).
    /// Required before [`Self::save_to_catalog`] and for lock-free
    /// parallel reads.
    pub fn freeze(&self) {
        for dev in &self.devices {
            dev.freeze();
        }
    }

    /// Can any structure (in every shard — kinds are uniform) answer `q`?
    pub fn supports(&self, q: &Query) -> bool {
        let set = &self.shards[0].set;
        (0..set.len()).any(|slot| set.structure(slot).supports(q))
    }

    /// The pure routing predicate: the shards whose region can intersect
    /// `q`, ascending. Conservative with no false negatives — a shard
    /// holding a reported answer is always included (pinned by the
    /// property suite). k-NN queries fan out to every shard (any shard
    /// may hold one of the k nearest). With a single shard, routing is
    /// the identity (no pruning), so S=1 reproduces the unsharded
    /// planner's IO exactly.
    pub fn shards_intersecting(&self, q: &Query) -> Vec<usize> {
        if self.shards.len() == 1 {
            return vec![0];
        }
        match *q {
            Query::Halfplane { m, c, inclusive } => (0..self.shards.len())
                .filter(|&s| self.shards[s].region2.may_intersect_halfplane(m, c, inclusive))
                .collect(),
            Query::Halfspace { u, v, w, inclusive } => (0..self.shards.len())
                .filter(|&s| self.shards[s].region3.may_intersect_halfspace(u, v, w, inclusive))
                .collect(),
            Query::Knn { .. } => (0..self.shards.len()).collect(),
            // The derived 2D classes route by the same region geometry:
            // disks clamp the center to the shard box (exact carry-aware
            // distance), count/sum/top-k reduce to their halfplane
            // constraint (a shard with no point below y = m·x + c
            // contributes zero / no candidates).
            Query::Disk { x, y, r2, inclusive } => (0..self.shards.len())
                .filter(|&s| self.shards[s].region2.may_intersect_disk(x, y, r2, inclusive))
                .collect(),
            Query::Count { m, c, inclusive } | Query::Sum { m, c, inclusive } => {
                (0..self.shards.len())
                    .filter(|&s| self.shards[s].region2.may_intersect_halfplane(m, c, inclusive))
                    .collect()
            }
            Query::TopK { m, c, .. } => (0..self.shards.len())
                .filter(|&s| self.shards[s].region2.may_intersect_halfplane(m, c, true))
                .collect(),
        }
    }

    /// Fan-out of `q`: how many shards routing touches.
    pub fn fanout(&self, q: &Query) -> usize {
        self.shards_intersecting(q).len()
    }

    /// The fan-out-aware cost model: predicted reads for `q` is the sum
    /// over routed shards of the cheapest capable slot's calibrated cost
    /// inside that shard — (shards touched) × (per-shard `CostHint`
    /// cost). `f64::INFINITY` when no structure supports `q`; `0.0` when
    /// routing prunes every shard (the query provably has no answer and
    /// costs nothing).
    pub fn predicted_reads(&self, q: &Query) -> f64 {
        if !self.supports(q) {
            return f64::INFINITY;
        }
        self.shards_intersecting(q)
            .into_iter()
            .map(|s| {
                let set = &self.shards[s].set;
                (0..set.len())
                    .filter(|&slot| set.structure(slot).supports(q))
                    .map(|slot| set.cost(slot, q))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    }

    /// Scatter-gather execution, shards sequentially in index order (the
    /// deterministic reference; [`Self::execute_parallel`] must match it
    /// bit-for-bit on answers and counts).
    pub fn execute(&self, queries: &[Query], keep_answers: bool) -> ShardedReport {
        self.run(queries, keep_answers, false, 1)
    }

    /// Scatter-gather execution with every routed shard on its own OS
    /// thread, and `workers` [`crate::ParallelExecutor`] forks *within*
    /// each shard (`workers <= 1` keeps the within-shard path
    /// sequential). Shards live on disjoint devices, so answers and IO
    /// counts are identical to [`Self::execute`] (pinned by the suite);
    /// freeze first for lock-free reads.
    pub fn execute_parallel(
        &self,
        queries: &[Query],
        workers: usize,
        keep_answers: bool,
    ) -> ShardedReport {
        self.run(queries, keep_answers, true, workers.max(1))
    }

    fn run(
        &self,
        queries: &[Query],
        keep_answers: bool,
        concurrent: bool,
        workers: usize,
    ) -> ShardedReport {
        // Route. Unsupported query classes never reach a shard.
        let routes: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| if self.supports(q) { self.shards_intersecting(q) } else { Vec::new() })
            .collect();
        let fanout: Vec<usize> = routes.iter().map(Vec::len).collect();
        let mut subs: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (qi, route) in routes.iter().enumerate() {
            for &s in route {
                subs[s].push(qi);
            }
        }

        // Scatter: execute each non-empty sub-batch through the shard's
        // own planner. Answers are always collected internally — the
        // gather step needs them for id translation and the k-NN merge.
        let exec = |s: usize| -> PlanReport {
            let set = &self.shards[s].set;
            let sub: Vec<Query> = subs[s].iter().map(|&qi| queries[qi]).collect();
            let plan = set.plan(&sub);
            assert_eq!(
                plan.unrouted(),
                0,
                "shard {s}: routed queries must be supported by the shard set"
            );
            if workers > 1 {
                set.execute_parallel_plan(&sub, &plan, workers, true)
            } else {
                set.execute_plan(&sub, &plan, true)
            }
        };
        let active: Vec<usize> = (0..self.shards.len()).filter(|&s| !subs[s].is_empty()).collect();
        let exec = &exec;
        let reports: Vec<(usize, PlanReport)> = if concurrent {
            std::thread::scope(|scope| {
                let handles: Vec<_> =
                    active.iter().map(|&s| scope.spawn(move || (s, exec(s)))).collect();
                handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
            })
        } else {
            active.iter().map(|&s| (s, exec(s))).collect()
        };

        // Gather: merge per-shard outcomes and answers back into
        // submission order, summing a query's deltas across its shards.
        // Report classes accumulate id candidates for the canonical
        // merge; aggregate classes (count/sum) merge by *summing* the
        // per-shard scalars — shards are disjoint, so the sums are exact.
        let mut io: Vec<IoDelta> = vec![IoDelta::default(); queries.len()];
        let mut candidates: Vec<Vec<u64>> = vec![Vec::new(); queries.len()];
        let mut agg_count: Vec<u64> = vec![0; queries.len()];
        let mut agg_sum: Vec<i128> = vec![0; queries.len()];
        let mut per_shard = Vec::with_capacity(reports.len());
        let mut total = IoDelta::default();
        for (s, report) in &reports {
            assert_eq!(
                report.attributed_total(),
                report.total,
                "shard {s}: per-query deltas must sum to the shard total"
            );
            let shard = &self.shards[*s];
            let answers = report.answers.as_ref().expect("shard answers kept");
            for outcome in &report.outcomes {
                let qi = subs[*s][outcome.query];
                assert_eq!(
                    outcome.status,
                    QueryStatus::Ok,
                    "shard {s}: a routed query must not be declined mid-merge"
                );
                io[qi] += outcome.io;
                let local = &answers[outcome.query];
                match queries[qi] {
                    Query::Count { .. } => agg_count[qi] += local[0],
                    Query::Sum { .. } => agg_sum[qi] += crate::query::decode_sum(local),
                    Query::Halfspace { .. } => {
                        candidates[qi].extend(local.iter().map(|&l| shard.ids3[l as usize] as u64))
                    }
                    Query::Halfplane { .. }
                    | Query::Knn { .. }
                    | Query::Disk { .. }
                    | Query::TopK { .. } => {
                        candidates[qi].extend(local.iter().map(|&l| shard.ids2[l as usize] as u64))
                    }
                }
            }
            per_shard.push(ShardReport { shard: *s, queries: subs[*s].len(), io: report.total });
            total += report.total;
        }

        // Canonical merge order: sorted global ids for reports; exact
        // (distance², id) for k-NN and (key, id) for top-k, truncated to
        // k; aggregates re-encode their summed scalars — identical to
        // the unsharded structures' canonical answer form. A supported
        // aggregate whose every shard was pruned still answers (zero).
        let mut outcomes = Vec::with_capacity(queries.len());
        let mut answers: Vec<Vec<u64>> =
            if keep_answers { vec![Vec::new(); queries.len()] } else { Vec::new() };
        for (qi, q) in queries.iter().enumerate() {
            let mut ids = std::mem::take(&mut candidates[qi]);
            match *q {
                Query::Knn { x, y, k } => {
                    let mut ranked: Vec<(i128, u64)> = ids
                        .iter()
                        .map(|&gid| {
                            let shard_local = self.locate2(gid as u32);
                            let (px, py) = shard_local;
                            let (dx, dy) = (x as i128 - px as i128, y as i128 - py as i128);
                            (dx * dx + dy * dy, gid)
                        })
                        .collect();
                    ranked.sort_unstable();
                    ids = ranked.into_iter().take(k).map(|(_, gid)| gid).collect();
                }
                Query::TopK { m, c: _, k } => {
                    // Each shard already filtered to key ≤ c; re-rank the
                    // union by the exact key and truncate, like k-NN.
                    let mut ranked: Vec<(i128, u64)> = ids
                        .iter()
                        .map(|&gid| {
                            let (px, py) = self.locate2(gid as u32);
                            (py as i128 - m as i128 * px as i128, gid)
                        })
                        .collect();
                    ranked.sort_unstable();
                    ids = ranked.into_iter().take(k).map(|(_, gid)| gid).collect();
                }
                Query::Count { .. } if self.supports(q) => ids = vec![agg_count[qi]],
                Query::Sum { .. } if self.supports(q) => {
                    ids = crate::query::encode_sum(agg_sum[qi])
                }
                _ => ids.sort_unstable(),
            }
            let status = if routes[qi].is_empty() && !self.supports(q) {
                QueryStatus::Unsupported
            } else {
                QueryStatus::Ok
            };
            outcomes.push(QueryOutcome { query: qi, status, reported: ids.len(), io: io[qi] });
            if keep_answers {
                answers[qi] = ids;
            }
        }

        let report = ShardedReport {
            outcomes,
            per_shard,
            total,
            answers: keep_answers.then_some(answers),
            fanout,
        };
        assert_eq!(
            report.attributed_total(),
            report.total,
            "per-query deltas must sum to the aggregate across shards"
        );
        report
    }

    /// The 2D coordinates of global id `gid` (k-NN merge support).
    fn locate2(&self, gid: u32) -> (i64, i64) {
        for shard in &self.shards {
            if let Ok(pos) = shard.ids2.binary_search(&gid) {
                return shard.pts2[pos];
            }
        }
        panic!("global 2D id {gid} not held by any shard");
    }

    /// Where a sharded catalog keeps its manifest.
    pub fn manifest_path(dir: impl AsRef<Path>) -> PathBuf {
        dir.as_ref().join(SHARD_MANIFEST)
    }

    /// Persist the whole sharded set under `dir`: one
    /// [`SnapshotCatalog`] per shard in `dir/shard<i>/` (each with its
    /// own calibration file) plus the shard manifest `__shards.meta`
    /// (regions, id maps, per-shard points). Devices must be frozen
    /// ([`Self::freeze`]).
    pub fn save_to_catalog(&self, dir: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for (s, shard) in self.shards.iter().enumerate() {
            let mut cat = SnapshotCatalog::create(dir.join(format!("shard{s}")))?;
            for slot in 0..shard.set.len() {
                cat.add(&format!("s{slot}"), shard.set.structure(slot))?;
            }
            shard.set.save_calibration_to_catalog(&cat)?;
        }
        let mut w = MetaWriter::new();
        w.str(MANIFEST_MAGIC);
        w.u64(MANIFEST_VERSION);
        w.usize(self.shards.len());
        self.partition2_view().save(&mut w);
        self.partition3_view().save(&mut w);
        for shard in &self.shards {
            w.seq(shard.pts2.len());
            for &(x, y) in &shard.pts2 {
                w.i64(x);
                w.i64(y);
            }
        }
        w.write_to_path(&Self::manifest_path(dir))
    }

    /// Reopen a sharded catalog cold: every shard's sub-catalog (fresh
    /// file-backed devices, persisted calibration auto-loaded) plus the
    /// manifest's regions and id maps. Answers, plans, and read-IO
    /// counts are bit-identical to the in-memory original (pinned by the
    /// differential suite).
    pub fn from_catalog(
        dir: impl AsRef<Path>,
        cache_pages: usize,
    ) -> Result<ShardedIndexSet, SnapshotError> {
        Self::from_catalog_as(dir, cache_pages, ReopenBackend::Pread)
    }

    /// [`Self::from_catalog`] with an explicit storage backend for every
    /// shard's reopened devices ([`ReopenBackend::Mmap`] for zero-copy
    /// serving) — the same guarantees, backend choice plumbed through
    /// every sub-catalog.
    pub fn from_catalog_as(
        dir: impl AsRef<Path>,
        cache_pages: usize,
        backend: ReopenBackend,
    ) -> Result<ShardedIndexSet, SnapshotError> {
        let dir = dir.as_ref();
        let mut r = MetaReader::open(&Self::manifest_path(dir))?;
        let magic = r.str()?;
        if magic != MANIFEST_MAGIC {
            return Err(r.error(format!("not a shard manifest (magic {magic:?})")));
        }
        let version = r.u64()?;
        if version != MANIFEST_VERSION {
            return Err(r.error(format!("unsupported shard manifest version {version}")));
        }
        let shards = r.usize()?;
        if shards == 0 {
            return Err(r.error("shard manifest with zero shards"));
        }
        let p2 = Partition2::load(&mut r)?;
        let p3 = Partition3::load(&mut r)?;
        if p2.groups.len() != shards || p3.groups.len() != shards {
            return Err(r.error(format!(
                "shard manifest claims {shards} shards but partitions hold {} / {}",
                p2.groups.len(),
                p3.groups.len()
            )));
        }
        let mut all_pts2 = Vec::with_capacity(shards);
        for (s, group) in p2.groups.iter().enumerate() {
            let n = r.seq()?;
            if n != group.len() {
                return Err(r.error(format!(
                    "shard {s}: manifest holds {n} points for a {}-point group",
                    group.len()
                )));
            }
            let mut pts = Vec::with_capacity(n);
            for _ in 0..n {
                pts.push((r.i64()?, r.i64()?));
            }
            all_pts2.push(pts);
        }
        r.finish()?;

        let mut loaded = Vec::with_capacity(shards);
        for (s, pts2) in all_pts2.into_iter().enumerate() {
            let cat = SnapshotCatalog::open(dir.join(format!("shard{s}")))?;
            let set = IndexSet::from_catalog_as(&cat, cache_pages, backend)?;
            loaded.push(Shard {
                set,
                region2: p2.regions[s].clone(),
                region3: p3.regions[s].clone(),
                ids2: p2.groups[s].clone(),
                pts2,
                ids3: p3.groups[s].clone(),
            });
        }
        let sharded = ShardedIndexSet { shards: loaded, devices: Vec::new() };
        sharded.assert_uniform_kinds();
        Ok(sharded)
    }

    fn partition2_view(&self) -> Partition2 {
        Partition2 {
            groups: self.shards.iter().map(|s| s.ids2.clone()).collect(),
            regions: self.shards.iter().map(|s| s.region2.clone()).collect(),
        }
    }

    fn partition3_view(&self) -> Partition3 {
        Partition3 {
            groups: self.shards.iter().map(|s| s.ids3.clone()).collect(),
            regions: self.shards.iter().map(|s| s.region3.clone()).collect(),
        }
    }
}

/// The tier chooser of the fan-out cost model: among sharded sets of
/// different granularity (e.g. S ∈ {1, 2, 4, 8} over the same dataset),
/// the index of the one predicting the fewest reads for `q` (ties to the
/// earlier tier; `None` when no tier supports `q`). Broad queries price
/// their fan-out and fall back to fewer/bigger shards — at S=1 that is
/// the unsharded planner with its scan baseline.
pub fn cheapest_tier(tiers: &[&ShardedIndexSet], q: &Query) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, tier) in tiers.iter().enumerate() {
        let cost = tier.predicted_reads(q);
        if cost.is_finite() && best.is_none_or(|(_, b)| cost < b) {
            best = Some((i, cost));
        }
    }
    best.map(|(i, _)| i)
}
