//! # lcrs-engine — batched multi-query execution
//!
//! The paper's bounds are per-query (O(log_B n + t) IOs), but a system
//! serving heavy traffic answers *batches* of queries, where page reuse
//! across queries is the dominant cost saving. This crate is the front door
//! for that mode of operation (DESIGN.md §7):
//!
//! * [`Query`] — a structure-agnostic query value: halfplane, halfspace,
//!   and k-NN reports, plus the derived classes of DESIGN.md §15 —
//!   [`Query::Disk`] (circular ranges via the paraboloid lift),
//!   [`Query::Count`] / [`Query::Sum`] (annotated aggregates), and
//!   [`Query::TopK`] (ranked reporting);
//! * [`LiftedIndex`] — disk queries answered by the existing 3D
//!   structures over lifted 2D points, with an exact-scan tail for
//!   points outside the lift budget;
//! * [`RangeIndex`] — the unified query interface, implemented by every
//!   structure of `lcrs_halfspace` and every baseline of `lcrs_baselines`,
//!   with per-query [`IoDelta`](lcrs_extmem::IoDelta) attribution measured
//!   through the device the structure was built on;
//! * [`BatchExecutor`] — accepts a batch, reorders it for page locality
//!   (by the query's dual point / region), executes it against a warm
//!   shared LRU cache, and reports per-query and aggregate IO against the
//!   one-at-a-time cold baseline;
//! * [`ParallelExecutor`] — the same batch cut into locality-ordered
//!   shards across N OS threads (DESIGN.md §8), each worker on its own
//!   [`lcrs_extmem::DeviceHandle`] fork (own warm LRU, exactly-attributed
//!   per-worker IO), answers merged back into submission order;
//! * [`SnapshotCatalog`] — build-once/serve-many (DESIGN.md §9): persist
//!   a directory of frozen indexes ([`RangeIndex::save_meta`] +
//!   [`lcrs_extmem::Device::freeze_to_path`]) and reload them read-only
//!   in any later process, answers and read-IO counts bit-identical to
//!   the in-memory originals;
//! * [`IndexSet`] — the cost-model query planner (DESIGN.md §10): a
//!   facade over a heterogeneous collection of built structures that
//!   routes each query of a mixed batch to the cheapest capable one,
//!   using the paper's asymptotic bounds ([`RangeIndex::cost_hint`])
//!   calibrated by a measured probe pass; calibration constants persist
//!   through a catalog so a reopened set plans identically;
//! * [`ShardedIndexSet`] — space-partitioned serving (DESIGN.md §11): the
//!   dataset split into S geometry-aware shards by recursive ham-sandwich
//!   cuts ([`lcrs_halfspace::partition`]), each shard a full calibrated
//!   [`IndexSet`] on its own devices with its own sub-catalog; queries
//!   route only to the shards whose region they can intersect
//!   (conservative, no false negatives), scatter-gather across shard
//!   threads, and merge to the canonical answer order with exact per-shard
//!   IO attribution and a fan-out-aware cost model;
//! * [`LiveIndex`] — live-update serving (DESIGN.md §12): an LSM-style
//!   mutable tier over the leveled logarithmic-method core
//!   ([`lcrs_halfspace::leveled`]), absorbing inserts and deletes while
//!   answering queries, checkpointing every mutation through an atomic
//!   `__live.meta` manifest swap over [`SnapshotCatalog`]-persisted frozen
//!   levels (`lv<seq>` entries), merging levels on a background thread
//!   while readers keep serving the pre-merge state — and itself a
//!   [`RangeIndex`], so a reader fork plans like any frozen slot;
//! * [`QueryServer`] — the serving front end (DESIGN.md §14): a windowed
//!   loop over a deterministic tenant-tagged arrival stream that
//!   accumulates arrivals into time/size-bounded windows
//!   ([`WindowPolicy`]), executes each window as one planned batch
//!   (sequentially or across [`ParallelExecutor`] forks), enforces
//!   per-tenant IO quotas ([`QuotaConfig`]) with typed
//!   [`ServeStatus::Rejected`] outcomes, attributes exact per-tenant
//!   [`IoDelta`](lcrs_extmem::IoDelta)s, and exposes a pull-style
//!   [`MetricsSnapshot`].
//!
//! Answers are never affected by batching, sharding, or persistence: the
//! executors only change *when* pages happen to be resident, and a
//! reloaded index reads exactly the pages the original froze — which the
//! test suites pin by comparing cold, batched, parallel, and
//! reopened-from-snapshot answers element-wise.

pub mod batch;
pub mod catalog;
pub mod cost;
pub mod lift;
pub mod live;
pub mod parallel;
pub mod planner;
pub mod query;
pub mod serve;
pub mod shard;

pub use batch::{BatchExecutor, BatchReport, ExecMode, QueryOutcome, QueryStatus};
pub use catalog::{CatalogEntry, SnapshotCatalog, RESERVED_PREFIX};
pub use cost::{calibrate_index, predicted_reads, Calibration};
pub use lift::{LiftedIndex, LiftedKind};
pub use live::{LiveIndex, LiveLevel, LIVE_MANIFEST};
pub use parallel::{ParallelExecutor, ParallelReport, WorkerReport};
pub use planner::{
    IndexSet, Plan, PlanReport, PrefetchHint, RoutedReport, CALIBRATION_FILE, NO_PREFETCH_ENV,
};
pub use query::{decode_sum, encode_sum, load_index, Query, RangeIndex, Unsupported};
pub use serve::{
    saturating_ns, Arrival, MetricsSnapshot, QueryServer, QuotaConfig, RejectReason, ServeConfig,
    ServeOutcome, ServeReport, ServeStatus, TenantId, TenantMetrics, WindowPolicy, WindowSummary,
};
pub use shard::{
    cheapest_tier, ShardConfig, ShardReport, ShardedIndexSet, ShardedReport, SHARD_MANIFEST,
};
