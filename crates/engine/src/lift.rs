//! [`LiftedIndex`]: disk queries on 2D points through the 3D structures —
//! no new index, just the paraboloid lift (DESIGN.md §15).
//!
//! At build time every in-budget 2D point `(px, py)` (within
//! [`lcrs_geom::lift::MAX_LIFT_COORD`]) lifts to the 3D point
//! `(px, py, px² + py²)`; a [`Query::Disk`] of center `(x, y)` and squared
//! radius `r2` translates to the halfspace
//! `z ≤ 2x·px + 2y·py + (r2 − x² − y²)`
//! ([`lcrs_geom::lift::disk_to_halfspace`]), which any of the four 3D
//! backends answers: [`HalfspaceRS3`] (Theorem 4.4, logarithmic),
//! [`HybridTree3`] / [`ShallowTree3`] (Section 6 trade-offs), or
//! [`ExternalScan3`] (the lifted oracle). Points *outside* the lift budget
//! go to a tail file on the same device, scanned with exact carry-aware
//! `u128` distances ([`lcrs_geom::lift::in_disk`]) — the lift accelerates
//! the dense in-budget mass without ever giving up exactness.
//!
//! All IOs — inner-structure reads and tail pages — flow through the one
//! [`DeviceHandle`] scope the index was built on, so the engine's
//! per-query [`lcrs_extmem::IoDelta`] attribution sees the composite as a
//! single structure.

use lcrs_baselines::ExternalScan3;
use lcrs_extmem::{DeviceHandle, MetaReader, MetaWriter, SnapshotError, VecFile};
use lcrs_geom::lift;
use lcrs_halfspace::cost::{CostHint, CostShape};
use lcrs_halfspace::hs3d::Hs3dConfig;
use lcrs_halfspace::tradeoff::{HybridConfig, ShallowConfig};
use lcrs_halfspace::{HalfspaceRS3, HybridTree3, ShallowTree3};

use crate::query::{unsupported, Query, RangeIndex, Unsupported};

/// Which 3D backend serves the lifted points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiftedKind {
    /// [`HalfspaceRS3`] — O(log n) search (Theorem 4.4).
    Hs3d,
    /// [`HybridTree3`] — the n^(1/3) Section 6 trade-off.
    Hybrid,
    /// [`ShallowTree3`] — the n^(2/3) Section 6 trade-off.
    Shallow,
    /// [`ExternalScan3`] — the lifted scan oracle.
    Scan3,
}

enum Inner {
    Hs3d(HalfspaceRS3),
    Hybrid(HybridTree3),
    Shallow(ShallowTree3),
    Scan3(ExternalScan3),
}

/// A 2D point set answering [`Query::Disk`] via the paraboloid lift (see
/// the module docs). Built from arbitrary `i64` points; only the
/// in-budget ones ride the 3D structure, the rest live in an exact-scan
/// tail on the same device.
pub struct LiftedIndex {
    dev: DeviceHandle,
    inner: Inner,
    /// Inner-structure local id → original input id (in-budget points
    /// keep their build order inside the inner structure).
    ids: Vec<u32>,
    /// Out-of-budget points `(x, y, original id)`.
    tail: VecFile<(i64, i64, u32)>,
    n: usize,
}

impl LiftedIndex {
    /// Lift `points` and build the `kind` backend over the in-budget
    /// subset; the rest go to the tail file. Pays the inner structure's
    /// build IOs plus one sequential write of the tail.
    pub fn build(dev: &DeviceHandle, points: &[(i64, i64)], kind: LiftedKind) -> LiftedIndex {
        let mut lifted: Vec<(i64, i64, i64)> = Vec::new();
        let mut ids: Vec<u32> = Vec::new();
        let mut tail_items: Vec<(i64, i64, u32)> = Vec::new();
        for (i, &(px, py)) in points.iter().enumerate() {
            match lift::lift_z(px, py) {
                Some(z) => {
                    lifted.push((px, py, z));
                    ids.push(i as u32);
                }
                None => tail_items.push((px, py, i as u32)),
            }
        }
        let inner = match kind {
            LiftedKind::Hs3d => {
                Inner::Hs3d(HalfspaceRS3::build(dev, &lifted, Hs3dConfig::default()))
            }
            LiftedKind::Hybrid => {
                Inner::Hybrid(HybridTree3::build(dev, &lifted, HybridConfig::default()))
            }
            LiftedKind::Shallow => {
                Inner::Shallow(ShallowTree3::build(dev, &lifted, ShallowConfig::default()))
            }
            LiftedKind::Scan3 => Inner::Scan3(ExternalScan3::build(dev, &lifted)),
        };
        let tail = VecFile::from_slice(dev, &tail_items);
        LiftedIndex { dev: dev.clone(), inner, ids, tail, n: points.len() }
    }

    /// Total points (in-budget plus tail).
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Points served by the exact-scan tail rather than the lift.
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// The same index viewed through `h` (own cache + stats, same pages).
    pub fn with_handle(&self, h: &DeviceHandle) -> LiftedIndex {
        let inner = match &self.inner {
            Inner::Hs3d(s) => Inner::Hs3d(s.with_handle(h)),
            Inner::Hybrid(s) => Inner::Hybrid(s.with_handle(h)),
            Inner::Shallow(s) => Inner::Shallow(s.with_handle(h)),
            Inner::Scan3(s) => Inner::Scan3(s.with_handle(h)),
        };
        LiftedIndex {
            dev: h.clone(),
            inner,
            ids: self.ids.clone(),
            tail: self.tail.with_handle(h),
            n: self.n,
        }
    }

    /// Reconstruct an index persisted through [`RangeIndex::save_meta`]
    /// from its kind string (`"lift-hs3d"` / `"lift-hybrid"` /
    /// `"lift-shallow"` / `"lift-scan3"`).
    pub fn load(
        kind: &str,
        h: &DeviceHandle,
        r: &mut MetaReader,
    ) -> Result<LiftedIndex, SnapshotError> {
        let inner = match kind {
            "lift-hs3d" => Inner::Hs3d(HalfspaceRS3::load(h, r)?),
            "lift-hybrid" => Inner::Hybrid(HybridTree3::load(h, r)?),
            "lift-shallow" => Inner::Shallow(ShallowTree3::load(h, r)?),
            "lift-scan3" => Inner::Scan3(ExternalScan3::load(h, r)?),
            other => return Err(r.error(format!("unknown lifted kind {other:?}"))),
        };
        let n_ids = r.seq()?;
        let mut ids = Vec::with_capacity(n_ids);
        for _ in 0..n_ids {
            ids.push(r.u32()?);
        }
        let tail = VecFile::load(h, r)?;
        let n = r.usize()?;
        if ids.len() + tail.len() != n {
            return Err(r.error("lifted id map + tail must cover every point"));
        }
        Ok(LiftedIndex { dev: h.clone(), inner, ids, tail, n })
    }

    fn inner_query(&self, u: i64, v: i64, w: i64, inclusive: bool) -> Vec<u32> {
        match &self.inner {
            Inner::Hs3d(s) => s.query_below(u, v, w, inclusive),
            Inner::Hybrid(s) => s.query_below(u, v, w, inclusive),
            Inner::Shallow(s) => s.query_below(u, v, w, inclusive),
            Inner::Scan3(s) => s.query_below(u, v, w, inclusive).0,
        }
    }

    /// Ids of points inside the disk: lifted halfspace over the in-budget
    /// mass, exact scan over the tail.
    pub fn disk_report(&self, x: i64, y: i64, r2: i64, inclusive: bool) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        if let Some((u, v, w)) = lift::disk_to_halfspace(x, y, r2) {
            for local in self.inner_query(u, v, w, inclusive) {
                out.push(u64::from(self.ids[local as usize]));
            }
        }
        // r2 < 0 (an empty disk) skips the lift but still scans nothing
        // from the tail: in_disk rejects every point.
        self.tail.scan_while(|_, (px, py, id)| {
            if lift::in_disk(x, y, r2, px, py, inclusive) {
                out.push(u64::from(id));
            }
            true
        });
        out
    }
}

impl RangeIndex for LiftedIndex {
    fn name(&self) -> &'static str {
        match self.inner {
            Inner::Hs3d(_) => "lift-hs3d",
            Inner::Hybrid(_) => "lift-hybrid",
            Inner::Shallow(_) => "lift-shallow",
            Inner::Scan3(_) => "lift-scan3",
        }
    }

    fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// Disks whose center keeps the lifted plane exact
    /// ([`lcrs_geom::lift::MAX_DISK_CENTER`]); empty disks (`r2 < 0`)
    /// are supported and answer with nothing.
    fn supports(&self, q: &Query) -> bool {
        match *q {
            Query::Disk { x, y, .. } => {
                x.unsigned_abs() <= lift::MAX_DISK_CENTER as u64
                    && y.unsigned_abs() <= lift::MAX_DISK_CENTER as u64
            }
            _ => false,
        }
    }

    fn cost_hint(&self) -> CostHint {
        let mut hint = match &self.inner {
            Inner::Hs3d(s) => s.cost_hint(),
            Inner::Hybrid(s) => s.cost_hint(),
            Inner::Shallow(s) => s.cost_hint(),
            Inner::Scan3(s) => {
                CostHint::new(CostShape::Scan { data_pages: s.data_pages() }, s.len())
            }
        };
        // Every disk query also scans the tail; a scan-shaped inner can
        // price those pages exactly, the others absorb them into the
        // calibrated constant.
        if let CostShape::Scan { data_pages } = hint.shape {
            hint.shape = CostShape::Scan { data_pages: data_pages + self.tail.pages() as u64 };
        }
        hint.n = self.n as u64;
        hint
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Disk { x, y, r2, inclusive } if RangeIndex::supports(self, q) => {
                Ok(self.disk_report(x, y, r2, inclusive))
            }
            _ => unsupported(RangeIndex::name(self), q),
        }
    }

    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(self.with_handle(&self.dev.fork()))
    }

    fn save_meta(&self, w: &mut MetaWriter) {
        match &self.inner {
            Inner::Hs3d(s) => s.save(w),
            Inner::Hybrid(s) => s.save(w),
            Inner::Shallow(s) => s.save(w),
            Inner::Scan3(s) => s.save(w),
        }
        w.seq(self.ids.len());
        for &id in &self.ids {
            w.u32(id);
        }
        self.tail.save(w);
        w.usize(self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::{Device, DeviceConfig};

    fn mixed_points(n: usize, seed: u64) -> Vec<(i64, i64)> {
        // Mostly in-budget points, with a sprinkle of extreme outliers
        // that must land in the tail.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s
        };
        (0..n)
            .map(|i| {
                if i % 17 == 13 {
                    let sign = if next() % 2 == 0 { 1 } else { -1 };
                    (sign * (next() % 1_000_000_000) as i64, (next() % 1_000_000_000) as i64)
                } else {
                    ((next() % 2049) as i64 - 1024, (next() % 2049) as i64 - 1024)
                }
            })
            .collect()
    }

    fn brute_disk(pts: &[(i64, i64)], x: i64, y: i64, r2: i64, inclusive: bool) -> Vec<u64> {
        pts.iter()
            .enumerate()
            .filter(|(_, &(px, py))| lift::in_disk(x, y, r2, px, py, inclusive))
            .map(|(i, _)| i as u64)
            .collect()
    }

    #[test]
    fn every_backend_matches_brute_force() {
        let pts = mixed_points(500, 9);
        for kind in [LiftedKind::Hs3d, LiftedKind::Hybrid, LiftedKind::Shallow, LiftedKind::Scan3] {
            let dev = Device::new(DeviceConfig::new(512, 0));
            let idx = LiftedIndex::build(&dev, &pts, kind);
            assert!(idx.tail_len() > 0, "outliers must populate the tail");
            for (x, y, r2) in [
                (0i64, 0i64, 400_000i64),
                (-500, 500, 90_000),
                (lift::MAX_DISK_CENTER, 0, 1 << 50),
                (3, -4, 0),
                (7, 7, -5),
            ] {
                for inclusive in [false, true] {
                    let mut got = idx.disk_report(x, y, r2, inclusive);
                    got.sort_unstable();
                    let want = brute_disk(&pts, x, y, r2, inclusive);
                    assert_eq!(got, want, "{kind:?} disk=({x},{y},{r2}) inclusive={inclusive}");
                }
            }
        }
    }

    #[test]
    fn supports_gates_on_center_budget() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let idx = LiftedIndex::build(&dev, &[(0, 0), (3, 4)], LiftedKind::Hs3d);
        let ok = Query::Disk { x: 0, y: 0, r2: 25, inclusive: true };
        let empty = Query::Disk { x: 0, y: 0, r2: -1, inclusive: true };
        let far = Query::Disk { x: lift::MAX_DISK_CENTER + 1, y: 0, r2: 25, inclusive: true };
        assert!(RangeIndex::supports(&idx, &ok));
        assert!(RangeIndex::supports(&idx, &empty), "empty disks are supported (answer: nothing)");
        assert!(!RangeIndex::supports(&idx, &far));
        let mut got = idx.execute(&ok);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1], "(0,0) and (3,4) both lie in the inclusive r²=25 disk");
        assert_eq!(idx.execute(&empty), Vec::<u64>::new());
        assert!(idx.try_execute(&far).is_err());
    }
}
