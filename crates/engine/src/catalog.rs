//! The snapshot catalog: persist and reload a whole batch-executor's worth
//! of indexes from one directory (DESIGN.md §9).
//!
//! Directory layout — one manifest plus a pages/metadata pair per entry:
//!
//! ```text
//! catalog-dir/
//!   __catalog.meta    manifest: sequence of (label, kind) pairs
//!   <label>.pages     page snapshot (Device::freeze_to_path format)
//!   <label>.meta      structure metadata (RangeIndex::save_meta envelope)
//! ```
//!
//! Every engine-internal file in a catalog directory (this manifest, the
//! sharded manifest, planner calibration, live-level manifests) is named
//! with the [`RESERVED_PREFIX`]; entry labels may not use it, so internal
//! files and entry files can never collide no matter what internal files
//! future engine versions add.
//!
//! [`SnapshotCatalog::add`] serializes one frozen index;
//! [`SnapshotCatalog::load`] reopens an entry as a fresh file-backed
//! device plus the index over it, ready for the [`crate::BatchExecutor`]
//! or [`crate::ParallelExecutor`] — the build-once/serve-many workflow in
//! one call. Every file is checksummed and every failure is a typed
//! [`SnapshotError`]; the manifest is rewritten atomically after each
//! `add`, so a crash mid-build leaves a catalog that simply lacks the
//! unfinished entry.

use std::path::{Path, PathBuf};

use lcrs_extmem::{Device, MetaReader, MetaWriter, ReopenBackend, SnapshotError};

use crate::query::{load_index, RangeIndex};

/// Prefix reserved for engine-internal files living inside catalog
/// directories. Catalog entry labels may not start with it
/// ([`SnapshotError::ReservedLabel`]), which replaces the per-name
/// blocklist that used to grow with every new internal file.
pub const RESERVED_PREFIX: &str = "__";

const MANIFEST: &str = "__catalog.meta";

/// One persisted index in a [`SnapshotCatalog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Caller-chosen name; doubles as the entry's file stem.
    pub label: String,
    /// The index's [`RangeIndex::name`], used to dispatch the load.
    pub kind: String,
}

fn check_label(label: &str) -> Result<(), SnapshotError> {
    let well_formed = !label.is_empty()
        && label.len() <= 64
        && label.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
    if !well_formed {
        return Err(SnapshotError::InvalidLabel { label: label.to_string() });
    }
    // A label starting with the reserved prefix would collide with an
    // engine-internal file sharing the directory (the `__catalog.meta`
    // manifest, `__shards.meta`, `__planner.calib`, `__live.meta`, or any
    // internal file added later) and silently overwrite it.
    if label.starts_with(RESERVED_PREFIX) {
        return Err(SnapshotError::ReservedLabel {
            label: label.to_string(),
            prefix: RESERVED_PREFIX,
        });
    }
    Ok(())
}

/// A directory of persisted indexes — see the module docs for the layout.
pub struct SnapshotCatalog {
    dir: PathBuf,
    entries: Vec<CatalogEntry>,
}

impl SnapshotCatalog {
    /// Start an empty catalog at `dir` (created if absent; an existing
    /// manifest there is overwritten).
    pub fn create(dir: impl AsRef<Path>) -> Result<SnapshotCatalog, SnapshotError> {
        std::fs::create_dir_all(dir.as_ref())?;
        let cat = SnapshotCatalog { dir: dir.as_ref().to_path_buf(), entries: Vec::new() };
        cat.write_manifest()?;
        Ok(cat)
    }

    /// Open an existing catalog's manifest.
    pub fn open(dir: impl AsRef<Path>) -> Result<SnapshotCatalog, SnapshotError> {
        let dir = dir.as_ref().to_path_buf();
        let mut r = MetaReader::open(&dir.join(MANIFEST))?;
        let n = r.seq()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(CatalogEntry { label: r.str()?, kind: r.str()? });
        }
        r.finish()?;
        Ok(SnapshotCatalog { dir, entries })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The persisted entries, in `add` order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Path of an entry's page snapshot (`<label>.pages`). Public so
    /// composite structures (the live index's leveled sub-entries) can
    /// reopen an entry's device directly and re-scope it.
    pub fn pages_path(&self, label: &str) -> PathBuf {
        self.dir.join(format!("{label}.pages"))
    }

    /// Path of an entry's metadata envelope (`<label>.meta`).
    pub fn meta_path(&self, label: &str) -> PathBuf {
        self.dir.join(format!("{label}.meta"))
    }

    /// Persist one index under `label`: its device's frozen pages to
    /// `<label>.pages`, its metadata to `<label>.meta`, and the manifest.
    /// The index's device must already be frozen
    /// ([`SnapshotError::NotFrozen`] otherwise — freezing is the owner's
    /// lifecycle decision, not the catalog's).
    ///
    /// Indexes sharing one device serialize one copy of that device's
    /// pages *each*: entries are self-contained, so any subset of the
    /// catalog can be loaded (or deleted) independently.
    pub fn add(&mut self, label: &str, index: &dyn RangeIndex) -> Result<(), SnapshotError> {
        check_label(label)?;
        if self.entries.iter().any(|e| e.label == label) {
            return Err(SnapshotError::DuplicateEntry { label: label.to_string() });
        }
        index.device().snapshot_to_path(self.pages_path(label))?;
        let mut w = MetaWriter::new();
        w.str(index.name());
        index.save_meta(&mut w);
        w.write_to_path(&self.meta_path(label))?;
        self.entries
            .push(CatalogEntry { label: label.to_string(), kind: index.name().to_string() });
        self.write_manifest()
    }

    /// Reopen one entry: a fresh file-backed device over `<label>.pages`
    /// (validated, cold — zeroed stats, empty cache of `cache_pages`
    /// pages) and the index reloaded on its primary handle scope.
    pub fn load(
        &self,
        label: &str,
        cache_pages: usize,
    ) -> Result<Box<dyn RangeIndex>, SnapshotError> {
        self.load_as(label, cache_pages, ReopenBackend::Pread)
    }

    /// [`Self::load`] with an explicit storage backend
    /// ([`ReopenBackend::Mmap`] for the zero-copy mapping, DESIGN.md §13).
    /// Answers and model read-IO counts are bit-identical across backends.
    pub fn load_as(
        &self,
        label: &str,
        cache_pages: usize,
        backend: ReopenBackend,
    ) -> Result<Box<dyn RangeIndex>, SnapshotError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.label == label)
            .ok_or_else(|| SnapshotError::NoSuchEntry { label: label.to_string() })?;
        let device = Device::open_snapshot_as(self.pages_path(label), cache_pages, backend)?;
        let mut r = MetaReader::open(&self.meta_path(label))?;
        let kind = r.str()?;
        if kind != entry.kind {
            return Err(r.error(format!(
                "kind mismatch for {label:?}: manifest says {:?}, metadata says {kind:?}",
                entry.kind
            )));
        }
        let index = load_index(&kind, &device, &mut r)?;
        r.finish()?;
        Ok(index)
    }

    /// Reopen every entry, in `add` order.
    pub fn load_all(&self, cache_pages: usize) -> Result<Vec<Box<dyn RangeIndex>>, SnapshotError> {
        self.load_all_as(cache_pages, ReopenBackend::Pread)
    }

    /// [`Self::load_all`] with an explicit storage backend.
    pub fn load_all_as(
        &self,
        cache_pages: usize,
        backend: ReopenBackend,
    ) -> Result<Vec<Box<dyn RangeIndex>>, SnapshotError> {
        self.entries.iter().map(|e| self.load_as(&e.label, cache_pages, backend)).collect()
    }

    /// Drop one entry: it leaves the manifest first (the commit point —
    /// rewritten atomically), then its files are deleted best-effort. A
    /// crash between the two leaves orphaned files no manifest references,
    /// which a later `remove`/`add` cycle is free to overwrite — never a
    /// manifest pointing at missing files.
    pub fn remove(&mut self, label: &str) -> Result<(), SnapshotError> {
        let i = self
            .entries
            .iter()
            .position(|e| e.label == label)
            .ok_or_else(|| SnapshotError::NoSuchEntry { label: label.to_string() })?;
        self.entries.remove(i);
        self.write_manifest()?;
        let _ = std::fs::remove_file(self.pages_path(label));
        let _ = std::fs::remove_file(self.meta_path(label));
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), SnapshotError> {
        let mut w = MetaWriter::new();
        w.seq(self.entries.len());
        for e in &self.entries {
            w.str(&e.label);
            w.str(&e.kind);
        }
        w.write_to_path(&self.dir.join(MANIFEST))
    }
}
