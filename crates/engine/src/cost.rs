//! The planner's cost model: paper bounds × measured constants.
//!
//! Each structure self-reports its asymptotic query bound as a
//! [`CostHint`] ([`RangeIndex::cost_hint`]);
//! this module turns those shapes into comparable per-query read estimates
//! by fitting multiplicative constants per structure from a measured
//! probe pass ([`Calibration`]). Structures with an annotated aggregate
//! path answer [`Query::Count`] / [`Query::Sum`] with different IO
//! behavior than their reporting path (covered canonical nodes skip their
//! leaves — DESIGN.md §15), so the fit is *dual*: probes are partitioned
//! by [`RangeIndex::cost_hint_for`]'s [`CostHint::aggregate`] flag and
//! each side gets its own constant. The fitted constants serialize
//! exactly (f64 bit patterns through [`MetaWriter`]), so a catalog
//! reopened in another process makes *identical* plan decisions without
//! re-probing — pinned by the planner test suite.

use lcrs_extmem::{MetaReader, MetaWriter, SnapshotError};
use lcrs_halfspace::cost::CostHint;

use crate::query::{Query, RangeIndex};

/// Fitted cost constants for one structure: one for the reporting path,
/// one for the annotated aggregate path.
///
/// Each constant is the ratio of measured cold reads per probe query to
/// the hint's [`CostHint::structural_reads`]; an uncalibrated structure
/// uses `1.0` (the raw paper shape). `probes` / `agg_probes` record how
/// many measurements each fit averaged — zero means "never calibrated",
/// and an aggregate prediction with `agg_probes == 0` falls back to the
/// reporting constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Fitted multiplier on the structural shape (> 0), reporting path.
    pub constant: f64,
    /// Probe queries the reporting fit averaged over (0 = uncalibrated).
    pub probes: u64,
    /// Fitted multiplier for aggregate-path queries
    /// ([`CostHint::aggregate`] hints), > 0.
    pub agg_constant: f64,
    /// Probe queries the aggregate fit averaged over (0 = uncalibrated;
    /// predictions then use [`Self::constant`]).
    pub agg_probes: u64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration { constant: 1.0, probes: 0, agg_constant: 1.0, agg_probes: 0 }
    }
}

impl Calibration {
    /// Fit one constant from a probe pass: `measured_reads` total cold
    /// read IOs over `probes` queries against a structure whose shape
    /// predicts `structural` reads per query.
    fn fit_one(measured_reads: u64, probes: u64, structural: f64) -> (f64, u64) {
        if probes == 0 {
            return (1.0, 0);
        }
        let mean = measured_reads as f64 / probes as f64;
        // Structural shapes are >= 1 (see CostHint::structural_reads); a
        // zero-read probe pass (everything metadata-resident) still gets a
        // small positive constant so costs stay ordered by shape.
        ((mean / structural.max(1.0)).max(1e-6), probes)
    }

    /// Fit the reporting-path constant only (aggregate side left
    /// uncalibrated). [`fit_dual`](Self::fit_dual) fits both.
    pub fn fit(measured_reads: u64, probes: u64, structural: f64) -> Calibration {
        let (constant, probes) = Self::fit_one(measured_reads, probes, structural);
        Calibration { constant, probes, ..Calibration::default() }
    }

    /// Fit both constants from a partitioned probe pass (reporting and
    /// aggregate measurements against the same structural shape).
    pub fn fit_dual(
        measured_reads: u64,
        probes: u64,
        agg_reads: u64,
        agg_probes: u64,
        structural: f64,
    ) -> Calibration {
        let (constant, probes) = Self::fit_one(measured_reads, probes, structural);
        let (agg_constant, agg_probes) = Self::fit_one(agg_reads, agg_probes, structural);
        Calibration { constant, probes, agg_constant, agg_probes }
    }

    /// Exact serialization (bit pattern, not decimal) — plan decisions
    /// survive a save/load round trip bit-identically.
    pub fn save(&self, w: &mut MetaWriter) {
        w.u64(self.constant.to_bits());
        w.u64(self.probes);
        w.u64(self.agg_constant.to_bits());
        w.u64(self.agg_probes);
    }

    /// Inverse of [`Self::save`].
    pub fn load(r: &mut MetaReader) -> Result<Calibration, SnapshotError> {
        let load_constant = |r: &mut MetaReader| -> Result<f64, SnapshotError> {
            let constant = f64::from_bits(r.u64()?);
            if !(constant.is_finite() && constant > 0.0) {
                return Err(
                    r.error(format!("calibration constant {constant} must be finite positive"))
                );
            }
            Ok(constant)
        };
        let constant = load_constant(r)?;
        let probes = r.u64()?;
        let agg_constant = load_constant(r)?;
        let agg_probes = r.u64()?;
        Ok(Calibration { constant, probes, agg_constant, agg_probes })
    }
}

/// Predicted read cost of `q` on a structure answering with `hint`
/// (obtained from [`RangeIndex::cost_hint_for`]) under `calib`.
///
/// The shape's structural term is scaled by the fitted constant — the
/// aggregate constant when the hint carries [`CostHint::aggregate`] and
/// the aggregate side has been calibrated, the reporting constant
/// otherwise. The output term `t/B` is omitted on purpose: every
/// structure reports the same `t` ids for the same query at the same
/// ~`t/B` page cost, so the term cancels inside an argmin/argmax over
/// capable structures (DESIGN.md §10). The `q` parameter keeps the
/// signature honest — cost is a per-query notion — even though today's
/// shapes depend only on the class and the aggregate flag.
pub fn predicted_reads(hint: &CostHint, calib: &Calibration, q: &Query) -> f64 {
    let _ = q;
    let constant =
        if hint.aggregate && calib.agg_probes > 0 { calib.agg_constant } else { calib.constant };
    constant * hint.structural_reads()
}

/// Run the measured probe pass for one structure: every supported query
/// in `probes`, each against a cleared cache so the measurement is cold,
/// deterministic, and independent of probe order. Probes are partitioned
/// by the [`CostHint::aggregate`] flag of [`RangeIndex::cost_hint_for`],
/// fitting the reporting and aggregate constants separately. Returns the
/// fitted calibration (default if no probe applies).
pub fn calibrate_index(index: &dyn RangeIndex, probes: &[Query]) -> Calibration {
    let mut reads = 0u64;
    let mut count = 0u64;
    let mut agg_reads = 0u64;
    let mut agg_count = 0u64;
    for q in probes.iter().filter(|q| index.supports(q)) {
        index.device().clear_cache();
        let (result, io) = index.try_execute_measured(q);
        debug_assert!(result.is_ok(), "supports() admitted the probe");
        if index.cost_hint_for(q).aggregate {
            agg_reads += io.reads;
            agg_count += 1;
        } else {
            reads += io.reads;
            count += 1;
        }
    }
    Calibration::fit_dual(reads, count, agg_reads, agg_count, index.cost_hint().structural_reads())
}

#[cfg(test)]
mod tests {
    use lcrs_halfspace::cost::CostShape;

    use super::*;

    #[test]
    fn fit_is_mean_over_structural() {
        let c = Calibration::fit(300, 10, 3.0);
        assert!((c.constant - 10.0).abs() < 1e-12);
        assert_eq!(c.probes, 10);
        assert_eq!(Calibration::fit(300, 0, 3.0), Calibration::default());
        // Zero reads stays positive so shapes keep ordering costs.
        assert!(Calibration::fit(0, 5, 3.0).constant > 0.0);
    }

    #[test]
    fn dual_fit_partitions_the_sides() {
        let c = Calibration::fit_dual(300, 10, 40, 8, 3.0);
        assert!((c.constant - 10.0).abs() < 1e-12);
        assert!((c.agg_constant - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!((c.probes, c.agg_probes), (10, 8));
        // One-sided passes leave the other side uncalibrated at 1.0.
        let rep_only = Calibration::fit_dual(300, 10, 0, 0, 3.0);
        assert_eq!((rep_only.agg_constant, rep_only.agg_probes), (1.0, 0));
    }

    #[test]
    fn calibration_roundtrips_bit_exactly() {
        let c = Calibration {
            constant: 0.1 + 0.2, // a non-representable sum
            probes: 7,
            agg_constant: 1.0 / 3.0,
            agg_probes: 3,
        };
        let mut w = MetaWriter::new();
        c.save(&mut w);
        let mut r = MetaReader::from_bytes(w.into_bytes()).unwrap();
        let back = Calibration::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.constant.to_bits(), c.constant.to_bits());
        assert_eq!(back.agg_constant.to_bits(), c.agg_constant.to_bits());
        assert_eq!((back.probes, back.agg_probes), (7, 3));
    }

    #[test]
    fn corrupt_constants_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let mut w = MetaWriter::new();
            Calibration { constant: bad, probes: 1, ..Calibration::default() }.save(&mut w);
            let mut r = MetaReader::from_bytes(w.into_bytes()).unwrap();
            assert!(Calibration::load(&mut r).is_err(), "{bad}");
            let mut w = MetaWriter::new();
            Calibration { agg_constant: bad, agg_probes: 1, ..Calibration::default() }.save(&mut w);
            let mut r = MetaReader::from_bytes(w.into_bytes()).unwrap();
            assert!(Calibration::load(&mut r).is_err(), "agg {bad}");
        }
    }

    #[test]
    fn predicted_reads_scales_the_shape() {
        let hint = CostHint::new(CostShape::Logarithmic, 1000);
        let calib = Calibration { constant: 2.5, probes: 4, agg_constant: 0.5, agg_probes: 2 };
        let q = Query::Halfplane { m: 0, c: 0, inclusive: false };
        let got = predicted_reads(&hint, &calib, &q);
        assert!((got - 2.5 * hint.structural_reads()).abs() < 1e-12);
        // The aggregate flag switches to the aggregate constant…
        let agg = hint.as_aggregate();
        let q_agg = Query::Count { m: 0, c: 0, inclusive: false };
        let got_agg = predicted_reads(&agg, &calib, &q_agg);
        assert!((got_agg - 0.5 * hint.structural_reads()).abs() < 1e-12);
        // …unless that side was never calibrated.
        let uncal = Calibration { agg_probes: 0, ..calib };
        let fallback = predicted_reads(&agg, &uncal, &q_agg);
        assert!((fallback - 2.5 * hint.structural_reads()).abs() < 1e-12);
    }
}
