//! The planner's cost model: paper bounds × measured constants.
//!
//! Each structure self-reports its asymptotic query bound as a
//! [`CostHint`] ([`RangeIndex::cost_hint`]);
//! this module turns those shapes into comparable per-query read estimates
//! by fitting one multiplicative constant per structure from a measured
//! probe pass ([`Calibration`]). The fitted constants serialize exactly
//! (f64 bit patterns through [`MetaWriter`]), so a catalog reopened in
//! another process makes *identical* plan decisions without re-probing —
//! pinned by the planner test suite.

use lcrs_extmem::{MetaReader, MetaWriter, SnapshotError};
use lcrs_halfspace::cost::CostHint;

use crate::query::{Query, RangeIndex};

/// A fitted cost constant for one structure.
///
/// `constant` is the ratio of measured cold reads per probe query to the
/// hint's [`CostHint::structural_reads`]; an uncalibrated structure uses
/// `1.0` (the raw paper shape). `probes` records how many measurements the
/// fit averaged — zero means "never calibrated".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Fitted multiplier on the structural shape (> 0).
    pub constant: f64,
    /// Probe queries the fit averaged over (0 = uncalibrated).
    pub probes: u64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration { constant: 1.0, probes: 0 }
    }
}

impl Calibration {
    /// Fit from a probe pass: `measured_reads` total cold read IOs over
    /// `probes` queries against a structure whose shape predicts
    /// `structural` reads per query.
    pub fn fit(measured_reads: u64, probes: u64, structural: f64) -> Calibration {
        if probes == 0 {
            return Calibration::default();
        }
        let mean = measured_reads as f64 / probes as f64;
        // Structural shapes are >= 1 (see CostHint::structural_reads); a
        // zero-read probe pass (everything metadata-resident) still gets a
        // small positive constant so costs stay ordered by shape.
        Calibration { constant: (mean / structural.max(1.0)).max(1e-6), probes }
    }

    /// Exact serialization (bit pattern, not decimal) — plan decisions
    /// survive a save/load round trip bit-identically.
    pub fn save(&self, w: &mut MetaWriter) {
        w.u64(self.constant.to_bits());
        w.u64(self.probes);
    }

    /// Inverse of [`Self::save`].
    pub fn load(r: &mut MetaReader) -> Result<Calibration, SnapshotError> {
        let bits = r.u64()?;
        let constant = f64::from_bits(bits);
        if !(constant.is_finite() && constant > 0.0) {
            return Err(r.error(format!("calibration constant {constant} must be finite positive")));
        }
        Ok(Calibration { constant, probes: r.u64()? })
    }
}

/// Predicted read cost of `q` on a structure with `hint` and `calib`.
///
/// The shape's structural term is scaled by the fitted constant. The
/// output term `t/B` is omitted on purpose: every structure reports the
/// same `t` ids for the same query at the same ~`t/B` page cost, so the
/// term cancels inside an argmin/argmax over capable structures (DESIGN.md
/// §10). The `q` parameter keeps the signature honest — cost is a
/// per-query notion — even though today's shapes only depend on the class.
pub fn predicted_reads(hint: &CostHint, calib: &Calibration, q: &Query) -> f64 {
    let _ = q;
    calib.constant * hint.structural_reads()
}

/// Run the measured probe pass for one structure: every supported query
/// in `probes`, each against a cleared cache so the measurement is cold,
/// deterministic, and independent of probe order. Returns the fitted
/// calibration (default if no probe applies).
pub fn calibrate_index(index: &dyn RangeIndex, probes: &[Query]) -> Calibration {
    let mut reads = 0u64;
    let mut count = 0u64;
    for q in probes.iter().filter(|q| index.supports(q)) {
        index.device().clear_cache();
        let (result, io) = index.try_execute_measured(q);
        debug_assert!(result.is_ok(), "supports() admitted the probe");
        reads += io.reads;
        count += 1;
    }
    Calibration::fit(reads, count, index.cost_hint().structural_reads())
}

#[cfg(test)]
mod tests {
    use lcrs_halfspace::cost::CostShape;

    use super::*;

    #[test]
    fn fit_is_mean_over_structural() {
        let c = Calibration::fit(300, 10, 3.0);
        assert!((c.constant - 10.0).abs() < 1e-12);
        assert_eq!(c.probes, 10);
        assert_eq!(Calibration::fit(300, 0, 3.0), Calibration::default());
        // Zero reads stays positive so shapes keep ordering costs.
        assert!(Calibration::fit(0, 5, 3.0).constant > 0.0);
    }

    #[test]
    fn calibration_roundtrips_bit_exactly() {
        let c = Calibration { constant: 0.1 + 0.2, probes: 7 }; // a non-representable sum
        let mut w = MetaWriter::new();
        c.save(&mut w);
        let mut r = MetaReader::from_bytes(w.into_bytes()).unwrap();
        let back = Calibration::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.constant.to_bits(), c.constant.to_bits());
        assert_eq!(back.probes, 7);
    }

    #[test]
    fn corrupt_constants_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let mut w = MetaWriter::new();
            Calibration { constant: bad, probes: 1 }.save(&mut w);
            let mut r = MetaReader::from_bytes(w.into_bytes()).unwrap();
            assert!(Calibration::load(&mut r).is_err(), "{bad}");
        }
    }

    #[test]
    fn predicted_reads_scales_the_shape() {
        let hint = CostHint::new(CostShape::Logarithmic, 1000);
        let calib = Calibration { constant: 2.5, probes: 4 };
        let q = Query::Halfplane { m: 0, c: 0, inclusive: false };
        let got = predicted_reads(&hint, &calib, &q);
        assert!((got - 2.5 * hint.structural_reads()).abs() < 1e-12);
    }
}
