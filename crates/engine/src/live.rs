//! Live-update serving: an LSM-style mutable tier over frozen snapshot
//! levels (DESIGN.md §12).
//!
//! [`LiveIndex`] is the engine face of the halfspace crate's
//! [`LeveledHalfspace2`] core in its `PerLevel` configuration: one
//! in-memory delta tier absorbs inserts and tombstoned deletes, and behind
//! it every static level is an ordinary [`HalfspaceRS2`] on its *own*
//! frozen [`Device`] — which is exactly what the PR-4 snapshot machinery
//! knows how to persist. The index can therefore checkpoint itself into a
//! [`SnapshotCatalog`] directory level by level and reopen mid-stream,
//! while queries route through [`crate::IndexSet`] planning like any other
//! [`RangeIndex`].
//!
//! ## On-disk layout
//!
//! A live index owns a catalog directory and two namespaces inside it:
//!
//! ```text
//! dir/
//!   __catalog.meta    ordinary catalog manifest
//!   __live.meta       live manifest: delta tier + the committed level set
//!   lv<seq>.pages     one frozen level's pages   (catalog entry "lv<seq>")
//!   lv<seq>.meta      that level's structure + build input
//! ```
//!
//! Each level is a regular catalog entry of kind `"live-level"`
//! ([`LiveLevel`]), so the generic catalog tooling can inspect or load it.
//! The `__live.meta` manifest — written through the same atomic
//! `.tmp`-rename path as every other metadata file — names which level
//! sequences are *committed*. That ordering is the whole crash story:
//!
//! 1. new levels are snapshotted into the catalog first,
//! 2. the live manifest is atomically replaced (THE commit point),
//! 3. levels the manifest no longer references are garbage-collected.
//!
//! A crash anywhere in that protocol leaves either the old manifest (the
//! new level is an unreferenced orphan, collected by a later checkpoint)
//! or the new one (stale levels linger until collected) — never a manifest
//! pointing at missing data. The live index owns every `lv<seq>` label in
//! its directory and will collect unreferenced ones; other entries are
//! left alone, so a live index can share a directory with a plain catalog.
//!
//! ## Merges
//!
//! Merges run synchronously (a full delta auto-flushes on insert) or in
//! the background ([`LiveIndex::begin_merge`] /
//! [`LiveIndex::commit_merge`]): the build runs on a worker thread against
//! the drained-but-still-visible state while queries — and reader forks
//! taken mid-merge — keep serving the old level set. While a merge is in
//! flight the on-disk manifest simply stays at the pre-merge state, which
//! is always a correct (if slightly stale) snapshot.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use lcrs_extmem::{Device, DeviceConfig, DeviceHandle, MetaReader, MetaWriter, SnapshotError};
use lcrs_halfspace::cost::CostHint;
use lcrs_halfspace::hs2d::Hs2dConfig;
use lcrs_halfspace::leveled::{Level, LevelBacking, LeveledHalfspace2, MergeHandle};
use lcrs_halfspace::{DeltaTier, HalfspaceRS2};

use crate::catalog::SnapshotCatalog;
use crate::query::{Query, RangeIndex, Unsupported};

/// File name of a live index's manifest inside its catalog directory
/// (engine-internal: uses the [`crate::catalog::RESERVED_PREFIX`]).
pub const LIVE_MANIFEST: &str = "__live.meta";

const MAGIC: &str = "lcrs-live";
const VERSION: u64 = 1;

fn level_label(seq: u64) -> String {
    format!("lv{seq}")
}

fn parse_level_label(label: &str) -> Option<u64> {
    let digits = label.strip_prefix("lv")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// One frozen level of a [`LiveIndex`], as a self-contained catalog entry:
/// a static [`HalfspaceRS2`] plus its build input (point coordinates and
/// caller tags — the part merges and rebuilds need back).
///
/// Answers report *tags*, unfiltered: tombstones live in the owning
/// index's delta tier, so a level loaded on its own reports whatever was
/// alive when the level was built.
pub struct LiveLevel {
    structure: HalfspaceRS2,
    points: Arc<Vec<(i64, i64, u64)>>,
}

impl LiveLevel {
    /// Wrap a built structure and its input (lengths must match).
    pub fn new(structure: HalfspaceRS2, points: Vec<(i64, i64, u64)>) -> LiveLevel {
        assert_eq!(points.len(), structure.len(), "level input must match its structure");
        LiveLevel { structure, points: Arc::new(points) }
    }

    fn view(level: &Level) -> LiveLevel {
        let dev = level.device().expect("live levels are per-level backed");
        LiveLevel { structure: level.structure().with_handle(dev), points: level.points_arc() }
    }

    /// Number of points in the level.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The build input: `(x, y, tag)` triples.
    pub fn points(&self) -> &[(i64, i64, u64)] {
        &self.points
    }

    /// Inverse of [`RangeIndex::save_meta`], reading pages through `h`.
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<LiveLevel, SnapshotError> {
        let structure = HalfspaceRS2::load(h, r)?;
        let n = r.seq()?;
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            points.push((r.i64()?, r.i64()?, r.u64()?));
        }
        if points.len() != structure.len() {
            return Err(r.error("level input length must match its structure"));
        }
        Ok(LiveLevel { structure, points: Arc::new(points) })
    }
}

impl RangeIndex for LiveLevel {
    fn name(&self) -> &'static str {
        "live-level"
    }

    fn device(&self) -> &DeviceHandle {
        self.structure.device()
    }

    fn supports(&self, q: &Query) -> bool {
        matches!(
            q,
            Query::Halfplane { .. }
                | Query::Count { .. }
                | Query::Sum { .. }
                | Query::TopK { .. }
                | Query::Disk { .. }
        )
    }

    fn cost_hint(&self) -> CostHint {
        self.structure.cost_hint()
    }

    fn cost_hint_for(&self, q: &Query) -> CostHint {
        let hint = self.structure.cost_hint();
        if q.is_aggregate() {
            hint.as_aggregate()
        } else {
            hint
        }
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Halfplane { m, c, inclusive } => Ok(self
                .structure
                .query_below(m, c, inclusive)
                .into_iter()
                .map(|id| self.points[id as usize].2)
                .collect()),
            // Aggregates depend only on coordinates, not on the local→tag
            // id mapping, so they delegate to the annotated structure.
            Query::Count { m, c, inclusive } => {
                Ok(vec![self.structure.aggregate_below(m, c, inclusive).0])
            }
            Query::Sum { m, c, inclusive } => {
                Ok(crate::query::encode_sum(self.structure.aggregate_below(m, c, inclusive).1))
            }
            // Ranked reporting ties by *external* tag, which the
            // structure's local ids cannot see — rank host-side instead.
            Query::TopK { m, c, k } => {
                let mut cand: Vec<(i128, u64)> = self
                    .points
                    .iter()
                    .map(|&(x, y, tag)| (y as i128 - m as i128 * x as i128, tag))
                    .filter(|&(key, _)| key <= c as i128)
                    .collect();
                cand.sort_unstable();
                cand.truncate(k);
                Ok(cand.into_iter().map(|(_, tag)| tag).collect())
            }
            Query::Disk { x, y, r2, inclusive } => Ok(self
                .points
                .iter()
                .filter(|&&(px, py, _)| lcrs_geom::lift::in_disk(x, y, r2, px, py, inclusive))
                .map(|&(_, _, tag)| tag)
                .collect()),
            _ => Err(Unsupported { index: RangeIndex::name(self), query: *q }),
        }
    }

    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(LiveLevel {
            structure: self.structure.fork_reader(),
            points: Arc::clone(&self.points),
        })
    }

    fn save_meta(&self, w: &mut MetaWriter) {
        self.structure.save(w);
        w.seq(self.points.len());
        for &(x, y, tag) in self.points.iter() {
            w.i64(x);
            w.i64(y);
            w.u64(tag);
        }
    }
}

/// A mutable 2D halfplane index served LSM-style — see the module docs.
///
/// All level IOs are accounted through one anchor scope
/// ([`RangeIndex::device`]), whatever device the pages actually live on,
/// so batch executors, the planner's calibration, and the bench gates
/// measure it exactly like a single-device structure.
pub struct LiveIndex {
    core: LeveledHalfspace2,
    geometry: DeviceConfig,
    dir: Option<PathBuf>,
    cat: Option<SnapshotCatalog>,
    /// Level sequences both snapshotted in the catalog and referenced by
    /// the last committed manifest.
    persisted: BTreeSet<u64>,
    pending: Option<MergeHandle>,
}

impl LiveIndex {
    /// An empty, in-memory live index. `geometry` sizes every level device
    /// and the per-scope cache budget; `buffer_cap` bounds the delta tier
    /// (default: one page worth of records, min 8).
    pub fn new(geometry: DeviceConfig, cfg: Hs2dConfig, buffer_cap: Option<usize>) -> LiveIndex {
        // The anchor device holds no pages — it exists to own the handle
        // scope every level is accounted through.
        let anchor = Device::new(geometry);
        anchor.freeze();
        let core =
            LeveledHalfspace2::new(&anchor, cfg, LevelBacking::PerLevel { geometry }, buffer_cap);
        LiveIndex {
            core,
            geometry,
            dir: None,
            cat: None,
            persisted: BTreeSet::new(),
            pending: None,
        }
    }

    /// The leveled core (level set, delta tier, merge epoch) — read-only;
    /// mutation goes through this index so persistence stays in step.
    pub fn core(&self) -> &LeveledHalfspace2 {
        &self.core
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    pub fn is_empty(&self) -> bool {
        self.core.is_empty()
    }

    /// How many times the level set has changed (merge commits plus global
    /// rebuilds) since this index was created or reopened.
    pub fn merge_epoch(&self) -> u64 {
        self.core.epoch()
    }

    /// `true` while a background merge is outstanding.
    pub fn merge_in_progress(&self) -> bool {
        self.pending.is_some()
    }

    /// Insert a point with a caller-chosen tag (must be unique among live
    /// points). May trigger a synchronous merge; when a directory is
    /// attached the new state is checkpointed before returning.
    pub fn insert(&mut self, x: i64, y: i64, tag: u64) -> Result<(), SnapshotError> {
        self.core.insert(x, y, tag);
        self.maybe_persist()
    }

    /// Delete by tag; `Ok(true)` if a live point was removed.
    pub fn remove(&mut self, tag: u64) -> Result<bool, SnapshotError> {
        let hit = self.core.remove(tag);
        self.maybe_persist()?;
        Ok(hit)
    }

    /// Report the tags of all live points strictly below `y = m·x + c`
    /// (`inclusive` adds on-line points).
    pub fn query_below(&self, m: i64, c: i64, inclusive: bool) -> Vec<u64> {
        self.core.query_below(m, c, inclusive)
    }

    /// Start a background merge if one is warranted and none is in flight;
    /// `true` if a worker was started. While the merge runs, inserts
    /// buffer past the cap, deletes tombstone, and queries (plus any
    /// reader forks) serve the pre-merge state.
    pub fn begin_merge(&mut self) -> bool {
        if self.pending.is_some() {
            return false;
        }
        self.pending = self.core.begin_background_merge();
        self.pending.is_some()
    }

    /// Join the outstanding background merge and install its result
    /// atomically; `Ok(false)` when none was in flight. With a directory
    /// attached, the post-merge state is checkpointed (the manifest swap
    /// is the commit point; a crash before it leaves the old state).
    pub fn commit_merge(&mut self) -> Result<bool, SnapshotError> {
        match self.pending.take() {
            Some(h) => {
                self.core.commit_background_merge(h);
                self.maybe_persist()?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Attach `dir` as this index's home and checkpoint everything into it
    /// now. An existing catalog there is kept (its non-`lv` entries are
    /// never touched); otherwise one is created. Not callable mid-merge.
    pub fn save_to_dir(&mut self, dir: impl AsRef<Path>) -> Result<(), SnapshotError> {
        assert!(self.pending.is_none(), "save_to_dir during an in-flight merge");
        let dir = dir.as_ref().to_path_buf();
        let cat = if dir.join("__catalog.meta").exists() {
            SnapshotCatalog::open(&dir)?
        } else {
            SnapshotCatalog::create(&dir)?
        };
        self.cat = Some(cat);
        self.dir = Some(dir);
        self.persisted.clear();
        self.persist()
    }

    /// Checkpoint now (no-op without an attached directory or while a
    /// merge is in flight — mutation and merge commit already checkpoint).
    /// Returns whether a checkpoint was written.
    pub fn checkpoint(&mut self) -> Result<bool, SnapshotError> {
        if self.cat.is_none() || self.pending.is_some() {
            return Ok(false);
        }
        self.persist()?;
        Ok(true)
    }

    /// Reopen a live index from the directory a previous
    /// [`Self::save_to_dir`] populated. Levels come back on fresh
    /// file-backed devices (`cache_pages` pages of cache each, cold
    /// stats); the reopened index serves and *ingests* — new levels are
    /// built in memory and snapshotted on commit like always.
    pub fn open_dir(dir: impl AsRef<Path>, cache_pages: usize) -> Result<LiveIndex, SnapshotError> {
        let dir = dir.as_ref().to_path_buf();
        let cat = SnapshotCatalog::open(&dir)?;
        let mut r = MetaReader::open(&dir.join(LIVE_MANIFEST))?;
        let magic = r.str()?;
        if magic != MAGIC {
            return Err(r.error(format!("not a live-index manifest (magic {magic:?})")));
        }
        let version = r.u64()?;
        if version != VERSION {
            return Err(r.error(format!("unsupported live-index manifest version {version}")));
        }
        let page_bytes = r.usize()?;
        let _saved_cache_pages = r.usize()?;
        let geometry = DeviceConfig::new(page_bytes, cache_pages);
        let cfg = Hs2dConfig {
            cluster_factor: r.usize()?,
            final_cutoff_factor: r.usize()?,
            beta_override: r.usize()?,
            seed: r.u64()?,
        };
        let buffer_cap = r.usize()?;
        let n_buf = r.seq()?;
        let mut buffer = Vec::with_capacity(n_buf);
        for _ in 0..n_buf {
            buffer.push((r.i64()?, r.i64()?, r.u64()?));
        }
        let n_dead = r.seq()?;
        let mut dead = std::collections::HashSet::with_capacity(n_dead);
        for _ in 0..n_dead {
            dead.insert(r.u64()?);
        }
        let live = r.usize()?;
        let total_slots = r.usize()?;
        let n_levels = r.seq()?;
        let mut seqs = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            seqs.push(r.u64()?);
        }
        r.finish()?;

        let anchor = Device::new(geometry);
        anchor.freeze();
        let mut levels = Vec::with_capacity(seqs.len());
        for &seq in &seqs {
            let label = level_label(seq);
            let entry = cat
                .entries()
                .iter()
                .find(|e| e.label == label)
                .ok_or_else(|| SnapshotError::NoSuchEntry { label: label.clone() })?;
            if entry.kind != "live-level" {
                return Err(SnapshotError::Meta {
                    offset: 0,
                    detail: format!(
                        "live manifest references {label:?}, which is a {:?} entry, not a live-level",
                        entry.kind
                    ),
                });
            }
            let device = Device::open_snapshot(cat.pages_path(&label), cache_pages)?;
            let mut lr = MetaReader::open(&cat.meta_path(&label))?;
            let kind = lr.str()?;
            if kind != "live-level" {
                return Err(lr.error(format!("{label:?} metadata declares kind {kind:?}")));
            }
            let scoped = (*device).scoped_to(&anchor);
            let structure = HalfspaceRS2::load(&scoped, &mut lr)?;
            let n = lr.seq()?;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                points.push((lr.i64()?, lr.i64()?, lr.u64()?));
            }
            lr.finish()?;
            if points.len() != structure.len() {
                return Err(SnapshotError::Meta {
                    offset: 0,
                    detail: format!("{label:?}: level input length must match its structure"),
                });
            }
            levels.push(Level::restore(Some(device), structure, points, seq));
        }
        let core = LeveledHalfspace2::restore(
            &anchor,
            cfg,
            LevelBacking::PerLevel { geometry },
            DeltaTier::restore(buffer, buffer_cap, dead),
            levels,
            live,
            total_slots,
        );
        Ok(LiveIndex {
            core,
            geometry,
            dir: Some(dir),
            cat: Some(cat),
            persisted: seqs.into_iter().collect(),
            pending: None,
        })
    }

    fn maybe_persist(&mut self) -> Result<(), SnapshotError> {
        // While a merge is in flight the drained state lives nowhere
        // persistable; the on-disk manifest stays at the pre-merge
        // checkpoint (correct, slightly stale) until commit.
        if self.cat.is_none() || self.pending.is_some() {
            return Ok(());
        }
        self.persist()
    }

    /// The checkpoint protocol of the module docs: snapshot new levels,
    /// atomically swap the manifest (commit), collect unreferenced levels.
    fn persist(&mut self) -> Result<(), SnapshotError> {
        let cat = self.cat.as_mut().expect("persist without an attached catalog");
        let dir = self.dir.as_ref().expect("persist without an attached directory");
        let current: BTreeSet<u64> = self.core.levels().iter().map(|l| l.seq()).collect();

        for level in self.core.levels() {
            if self.persisted.contains(&level.seq()) {
                continue;
            }
            let label = level_label(level.seq());
            if cat.entries().iter().any(|e| e.label == label) {
                // A crashed run left an entry under a sequence we have
                // since reused; replace it.
                cat.remove(&label)?;
            }
            cat.add(&label, &LiveLevel::view(level))?;
        }

        let mut w = MetaWriter::new();
        w.str(MAGIC);
        w.u64(VERSION);
        w.usize(self.geometry.page_bytes);
        w.usize(self.geometry.cache_pages);
        w.usize(self.core.config().cluster_factor);
        w.usize(self.core.config().final_cutoff_factor);
        w.usize(self.core.config().beta_override);
        w.u64(self.core.config().seed);
        w.usize(self.core.delta().cap());
        w.seq(self.core.delta().len());
        for &(x, y, tag) in self.core.delta().buffer() {
            w.i64(x);
            w.i64(y);
            w.u64(tag);
        }
        let mut dead: Vec<u64> = self.core.delta().dead().iter().copied().collect();
        dead.sort_unstable();
        w.seq(dead.len());
        for t in dead {
            w.u64(t);
        }
        w.usize(self.core.len());
        w.usize(self.core.total_slots());
        w.seq(current.len());
        for &seq in &current {
            w.u64(seq);
        }
        w.write_to_path(&dir.join(LIVE_MANIFEST))?;

        let stale: Vec<String> = cat
            .entries()
            .iter()
            .map(|e| e.label.clone())
            .filter(|l| parse_level_label(l).is_some_and(|seq| !current.contains(&seq)))
            .collect();
        for label in stale {
            cat.remove(&label)?;
        }
        self.persisted = current;
        Ok(())
    }
}

impl RangeIndex for LiveIndex {
    fn name(&self) -> &'static str {
        "live"
    }

    fn device(&self) -> &DeviceHandle {
        self.core.scope()
    }

    /// The live tier answers every 2D-derived class of DESIGN.md §15
    /// (aggregates, top-k, disks for arbitrary centers): the leveled core
    /// enumerates its live points host-side, trading the frozen tiers' IO
    /// wins for exactness over the mutable state.
    fn supports(&self, q: &Query) -> bool {
        matches!(
            q,
            Query::Halfplane { .. }
                | Query::Count { .. }
                | Query::Sum { .. }
                | Query::TopK { .. }
                | Query::Disk { .. }
        )
    }

    fn cost_hint(&self) -> CostHint {
        self.core.cost_hint()
    }

    fn try_execute(&self, q: &Query) -> Result<Vec<u64>, Unsupported> {
        match *q {
            Query::Halfplane { m, c, inclusive } => Ok(self.core.query_below(m, c, inclusive)),
            Query::Count { m, c, inclusive } => {
                Ok(vec![self.core.aggregate_below(m, c, inclusive).0])
            }
            Query::Sum { m, c, inclusive } => {
                Ok(crate::query::encode_sum(self.core.aggregate_below(m, c, inclusive).1))
            }
            Query::TopK { m, c, k } => Ok(self.core.top_k(m, c, k)),
            Query::Disk { x, y, r2, inclusive } => Ok(self.core.disk_report(x, y, r2, inclusive)),
            _ => Err(Unsupported { index: RangeIndex::name(self), query: *q }),
        }
    }

    /// A read-only clone on a fresh accounting scope over the same pages —
    /// valid mid-merge (it serves the same pre-merge state the writer
    /// does). Forks are in-memory: they never persist.
    fn fork_reader(&self) -> Box<dyn RangeIndex> {
        Box::new(LiveIndex {
            core: self.core.fork_reader(),
            geometry: self.geometry,
            dir: None,
            cat: None,
            persisted: BTreeSet::new(),
            pending: None,
        })
    }

    /// A live index spans one device per level and persists through
    /// [`Self::save_to_dir`] / [`Self::open_dir`]; it cannot be stored as
    /// a single catalog entry.
    fn save_meta(&self, _w: &mut MetaWriter) {
        panic!(
            "LiveIndex spans one device per level; persist it with \
             LiveIndex::save_to_dir and reopen it with LiveIndex::open_dir"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::TempDir;

    fn cfg() -> Hs2dConfig {
        Hs2dConfig { seed: 7, ..Hs2dConfig::default() }
    }

    fn pt(i: u64) -> (i64, i64) {
        let x = (i as i64 * 37) % 401 - 200;
        let y = (i as i64 * 91) % 607 - 300;
        (x, y)
    }

    #[test]
    fn persists_on_every_mutation_and_reopens_midstream() {
        let dir = TempDir::new("lcrs-live-roundtrip");
        let mut live = LiveIndex::new(DeviceConfig::new(256, 0), cfg(), Some(16));
        live.save_to_dir(dir.path()).unwrap();
        for i in 0..120u64 {
            live.insert(pt(i).0, pt(i).1, i).unwrap();
            if i % 7 == 3 {
                live.remove(i / 2).unwrap();
            }
        }
        // Reopen from whatever the last mutation committed — no explicit
        // checkpoint call in between.
        let back = LiveIndex::open_dir(dir.path(), 4).unwrap();
        assert_eq!(back.len(), live.len());
        for (m, c, inc) in [(3i64, 40i64, false), (-1, -25, true), (0, 0, false)] {
            let mut a = live.query_below(m, c, inc);
            let mut b = back.query_below(m, c, inc);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "m={m} c={c}");
        }
        // The reopened index keeps ingesting (new levels snapshot fine).
        let mut back = back;
        for i in 200..260u64 {
            back.insert(pt(i).0, pt(i).1, i).unwrap();
        }
        assert!(back.merge_epoch() > 0, "60 inserts at cap 16 must merge");
        let again = LiveIndex::open_dir(dir.path(), 4).unwrap();
        assert_eq!(again.len(), back.len());
    }

    #[test]
    fn background_merge_checkpoints_at_commit_only() {
        let dir = TempDir::new("lcrs-live-bg");
        let mut live = LiveIndex::new(DeviceConfig::new(256, 0), cfg(), Some(8));
        for i in 0..50u64 {
            live.insert(pt(i).0, pt(i).1, i).unwrap();
        }
        live.save_to_dir(dir.path()).unwrap();
        for i in 50..57u64 {
            live.insert(pt(i).0, pt(i).1, i).unwrap();
        }
        assert!(live.begin_merge());
        // Mutations mid-merge do not move the on-disk state...
        live.insert(pt(80).0, pt(80).1, 80).unwrap();
        live.remove(3).unwrap();
        let stale = LiveIndex::open_dir(dir.path(), 4).unwrap();
        assert_eq!(stale.len(), 57, "mid-merge reopen serves the pre-merge checkpoint");
        // ...and commit installs + persists everything at once.
        assert!(live.commit_merge().unwrap());
        let fresh = LiveIndex::open_dir(dir.path(), 4).unwrap();
        assert_eq!(fresh.len(), live.len());
        let mut a = live.query_below(2, 10, true);
        let mut b = fresh.query_below(2, 10, true);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn catalog_collects_only_its_own_level_namespace() {
        let dir = TempDir::new("lcrs-live-gc");
        // A foreign entry that merely *looks* unrelated to levels.
        let mut cat = SnapshotCatalog::create(dir.path()).unwrap();
        let dev = Device::new(DeviceConfig::new(256, 0));
        let coords: Vec<(i64, i64)> = (0..40u64).map(pt).collect();
        let hs = HalfspaceRS2::build(&dev, &coords, cfg());
        dev.freeze();
        cat.add("user-data", &hs).unwrap();
        drop(cat);

        let mut live = LiveIndex::new(DeviceConfig::new(256, 0), cfg(), Some(8));
        for i in 0..40u64 {
            live.insert(pt(i).0, pt(i).1, 1000 + i).unwrap();
        }
        live.save_to_dir(dir.path()).unwrap();
        // Force several merge generations so old lv entries go stale.
        for i in 40..120u64 {
            live.insert(pt(i).0, pt(i).1, 1000 + i).unwrap();
        }
        let cat = SnapshotCatalog::open(dir.path()).unwrap();
        assert!(cat.entries().iter().any(|e| e.label == "user-data"), "foreign entries survive");
        let lv_entries: BTreeSet<u64> =
            cat.entries().iter().filter_map(|e| parse_level_label(&e.label)).collect();
        let current: BTreeSet<u64> = live.core().levels().iter().map(|l| l.seq()).collect();
        assert_eq!(lv_entries, current, "catalog holds exactly the committed level set");
    }
}
