//! The cost-model query planner: an [`IndexSet`] facade over heterogeneous
//! [`RangeIndex`] structures (DESIGN.md §10).
//!
//! The source paper is a trade-off theorem: for each query/space budget
//! there is a *different* right structure. A production deployment
//! therefore holds several built structures at once — the optimal 2D
//! structure next to a partition tree next to a scan file — and the
//! planner's job is the paper's knob turned into code: route every query
//! of a mixed batch to the cheapest structure that can answer it.
//!
//! * **Capability** comes from [`RangeIndex::supports`]. Structures that
//!   support the same query class must be answer-equivalent (indexes over
//!   one logical dataset) — the cross-structure oracle suite is what makes
//!   that contract checkable.
//! * **Cost** comes from [`RangeIndex::cost_hint_for`] (the paper's
//!   asymptotic bound as a shape, flagged per query class — aggregate
//!   count/sum queries carry [`lcrs_halfspace::cost::CostHint::aggregate`])
//!   times a per-structure constant fitted by a measured probe pass
//!   ([`IndexSet::calibrate`], which fits the reporting and aggregate
//!   paths separately). Constants persist exactly through a
//!   [`SnapshotCatalog`] ([`IndexSet::save_calibration_to_catalog`]),
//!   so a reopened catalog plans identically without re-probing.
//! * **Execution** composes with the rest of the engine: each routed
//!   sub-batch runs through the [`crate::BatchExecutor`]'s locality
//!   schedule on a shared warm cache ([`IndexSet::execute_plan`]) or
//!   through the [`crate::ParallelExecutor`]'s sharded workers
//!   ([`IndexSet::execute_parallel_plan`]), and per-query
//!   [`IoDelta`] attribution still sums exactly to the aggregate.
//!
//! Alternative routing policies — always-scan ([`IndexSet::scan_plan`]),
//! predicted-argmax ([`IndexSet::worst_plan`]), force-one-structure
//! ([`IndexSet::force_plan`]) — are first-class [`Plan`] values executed by
//! the same machinery, which is what lets the differential gates say
//! "planned answers are bit-identical to the scan baseline, and planned
//! read IOs strictly beat both always-scan and worst routing".
//!
//! One level up, [`crate::ShardedIndexSet`] holds one calibrated
//! `IndexSet` per geometric shard and scatter-gathers mixed batches over
//! them (DESIGN.md §11).

use std::path::{Path, PathBuf};

use lcrs_extmem::{
    DeviceHandle, IoDelta, MetaReader, MetaWriter, PageId, ReopenBackend, SnapshotError,
};

use crate::batch::{BatchExecutor, QueryOutcome, QueryStatus};
use crate::catalog::SnapshotCatalog;
use crate::cost::{calibrate_index, predicted_reads, Calibration};
use crate::parallel::ParallelExecutor;
use crate::query::{Query, RangeIndex};

/// File name of the persisted calibration constants inside a catalog
/// directory (next to the `__catalog.meta` manifest; uses the
/// engine-internal [`crate::catalog::RESERVED_PREFIX`], so it can never
/// collide with entry files).
pub const CALIBRATION_FILE: &str = "__planner.calib";

/// Environment variable that disables planner prefetch hints process-wide
/// (any value). The programmatic switch is [`IndexSet::set_prefetch`];
/// both must leave answers and model IO counts untouched (pinned by the
/// oracle suite) — hints only move real-hardware wall time.
pub const NO_PREFETCH_ENV: &str = "LCRS_NO_PREFETCH";

/// A planner-issued readahead hint for one routed plan group
/// (DESIGN.md §13).
///
/// Before a group runs, the planner knows which structure will serve it
/// and what the calibrated cost model predicts the group will read
/// ([`Plan::predicted`]). Page identity inside a structure is opaque at
/// this layer, so the hint is a budget-sized sequential window over the
/// structure's device, anchored at the front: exact for scan-class
/// structures (their files are read front to back in locality order) and
/// a root/metadata cluster warm-up for tree-shaped ones. The window is
/// issued through [`DeviceHandle::prefetch`] — `madvise(MADV_WILLNEED)`
/// on an mmap store, a sequential warm read on a pread store, a no-op in
/// memory — and is *purely advisory*: no model IO is charged, no cache is
/// touched, answers are bit-identical with hints on or off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchHint {
    /// Slot of the structure the group is routed to.
    pub slot: usize,
    /// First page of the predicted window.
    pub first_page: u64,
    /// Window length in pages: the ceiling of the group's summed
    /// calibrated predicted reads, capped at the device's allocated pages.
    pub pages: u64,
}

impl PrefetchHint {
    /// The hint for a group with `predicted_reads` summed model reads on
    /// a device of `device_pages` allocated pages.
    pub fn new(slot: usize, predicted_reads: f64, device_pages: u64) -> PrefetchHint {
        let want = predicted_reads.max(0.0).ceil();
        let pages = if want >= device_pages as f64 { device_pages } else { want as u64 };
        PrefetchHint { slot, first_page: 0, pages }
    }

    /// Issue the advisory readahead on `device`. Never panics, never
    /// errors, never charges model IO.
    pub fn issue(&self, device: &DeviceHandle) {
        device.prefetch(PageId(self.first_page), self.pages);
    }
}

struct Entry {
    index: Box<dyn RangeIndex>,
    calib: Calibration,
}

/// A routing decision for one batch: which structure slot answers each
/// query (`None` = no structure in the set supports it), plus the
/// predicted cost the decision was based on.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Chosen slot per query, in submission order.
    pub assignments: Vec<Option<usize>>,
    /// Predicted (calibrated) reads of the chosen slot per query; `0.0`
    /// for unrouted queries.
    pub predicted: Vec<f64>,
}

impl Plan {
    /// How many queries this plan routes to `slot`.
    pub fn routed_to(&self, slot: usize) -> usize {
        self.assignments.iter().filter(|a| **a == Some(slot)).count()
    }

    /// Queries no structure in the set supports.
    pub fn unrouted(&self) -> usize {
        self.assignments.iter().filter(|a| a.is_none()).count()
    }
}

/// IO accounting of one structure's routed sub-batch.
#[derive(Debug, Clone, Copy)]
pub struct RoutedReport {
    /// Slot in the [`IndexSet`].
    pub slot: usize,
    /// [`RangeIndex::name`] of the structure.
    pub index: &'static str,
    /// Queries routed to this structure.
    pub queries: usize,
    /// Aggregate IOs of the sub-batch on this structure's handle scope.
    pub io: IoDelta,
}

/// Result of executing a [`Plan`].
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Per-query outcomes, in *submission* order (unrouted queries get a
    /// zero-IO [`QueryStatus::Unsupported`] outcome).
    pub outcomes: Vec<QueryOutcome>,
    /// Per-structure sub-batch totals, ascending by slot, non-empty
    /// sub-batches only.
    pub per_index: Vec<RoutedReport>,
    /// Aggregate IOs: the sum of the sub-batch totals (exact — sub-batches
    /// run back to back, each measured on its own structure's scope).
    pub total: IoDelta,
    /// The answers, in submission order (kept only when requested; an
    /// unrouted query keeps an empty answer slot).
    pub answers: Option<Vec<Vec<u64>>>,
}

impl PlanReport {
    /// Sum of the per-query deltas; equals [`Self::total`] exactly.
    pub fn attributed_total(&self) -> IoDelta {
        crate::batch::sum_outcome_io(&self.outcomes)
    }

    /// Total read IOs (the cost the planner minimizes).
    pub fn reads(&self) -> u64 {
        self.total.reads
    }

    /// Queries nothing in the set could answer.
    pub fn unsupported(&self) -> usize {
        crate::batch::count_unsupported(&self.outcomes)
    }
}

/// A heterogeneous set of built structures plus a calibrated cost model —
/// the front door for mixed-batch traffic. See the module docs.
#[derive(Default)]
pub struct IndexSet {
    entries: Vec<Entry>,
    /// Prefetch hints are on by default (`false` here); flipped by
    /// [`Self::set_prefetch`], overridden process-wide by
    /// [`NO_PREFETCH_ENV`].
    prefetch_disabled: bool,
}

impl IndexSet {
    /// An empty set.
    pub fn new() -> IndexSet {
        IndexSet::default()
    }

    /// Enable or disable planner prefetch hints for this set. A disabled
    /// set executes identically (same answers, same model IO counts) —
    /// only the advisory readahead before each routed group is skipped.
    pub fn set_prefetch(&mut self, enabled: bool) {
        self.prefetch_disabled = !enabled;
    }

    /// Whether executing a plan will issue [`PrefetchHint`]s: on unless
    /// disabled by [`Self::set_prefetch`] or [`NO_PREFETCH_ENV`].
    pub fn prefetch_enabled(&self) -> bool {
        !self.prefetch_disabled && std::env::var_os(NO_PREFETCH_ENV).is_none()
    }

    /// Add a built structure; returns its slot. Uncalibrated until
    /// [`Self::calibrate`] or [`Self::load_calibration`] runs (the raw
    /// paper shapes still order structures meanwhile).
    pub fn add(&mut self, index: Box<dyn RangeIndex>) -> usize {
        self.entries.push(Entry { index, calib: Calibration::default() });
        self.entries.len() - 1
    }

    /// Reopen every entry of a catalog into a set (in catalog order), and
    /// load persisted calibration constants when the catalog has them —
    /// the serve-side of build-once/serve-many planning.
    pub fn from_catalog(
        cat: &SnapshotCatalog,
        cache_pages: usize,
    ) -> Result<IndexSet, SnapshotError> {
        Self::from_catalog_as(cat, cache_pages, ReopenBackend::Pread)
    }

    /// [`Self::from_catalog`] with an explicit storage backend for every
    /// reopened device ([`ReopenBackend::Mmap`] for zero-copy serving).
    /// Plans, answers, and model IO counts are bit-identical across
    /// backends (pinned by the oracle suite).
    pub fn from_catalog_as(
        cat: &SnapshotCatalog,
        cache_pages: usize,
        backend: ReopenBackend,
    ) -> Result<IndexSet, SnapshotError> {
        let mut set = IndexSet::new();
        for index in cat.load_all_as(cache_pages, backend)? {
            set.add(index);
        }
        let calib = Self::calibration_path(cat);
        if calib.exists() {
            set.load_calibration(&calib)?;
        }
        Ok(set)
    }

    /// Where a catalog keeps its calibration constants.
    pub fn calibration_path(cat: &SnapshotCatalog) -> PathBuf {
        cat.dir().join(CALIBRATION_FILE)
    }

    /// Number of structures in the set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The structure at `slot`.
    pub fn structure(&self, slot: usize) -> &dyn RangeIndex {
        &*self.entries[slot].index
    }

    /// The fitted calibration at `slot`.
    pub fn calibration(&self, slot: usize) -> Calibration {
        self.entries[slot].calib
    }

    /// First slot whose structure is named `kind`, if any.
    pub fn slot_of(&self, kind: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.index.name() == kind)
    }

    /// Predicted (calibrated) reads of answering `q` at `slot`.
    pub fn cost(&self, slot: usize, q: &Query) -> f64 {
        let e = &self.entries[slot];
        predicted_reads(&e.index.cost_hint_for(q), &e.calib, q)
    }

    /// The measured probe pass: fit every structure's cost constant from
    /// the probes it supports, each executed against a cleared cache so
    /// the fit is cold, deterministic, and independent of probe order.
    /// Pass a deterministic sample of the expected traffic (a few dozen
    /// queries per class is plenty — the fit is a single constant).
    pub fn calibrate(&mut self, probes: &[Query]) {
        for e in &mut self.entries {
            e.calib = calibrate_index(&*e.index, probes);
        }
    }

    /// Persist the fitted constants (exact f64 bit patterns + entry names
    /// for validation) so a reopened set plans identically.
    pub fn save_calibration(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let mut w = MetaWriter::new();
        w.seq(self.entries.len());
        for e in &self.entries {
            w.str(e.index.name());
            e.calib.save(&mut w);
        }
        w.write_to_path(path.as_ref())
    }

    /// Inverse of [`Self::save_calibration`]; the file must describe
    /// exactly this set (same length, same structure names in order).
    pub fn load_calibration(&mut self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let mut r = MetaReader::open(path.as_ref())?;
        let n = r.seq()?;
        if n != self.entries.len() {
            return Err(r.error(format!(
                "calibration file describes {n} structures, the set has {}",
                self.entries.len()
            )));
        }
        let mut fitted = Vec::with_capacity(n);
        for e in &self.entries {
            let kind = r.str()?;
            if kind != e.index.name() {
                return Err(r.error(format!(
                    "calibration entry is for {kind:?}, the set has {:?} at that slot",
                    e.index.name()
                )));
            }
            fitted.push(Calibration::load(&mut r)?);
        }
        r.finish()?;
        for (e, calib) in self.entries.iter_mut().zip(fitted) {
            e.calib = calib;
        }
        Ok(())
    }

    /// [`Self::save_calibration`] into `cat`'s directory (the file
    /// [`Self::from_catalog`] auto-loads).
    pub fn save_calibration_to_catalog(&self, cat: &SnapshotCatalog) -> Result<(), SnapshotError> {
        self.save_calibration(Self::calibration_path(cat))
    }

    /// Build a plan by choosing per query among the capable slots with
    /// `pick` (candidates arrive ascending by slot, so `pick` controls
    /// tie-breaking by preferring earlier elements).
    fn plan_with(
        &self,
        queries: &[Query],
        mut pick: impl FnMut(&[(usize, f64)]) -> Option<(usize, f64)>,
    ) -> Plan {
        let mut assignments = Vec::with_capacity(queries.len());
        let mut predicted = Vec::with_capacity(queries.len());
        let mut candidates: Vec<(usize, f64)> = Vec::with_capacity(self.entries.len());
        for q in queries {
            candidates.clear();
            for (slot, e) in self.entries.iter().enumerate() {
                if e.index.supports(q) {
                    candidates
                        .push((slot, predicted_reads(&e.index.cost_hint_for(q), &e.calib, q)));
                }
            }
            match pick(&candidates) {
                Some((slot, cost)) => {
                    assignments.push(Some(slot));
                    predicted.push(cost);
                }
                None => {
                    assignments.push(None);
                    predicted.push(0.0);
                }
            }
        }
        Plan { assignments, predicted }
    }

    /// The planner's routing: cheapest capable slot per query (ties break
    /// to the earlier slot). Deterministic in (set, calibration, batch).
    pub fn plan(&self, queries: &[Query]) -> Plan {
        self.plan_with(queries, |c| {
            c.iter().copied().reduce(|best, cand| if cand.1 < best.1 { cand } else { best })
        })
    }

    /// Adversarial routing: the *most* expensive capable slot per query —
    /// the upper end of the trade-off the planner is measured against.
    pub fn worst_plan(&self, queries: &[Query]) -> Plan {
        self.plan_with(queries, |c| {
            c.iter().copied().reduce(|best, cand| if cand.1 > best.1 { cand } else { best })
        })
    }

    /// No-index routing: every query to a capable scan-class structure
    /// ([`lcrs_halfspace::cost::CostHint::is_scan`]) — the linear-scan
    /// reference of the differential gates. Queries with no capable scan
    /// in the set stay unrouted.
    pub fn scan_plan(&self, queries: &[Query]) -> Plan {
        self.plan_with(queries, |c| {
            c.iter()
                .copied()
                .filter(|&(slot, _)| self.entries[slot].index.cost_hint().is_scan())
                .reduce(|best, cand| if cand.1 < best.1 { cand } else { best })
        })
    }

    /// Single-structure routing: every query `slot` supports goes there,
    /// the rest stay unrouted — [`Self::execute_plan`] on the result must
    /// reproduce a direct [`BatchExecutor`] run on that structure
    /// bit-identically (pinned by the planner suite).
    pub fn force_plan(&self, slot: usize, queries: &[Query]) -> Plan {
        assert!(slot < self.entries.len(), "force_plan: no slot {slot}");
        self.plan_with(queries, |c| c.iter().copied().find(|&(s, _)| s == slot))
    }

    /// Plan and execute in one call (the common path).
    pub fn execute(&self, queries: &[Query], keep_answers: bool) -> PlanReport {
        self.execute_plan(queries, &self.plan(queries), keep_answers)
    }

    /// Execute `plan`: group queries per routed structure, run each group
    /// as one locality-ordered [`BatchExecutor`] sub-batch on a shared
    /// warm cache (cleared per group, so reports are deterministic and
    /// structure order does not leak state), and merge outcomes back into
    /// submission order. Per-query [`IoDelta`]s sum exactly to the
    /// aggregate (asserted at runtime, like the parallel executor).
    pub fn execute_plan(&self, queries: &[Query], plan: &Plan, keep_answers: bool) -> PlanReport {
        self.run(queries, plan, keep_answers, |index, sub, keep| {
            let report = BatchExecutor::new(index).keep_answers(keep).run_batched(sub);
            (report.outcomes, report.total, report.answers)
        })
    }

    /// [`Self::execute_plan`] with each sub-batch sharded across
    /// `workers` threads through the [`ParallelExecutor`] (per-worker
    /// handle forks, merged per-query attribution) — the full
    /// plan → locality order → parallel shards composition.
    pub fn execute_parallel_plan(
        &self,
        queries: &[Query],
        plan: &Plan,
        workers: usize,
        keep_answers: bool,
    ) -> PlanReport {
        self.run(queries, plan, keep_answers, |index, sub, keep| {
            let report = ParallelExecutor::new(index, workers).keep_answers(keep).run(sub);
            (report.outcomes, report.total, report.answers)
        })
    }

    fn run(
        &self,
        queries: &[Query],
        plan: &Plan,
        keep_answers: bool,
        exec: impl Fn(
            &dyn RangeIndex,
            &[Query],
            bool,
        ) -> (Vec<QueryOutcome>, IoDelta, Option<Vec<Vec<u64>>>),
    ) -> PlanReport {
        assert_eq!(plan.assignments.len(), queries.len(), "plan must cover the batch");
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.entries.len()];
        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; queries.len()];
        for (qi, a) in plan.assignments.iter().enumerate() {
            match *a {
                Some(slot) => {
                    assert!(
                        self.entries[slot].index.supports(&queries[qi]),
                        "plan routed query {qi} to {}, which does not support it",
                        self.entries[slot].index.name()
                    );
                    groups[slot].push(qi);
                }
                None => {
                    outcomes[qi] = Some(QueryOutcome {
                        query: qi,
                        status: QueryStatus::Unsupported,
                        reported: 0,
                        io: IoDelta::default(),
                    });
                }
            }
        }
        let mut answers: Vec<Vec<u64>> =
            if keep_answers { vec![Vec::new(); queries.len()] } else { Vec::new() };
        let mut per_index = Vec::new();
        let mut total = IoDelta::default();
        let prefetch = self.prefetch_enabled();
        for (slot, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let sub: Vec<Query> = group.iter().map(|&qi| queries[qi]).collect();
            let index = &*self.entries[slot].index;
            if prefetch {
                // Both execution paths (sequential BatchExecutor,
                // sharded ParallelExecutor) and the per-shard sets of
                // ShardedIndexSet funnel through here, so one hint per
                // routed group covers all of them.
                let predicted: f64 = group.iter().map(|&qi| plan.predicted[qi]).sum();
                PrefetchHint::new(slot, predicted, index.device().pages_allocated())
                    .issue(index.device());
            }
            let (sub_outcomes, sub_total, sub_answers) = exec(index, &sub, keep_answers);
            let attributed: IoDelta = crate::batch::sum_outcome_io(&sub_outcomes);
            assert_eq!(
                attributed,
                sub_total,
                "{}: sub-batch per-query deltas must sum to its total",
                index.name()
            );
            for o in sub_outcomes {
                outcomes[group[o.query]] = Some(QueryOutcome { query: group[o.query], ..o });
            }
            if let Some(sub_answers) = sub_answers {
                for (si, ids) in sub_answers.into_iter().enumerate() {
                    answers[group[si]] = ids;
                }
            }
            per_index.push(RoutedReport {
                slot,
                index: index.name(),
                queries: group.len(),
                io: sub_total,
            });
            total += sub_total;
        }
        PlanReport {
            outcomes: outcomes.into_iter().map(|o| o.expect("every query planned")).collect(),
            per_index,
            total,
            answers: keep_answers.then_some(answers),
        }
    }
}
