//! The batch executor: locality ordering + shared warm cache + per-query
//! IO attribution.

use lcrs_extmem::IoDelta;

use crate::query::{Query, RangeIndex};

/// How a [`BatchReport`] was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One-at-a-time: the cache is dropped before every query, so each one
    /// pays its full cold cost — the per-query model of the paper.
    Cold,
    /// The whole batch shares one LRU cache (dropped once up front),
    /// after reordering the queries for page locality.
    Batched,
}

/// Whether a query inside a batch produced an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// The index answered; `reported` counts its ids.
    Ok,
    /// The index does not support this query class
    /// ([`RangeIndex::try_execute`] declined). The batch keeps going; the
    /// outcome reports zero ids and the (cache-probe-free) IO delta.
    Unsupported,
}

/// Outcome of one query within a batch, in submission order.
#[derive(Debug, Clone, Copy)]
pub struct QueryOutcome {
    /// Index of the query in the submitted batch.
    pub query: usize,
    /// Whether the index answered this query at all.
    pub status: QueryStatus,
    /// Number of ids reported.
    pub reported: usize,
    /// IOs attributed to exactly this query (stats-snapshot bracketing).
    pub io: IoDelta,
}

/// Result of executing a batch of queries.
#[derive(Debug, Clone)]
pub struct BatchReport {
    pub mode: ExecMode,
    /// Per-query outcomes, in *submission* order regardless of the
    /// execution order the executor chose.
    pub outcomes: Vec<QueryOutcome>,
    /// Aggregate IOs of the whole batch, measured independently of the
    /// per-query deltas (one snapshot pair around the entire run).
    pub total: IoDelta,
    /// The answers, in submission order (kept only when requested; an
    /// unsupported query keeps an empty answer slot).
    pub answers: Option<Vec<Vec<u64>>>,
}

/// Sum of per-query deltas — shared by both executors' reports.
pub(crate) fn sum_outcome_io(outcomes: &[QueryOutcome]) -> IoDelta {
    outcomes.iter().map(|o| o.io).sum()
}

/// Count of [`QueryStatus::Unsupported`] outcomes — shared by both
/// executors' reports.
pub(crate) fn count_unsupported(outcomes: &[QueryOutcome]) -> usize {
    outcomes.iter().filter(|o| o.status == QueryStatus::Unsupported).count()
}

impl BatchReport {
    /// Sum of the per-query deltas. The executor runs queries back to back
    /// with no other device activity, so this equals [`Self::total`]
    /// exactly — asserted in the test suites.
    pub fn attributed_total(&self) -> IoDelta {
        sum_outcome_io(&self.outcomes)
    }

    /// Total read IOs (the cost the batch engine optimizes).
    pub fn reads(&self) -> u64 {
        self.total.reads
    }

    /// Queries the index declined ([`QueryStatus::Unsupported`]).
    pub fn unsupported(&self) -> usize {
        count_unsupported(&self.outcomes)
    }
}

/// The execution order for `queries`: indices sorted by locality key, ties
/// broken by submission order (a stable schedule). Shared by the batched
/// and the parallel executor, so shard contents never depend on which
/// front door ran the batch.
pub(crate) fn locality_schedule(queries: &[Query]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..queries.len()).collect();
    order.sort_by_key(|&i| (queries[i].locality_key(), i));
    order
}

/// Executes batches of queries against one [`RangeIndex`].
///
/// The executor never changes answers — only the order queries run in and
/// the cache state they observe. For savings, build the index on a device
/// with `cache_pages > 0`; with a cache-less device, batched and cold
/// costs coincide.
pub struct BatchExecutor<'a> {
    index: &'a dyn RangeIndex,
    keep_answers: bool,
}

impl<'a> BatchExecutor<'a> {
    pub fn new(index: &'a dyn RangeIndex) -> Self {
        BatchExecutor { index, keep_answers: false }
    }

    /// Also collect every query's answer into the report (off by default:
    /// a 1k-query batch over a hot region can report millions of ids).
    pub fn keep_answers(mut self, keep: bool) -> Self {
        self.keep_answers = keep;
        self
    }

    /// The execution order for `queries`: indices sorted by locality key,
    /// ties broken by submission order (a stable schedule).
    pub fn schedule(&self, queries: &[Query]) -> Vec<usize> {
        locality_schedule(queries)
    }

    /// Run the batch with a shared warm cache, in locality order.
    pub fn run_batched(&self, queries: &[Query]) -> BatchReport {
        self.run(queries, ExecMode::Batched)
    }

    /// Run the batch one-at-a-time cold (cache dropped before each query),
    /// in submission order — the baseline batching is measured against.
    pub fn run_cold(&self, queries: &[Query]) -> BatchReport {
        self.run(queries, ExecMode::Cold)
    }

    fn run(&self, queries: &[Query], mode: ExecMode) -> BatchReport {
        let order: Vec<usize> = match mode {
            ExecMode::Batched => self.schedule(queries),
            ExecMode::Cold => (0..queries.len()).collect(),
        };
        let dev = self.index.device();
        // Both modes start cold; Batched then lets the cache warm up
        // across the whole batch, Cold drops it again before every query.
        dev.clear_cache();
        let batch_before = dev.stats();
        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; queries.len()];
        let mut answers: Vec<Vec<u64>> =
            if self.keep_answers { vec![Vec::new(); queries.len()] } else { Vec::new() };
        for &qi in &order {
            if mode == ExecMode::Cold {
                dev.clear_cache();
            }
            let (result, io) = self.index.try_execute_measured(&queries[qi]);
            let outcome = match result {
                Ok(ids) => {
                    let o = QueryOutcome {
                        query: qi,
                        status: QueryStatus::Ok,
                        reported: ids.len(),
                        io,
                    };
                    if self.keep_answers {
                        answers[qi] = ids;
                    }
                    o
                }
                Err(_) => {
                    QueryOutcome { query: qi, status: QueryStatus::Unsupported, reported: 0, io }
                }
            };
            outcomes[qi] = Some(outcome);
        }
        let total = dev.stats().since(batch_before);
        BatchReport {
            mode,
            outcomes: outcomes.into_iter().map(|o| o.expect("every query ran")).collect(),
            total,
            answers: self.keep_answers.then_some(answers),
        }
    }
}
