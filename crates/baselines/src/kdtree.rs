//! An external kd-tree (k-d-B-tree style, bulk-loaded).
//!
//! The classic spatial index adapted to halfplane queries: internal nodes
//! split by coordinate medians (cycling axes), leaves hold one block of
//! points, and a query recurses into every node whose bounding box the
//! query line crosses. Average-case good; on the paper's diagonal input
//! every leaf box straddles a near-diagonal query line, so queries take
//! Ω(n) IOs no matter how small the output — the motivation for Section 3.

use lcrs_extmem::{DeviceHandle, MetaReader, MetaWriter, Record, SnapshotError, VecFile};

use crate::BaselineStats;

#[derive(Debug, Clone, Copy, Default)]
struct KdNode {
    lo: [i64; 2],
    hi: [i64; 2],
    /// Children (left, right); both 0 ⇒ leaf (node 0 is the root, never a
    /// child).
    left: u32,
    right: u32,
    pts_off: u64,
    pts_len: u64,
    /// Subtree aggregate annotations (DESIGN.md §15): point count and
    /// weight sum (weight of `(x, y)` is `x + y`), letting fully-covered
    /// nodes answer count/sum queries without touching their leaves.
    count: u64,
    wsum: i64,
}

impl Record for KdNode {
    const SIZE: usize = 32 + 8 + 16 + 16;
    fn store(&self, buf: &mut [u8]) {
        self.lo.store(buf);
        self.hi.store(&mut buf[16..]);
        self.left.store(&mut buf[32..]);
        self.right.store(&mut buf[36..]);
        self.pts_off.store(&mut buf[40..]);
        self.pts_len.store(&mut buf[48..]);
        self.count.store(&mut buf[56..]);
        self.wsum.store(&mut buf[64..]);
    }
    fn load(buf: &[u8]) -> Self {
        KdNode {
            lo: <[i64; 2]>::load(buf),
            hi: <[i64; 2]>::load(&buf[16..]),
            left: u32::load(&buf[32..]),
            right: u32::load(&buf[36..]),
            pts_off: u64::load(&buf[40..]),
            pts_len: u64::load(&buf[48..]),
            count: u64::load(&buf[56..]),
            wsum: i64::load(&buf[64..]),
        }
    }
}

type PtRec = ([i64; 2], u32);

/// Bulk-loaded external kd-tree over 2D points.
pub struct ExternalKdTree {
    dev: DeviceHandle,
    nodes: VecFile<KdNode>,
    points: VecFile<PtRec>,
    n: usize,
    pages_at_build_end: u64,
}

impl ExternalKdTree {
    pub fn build(dev: &DeviceHandle, points: &[(i64, i64)]) -> ExternalKdTree {
        let leaf_cap = dev.records_per_page(<PtRec as Record>::SIZE).max(1);
        let mut items: Vec<PtRec> =
            points.iter().enumerate().map(|(i, &(x, y))| ([x, y], i as u32)).collect();
        let mut nodes: Vec<KdNode> = Vec::new();
        let mut dfs: Vec<PtRec> = Vec::with_capacity(items.len());

        fn bbox(items: &[PtRec]) -> ([i64; 2], [i64; 2]) {
            let mut lo = items[0].0;
            let mut hi = items[0].0;
            for (c, _) in &items[1..] {
                for i in 0..2 {
                    lo[i] = lo[i].min(c[i]);
                    hi[i] = hi[i].max(c[i]);
                }
            }
            (lo, hi)
        }

        fn rec(
            items: &mut [PtRec],
            ni: usize,
            axis: usize,
            nodes: &mut Vec<KdNode>,
            dfs: &mut Vec<PtRec>,
            leaf_cap: usize,
        ) {
            let (lo, hi) = bbox(items);
            let wsum: i64 = items
                .iter()
                .map(|([x, y], _)| x.checked_add(*y).expect("point weight fits i64"))
                .fold(0i64, |a, w| a.checked_add(w).expect("subtree weight sum fits i64"));
            if items.len() <= leaf_cap {
                nodes[ni] = KdNode {
                    lo,
                    hi,
                    left: 0,
                    right: 0,
                    pts_off: dfs.len() as u64,
                    pts_len: items.len() as u64,
                    count: items.len() as u64,
                    wsum,
                };
                dfs.extend_from_slice(items);
                return;
            }
            let mid = items.len() / 2;
            items.select_nth_unstable_by_key(mid, |(c, id)| (c[axis], *id));
            let li = nodes.len();
            nodes.push(Default::default());
            nodes.push(Default::default());
            let (l, r) = items.split_at_mut(mid);
            rec(l, li, (axis + 1) % 2, nodes, dfs, leaf_cap);
            rec(r, li + 1, (axis + 1) % 2, nodes, dfs, leaf_cap);
            nodes[ni] = KdNode {
                lo,
                hi,
                left: li as u32,
                right: li as u32 + 1,
                pts_off: 0,
                pts_len: 0,
                count: items.len() as u64,
                wsum,
            };
        }

        if !items.is_empty() {
            nodes.push(Default::default());
            rec(&mut items, 0, 0, &mut nodes, &mut dfs, leaf_cap);
        }
        ExternalKdTree {
            dev: dev.clone(),
            nodes: VecFile::from_slice(dev, &nodes),
            points: VecFile::from_slice(dev, &dfs),
            n: points.len(),
            pages_at_build_end: dev.pages_allocated(),
        }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn pages(&self) -> u64 {
        self.pages_at_build_end
    }

    /// The device this structure lives on (for scoped IO measurement).
    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// The same on-disk structure viewed through `h` (own cache + stats).
    pub fn with_handle(&self, h: &DeviceHandle) -> ExternalKdTree {
        ExternalKdTree {
            dev: h.clone(),
            nodes: self.nodes.with_handle(h),
            points: self.points.with_handle(h),
            n: self.n,
            pages_at_build_end: self.pages_at_build_end,
        }
    }

    /// A reader clone on a fresh handle scope over the same pages — each
    /// parallel worker calls this to get its own LRU and IO attribution.
    pub fn fork_reader(&self) -> ExternalKdTree {
        self.with_handle(&self.dev.fork())
    }

    /// Serialize the tree's metadata (node and point files); page data is
    /// captured by [`lcrs_extmem::Device::freeze_to_path`].
    pub fn save(&self, w: &mut MetaWriter) {
        self.nodes.save(w);
        self.points.save(w);
        w.usize(self.n);
        w.u64(self.pages_at_build_end);
    }

    /// Rebuild from metadata written by [`Self::save`].
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<ExternalKdTree, SnapshotError> {
        Ok(ExternalKdTree {
            dev: h.clone(),
            nodes: VecFile::load(h, r)?,
            points: VecFile::load(h, r)?,
            n: r.usize()?,
            pages_at_build_end: r.u64()?,
        })
    }

    /// Report points strictly below `y = m·x + c` (`inclusive` adds
    /// on-line points).
    pub fn query_below(&self, m: i64, c: i64, inclusive: bool) -> (Vec<u32>, BaselineStats) {
        let before = self.dev.stats();
        let mut stats = BaselineStats::default();
        let mut out = Vec::new();
        if self.n > 0 {
            self.visit(0, m, c, inclusive, &mut stats, &mut out);
        }
        stats.reported = out.len();
        stats.ios = self.dev.stats().since(before).total();
        (out, stats)
    }

    /// Count and weight-sum (weight of `(x, y)` is `x + y`) of points
    /// below `y = m·x + c`, answered from the subtree annotations: a node
    /// whose box lies entirely below the line contributes its persisted
    /// `(count, wsum)` without descending — the aggregate path reads
    /// strictly fewer pages than enumerate-then-count whenever the query
    /// covers whole subtrees (asserted by the `exp_lift` experiment).
    pub fn aggregate_below(&self, m: i64, c: i64, inclusive: bool) -> ((u64, i128), BaselineStats) {
        let before = self.dev.stats();
        let mut stats = BaselineStats::default();
        let mut acc = (0u64, 0i128);
        if self.n > 0 {
            self.visit_agg(0, m, c, inclusive, &mut stats, &mut acc);
        }
        stats.reported = acc.0 as usize;
        stats.ios = self.dev.stats().since(before).total();
        (acc, stats)
    }

    fn visit_agg(
        &self,
        ni: usize,
        m: i64,
        c: i64,
        inclusive: bool,
        stats: &mut BaselineStats,
        acc: &mut (u64, i128),
    ) {
        let node = self.nodes.get(ni);
        stats.nodes_visited += 1;
        let (lo, hi) = Self::slack_range(&node, m, c);
        let all_below = if inclusive { hi <= 0 } else { hi < 0 };
        let none_below = if inclusive { lo > 0 } else { lo >= 0 };
        if none_below {
            return;
        }
        if all_below {
            acc.0 += node.count;
            acc.1 += i128::from(node.wsum);
            return;
        }
        if node.left == 0 && node.right == 0 {
            let mut buf: Vec<PtRec> = Vec::with_capacity(node.pts_len as usize);
            self.points.read_range(
                node.pts_off as usize..(node.pts_off + node.pts_len) as usize,
                &mut buf,
            );
            for ([x, y], _) in buf {
                let s = y as i128 - m as i128 * x as i128 - c as i128;
                let hit = if inclusive { s <= 0 } else { s < 0 };
                if hit {
                    acc.0 += 1;
                    acc.1 += x as i128 + y as i128;
                }
            }
            return;
        }
        self.visit_agg(node.left as usize, m, c, inclusive, stats, acc);
        self.visit_agg(node.right as usize, m, c, inclusive, stats, acc);
    }

    /// The `k` points of lowest key `y − m·x` among those with
    /// `y − m·x ≤ c` (inclusive candidates), ordered by `(key, id)`.
    pub fn top_k(&self, m: i64, c: i64, k: usize) -> (Vec<u32>, BaselineStats) {
        let before = self.dev.stats();
        let mut stats = BaselineStats::default();
        let mut cand: Vec<(i128, u32)> = Vec::new();
        if self.n > 0 {
            self.visit_topk(0, m, c, &mut stats, &mut cand);
        }
        cand.sort_unstable();
        cand.truncate(k);
        let out: Vec<u32> = cand.into_iter().map(|(_, id)| id).collect();
        stats.reported = out.len();
        stats.ios = self.dev.stats().since(before).total();
        (out, stats)
    }

    fn visit_topk(
        &self,
        ni: usize,
        m: i64,
        c: i64,
        stats: &mut BaselineStats,
        cand: &mut Vec<(i128, u32)>,
    ) {
        let node = self.nodes.get(ni);
        stats.nodes_visited += 1;
        let (lo, _) = Self::slack_range(&node, m, c);
        if lo > 0 {
            return; // every key in the box exceeds c
        }
        if node.left == 0 && node.right == 0 {
            let mut buf: Vec<PtRec> = Vec::with_capacity(node.pts_len as usize);
            self.points.read_range(
                node.pts_off as usize..(node.pts_off + node.pts_len) as usize,
                &mut buf,
            );
            for ([x, y], id) in buf {
                let key = y as i128 - m as i128 * x as i128;
                if key <= c as i128 {
                    cand.push((key, id));
                }
            }
            return;
        }
        self.visit_topk(node.left as usize, m, c, stats, cand);
        self.visit_topk(node.right as usize, m, c, stats, cand);
    }

    /// (min, max) of y - m·x - c over the box corners.
    fn slack_range(node: &KdNode, m: i64, c: i64) -> (i128, i128) {
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for &x in &[node.lo[0], node.hi[0]] {
            for &y in &[node.lo[1], node.hi[1]] {
                let s = y as i128 - m as i128 * x as i128 - c as i128;
                lo = lo.min(s);
                hi = hi.max(s);
            }
        }
        (lo, hi)
    }

    fn visit(
        &self,
        ni: usize,
        m: i64,
        c: i64,
        inclusive: bool,
        stats: &mut BaselineStats,
        out: &mut Vec<u32>,
    ) {
        let node = self.nodes.get(ni);
        stats.nodes_visited += 1;
        let (lo, hi) = Self::slack_range(&node, m, c);
        // Point below line ⟺ slack y - mx - c < 0 (<= when inclusive).
        let all_below = if inclusive { hi <= 0 } else { hi < 0 };
        let none_below = if inclusive { lo > 0 } else { lo >= 0 };
        if none_below {
            return;
        }
        if node.left == 0 && node.right == 0 {
            // Leaf: scan the block.
            let mut buf: Vec<PtRec> = Vec::with_capacity(node.pts_len as usize);
            self.points.read_range(
                node.pts_off as usize..(node.pts_off + node.pts_len) as usize,
                &mut buf,
            );
            for ([x, y], id) in buf {
                let s = y as i128 - m as i128 * x as i128 - c as i128;
                let hit = if inclusive { s <= 0 } else { s < 0 };
                if hit {
                    out.push(id);
                }
            }
            return;
        }
        let _ = all_below; // kd-trees lack DFS-contiguous subtree ranges...
                           // (this implementation has them, but the classic index walks the
                           // subtree; we keep the classic behavior for a faithful baseline)
        self.visit(node.left as usize, m, c, inclusive, stats, out);
        self.visit(node.right as usize, m, c, inclusive, stats, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::{Device, DeviceConfig};

    fn pseudo(n: usize, seed: u64) -> Vec<(i64, i64)> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i64).rem_euclid(200_001) - 100_000
        };
        (0..n).map(|_| (next(), next())).collect()
    }

    #[test]
    fn matches_brute_force() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts = pseudo(800, 3);
        let t = ExternalKdTree::build(&dev, &pts);
        for (m, c) in [(0, 0), (3, 5000), (-7, -20_000), (100, 0)] {
            for inclusive in [false, true] {
                let (mut got, _) = t.query_below(m, c, inclusive);
                got.sort_unstable();
                let want: Vec<u32> = pts
                    .iter()
                    .enumerate()
                    .filter(|(_, &(x, y))| {
                        let rhs = m as i128 * x as i128 + c as i128;
                        if inclusive {
                            y as i128 <= rhs
                        } else {
                            (y as i128) < rhs
                        }
                    })
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "m={m} c={c}");
            }
        }
    }

    #[test]
    fn aggregates_match_enumeration_and_read_less() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts = pseudo(1200, 7);
        let t = ExternalKdTree::build(&dev, &pts);
        for (m, c) in [(0, 0), (3, 5000), (-7, -20_000), (0, 10_000_000), (0, -10_000_000)] {
            for inclusive in [false, true] {
                let ((count, wsum), _) = t.aggregate_below(m, c, inclusive);
                let mut want = (0u64, 0i128);
                for &(x, y) in &pts {
                    let rhs = m as i128 * x as i128 + c as i128;
                    let hit = if inclusive { y as i128 <= rhs } else { (y as i128) < rhs };
                    if hit {
                        want.0 += 1;
                        want.1 += x as i128 + y as i128;
                    }
                }
                assert_eq!((count, wsum), want, "m={m} c={c}");
            }
        }
        // A query covering everything answers from the root annotation:
        // one node visit, no leaf reads — the annotated-aggregate win.
        let (_, st) = t.aggregate_below(0, 10_000_000, true);
        assert_eq!(st.nodes_visited, 1);
        let (_, enumerate) = t.query_below(0, 10_000_000, true);
        assert!(st.ios < enumerate.ios, "aggregate {} !< enumerate {}", st.ios, enumerate.ios);
    }

    #[test]
    fn top_k_matches_brute_force() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts = pseudo(900, 11);
        let t = ExternalKdTree::build(&dev, &pts);
        for (m, c, k) in [(0, 0, 5), (3, 5000, 1), (-7, 50_000, 12), (2, -200_000, 4)] {
            let (got, _) = t.top_k(m, c, k);
            let mut cand: Vec<(i128, u32)> = pts
                .iter()
                .enumerate()
                .filter(|(_, &(x, y))| y as i128 - m as i128 * x as i128 <= c as i128)
                .map(|(i, &(x, y))| (y as i128 - m as i128 * x as i128, i as u32))
                .collect();
            cand.sort_unstable();
            cand.truncate(k);
            let want: Vec<u32> = cand.into_iter().map(|(_, id)| id).collect();
            assert_eq!(got, want, "m={m} c={c} k={k}");
        }
    }

    #[test]
    fn diagonal_degrades_to_linear_ios() {
        // The Section 1.2 lower-bound instance: every leaf box straddles a
        // near-diagonal line, so even an empty-output query visits Ω(n)
        // nodes.
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts: Vec<(i64, i64)> = (0..4096).map(|i| (i, i)).collect();
        let t = ExternalKdTree::build(&dev, &pts);
        let (got, st) = t.query_below(1, 0, false); // y < x: empty
        assert!(got.is_empty());
        let n_leaves = 4096 / dev.records_per_page(20);
        assert!(
            st.nodes_visited >= n_leaves,
            "expected Ω(n) visits, got {} (leaves {n_leaves})",
            st.nodes_visited
        );
    }

    #[test]
    fn empty_and_single() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let t = ExternalKdTree::build(&dev, &[]);
        assert!(t.query_below(1, 1, true).0.is_empty());
        let t1 = ExternalKdTree::build(&dev, &[(5, 5)]);
        assert_eq!(t1.query_below(0, 10, false).0, vec![0]);
    }
}
