//! An STR (sort-tile-recursive) bulk-loaded R-tree.
//!
//! The standard spatial-database index [Guttman'85; STR packing]: leaves
//! hold one block of points, internal nodes hold up to B child rectangles.
//! Halfplane queries classify each MBR against the query line; crossed
//! rectangles are recursed into. Like the kd-tree, it degrades to Ω(n) IOs
//! on the diagonal adversarial input of Section 1.2.

use lcrs_extmem::{DeviceHandle, MetaReader, MetaWriter, Record, SnapshotError, VecFile};

use crate::BaselineStats;

#[derive(Debug, Clone, Copy, Default)]
struct RNode {
    lo: [i64; 2],
    hi: [i64; 2],
    /// First child index (internal) or point offset (leaf).
    start: u64,
    /// Child count (internal) or point count (leaf).
    count: u32,
    /// 1 = leaf.
    leaf: u8,
}

impl Record for RNode {
    const SIZE: usize = 32 + 8 + 4 + 1;
    fn store(&self, buf: &mut [u8]) {
        self.lo.store(buf);
        self.hi.store(&mut buf[16..]);
        self.start.store(&mut buf[32..]);
        self.count.store(&mut buf[40..]);
        self.leaf.store(&mut buf[44..]);
    }
    fn load(buf: &[u8]) -> Self {
        RNode {
            lo: <[i64; 2]>::load(buf),
            hi: <[i64; 2]>::load(&buf[16..]),
            start: u64::load(&buf[32..]),
            count: u32::load(&buf[40..]),
            leaf: u8::load(&buf[44..]),
        }
    }
}

type PtRec = ([i64; 2], u32);

/// STR bulk-loaded R-tree over 2D points.
pub struct StrRTree {
    dev: DeviceHandle,
    nodes: VecFile<RNode>,
    points: VecFile<PtRec>,
    root: usize,
    n: usize,
    pages_at_build_end: u64,
}

impl StrRTree {
    pub fn build(dev: &DeviceHandle, points: &[(i64, i64)]) -> StrRTree {
        let leaf_cap = dev.records_per_page(<PtRec as Record>::SIZE).max(2);
        let fanout = dev.records_per_page(<RNode as Record>::SIZE).max(2);
        let mut items: Vec<PtRec> =
            points.iter().enumerate().map(|(i, &(x, y))| ([x, y], i as u32)).collect();

        // STR tiling: sort by x, slice into vertical strips of
        // √(n/leaf_cap) leaves, sort each strip by y, cut into leaves.
        let mut nodes: Vec<RNode> = Vec::new();
        let mut dfs: Vec<PtRec> = Vec::new();
        let mut level: Vec<usize> = Vec::new(); // node ids of current level
        if !items.is_empty() {
            let n_leaves = items.len().div_ceil(leaf_cap);
            let strips = (n_leaves as f64).sqrt().ceil() as usize;
            let per_strip = items.len().div_ceil(strips);
            items.sort_unstable_by_key(|(c, id)| (c[0], c[1], *id));
            for strip in items.chunks_mut(per_strip) {
                strip.sort_unstable_by_key(|(c, id)| (c[1], c[0], *id));
                for leaf in strip.chunks(leaf_cap) {
                    let (lo, hi) = mbr_points(leaf);
                    let id = nodes.len();
                    nodes.push(RNode {
                        lo,
                        hi,
                        start: dfs.len() as u64,
                        count: leaf.len() as u32,
                        leaf: 1,
                    });
                    dfs.extend_from_slice(leaf);
                    level.push(id);
                }
            }
            // Pack upper levels by tiling child MBR centers (x then y).
            while level.len() > 1 {
                let n_parents = level.len().div_ceil(fanout);
                let strips = (n_parents as f64).sqrt().ceil() as usize;
                let per_strip = level.len().div_ceil(strips);
                let centers: Vec<(i64, i64)> = nodes
                    .iter()
                    .map(|nd| ((nd.lo[0] + nd.hi[0]) / 2, (nd.lo[1] + nd.hi[1]) / 2))
                    .collect();
                level.sort_by_key(|&id| centers[id].0);
                let mut next_level = Vec::new();
                let mut strip_bufs: Vec<Vec<usize>> =
                    level.chunks(per_strip).map(|s| s.to_vec()).collect();
                for strip in &mut strip_bufs {
                    strip.sort_by_key(|&id| centers[id].1);
                    for group in strip.chunks(fanout) {
                        // Children must be contiguous in the nodes file:
                        // copy them to fresh contiguous slots.
                        let start = nodes.len() as u64;
                        let mut lo = [i64::MAX; 2];
                        let mut hi = [i64::MIN; 2];
                        let copies: Vec<RNode> = group.iter().map(|&id| nodes[id]).collect();
                        for c in &copies {
                            for i in 0..2 {
                                lo[i] = lo[i].min(c.lo[i]);
                                hi[i] = hi[i].max(c.hi[i]);
                            }
                        }
                        for c in copies {
                            nodes.push(c);
                        }
                        let id = nodes.len();
                        nodes.push(RNode { lo, hi, start, count: group.len() as u32, leaf: 0 });
                        next_level.push(id);
                    }
                }
                level = next_level;
            }
        }
        let root = level.first().copied().unwrap_or(0);
        StrRTree {
            dev: dev.clone(),
            nodes: VecFile::from_slice(dev, &nodes),
            points: VecFile::from_slice(dev, &dfs),
            root,
            n: points.len(),
            pages_at_build_end: dev.pages_allocated(),
        }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn pages(&self) -> u64 {
        self.pages_at_build_end
    }

    /// The device this structure lives on (for scoped IO measurement).
    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// The same on-disk structure viewed through `h` (own cache + stats).
    pub fn with_handle(&self, h: &DeviceHandle) -> StrRTree {
        StrRTree {
            dev: h.clone(),
            nodes: self.nodes.with_handle(h),
            points: self.points.with_handle(h),
            root: self.root,
            n: self.n,
            pages_at_build_end: self.pages_at_build_end,
        }
    }

    /// A reader clone on a fresh handle scope over the same pages — each
    /// parallel worker calls this to get its own LRU and IO attribution.
    pub fn fork_reader(&self) -> StrRTree {
        self.with_handle(&self.dev.fork())
    }

    /// Serialize the tree's metadata (node and point files, root index);
    /// page data is captured by [`lcrs_extmem::Device::freeze_to_path`].
    pub fn save(&self, w: &mut MetaWriter) {
        self.nodes.save(w);
        self.points.save(w);
        w.usize(self.root);
        w.usize(self.n);
        w.u64(self.pages_at_build_end);
    }

    /// Rebuild from metadata written by [`Self::save`].
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<StrRTree, SnapshotError> {
        let nodes: VecFile<RNode> = VecFile::load(h, r)?;
        let points = VecFile::load(h, r)?;
        let root = r.usize()?;
        if root >= nodes.len().max(1) {
            return Err(r.error(format!("root {root} exceeds the {} nodes", nodes.len())));
        }
        Ok(StrRTree {
            dev: h.clone(),
            nodes,
            points,
            root,
            n: r.usize()?,
            pages_at_build_end: r.u64()?,
        })
    }

    pub fn query_below(&self, m: i64, c: i64, inclusive: bool) -> (Vec<u32>, BaselineStats) {
        let before = self.dev.stats();
        let mut stats = BaselineStats::default();
        let mut out = Vec::new();
        if self.n > 0 {
            self.visit(self.root, m, c, inclusive, &mut stats, &mut out);
        }
        stats.reported = out.len();
        stats.ios = self.dev.stats().since(before).total();
        (out, stats)
    }

    fn visit(
        &self,
        ni: usize,
        m: i64,
        c: i64,
        inclusive: bool,
        stats: &mut BaselineStats,
        out: &mut Vec<u32>,
    ) {
        let node = self.nodes.get(ni);
        stats.nodes_visited += 1;
        // Min slack over MBR corners; prune when no corner is below.
        let mut lo_s = i128::MAX;
        for &x in &[node.lo[0], node.hi[0]] {
            for &y in &[node.lo[1], node.hi[1]] {
                lo_s = lo_s.min(y as i128 - m as i128 * x as i128 - c as i128);
            }
        }
        let none_below = if inclusive { lo_s > 0 } else { lo_s >= 0 };
        if none_below {
            return;
        }
        if node.leaf == 1 {
            let mut buf: Vec<PtRec> = Vec::with_capacity(node.count as usize);
            self.points.read_range(
                node.start as usize..(node.start as usize + node.count as usize),
                &mut buf,
            );
            for ([x, y], id) in buf {
                let s = y as i128 - m as i128 * x as i128 - c as i128;
                let hit = if inclusive { s <= 0 } else { s < 0 };
                if hit {
                    out.push(id);
                }
            }
        } else {
            for k in 0..node.count as usize {
                self.visit(node.start as usize + k, m, c, inclusive, stats, out);
            }
        }
    }
}

fn mbr_points(pts: &[PtRec]) -> ([i64; 2], [i64; 2]) {
    let mut lo = pts[0].0;
    let mut hi = pts[0].0;
    for (c, _) in &pts[1..] {
        for i in 0..2 {
            lo[i] = lo[i].min(c[i]);
            hi[i] = hi[i].max(c[i]);
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::{Device, DeviceConfig};

    fn pseudo(n: usize, seed: u64) -> Vec<(i64, i64)> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i64).rem_euclid(200_001) - 100_000
        };
        (0..n).map(|_| (next(), next())).collect()
    }

    #[test]
    fn matches_brute_force() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts = pseudo(900, 5);
        let t = StrRTree::build(&dev, &pts);
        for (m, c) in [(0i64, 0i64), (2, 30_000), (-9, -1000)] {
            for inclusive in [false, true] {
                let (mut got, _) = t.query_below(m, c, inclusive);
                got.sort_unstable();
                let want: Vec<u32> = pts
                    .iter()
                    .enumerate()
                    .filter(|(_, &(x, y))| {
                        let rhs = m as i128 * x as i128 + c as i128;
                        if inclusive {
                            y as i128 <= rhs
                        } else {
                            (y as i128) < rhs
                        }
                    })
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "m={m} c={c} inclusive={inclusive}");
            }
        }
    }

    #[test]
    fn diagonal_degrades() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts: Vec<(i64, i64)> = (0..4096).map(|i| (i, i)).collect();
        let t = StrRTree::build(&dev, &pts);
        let (got, st) = t.query_below(1, 0, false);
        assert!(got.is_empty());
        let n_leaves = 4096 / dev.records_per_page(20);
        assert!(st.nodes_visited >= n_leaves / 2, "visits {}", st.nodes_visited);
    }

    #[test]
    fn empty_input() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let t = StrRTree::build(&dev, &[]);
        assert!(t.query_below(1, 1, true).0.is_empty());
    }
}
