//! The trivial baselines: points in a flat file, every query scans it.
//!
//! [`ExternalScan`] holds 2D points and answers halfplane reports *and*
//! k-nearest-neighbor queries (a scan can compute anything — at Θ(n/B)
//! IOs per query, which is exactly why it is the reference the indexed
//! structures are measured against). [`ExternalScan3`] is its 3D sibling
//! for halfspace reports, completing the scan baseline across every query
//! class of the engine's query vocabulary (halfplane, halfspace, k-NN).

use lcrs_extmem::{DeviceHandle, MetaReader, MetaWriter, SnapshotError, VecFile};

use crate::BaselineStats;

/// Linear scan baseline: optimal space, Θ(n) IOs per query.
pub struct ExternalScan {
    dev: DeviceHandle,
    points: VecFile<(i64, i64, u32)>,
    pages_at_build_end: u64,
}

impl ExternalScan {
    pub fn build(dev: &DeviceHandle, points: &[(i64, i64)]) -> ExternalScan {
        let recs: Vec<(i64, i64, u32)> =
            points.iter().enumerate().map(|(i, &(x, y))| (x, y, i as u32)).collect();
        ExternalScan {
            dev: dev.clone(),
            points: VecFile::from_slice(dev, &recs),
            pages_at_build_end: dev.pages_allocated(),
        }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn pages(&self) -> u64 {
        self.pages_at_build_end
    }

    /// Pages of the scanned point file itself (the per-query cold cost).
    pub fn data_pages(&self) -> u64 {
        self.points.pages() as u64
    }

    /// The device this structure lives on (for scoped IO measurement).
    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// The same on-disk structure viewed through `h` (own cache + stats).
    pub fn with_handle(&self, h: &DeviceHandle) -> ExternalScan {
        ExternalScan {
            dev: h.clone(),
            points: self.points.with_handle(h),
            pages_at_build_end: self.pages_at_build_end,
        }
    }

    /// A reader clone on a fresh handle scope over the same pages — each
    /// parallel worker calls this to get its own LRU and IO attribution.
    pub fn fork_reader(&self) -> ExternalScan {
        self.with_handle(&self.dev.fork())
    }

    /// Serialize the scan's metadata (the point file); page data is
    /// captured by [`lcrs_extmem::Device::freeze_to_path`].
    pub fn save(&self, w: &mut MetaWriter) {
        self.points.save(w);
        w.u64(self.pages_at_build_end);
    }

    /// Rebuild from metadata written by [`Self::save`].
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<ExternalScan, SnapshotError> {
        Ok(ExternalScan {
            dev: h.clone(),
            points: VecFile::load(h, r)?,
            pages_at_build_end: r.u64()?,
        })
    }

    /// Report points strictly below `y = m·x + c` (`inclusive` adds
    /// on-line points).
    pub fn query_below(&self, m: i64, c: i64, inclusive: bool) -> (Vec<u32>, BaselineStats) {
        let before = self.dev.stats();
        let mut out = Vec::new();
        self.points.scan_while(|_, (x, y, id)| {
            let rhs = m as i128 * x as i128 + c as i128;
            let hit = if inclusive { y as i128 <= rhs } else { (y as i128) < rhs };
            if hit {
                out.push(id);
            }
            true
        });
        let stats = BaselineStats {
            ios: self.dev.stats().since(before).total(),
            nodes_visited: self.points.pages(),
            reported: out.len(),
        };
        (out, stats)
    }

    /// The `k` nearest neighbors of `(x, y)` by full scan: Euclidean
    /// distances sorted, ties broken by id — the same reporting order as
    /// `lcrs_halfspace::KnnStructure`, so the two are answer-identical.
    ///
    /// Exact for the full i64 coordinate range (the scan has no budget,
    /// unlike the k-NN structure's lift): a coordinate delta spans up to
    /// 65 bits, its square up to 128, and the squared distance up to 129 —
    /// so the sum is kept as a (carry, u128) pair and compared as such.
    pub fn k_nearest(&self, x: i64, y: i64, k: usize) -> Vec<u32> {
        let mut d: Vec<((bool, u128), u32)> = Vec::with_capacity(self.len());
        self.points.scan_while(|_, (a, b, id)| {
            let dx = (x as i128 - a as i128).unsigned_abs();
            let dy = (y as i128 - b as i128).unsigned_abs();
            let (lo, carry) = (dx * dx).overflowing_add(dy * dy);
            d.push(((carry, lo), id));
            true
        });
        d.sort_unstable();
        d.into_iter().take(k).map(|(_, i)| i).collect()
    }

    /// Report points inside the disk of center `(x, y)` and squared
    /// radius `r2` (distance² < r2, or ≤ when `inclusive`). Exact for the
    /// full i64 range via the same (carry, u128) distance as
    /// [`Self::k_nearest`]; negative `r2` admits nothing. This is the
    /// oracle the lifted-index answers are differentially checked against.
    pub fn disk_report(
        &self,
        x: i64,
        y: i64,
        r2: i64,
        inclusive: bool,
    ) -> (Vec<u32>, BaselineStats) {
        let before = self.dev.stats();
        let mut out = Vec::new();
        if r2 >= 0 {
            let r2 = (false, r2 as u128);
            self.points.scan_while(|_, (a, b, id)| {
                let dx = (x as i128 - a as i128).unsigned_abs();
                let dy = (y as i128 - b as i128).unsigned_abs();
                let (lo, carry) = (dx * dx).overflowing_add(dy * dy);
                let hit = if inclusive { (carry, lo) <= r2 } else { (carry, lo) < r2 };
                if hit {
                    out.push(id);
                }
                true
            });
        }
        let stats = BaselineStats {
            ios: self.dev.stats().since(before).total(),
            nodes_visited: self.points.pages(),
            reported: out.len(),
        };
        (out, stats)
    }

    /// Count and weight-sum (weight of `(x, y)` is `x + y`) of points
    /// below `y = m·x + c` — enumerate-then-count at scan cost, the
    /// aggregate-path oracle.
    pub fn aggregate_below(&self, m: i64, c: i64, inclusive: bool) -> ((u64, i128), BaselineStats) {
        let before = self.dev.stats();
        let (mut count, mut wsum) = (0u64, 0i128);
        self.points.scan_while(|_, (x, y, _)| {
            let rhs = m as i128 * x as i128 + c as i128;
            let hit = if inclusive { y as i128 <= rhs } else { (y as i128) < rhs };
            if hit {
                count += 1;
                wsum += x as i128 + y as i128;
            }
            true
        });
        let stats = BaselineStats {
            ios: self.dev.stats().since(before).total(),
            nodes_visited: self.points.pages(),
            reported: count as usize,
        };
        ((count, wsum), stats)
    }

    /// The `k` points of lowest key `y − m·x` among those with
    /// `y − m·x ≤ c` (inclusive candidates), ordered by `(key, id)` — the
    /// ranked-reporting oracle.
    pub fn top_k(&self, m: i64, c: i64, k: usize) -> (Vec<u32>, BaselineStats) {
        let before = self.dev.stats();
        let mut cand: Vec<(i128, u32)> = Vec::new();
        self.points.scan_while(|_, (x, y, id)| {
            let key = y as i128 - m as i128 * x as i128;
            if key <= c as i128 {
                cand.push((key, id));
            }
            true
        });
        cand.sort_unstable();
        cand.truncate(k);
        let out: Vec<u32> = cand.into_iter().map(|(_, id)| id).collect();
        let stats = BaselineStats {
            ios: self.dev.stats().since(before).total(),
            nodes_visited: self.points.pages(),
            reported: out.len(),
        };
        (out, stats)
    }
}

/// Linear scan baseline over 3D points: optimal space, Θ(n) IOs per
/// halfspace query — the 3D sibling of [`ExternalScan`].
pub struct ExternalScan3 {
    dev: DeviceHandle,
    points: VecFile<(i64, i64, i64, u32)>,
    pages_at_build_end: u64,
}

impl ExternalScan3 {
    pub fn build(dev: &DeviceHandle, points: &[(i64, i64, i64)]) -> ExternalScan3 {
        let recs: Vec<(i64, i64, i64, u32)> =
            points.iter().enumerate().map(|(i, &(x, y, z))| (x, y, z, i as u32)).collect();
        ExternalScan3 {
            dev: dev.clone(),
            points: VecFile::from_slice(dev, &recs),
            pages_at_build_end: dev.pages_allocated(),
        }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn pages(&self) -> u64 {
        self.pages_at_build_end
    }

    /// Pages of the scanned point file itself (the per-query cold cost).
    pub fn data_pages(&self) -> u64 {
        self.points.pages() as u64
    }

    /// The device this structure lives on (for scoped IO measurement).
    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// The same on-disk structure viewed through `h` (own cache + stats).
    pub fn with_handle(&self, h: &DeviceHandle) -> ExternalScan3 {
        ExternalScan3 {
            dev: h.clone(),
            points: self.points.with_handle(h),
            pages_at_build_end: self.pages_at_build_end,
        }
    }

    /// A reader clone on a fresh handle scope over the same pages — each
    /// parallel worker calls this to get its own LRU and IO attribution.
    pub fn fork_reader(&self) -> ExternalScan3 {
        self.with_handle(&self.dev.fork())
    }

    /// Serialize the scan's metadata (the point file); page data is
    /// captured by [`lcrs_extmem::Device::freeze_to_path`].
    pub fn save(&self, w: &mut MetaWriter) {
        self.points.save(w);
        w.u64(self.pages_at_build_end);
    }

    /// Rebuild from metadata written by [`Self::save`].
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<ExternalScan3, SnapshotError> {
        Ok(ExternalScan3 {
            dev: h.clone(),
            points: VecFile::load(h, r)?,
            pages_at_build_end: r.u64()?,
        })
    }

    /// Report points strictly below `z = u·x + v·y + w` (`inclusive` adds
    /// on-plane points).
    pub fn query_below(
        &self,
        u: i64,
        v: i64,
        w: i64,
        inclusive: bool,
    ) -> (Vec<u32>, BaselineStats) {
        let before = self.dev.stats();
        let mut out = Vec::new();
        self.points.scan_while(|_, (x, y, z, id)| {
            // `u·x + v·y + w` can span 129 bits at the i64 extremes, so
            // compare `z - w - v·y < u·x` instead: each side stays within
            // ±(2^126 + 2^64) and the comparison is exact in i128.
            let lhs = z as i128 - w as i128 - v as i128 * y as i128;
            let rhs = u as i128 * x as i128;
            let hit = if inclusive { lhs <= rhs } else { lhs < rhs };
            if hit {
                out.push(id);
            }
            true
        });
        let stats = BaselineStats {
            ios: self.dev.stats().since(before).total(),
            nodes_visited: self.points.pages(),
            reported: out.len(),
        };
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::{Device, DeviceConfig};

    #[test]
    fn k_nearest_survives_extreme_coordinates() {
        // The scan places no budget on coordinates (unlike KnnStructure's
        // lift), so the distance math must stay exact at the i64 corners:
        // the delta below spans 65 bits (subtraction would overflow i64)
        // and the squared distance spans 129 (its square overflows i128).
        let dev = Device::new(DeviceConfig::new(256, 0));
        let s = ExternalScan::build(&dev, &[(i64::MIN, i64::MIN), (0, 0), (i64::MAX, i64::MAX)]);
        assert_eq!(s.k_nearest(i64::MAX, i64::MAX, 3), vec![2, 1, 0]);
        assert_eq!(s.k_nearest(i64::MIN, i64::MIN, 3), vec![0, 1, 2]);
        assert_eq!(s.k_nearest(0, 0, 3), vec![1, 2, 0]); // |MIN| > |MAX| by one
    }

    #[test]
    fn scan3_survives_extreme_coefficients() {
        // `u·x + v·y + w` reaches 2^127 here — past i128::MAX — so the
        // halfspace test must be evaluated as a rearranged comparison.
        let dev = Device::new(DeviceConfig::new(256, 0));
        let s = ExternalScan3::build(&dev, &[(i64::MIN, i64::MIN, 0), (i64::MAX, i64::MAX, 0)]);
        // Plane z = MIN·x + MIN·y: at point 0 the plane sits at +2^127
        // (below it), at point 1 at about -2^127 (above it).
        let (got, _) = s.query_below(i64::MIN, i64::MIN, 0, false);
        assert_eq!(got, vec![0]);
        let (got, _) = s.query_below(i64::MAX, i64::MAX, i64::MAX, false);
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn disk_aggregate_topk_scan_oracles() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts: Vec<(i64, i64)> =
            (0..300).map(|i| ((i * 13) % 101 - 50, (i * 7) % 97 - 48)).collect();
        let s = ExternalScan::build(&dev, &pts);
        // Disk: brute membership, strictness respected, r2 < 0 empty.
        for (x, y, r2) in [(0i64, 0i64, 900i64), (-50, -48, 0), (10, 10, -1)] {
            for inclusive in [false, true] {
                let (got, _) = s.disk_report(x, y, r2, inclusive);
                let want: Vec<u32> = pts
                    .iter()
                    .enumerate()
                    .filter(|(_, &(a, b))| {
                        r2 >= 0 && {
                            let d2 = (x - a) as i128 * (x - a) as i128
                                + (y - b) as i128 * (y - b) as i128;
                            if inclusive {
                                d2 <= r2 as i128
                            } else {
                                d2 < r2 as i128
                            }
                        }
                    })
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "disk ({x},{y},{r2}) inclusive={inclusive}");
            }
        }
        // Aggregate: count/sum of everything below.
        let ((count, wsum), _) = s.aggregate_below(0, 1000, true);
        assert_eq!(count as usize, pts.len());
        assert_eq!(wsum, pts.iter().map(|&(x, y)| x as i128 + y as i128).sum::<i128>());
        assert_eq!(s.aggregate_below(0, -1000, false).0, (0, 0));
        // TopK: ordered by (key, id), truncated.
        let (top, _) = s.top_k(1, 1000, 5);
        assert_eq!(top.len(), 5);
        let key = |id: u32| {
            let (x, y) = pts[id as usize];
            y as i128 - x as i128
        };
        assert!(top.windows(2).all(|w| (key(w[0]), w[0]) < (key(w[1]), w[1])));
        assert_eq!(key(top[0]), pts.iter().map(|&(x, y)| y as i128 - x as i128).min().unwrap());
    }

    #[test]
    fn scan_reports_exactly_and_costs_n() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts: Vec<(i64, i64)> = (0..500).map(|i| (i, (i * 7) % 500)).collect();
        let s = ExternalScan::build(&dev, &pts);
        let (got, st) = s.query_below(1, 0, false);
        let want: Vec<u32> =
            pts.iter().enumerate().filter(|(_, &(x, y))| y < x).map(|(i, _)| i as u32).collect();
        assert_eq!(got, want);
        assert_eq!(st.ios as usize, s.points.pages());
    }
}
