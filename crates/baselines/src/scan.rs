//! The trivial baseline: points in a flat file, every query scans it.

use lcrs_extmem::{DeviceHandle, MetaReader, MetaWriter, SnapshotError, VecFile};

use crate::BaselineStats;

/// Linear scan baseline: optimal space, Θ(n) IOs per query.
pub struct ExternalScan {
    dev: DeviceHandle,
    points: VecFile<(i64, i64, u32)>,
    pages_at_build_end: u64,
}

impl ExternalScan {
    pub fn build(dev: &DeviceHandle, points: &[(i64, i64)]) -> ExternalScan {
        let recs: Vec<(i64, i64, u32)> =
            points.iter().enumerate().map(|(i, &(x, y))| (x, y, i as u32)).collect();
        ExternalScan {
            dev: dev.clone(),
            points: VecFile::from_slice(dev, &recs),
            pages_at_build_end: dev.pages_allocated(),
        }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn pages(&self) -> u64 {
        self.pages_at_build_end
    }

    /// The device this structure lives on (for scoped IO measurement).
    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// The same on-disk structure viewed through `h` (own cache + stats).
    pub fn with_handle(&self, h: &DeviceHandle) -> ExternalScan {
        ExternalScan {
            dev: h.clone(),
            points: self.points.with_handle(h),
            pages_at_build_end: self.pages_at_build_end,
        }
    }

    /// A reader clone on a fresh handle scope over the same pages — each
    /// parallel worker calls this to get its own LRU and IO attribution.
    pub fn fork_reader(&self) -> ExternalScan {
        self.with_handle(&self.dev.fork())
    }

    /// Serialize the scan's metadata (the point file); page data is
    /// captured by [`lcrs_extmem::Device::freeze_to_path`].
    pub fn save(&self, w: &mut MetaWriter) {
        self.points.save(w);
        w.u64(self.pages_at_build_end);
    }

    /// Rebuild from metadata written by [`Self::save`].
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<ExternalScan, SnapshotError> {
        Ok(ExternalScan {
            dev: h.clone(),
            points: VecFile::load(h, r)?,
            pages_at_build_end: r.u64()?,
        })
    }

    /// Report points strictly below `y = m·x + c` (`inclusive` adds
    /// on-line points).
    pub fn query_below(&self, m: i64, c: i64, inclusive: bool) -> (Vec<u32>, BaselineStats) {
        let before = self.dev.stats();
        let mut out = Vec::new();
        self.points.scan_while(|_, (x, y, id)| {
            let rhs = m as i128 * x as i128 + c as i128;
            let hit = if inclusive { y as i128 <= rhs } else { (y as i128) < rhs };
            if hit {
                out.push(id);
            }
            true
        });
        let stats = BaselineStats {
            ios: self.dev.stats().since(before).total(),
            nodes_visited: self.points.pages(),
            reported: out.len(),
        };
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::{Device, DeviceConfig};

    #[test]
    fn scan_reports_exactly_and_costs_n() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts: Vec<(i64, i64)> = (0..500).map(|i| (i, (i * 7) % 500)).collect();
        let s = ExternalScan::build(&dev, &pts);
        let (got, st) = s.query_below(1, 0, false);
        let want: Vec<u32> =
            pts.iter().enumerate().filter(|(_, &(x, y))| y < x).map(|(i, _)| i as u32).collect();
        assert_eq!(got, want);
        assert_eq!(st.ios as usize, s.points.pages());
    }
}
