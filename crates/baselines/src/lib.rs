//! # lcrs-baselines — external-memory baselines for halfspace reporting
//!
//! The comparison structures of the paper's Section 1.2: a naive scan
//! (always Θ(n) IOs), an external kd-tree (k-d-B style — good average-case
//! performance, Ω(n) worst case on the diagonal adversarial input), and an
//! STR bulk-loaded R-tree (the classic spatial-database index, with the same
//! failure mode). All report exactly the points strictly below (or on) a
//! query line, so they are interchangeable with `lcrs_halfspace::HalfspaceRS2`
//! in the benchmark harness.

pub mod kdtree;
pub mod rtree;
pub mod scan;

pub use kdtree::ExternalKdTree;
pub use rtree::StrRTree;
pub use scan::{ExternalScan, ExternalScan3};

/// Statistics shared by the baselines.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineStats {
    pub ios: u64,
    pub nodes_visited: usize,
    pub reported: usize,
}
