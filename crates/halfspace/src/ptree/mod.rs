//! Linear-size partition trees (Section 5, Theorem 5.2).
//!
//! Each internal node partitions its point set S_v into
//! r_v = min(cB, 2n_v)-ish balanced subsets, each with a bounding cell;
//! leaves hold ≤ B points in one block, and every subtree's points are
//! stored contiguously (DFS order) so a fully-below cell is reported in
//! O(n_v) IOs. Queries classify each child cell against the constraint:
//! fully-below cells are reported wholesale, crossed cells are recursed
//! into, and the crossing-number bound of the partitioner yields
//! O(n^{1-1/d+ε} + t) IOs.
//!
//! Partitioners (DESIGN.md §3.4 — substitutes for Matoušek's Theorem 5.1):
//! * [`Partitioner::KdMedian`] — cyclic median splits into 2^(d·s) boxes;
//!   the O(r^{1-1/d}) crossing bound is empirical (measured in EXP-T1-PT);
//! * [`Partitioner::HamSandwich`] (d = 2) — Willard's (ref. 53) 4-way
//!   ham-sandwich partition; a line always misses one of the four wedges
//!   around the cut crossing, giving a worst-case O(n^{log₄3}) ≈ O(n^0.79)
//!   guarantee. Cells are stored as bounding boxes of the actual subsets.
//!
//! The same tree answers simplex (convex-region) queries — the paper's
//! Remark (i) — via conservative box/region classification.

pub mod hamsandwich;

use lcrs_extmem::{DeviceHandle, MetaReader, MetaWriter, Record, SnapshotError, VecFile};
use lcrs_geom::point::{Aabb, BoxSide, HyperplaneD, PointD, Simplex, SimplexSide};

use crate::cost::{CostHint, CostShape};

/// On-disk node record.
#[derive(Debug, Clone, Copy)]
struct NodeRec<const D: usize> {
    lo: [i64; D],
    hi: [i64; D],
    /// First child node index; 0 children ⇒ leaf.
    child_start: u64,
    child_count: u32,
    /// Subtree point range (DFS-contiguous) in the points file.
    pts_off: u64,
    pts_len: u64,
}

impl<const D: usize> Record for NodeRec<D> {
    const SIZE: usize = 16 * D + 28;
    fn store(&self, buf: &mut [u8]) {
        self.lo.store(buf);
        self.hi.store(&mut buf[8 * D..]);
        self.child_start.store(&mut buf[16 * D..]);
        self.child_count.store(&mut buf[16 * D + 8..]);
        self.pts_off.store(&mut buf[16 * D + 12..]);
        self.pts_len.store(&mut buf[16 * D + 20..]);
    }
    fn load(buf: &[u8]) -> Self {
        NodeRec {
            lo: <[i64; D]>::load(buf),
            hi: <[i64; D]>::load(&buf[8 * D..]),
            child_start: u64::load(&buf[16 * D..]),
            child_count: u32::load(&buf[16 * D + 8..]),
            pts_off: u64::load(&buf[16 * D + 12..]),
            pts_len: u64::load(&buf[16 * D + 20..]),
        }
    }
}

/// Point record: (coords, input index).
type PtRec<const D: usize> = ([i64; D], u32);

/// Which balanced partition a node uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Cyclic median kd-splits into 2^(D·s) boxes.
    KdMedian,
    /// Willard ham-sandwich 4-way partition (D = 2 only); nodes larger than
    /// the cutoff, or degenerate ones, fall back to kd.
    HamSandwich,
}

/// Construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct PTreeConfig {
    pub partitioner: Partitioner,
    /// Target fanout (0 ⇒ min(4·B, n_v), rounded down to a power of 2^D).
    pub fanout: usize,
    /// Leaf capacity (0 ⇒ B points).
    pub leaf_capacity: usize,
    /// Node size above which HamSandwich falls back to kd (median-level
    /// walks on huge nodes are expensive; see DESIGN.md §3.4).
    pub hs_cutoff: usize,
}

impl Default for PTreeConfig {
    fn default() -> Self {
        PTreeConfig {
            partitioner: Partitioner::KdMedian,
            fanout: 0,
            leaf_capacity: 0,
            hs_cutoff: 1 << 15,
        }
    }
}

/// Statistics of one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct PtStats {
    pub ios: u64,
    pub nodes_visited: usize,
    pub leaves_scanned: usize,
    pub subtrees_reported: usize,
    pub reported: usize,
}

/// The Theorem 5.2 structure for d-dimensional halfspace and simplex
/// reporting.
pub struct PartitionTree<const D: usize> {
    dev: DeviceHandle,
    nodes: VecFile<NodeRec<D>>,
    points: VecFile<PtRec<D>>,
    n: usize,
    pages_at_build_end: u64,
}

impl<const D: usize> PartitionTree<D> {
    /// Preprocess `points` (|coordinate| ≤ 2^30).
    pub fn build(dev: &DeviceHandle, points: &[PointD<D>], cfg: PTreeConfig) -> PartitionTree<D> {
        assert!(D >= 1);
        assert!(
            cfg.partitioner == Partitioner::KdMedian || D == 2,
            "HamSandwich partitioner is 2D-only"
        );
        for p in points {
            assert!(
                p.c.iter().all(|c| c.abs() <= lcrs_geom::MAX_COORD_2D),
                "point outside coordinate budget"
            );
        }
        let b_pts = dev.records_per_page(<PtRec<D> as Record>::SIZE);
        let leaf_cap = if cfg.leaf_capacity > 0 { cfg.leaf_capacity } else { b_pts }.max(1);

        let mut items: Vec<PtRec<D>> =
            points.iter().enumerate().map(|(i, p)| (p.c, i as u32)).collect();
        let mut nodes: Vec<NodeRec<D>> = Vec::new();
        let mut pts_out: Vec<PtRec<D>> = Vec::with_capacity(items.len());
        if !items.is_empty() {
            nodes.push(NodeRec {
                lo: [0; D],
                hi: [0; D],
                child_start: 0,
                child_count: 0,
                pts_off: 0,
                pts_len: 0,
            });
            Self::build_node(&mut items, 0, &mut nodes, &mut pts_out, &cfg, leaf_cap, b_pts);
        }
        PartitionTree {
            dev: dev.clone(),
            nodes: VecFile::from_slice(dev, &nodes),
            points: VecFile::from_slice(dev, &pts_out),
            n: points.len(),
            pages_at_build_end: dev.pages_allocated(),
        }
    }

    fn bbox(items: &[PtRec<D>]) -> ([i64; D], [i64; D]) {
        let mut lo = items[0].0;
        let mut hi = items[0].0;
        for (c, _) in &items[1..] {
            for i in 0..D {
                lo[i] = lo[i].min(c[i]);
                hi[i] = hi[i].max(c[i]);
            }
        }
        (lo, hi)
    }

    /// Recursively build node `ni` over `items`; appends points in DFS
    /// order to `pts_out`.
    fn build_node(
        items: &mut [PtRec<D>],
        ni: usize,
        nodes: &mut Vec<NodeRec<D>>,
        pts_out: &mut Vec<PtRec<D>>,
        cfg: &PTreeConfig,
        leaf_cap: usize,
        b_pts: usize,
    ) {
        let (lo, hi) = Self::bbox(items);
        let pts_off = pts_out.len() as u64;
        if items.len() <= leaf_cap {
            pts_out.extend_from_slice(items);
            nodes[ni] = NodeRec {
                lo,
                hi,
                child_start: 0,
                child_count: 0,
                pts_off,
                pts_len: items.len() as u64,
            };
            return;
        }
        // Partition into balanced ranges.
        let ranges: Vec<std::ops::Range<usize>> = match cfg.partitioner {
            Partitioner::HamSandwich if D == 2 && items.len() <= cfg.hs_cutoff => {
                match Self::ham_sandwich_ranges(items) {
                    Some(r) => r,
                    None => Self::kd_ranges(items, cfg, leaf_cap, b_pts),
                }
            }
            _ => Self::kd_ranges(items, cfg, leaf_cap, b_pts),
        };
        let child_start = nodes.len() as u64;
        let child_count = ranges.len() as u32;
        for _ in 0..ranges.len() {
            nodes.push(NodeRec {
                lo: [0; D],
                hi: [0; D],
                child_start: 0,
                child_count: 0,
                pts_off: 0,
                pts_len: 0,
            });
        }
        for (k, r) in ranges.iter().enumerate() {
            Self::build_node(
                &mut items[r.clone()],
                child_start as usize + k,
                nodes,
                pts_out,
                cfg,
                leaf_cap,
                b_pts,
            );
        }
        let pts_len = pts_out.len() as u64 - pts_off;
        nodes[ni] = NodeRec { lo, hi, child_start, child_count, pts_off, pts_len };
    }

    /// Balanced kd ranges: r = 2^(D·s) ≤ min(fanout, n_v), median splits
    /// cycling through the axes.
    fn kd_ranges(
        items: &mut [PtRec<D>],
        cfg: &PTreeConfig,
        leaf_cap: usize,
        b_pts: usize,
    ) -> Vec<std::ops::Range<usize>> {
        let target = if cfg.fanout > 0 { cfg.fanout } else { 4 * b_pts };
        let target = target.min(items.len().div_ceil(leaf_cap)).max(2);
        // Depth: largest s with 2^(D·s) ≤ target, at least one split.
        let mut depth = 1usize;
        while (1usize << ((depth + 1) * D.min(20))) <= target {
            depth += 1;
        }
        let splits = depth * D; // binary splits, cycling axes
        let mut ranges = Vec::new();
        Self::halve(items, 0, splits, 0, &mut ranges);
        ranges
    }

    fn halve(
        items: &mut [PtRec<D>],
        base: usize,
        splits_left: usize,
        axis: usize,
        out: &mut Vec<std::ops::Range<usize>>,
    ) {
        if splits_left == 0 || items.len() <= 1 {
            if !items.is_empty() {
                out.push(base..base + items.len());
            }
            return;
        }
        let mid = items.len() / 2;
        items.select_nth_unstable_by_key(mid, |(c, id)| (c[axis], *id));
        let (left, right) = items.split_at_mut(mid);
        let next_axis = (axis + 1) % D;
        Self::halve(left, base, splits_left - 1, next_axis, out);
        Self::halve(right, base + mid, splits_left - 1, next_axis, out);
    }

    /// Willard 4-way ranges (D == 2): lexicographic median split, then a
    /// ham-sandwich cut of the two halves.
    fn ham_sandwich_ranges(items: &mut [PtRec<D>]) -> Option<Vec<std::ops::Range<usize>>> {
        debug_assert_eq!(D, 2);
        items.sort_unstable_by_key(|(c, id)| (c[0], c[1], *id));
        let half = items.len() / 2;
        let a: Vec<(i64, i64)> = items[..half].iter().map(|(c, _)| (c[0], c[1])).collect();
        let b: Vec<(i64, i64)> = items[half..].iter().map(|(c, _)| (c[0], c[1])).collect();
        let (ia, ib) = hamsandwich::find_cut(&a, &b)?;
        let (p, q) = (a[ia], b[ib]);
        if p.0 == q.0 {
            return None; // vertical cut: degenerate for the side test
        }
        // Partition each half by the cut (on-line points count as below).
        let side = |c: &[i64; D]| !hamsandwich::strictly_below_cut(p, q, (c[0], c[1]));
        let mid1 = partition_in_place(&mut items[..half], |(c, _)| !side(c));
        let mid2 = partition_in_place(&mut items[half..], |(c, _)| !side(c));
        let mut out = Vec::with_capacity(4);
        for r in [0..mid1, mid1..half, half..half + mid2, half + mid2..items.len()] {
            if !r.is_empty() {
                out.push(r);
            }
        }
        Some(out)
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Disk pages occupied (linear in n).
    pub fn pages(&self) -> u64 {
        self.pages_at_build_end
    }

    /// The Theorem 5.2 query bound — O((n/B)^(1-1/d) + t/B) from linear
    /// space — as a planner hint (DESIGN.md §10).
    pub fn cost_hint(&self) -> CostHint {
        CostHint::new(CostShape::RootD { d: D as u32 }, self.len())
    }

    /// The device this structure lives on (for scoped IO measurement).
    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// The same on-disk structure viewed through `h` (own cache + stats).
    pub fn with_handle(&self, h: &DeviceHandle) -> PartitionTree<D> {
        PartitionTree {
            dev: h.clone(),
            nodes: self.nodes.with_handle(h),
            points: self.points.with_handle(h),
            n: self.n,
            pages_at_build_end: self.pages_at_build_end,
        }
    }

    /// A reader clone on a fresh handle scope over the same pages — each
    /// parallel worker calls this to get its own LRU and IO attribution.
    pub fn fork_reader(&self) -> PartitionTree<D> {
        self.with_handle(&self.dev.fork())
    }

    /// Serialize the tree's metadata (node and point files, counts); the
    /// page data is captured by [`lcrs_extmem::Device::freeze_to_path`].
    /// The dimension is written as a guard so a `PartitionTree<3>` save
    /// can never load as a `PartitionTree<2>`.
    pub fn save(&self, w: &mut MetaWriter) {
        w.usize(D);
        self.nodes.save(w);
        self.points.save(w);
        w.usize(self.n);
        w.u64(self.pages_at_build_end);
    }

    /// Rebuild from metadata written by [`Self::save`].
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<PartitionTree<D>, SnapshotError> {
        let d = r.usize()?;
        if d != D {
            return Err(r.error(format!("dimension mismatch: saved {d}, loading {D}")));
        }
        Ok(PartitionTree {
            dev: h.clone(),
            nodes: VecFile::load(h, r)?,
            points: VecFile::load(h, r)?,
            n: r.usize()?,
            pages_at_build_end: r.u64()?,
        })
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Report all points strictly below the constraint hyperplane
    /// (`inclusive` adds points on it). Returns input indices.
    pub fn query_halfspace(&self, h: &HyperplaneD<D>, inclusive: bool) -> Vec<u32> {
        self.query_halfspace_stats(h, inclusive).0
    }

    /// [`Self::query_halfspace`] with measured statistics.
    pub fn query_halfspace_stats(
        &self,
        h: &HyperplaneD<D>,
        inclusive: bool,
    ) -> (Vec<u32>, PtStats) {
        let before = self.dev.stats();
        let mut stats = PtStats::default();
        let mut out = Vec::new();
        if self.n > 0 {
            self.visit(
                0,
                &mut stats,
                &mut out,
                &mut |b: &Aabb<D>| match h.classify_box(b) {
                    BoxSide::FullyBelow if !inclusive => Visit::ReportAll,
                    // Inclusive queries treat boundary-touching boxes as crossed;
                    // FullyBelow (strict) is still fully reportable.
                    BoxSide::FullyBelow => Visit::ReportAll,
                    BoxSide::FullyAbove if !inclusive => Visit::Skip,
                    BoxSide::FullyAbove => {
                        // A box with max slack exactly 0 contains on-plane
                        // points: must be scanned for inclusive queries.
                        Visit::Recurse
                    }
                    BoxSide::Crossing => Visit::Recurse,
                },
                &mut |p: &PointD<D>| {
                    let s = h.slack(p);
                    if inclusive {
                        s >= 0
                    } else {
                        s > 0
                    }
                },
            );
        }
        stats.reported = out.len();
        stats.ios = self.dev.stats().since(before).total();
        (out, stats)
    }

    /// Count the points strictly below the constraint without reporting
    /// them: fully-below subtrees contribute their stored size with no
    /// point-file IO at all, so counting costs only the O(n^{1-1/d+ε})
    /// traversal term.
    pub fn count_halfspace(&self, h: &HyperplaneD<D>, inclusive: bool) -> (u64, PtStats) {
        let before = self.dev.stats();
        let mut stats = PtStats::default();
        let mut count = 0u64;
        if self.n > 0 {
            self.count_visit(0, h, inclusive, &mut stats, &mut count);
        }
        stats.reported = count as usize;
        stats.ios = self.dev.stats().since(before).total();
        (count, stats)
    }

    fn count_visit(
        &self,
        ni: usize,
        h: &HyperplaneD<D>,
        inclusive: bool,
        stats: &mut PtStats,
        count: &mut u64,
    ) {
        let node = self.nodes.get(ni);
        stats.nodes_visited += 1;
        let cell = Aabb { lo: node.lo, hi: node.hi };
        match h.classify_box(&cell) {
            BoxSide::FullyAbove if !inclusive => {}
            BoxSide::FullyBelow => {
                stats.subtrees_reported += 1;
                *count += node.pts_len;
            }
            _ => {
                if node.child_count == 0 {
                    stats.leaves_scanned += 1;
                    let mut buf: Vec<PtRec<D>> = Vec::with_capacity(node.pts_len as usize);
                    self.points.read_range(
                        node.pts_off as usize..(node.pts_off + node.pts_len) as usize,
                        &mut buf,
                    );
                    for (c, _) in buf {
                        let s = h.slack(&PointD::new(c));
                        if if inclusive { s >= 0 } else { s > 0 } {
                            *count += 1;
                        }
                    }
                } else {
                    for k in 0..node.child_count as usize {
                        self.count_visit(node.child_start as usize + k, h, inclusive, stats, count);
                    }
                }
            }
        }
    }

    /// Report all points inside the convex region (simplex) — Remark (i).
    pub fn query_simplex(&self, s: &Simplex<D>) -> Vec<u32> {
        self.query_simplex_stats(s).0
    }

    pub fn query_simplex_stats(&self, s: &Simplex<D>) -> (Vec<u32>, PtStats) {
        let before = self.dev.stats();
        let mut stats = PtStats::default();
        let mut out = Vec::new();
        if self.n > 0 {
            self.visit(
                0,
                &mut stats,
                &mut out,
                &mut |b: &Aabb<D>| match s.classify_box(b) {
                    SimplexSide::Inside => Visit::ReportAll,
                    SimplexSide::Outside => Visit::Skip,
                    SimplexSide::Maybe => Visit::Recurse,
                },
                &mut |p: &PointD<D>| s.contains_point(p),
            );
        }
        stats.reported = out.len();
        stats.ios = self.dev.stats().since(before).total();
        (out, stats)
    }

    fn visit(
        &self,
        ni: usize,
        stats: &mut PtStats,
        out: &mut Vec<u32>,
        classify: &mut dyn FnMut(&Aabb<D>) -> Visit,
        test: &mut dyn FnMut(&PointD<D>) -> bool,
    ) {
        let node = self.nodes.get(ni);
        stats.nodes_visited += 1;
        let cell = Aabb { lo: node.lo, hi: node.hi };
        match classify(&cell) {
            Visit::Skip => {}
            Visit::ReportAll => {
                stats.subtrees_reported += 1;
                self.report_range(node.pts_off, node.pts_len, out);
            }
            Visit::Recurse => {
                if node.child_count == 0 {
                    stats.leaves_scanned += 1;
                    let mut buf: Vec<PtRec<D>> = Vec::with_capacity(node.pts_len as usize);
                    self.points.read_range(
                        node.pts_off as usize..(node.pts_off + node.pts_len) as usize,
                        &mut buf,
                    );
                    for (c, id) in buf {
                        if test(&PointD::new(c)) {
                            out.push(id);
                        }
                    }
                } else {
                    for k in 0..node.child_count as usize {
                        self.visit(node.child_start as usize + k, stats, out, classify, test);
                    }
                }
            }
        }
    }

    fn report_range(&self, off: u64, len: u64, out: &mut Vec<u32>) {
        let mut buf: Vec<PtRec<D>> = Vec::with_capacity(len as usize);
        self.points.read_range(off as usize..(off + len) as usize, &mut buf);
        out.extend(buf.into_iter().map(|(_, id)| id));
    }
}

enum Visit {
    Skip,
    ReportAll,
    Recurse,
}

/// Stable two-way partition: moves elements satisfying `pred` to the front,
/// returning the split index.
fn partition_in_place<T: Copy>(items: &mut [T], mut pred: impl FnMut(&T) -> bool) -> usize {
    let mut buf: Vec<T> = Vec::with_capacity(items.len());
    let mut k = 0;
    for i in 0..items.len() {
        if pred(&items[i]) {
            items[k] = items[i];
            k += 1;
        } else {
            buf.push(items[i]);
        }
    }
    items[k..].copy_from_slice(&buf);
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::{Device, DeviceConfig};

    fn pseudo<const D: usize>(n: usize, seed: u64, range: i64) -> Vec<PointD<D>> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i64).rem_euclid(2 * range) - range
        };
        (0..n).map(|_| PointD::new(std::array::from_fn(|_| next()))).collect()
    }

    fn brute<const D: usize>(pts: &[PointD<D>], h: &HyperplaneD<D>, inclusive: bool) -> Vec<u32> {
        let mut v: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let s = h.slack(p);
                if inclusive {
                    s >= 0
                } else {
                    s > 0
                }
            })
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    fn check<const D: usize>(pts: &[PointD<D>], t: &PartitionTree<D>, seed: u64, trials: usize) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as i64).rem_euclid(2000) - 1000
        };
        for k in 0..trials {
            let h: HyperplaneD<D> =
                HyperplaneD::new(std::array::from_fn(
                    |i| {
                        if i == 0 {
                            next() * 100
                        } else {
                            next()
                        }
                    },
                ));
            let inclusive = k % 2 == 0;
            let mut got = t.query_halfspace(&h, inclusive);
            got.sort_unstable();
            assert_eq!(got, brute(pts, &h, inclusive), "{h:?} inclusive={inclusive}");
        }
    }

    #[test]
    fn correctness_2d_kd() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts = pseudo::<2>(1200, 3, 100_000);
        let t = PartitionTree::build(&dev, &pts, PTreeConfig::default());
        check(&pts, &t, 1, 40);
    }

    #[test]
    fn correctness_2d_ham_sandwich() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts = pseudo::<2>(900, 5, 100_000);
        let cfg = PTreeConfig { partitioner: Partitioner::HamSandwich, ..Default::default() };
        let t = PartitionTree::build(&dev, &pts, cfg);
        check(&pts, &t, 2, 30);
    }

    #[test]
    fn correctness_3d_and_4d() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts3 = pseudo::<3>(800, 7, 50_000);
        let t3 = PartitionTree::build(&dev, &pts3, PTreeConfig::default());
        check(&pts3, &t3, 3, 25);
        let pts4 = pseudo::<4>(600, 9, 50_000);
        let t4 = PartitionTree::build(&dev, &pts4, PTreeConfig::default());
        check(&pts4, &t4, 4, 20);
    }

    #[test]
    fn simplex_queries_match_brute_force() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts = pseudo::<2>(700, 11, 10_000);
        let t = PartitionTree::build(&dev, &pts, PTreeConfig::default());
        // Random triangles as 3 halfplanes.
        let mut s = 13u64;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as i64).rem_euclid(20_000) - 10_000
        };
        for _ in 0..25 {
            let tri = Simplex::new(vec![
                ([next() % 10, next() % 10], next()),
                ([next() % 10, next() % 10], next()),
                ([next() % 10, next() % 10], next()),
            ]);
            let mut got = t.query_simplex(&tri);
            got.sort_unstable();
            let mut want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| tri.contains_point(p))
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn duplicates_and_degenerate_inputs() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        // All points identical, plus a grid line.
        let mut pts: Vec<PointD<2>> = (0..200).map(|_| PointD::new([5, 5])).collect();
        pts.extend((0..200).map(|i| PointD::new([i, i])));
        let t = PartitionTree::build(&dev, &pts, PTreeConfig::default());
        check(&pts, &t, 17, 25);
        let cfg = PTreeConfig { partitioner: Partitioner::HamSandwich, ..Default::default() };
        let t2 = PartitionTree::build(&dev, &pts, cfg);
        check(&pts, &t2, 19, 25);
    }

    #[test]
    fn tiny_inputs() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        for n in [0usize, 1, 2, 7] {
            let pts = pseudo::<2>(n, 21 + n as u64, 100);
            let t = PartitionTree::build(&dev, &pts, PTreeConfig::default());
            check(&pts, &t, 23, 10);
        }
    }

    #[test]
    fn counting_matches_reporting_with_fewer_ios() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo::<2>(6000, 29, 100_000);
        let t = PartitionTree::build(&dev, &pts, PTreeConfig::default());
        let mut s = 31u64;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as i64).rem_euclid(2000) - 1000
        };
        for k in 0..15 {
            let h: HyperplaneD<2> = HyperplaneD::new([next() * 100, next()]);
            let inclusive = k % 2 == 0;
            let (res, rs) = t.query_halfspace_stats(&h, inclusive);
            let (cnt, cs) = t.count_halfspace(&h, inclusive);
            assert_eq!(cnt as usize, res.len());
            assert!(cs.ios <= rs.ios, "count {} > report {}", cs.ios, rs.ios);
        }
    }

    #[test]
    fn space_is_linear() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo::<2>(20_000, 25, 1 << 20);
        let t = PartitionTree::build(&dev, &pts, PTreeConfig::default());
        let pt_blocks = 20_000u64.div_ceil(512 / 20);
        assert!(t.pages() < 4 * pt_blocks, "pages {} vs point blocks {}", t.pages(), pt_blocks);
    }

    #[test]
    fn fully_below_subtree_reporting_is_blockwise() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo::<2>(8000, 27, 1000);
        let t = PartitionTree::build(&dev, &pts, PTreeConfig::default());
        // A halfplane far above everything: reports all points.
        let h = HyperplaneD::new([1 << 25, 0]);
        let (res, st) = t.query_halfspace_stats(&h, false);
        assert_eq!(res.len(), 8000);
        let pt_blocks = 8000u64.div_ceil(512 / 20);
        assert!(st.ios <= pt_blocks + 8, "reporting everything cost {} IOs", st.ios);
    }
}
