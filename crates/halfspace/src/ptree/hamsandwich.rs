//! Discrete ham-sandwich cuts for the Willard-style 2D partitioner.
//!
//! Given two point sets A and B separated by their lexicographic median, a
//! ham-sandwich line simultaneously bisecting both exists and can be found
//! as a crossing of the two *median levels* of the dual line arrangements
//! (the dual of the cut is a point lying on both levels). Because a crossing
//! of two x-monotone chains lies on one segment of each, the cut passes
//! through one input point of A and one of B — so it has small integer
//! coefficients and all classifications stay exact.
//!
//! The crossing is found by merging two [`LevelWalk`]s and watching the sign
//! of the difference of their carrier lines; for lexicographically separated
//! sets the sign at -∞ and +∞ differs (all of A's dual slopes exceed B's),
//! so a crossing always exists in general position.

use lcrs_geom::dual::point2_to_line;
use lcrs_geom::level::LevelWalk;
use lcrs_geom::line2::Line2;
use lcrs_geom::rational::Rat;

/// Find a ham-sandwich cut of `a` and `b` (disjoint point sets, all points
/// distinct): returns indices `(ia, ib)` into `a`/`b` such that the line
/// through `a[ia]` and `b[ib]` has exactly `⌊|a|/2⌋` points of `a` and
/// `⌊|b|/2⌋` points of `b` strictly below it. `None` in degenerate cases
/// (duplicate dual lines, no sign change) — callers fall back to a kd split.
pub fn find_cut(a: &[(i64, i64)], b: &[(i64, i64)]) -> Option<(usize, usize)> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let lines: Vec<Line2> = a.iter().chain(b.iter()).map(|&(x, y)| point2_to_line(x, y)).collect();
    // Distinct-lines requirement of the walk.
    {
        let mut sorted: Vec<(i64, i64)> = lines.iter().map(|l| (l.m, l.b)).collect();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
    }
    let ma: Vec<u32> = (0..a.len() as u32).collect();
    let mb: Vec<u32> = (a.len() as u32..(a.len() + b.len()) as u32).collect();
    let (ka, kb) = (a.len() / 2, b.len() / 2);

    let mut wa = LevelWalk::new(&lines, &ma, ka);
    let mut wb = LevelWalk::new(&lines, &mb, kb);
    let mut ca = wa.current_line();
    let mut cb = wb.current_line();
    let mut na = wa.step();
    let mut nb = wb.step();

    use std::cmp::Ordering::*;
    let mut s_prev = lines[ca as usize].cmp_at_plus(&lines[cb as usize], Rat::NegInf);
    if s_prev == Equal {
        return None; // degenerate
    }
    // Bound the merge by the total number of arrangement vertices.
    let mut guard = (lines.len() * lines.len()) + 4;
    loop {
        guard = guard.checked_sub(1)?;
        let xa = na.as_ref().map(|v| v.x);
        let xb = nb.as_ref().map(|v| v.x);
        let next_x = match (xa, xb) {
            (None, None) => {
                // Unbounded final interval: compare at +∞.
                let s_inf = lines[ca as usize].cmp_at(&lines[cb as usize], Rat::PosInf);
                if s_inf != s_prev {
                    return Some((ca as usize, cb as usize - a.len()));
                }
                return None;
            }
            (Some(x), None) => x,
            (None, Some(x)) => x,
            (Some(x1), Some(x2)) => x1.min(x2),
        };
        let s_here = lines[ca as usize].cmp_at(&lines[cb as usize], next_x);
        if s_here == Equal || s_here != s_prev {
            // Crossing within the current interval (or exactly at its end).
            return Some((ca as usize, cb as usize - a.len()));
        }
        s_prev = s_here;
        if xa == Some(next_x) {
            ca = na.unwrap().new_line;
            na = wa.step();
        }
        if xb == Some(next_x) {
            cb = nb.unwrap().new_line;
            nb = wb.step();
        }
    }
}

/// Is `r` strictly below the (non-vertical) line through `p` and `q`?
pub fn strictly_below_cut(p: (i64, i64), q: (i64, i64), r: (i64, i64)) -> bool {
    debug_assert_ne!(p.0, q.0, "cut line must be non-vertical");
    // r_y < m·r_x + c  with m = (q_y-p_y)/(q_x-p_x): multiply through.
    let dx = q.0 as i128 - p.0 as i128;
    let lhs = (r.1 as i128 - p.1 as i128) * dx;
    let rhs = (q.1 as i128 - p.1 as i128) * (r.0 as i128 - p.0 as i128);
    if dx > 0 {
        lhs < rhs
    } else {
        lhs > rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u64) -> Vec<(i64, i64)> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i64).rem_euclid(200_001) - 100_000
        };
        let mut out: Vec<(i64, i64)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        while out.len() < n {
            let p = (next(), next());
            if seen.insert(p) {
                out.push(p);
            }
        }
        out
    }

    #[test]
    fn cut_bisects_both_sets() {
        for seed in [1u64, 9, 33, 77] {
            let mut pts = pseudo(60, seed);
            pts.sort();
            let (a, b) = pts.split_at(30);
            let (ia, ib) = find_cut(a, b).expect("general position cut");
            let (p, q) = (a[ia], b[ib]);
            let below_a = a.iter().filter(|&&r| strictly_below_cut(p, q, r)).count();
            let below_b = b.iter().filter(|&&r| strictly_below_cut(p, q, r)).count();
            assert_eq!(below_a, a.len() / 2, "seed {seed}");
            assert_eq!(below_b, b.len() / 2, "seed {seed}");
        }
    }

    #[test]
    fn odd_sizes() {
        let mut pts = pseudo(31, 5);
        pts.sort();
        let (a, b) = pts.split_at(15);
        let (ia, ib) = find_cut(a, b).expect("cut");
        let (p, q) = (a[ia], b[ib]);
        assert_eq!(a.iter().filter(|&&r| strictly_below_cut(p, q, r)).count(), 7);
        assert_eq!(b.iter().filter(|&&r| strictly_below_cut(p, q, r)).count(), 8);
    }

    #[test]
    fn duplicate_duals_return_none() {
        // Two points with equal coordinates across the sets make dual lines
        // coincide after dedup check.
        let a = vec![(0, 0), (1, 5)];
        let b = vec![(0, 0), (7, 2)];
        assert!(find_cut(&a, &b).is_none());
    }
}
