//! The leveled core of the logarithmic-method dynamization (DESIGN.md §12).
//!
//! One [`DeltaTier`] absorbs all mutation; behind it sits a stack of
//! *levels*, each an ordinary static [`HalfspaceRS2`] of geometrically
//! increasing size — the classic Bentley–Saxe scheme of the paper's
//! Section 7. The core is generic over where level pages live
//! ([`LevelBacking`]): `Shared` keeps every level on the one device the
//! caller provided (the in-process [`crate::DynamicHalfspace2`]
//! configuration), `PerLevel` builds each level on its own fresh `Device`
//! and freezes it — the configuration the engine's `LiveIndex` persists
//! level-by-level through its snapshot catalog.
//!
//! Whatever the backing, every level reads through handles scoped to one
//! *anchor* scope (`DeviceHandle::scoped_to`), so a stats bracket around
//! that single scope observes exactly the composite's IOs — the invariant
//! the batch executor, the calibrated planner, and the bench gates measure
//! through.
//!
//! Merges can run synchronously ([`LeveledHalfspace2::flush`]) or on a
//! background thread ([`LeveledHalfspace2::begin_background_merge`] /
//! [`commit_background_merge`](LeveledHalfspace2::commit_background_merge)):
//! while a merge is in flight the drained delta buffer and the drained
//! levels stay visible to queries (and to reader forks) untouched, and the
//! merge result replaces them atomically at commit.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread::JoinHandle;

use lcrs_extmem::{Device, DeviceConfig, DeviceHandle, MetaReader, MetaWriter, SnapshotError};

use crate::cost::{CostHint, CostShape};
use crate::delta::DeltaTier;
use crate::hs2d::{HalfspaceRS2, Hs2dConfig, QueryStats};

/// Where the pages of each level live.
#[derive(Clone)]
pub enum LevelBacking {
    /// Every level is built on the one (unfrozen) device the core was
    /// created over — the in-process configuration.
    Shared,
    /// Each level gets its own fresh `Device` with this geometry, frozen
    /// as soon as the level is built. Frozen levels can be snapshotted and
    /// reopened individually — the persistent configuration.
    PerLevel {
        /// Geometry of each level device (page size, cache budget).
        geometry: DeviceConfig,
    },
}

/// One frozen level: a static structure plus its build input (kept on the
/// host side like any database catalog would — rebuilds merge from it).
pub struct Level {
    /// Lifecycle owner of this level's pages under `PerLevel` backing;
    /// `None` under `Shared` backing.
    device: Option<Device>,
    structure: HalfspaceRS2,
    /// `Arc`-shared with reader forks: a fork is O(levels), not O(n).
    points: Arc<Vec<(i64, i64, u64)>>,
    /// Stable identity across merges — the engine persists levels under
    /// `lv<seq>` labels and uses the sequence to tell survivors from
    /// drained levels when it garbage-collects its catalog.
    seq: u64,
}

impl Level {
    /// Reassemble a level from persisted parts. The structure must read
    /// through a handle scoped to the owning core's anchor scope.
    pub fn restore(
        device: Option<Device>,
        structure: HalfspaceRS2,
        points: Vec<(i64, i64, u64)>,
        seq: u64,
    ) -> Level {
        assert_eq!(points.len(), structure.len(), "level input must match its structure");
        Level { device, structure, points: Arc::new(points), seq }
    }

    pub fn seq(&self) -> u64 {
        self.seq
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn structure(&self) -> &HalfspaceRS2 {
        &self.structure
    }

    pub fn points(&self) -> &[(i64, i64, u64)] {
        &self.points
    }

    /// The build input behind its shared `Arc` (O(1) — what the engine's
    /// live persistence clones instead of copying the vector).
    pub fn points_arc(&self) -> Arc<Vec<(i64, i64, u64)>> {
        Arc::clone(&self.points)
    }

    /// The level's own device (`PerLevel` backing only).
    pub fn device(&self) -> Option<&Device> {
        self.device.as_ref()
    }

    fn view(&self, scope: &DeviceHandle) -> Level {
        let h = match &self.device {
            Some(dev) => (**dev).scoped_to(scope),
            None => scope.clone(),
        };
        Level {
            device: self.device.clone(),
            structure: self.structure.with_handle(&h),
            points: Arc::clone(&self.points),
            seq: self.seq,
        }
    }

    fn take_points(self) -> Vec<(i64, i64, u64)> {
        Arc::try_unwrap(self.points).unwrap_or_else(|a| (*a).clone())
    }
}

/// In-flight merge state: everything the merge consumes stays visible to
/// queries, immutably, until commit.
struct Draining {
    /// The delta buffer as of merge begin (still scanned by queries;
    /// deletes of these points tombstone instead of mutating).
    buffer: Vec<(i64, i64, u64)>,
    /// The levels being merged away (still served).
    levels: Vec<Level>,
    /// Tombstones whose points were filtered out of the merge input —
    /// dropped from the delta's dead set at commit, when the points they
    /// shadowed no longer exist anywhere.
    consumed: Vec<u64>,
}

/// A background level build in flight. Returned by
/// [`LeveledHalfspace2::begin_background_merge`]; hand it back to
/// [`LeveledHalfspace2::commit_background_merge`] to join and install the
/// result.
pub struct MergeHandle {
    worker: JoinHandle<Option<Level>>,
}

/// The leveled logarithmic-method structure (see the module docs).
pub struct LeveledHalfspace2 {
    scope: DeviceHandle,
    cfg: Hs2dConfig,
    backing: LevelBacking,
    delta: DeltaTier,
    levels: Vec<Level>,
    draining: Option<Draining>,
    live: usize,
    total_slots: usize,
    next_seq: u64,
    /// Bumped every time the level set changes (merge commit or global
    /// rebuild) — how the engine's live persistence knows a checkpoint is
    /// due, and what the benches report as the merge count.
    epoch: u64,
    /// A mass deletion crossed the global-rebuild threshold while a merge
    /// was in flight; run the rebuild at commit.
    rebuild_pending: bool,
}

impl LeveledHalfspace2 {
    /// An empty structure. `scope` is the anchor every level reads
    /// through; `buffer_cap` defaults to one page worth of records
    /// (min 8), the same threshold the pre-split `DynamicHalfspace2` used.
    pub fn new(
        scope: &DeviceHandle,
        cfg: Hs2dConfig,
        backing: LevelBacking,
        buffer_cap: Option<usize>,
    ) -> LeveledHalfspace2 {
        let cap = buffer_cap.unwrap_or_else(|| scope.records_per_page(20).max(8));
        LeveledHalfspace2 {
            scope: scope.clone(),
            cfg,
            backing,
            delta: DeltaTier::new(cap),
            levels: Vec::new(),
            draining: None,
            live: 0,
            total_slots: 0,
            next_seq: 0,
            epoch: 0,
            rebuild_pending: false,
        }
    }

    /// Reassemble a core from persisted parts (levels already scoped to
    /// `scope`). `next_seq` must exceed every level's sequence.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        scope: &DeviceHandle,
        cfg: Hs2dConfig,
        backing: LevelBacking,
        delta: DeltaTier,
        mut levels: Vec<Level>,
        live: usize,
        total_slots: usize,
    ) -> LeveledHalfspace2 {
        let next_seq = levels.iter().map(|l| l.seq + 1).max().unwrap_or(0);
        levels.sort_by_key(|l| std::cmp::Reverse(l.len()));
        LeveledHalfspace2 {
            scope: scope.clone(),
            cfg,
            backing,
            delta,
            levels,
            draining: None,
            live,
            total_slots,
            next_seq,
            epoch: 0,
            rebuild_pending: false,
        }
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of static levels a query visits (O(log n)) — includes
    /// levels currently being drained by an in-flight merge, which still
    /// serve queries.
    pub fn num_parts(&self) -> usize {
        self.levels.len() + self.draining.as_ref().map_or(0, |d| d.levels.len())
    }

    /// The Section 7 logarithmic-method query bound — one Theorem 3.5
    /// search per level, O(log n · log_B n + t/B) total — as a planner
    /// hint (DESIGN.md §10). Re-read after inserts/removes: the level
    /// count changes as the logarithmic method merges.
    pub fn cost_hint(&self) -> CostHint {
        CostHint::new(CostShape::PartsLog { parts: self.num_parts() as u32 }, self.len())
    }

    /// The anchor scope: all level IOs are accounted here.
    pub fn scope(&self) -> &DeviceHandle {
        &self.scope
    }

    /// The structure's configuration.
    pub fn config(&self) -> Hs2dConfig {
        self.cfg
    }

    /// The mutable tier (buffered inserts + tombstones).
    pub fn delta(&self) -> &DeltaTier {
        &self.delta
    }

    /// The frozen levels, largest first. Excludes levels being drained by
    /// an in-flight merge.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Total slots across levels and buffer, counting tombstoned points.
    pub fn total_slots(&self) -> usize {
        self.total_slots
    }

    /// `true` while a [`MergeHandle`] is outstanding.
    pub fn merge_in_progress(&self) -> bool {
        self.draining.is_some()
    }

    /// How many times the level set has changed (merge commits plus global
    /// rebuilds) since this core was created or restored.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The same structure viewed through `scope` (own cache + stats):
    /// level handles re-scoped, catalog state `Arc`-shared, buffer copied.
    /// The view answers queries exactly like `self` does right now — even
    /// mid-merge, when it serves the draining buffer and levels the same
    /// way the writer does. Updates belong to the original single writer.
    pub fn with_scope(&self, scope: &DeviceHandle) -> LeveledHalfspace2 {
        LeveledHalfspace2 {
            scope: scope.clone(),
            cfg: self.cfg,
            backing: self.backing.clone(),
            delta: self.delta.clone_for_reader(),
            levels: self.levels.iter().map(|l| l.view(scope)).collect(),
            draining: self.draining.as_ref().map(|d| Draining {
                buffer: d.buffer.clone(),
                levels: d.levels.iter().map(|l| l.view(scope)).collect(),
                consumed: d.consumed.clone(),
            }),
            live: self.live,
            total_slots: self.total_slots,
            next_seq: self.next_seq,
            epoch: self.epoch,
            rebuild_pending: false,
        }
    }

    /// A reader clone on a fresh scope over the same pages.
    pub fn fork_reader(&self) -> LeveledHalfspace2 {
        self.with_scope(&self.scope.fork())
    }

    /// Insert a point with a caller-chosen tag (must be unique among live
    /// points if deletion by tag is used). Flushes the delta synchronously
    /// when it fills — unless a background merge is in flight, in which
    /// case the buffer keeps growing until the merge commits (queries
    /// scan it for free either way).
    pub fn insert(&mut self, x: i64, y: i64, tag: u64) {
        self.delta.push(x, y, tag);
        self.live += 1;
        self.total_slots += 1;
        if self.delta.is_full() && self.draining.is_none() {
            self.flush();
        }
    }

    /// Delete by tag; `true` if a live point was removed (lazy tombstone).
    pub fn remove(&mut self, tag: u64) -> bool {
        if let Some(i) = self.delta.position(tag) {
            self.delta.swap_remove(i);
            self.live -= 1;
            self.total_slots -= 1;
            return true;
        }
        let in_static = self.levels.iter().any(|l| l.points.iter().any(|p| p.2 == tag))
            || self.draining.as_ref().is_some_and(|d| {
                d.levels.iter().any(|l| l.points.iter().any(|p| p.2 == tag))
                    || d.buffer.iter().any(|p| p.2 == tag)
            });
        if !in_static || self.delta.is_dead(tag) {
            return false;
        }
        self.delta.tombstone(tag);
        self.live -= 1;
        if self.live * 2 < self.total_slots {
            if self.draining.is_some() {
                self.rebuild_pending = true;
            } else {
                self.rebuild_all();
            }
        }
        true
    }

    /// Drain the delta and every level the logarithmic policy selects,
    /// build the merged level, and commit — all synchronously.
    pub fn flush(&mut self) {
        assert!(self.draining.is_none(), "flush during an in-flight background merge");
        let batch = self.begin_merge();
        let level = self.build_merged_level(batch);
        self.commit(level);
    }

    /// Start a background merge: the merge input is chosen and filtered
    /// now (so the cut is well-defined), the level build runs on a worker
    /// thread, and queries keep serving the pre-merge state. Returns
    /// `None` when there is nothing to merge or a merge is already in
    /// flight. Build IOs are accounted to this structure's scope as the
    /// worker runs.
    pub fn begin_background_merge(&mut self) -> Option<MergeHandle> {
        if self.draining.is_some() {
            return None;
        }
        let batch = self.begin_merge();
        if batch.is_empty() {
            self.commit(None);
            return None;
        }
        let scope = self.scope.clone();
        let backing = self.backing.clone();
        let cfg = self.cfg;
        let seq = self.next_seq;
        self.next_seq += 1;
        let worker = std::thread::spawn(move || build_level(&scope, &backing, cfg, batch, seq));
        Some(MergeHandle { worker })
    }

    /// Join a background merge and install its level: the drained buffer
    /// and levels are dropped, the merged level takes their place, and
    /// consumed tombstones are absolved — one atomic switch from the
    /// query path's point of view.
    pub fn commit_background_merge(&mut self, h: MergeHandle) {
        assert!(self.draining.is_some(), "no merge in flight");
        let level = h.worker.join().expect("level-merge worker panicked");
        self.commit(level);
    }

    /// Choose and take the merge input: the whole delta buffer plus every
    /// level no larger than the accumulated batch (the logarithmic
    /// policy), tombstone-filtered. Leaves the taken state in `draining`,
    /// still serving queries.
    fn begin_merge(&mut self) -> Vec<(i64, i64, u64)> {
        let buffer = self.delta.drain();
        let mut drained_levels: Vec<Level> = Vec::new();
        let mut batch: Vec<(i64, i64, u64)> = buffer.clone();
        loop {
            let acc = batch.len();
            match self.levels.iter().position(|l| l.len() <= acc) {
                Some(i) => {
                    let level = self.levels.swap_remove(i);
                    batch.extend_from_slice(&level.points);
                    drained_levels.push(level);
                }
                None => break,
            }
        }
        let mut consumed = Vec::new();
        batch.retain(|p| {
            if self.delta.is_dead(p.2) {
                consumed.push(p.2);
                false
            } else {
                true
            }
        });
        self.draining = Some(Draining { buffer, levels: drained_levels, consumed });
        batch
    }

    fn build_merged_level(&mut self, batch: Vec<(i64, i64, u64)>) -> Option<Level> {
        if batch.is_empty() {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        build_level(&self.scope, &self.backing, self.cfg, batch, seq)
    }

    fn commit(&mut self, level: Option<Level>) {
        let draining = self.draining.take().expect("commit without a merge in flight");
        let changed = level.is_some() || !draining.levels.is_empty();
        drop(draining.levels); // level devices (PerLevel) release their pages
        for tag in draining.consumed {
            self.delta.absolve(tag);
        }
        if let Some(level) = level {
            self.levels.push(level);
        }
        if changed {
            self.epoch += 1;
        }
        self.levels.sort_by_key(|l| std::cmp::Reverse(l.len()));
        self.total_slots = self.levels.iter().map(|l| l.len()).sum::<usize>() + self.delta.len();
        if self.rebuild_pending {
            self.rebuild_pending = false;
            if self.live * 2 < self.total_slots {
                self.rebuild_all();
            }
        } else if self.delta.is_full() {
            // The buffer overfilled while the merge ran; drain it now.
            self.flush();
        }
    }

    /// Global rebuild (half the slots are tombstoned): collapse everything
    /// live into one level and clear the tombstones.
    fn rebuild_all(&mut self) {
        assert!(self.draining.is_none(), "rebuild during an in-flight background merge");
        let mut all: Vec<(i64, i64, u64)> = self.delta.drain();
        for level in std::mem::take(&mut self.levels) {
            all.extend(level.take_points());
        }
        all.retain(|p| !self.delta.is_dead(p.2));
        self.delta.clear_dead();
        self.epoch += 1;
        self.total_slots = all.len();
        self.live = all.len();
        if all.is_empty() {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let level = build_level(&self.scope, &self.backing, self.cfg, all, seq)
            .expect("non-empty rebuild input");
        self.levels.push(level);
    }

    /// Report the tags of all live points strictly below `y = m·x + c`
    /// (`inclusive` adds on-line points).
    pub fn query_below(&self, m: i64, c: i64, inclusive: bool) -> Vec<u64> {
        self.query_below_stats(m, c, inclusive).0
    }

    pub fn query_below_stats(&self, m: i64, c: i64, inclusive: bool) -> (Vec<u64>, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        let draining_levels = self.draining.iter().flat_map(|d| d.levels.iter());
        for level in self.levels.iter().chain(draining_levels) {
            let (ids, st) = level.structure.query_below_stats(m, c, inclusive);
            stats.ios += st.ios;
            stats.clusterings_visited += st.clusterings_visited;
            stats.clusters_read += st.clusters_read;
            for id in ids {
                let p = level.points[id as usize];
                if !self.delta.is_dead(p.2) {
                    out.push(p.2);
                }
            }
        }
        if let Some(d) = &self.draining {
            // The drained buffer is still in memory (free to scan) but its
            // points can be tombstoned: deletes during a merge never
            // mutate it.
            for &(x, y, tag) in &d.buffer {
                let rhs = m as i128 * x as i128 + c as i128;
                let hit = if inclusive { y as i128 <= rhs } else { (y as i128) < rhs };
                if hit && !self.delta.is_dead(tag) {
                    out.push(tag);
                }
            }
        }
        self.delta.scan_below(m, c, inclusive, &mut out);
        stats.reported = out.len();
        (out, stats)
    }

    /// Visit every live point `(x, y, tag)` host-side: level inputs and
    /// the delta buffer are in memory anyway (they are catalog state), so
    /// the live tier answers the derived query classes by exact
    /// enumeration — zero device IOs, exactness over asymptotics. The
    /// frozen snapshot levels behind the engine's `LiveIndex` take the
    /// annotated/lifted fast paths instead.
    fn for_each_live(&self, mut f: impl FnMut(i64, i64, u64)) {
        let draining_levels = self.draining.iter().flat_map(|d| d.levels.iter());
        for level in self.levels.iter().chain(draining_levels) {
            for &(x, y, tag) in level.points.iter() {
                if !self.delta.is_dead(tag) {
                    f(x, y, tag);
                }
            }
        }
        if let Some(d) = &self.draining {
            for &(x, y, tag) in &d.buffer {
                if !self.delta.is_dead(tag) {
                    f(x, y, tag);
                }
            }
        }
        for &(x, y, tag) in self.delta.buffer() {
            f(x, y, tag);
        }
    }

    /// Count and weight-sum (`Σ x + y`, exact in `i128`) of live points
    /// below `y = m·x + c`.
    pub fn aggregate_below(&self, m: i64, c: i64, inclusive: bool) -> (u64, i128) {
        let (mut count, mut wsum) = (0u64, 0i128);
        self.for_each_live(|x, y, _| {
            let rhs = m as i128 * x as i128 + c as i128;
            let hit = if inclusive { y as i128 <= rhs } else { (y as i128) < rhs };
            if hit {
                count += 1;
                wsum += x as i128 + y as i128;
            }
        });
        (count, wsum)
    }

    /// The `k` live points with the lowest key `y − m·x` among those with
    /// key ≤ `c` (always inclusive), as tags ordered by `(key, tag)`.
    pub fn top_k(&self, m: i64, c: i64, k: usize) -> Vec<u64> {
        let mut cand: Vec<(i128, u64)> = Vec::new();
        self.for_each_live(|x, y, tag| {
            let key = y as i128 - m as i128 * x as i128;
            if key <= c as i128 {
                cand.push((key, tag));
            }
        });
        cand.sort_unstable();
        cand.truncate(k);
        cand.into_iter().map(|(_, tag)| tag).collect()
    }

    /// Tags of live points inside the disk of center `(x, y)` and squared
    /// radius `r2` — exact for arbitrary `i64` coordinates (carry-aware
    /// `u128` distances, [`lcrs_geom::lift::in_disk`]).
    pub fn disk_report(&self, x: i64, y: i64, r2: i64, inclusive: bool) -> Vec<u64> {
        let mut out = Vec::new();
        self.for_each_live(|px, py, tag| {
            if lcrs_geom::lift::in_disk(x, y, r2, px, py, inclusive) {
                out.push(tag);
            }
        });
        out
    }

    /// Serialize the catalog state: every level (its structure *and* its
    /// build input, which rebuilds need), the insert buffer, and the
    /// tombstone set (sorted so equal states serialize to equal bytes).
    /// Page data is captured separately per backing. Panics mid-merge:
    /// commit the outstanding [`MergeHandle`] first.
    pub fn save(&self, w: &mut MetaWriter) {
        assert!(self.draining.is_none(), "save during an in-flight background merge");
        w.usize(self.cfg.cluster_factor);
        w.usize(self.cfg.final_cutoff_factor);
        w.usize(self.cfg.beta_override);
        w.u64(self.cfg.seed);
        w.seq(self.levels.len());
        for level in &self.levels {
            level.structure.save(w);
            w.seq(level.points.len());
            for &(x, y, tag) in level.points.iter() {
                w.i64(x);
                w.i64(y);
                w.u64(tag);
            }
        }
        w.seq(self.delta.len());
        for &(x, y, tag) in self.delta.buffer() {
            w.i64(x);
            w.i64(y);
            w.u64(tag);
        }
        w.usize(self.delta.cap());
        let mut dead: Vec<u64> = self.delta.dead().iter().copied().collect();
        dead.sort_unstable();
        w.seq(dead.len());
        for t in dead {
            w.u64(t);
        }
        w.usize(self.live);
        w.usize(self.total_slots);
    }

    /// Rebuild from metadata written by [`Self::save`], with every level
    /// structure reading through `h` (`Shared` backing — the format the
    /// catalog stores for the `dynamic` kind).
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<LeveledHalfspace2, SnapshotError> {
        let cfg = Hs2dConfig {
            cluster_factor: r.usize()?,
            final_cutoff_factor: r.usize()?,
            beta_override: r.usize()?,
            seed: r.u64()?,
        };
        let n_levels = r.seq()?;
        let mut levels = Vec::with_capacity(n_levels);
        for seq in 0..n_levels {
            let structure = HalfspaceRS2::load(h, r)?;
            let n_pts = r.seq()?;
            let mut points = Vec::with_capacity(n_pts);
            for _ in 0..n_pts {
                points.push((r.i64()?, r.i64()?, r.u64()?));
            }
            if points.len() != structure.len() {
                return Err(r.error("level input length must match its structure"));
            }
            levels.push(Level {
                device: None,
                structure,
                points: Arc::new(points),
                seq: seq as u64,
            });
        }
        let n_buf = r.seq()?;
        let mut buffer = Vec::with_capacity(n_buf);
        for _ in 0..n_buf {
            buffer.push((r.i64()?, r.i64()?, r.u64()?));
        }
        let cap = r.usize()?;
        let n_dead = r.seq()?;
        let mut dead = HashSet::with_capacity(n_dead);
        for _ in 0..n_dead {
            dead.insert(r.u64()?);
        }
        let delta = DeltaTier::restore(buffer, cap, dead);
        let live = r.usize()?;
        let total_slots = r.usize()?;
        Ok(LeveledHalfspace2::restore(
            h,
            cfg,
            LevelBacking::Shared,
            delta,
            levels,
            live,
            total_slots,
        ))
    }
}

/// Build one level from `batch` (the merged, tombstone-filtered input).
/// Runs on the caller thread for synchronous merges and on the worker for
/// background merges; either way the build reads and writes through a
/// handle scoped to `scope`, so build IOs land in the owner's accounting.
fn build_level(
    scope: &DeviceHandle,
    backing: &LevelBacking,
    cfg: Hs2dConfig,
    batch: Vec<(i64, i64, u64)>,
    seq: u64,
) -> Option<Level> {
    if batch.is_empty() {
        return None;
    }
    let coords: Vec<(i64, i64)> = batch.iter().map(|p| (p.0, p.1)).collect();
    match backing {
        LevelBacking::Shared => {
            let structure = HalfspaceRS2::build(scope, &coords, cfg);
            Some(Level { device: None, structure, points: Arc::new(batch), seq })
        }
        LevelBacking::PerLevel { geometry } => {
            let device = Device::new(*geometry);
            let build_handle = (*device).scoped_to(scope);
            let structure = HalfspaceRS2::build(&build_handle, &coords, cfg);
            device.freeze();
            Some(Level { device: Some(device), structure, points: Arc::new(batch), seq })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::DeviceConfig;
    use std::collections::BTreeMap;

    fn check(core: &LeveledHalfspace2, model: &BTreeMap<u64, (i64, i64)>) {
        for (m, c, inclusive) in [(3i64, 500i64, false), (-2, -100, true), (0, 0, false)] {
            let mut got = core.query_below(m, c, inclusive);
            got.sort_unstable();
            let mut want: Vec<u64> = model
                .iter()
                .filter(|(_, &(x, y))| {
                    let rhs = m as i128 * x as i128 + c as i128;
                    if inclusive {
                        y as i128 <= rhs
                    } else {
                        (y as i128) < rhs
                    }
                })
                .map(|(t, _)| *t)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "m={m} c={c}");
        }
    }

    fn per_level_core() -> (Device, LeveledHalfspace2) {
        let anchor = Device::new(DeviceConfig::new(256, 0));
        anchor.freeze();
        let core = LeveledHalfspace2::new(
            &anchor,
            Hs2dConfig::default(),
            LevelBacking::PerLevel { geometry: DeviceConfig::new(256, 0) },
            None,
        );
        (anchor, core)
    }

    #[test]
    fn per_level_backing_matches_model() {
        let (anchor, mut core) = per_level_core();
        let mut model = BTreeMap::new();
        let mut s = 41u64;
        for round in 0..700u64 {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            if round % 4 == 3 && !model.is_empty() {
                let k = *model.keys().nth((s as usize) % model.len()).unwrap();
                assert!(core.remove(k));
                model.remove(&k);
            } else {
                let (x, y) = (((s >> 33) as i64) % 800 - 400, ((s >> 11) as i64) % 800 - 400);
                core.insert(x, y, round);
                model.insert(round, (x, y));
            }
            if round % 113 == 0 {
                check(&core, &model);
                assert_eq!(core.len(), model.len());
            }
        }
        check(&core, &model);
        // Every level sits on its own frozen device; all query IOs land on
        // the anchor scope.
        for level in core.levels() {
            assert!(level.device().expect("per-level device").is_frozen());
        }
        let before = anchor.stats();
        let _ = core.query_below(1, 0, false);
        assert!(anchor.stats().since(before).total() > 0, "query IOs must hit the anchor scope");
    }

    #[test]
    fn background_merge_serves_old_state_until_commit() {
        let (_anchor, mut core) = per_level_core();
        let mut model = BTreeMap::new();
        // 303 is not a multiple of the flush cap, so the delta buffer is
        // non-empty when the merge begins.
        for t in 0..303u64 {
            let (x, y) = ((t as i64 * 37) % 500 - 250, (t as i64 * 91) % 500 - 250);
            core.insert(x, y, t);
            model.insert(t, (x, y));
        }
        check(&core, &model);
        let handle = core.begin_background_merge().expect("merge should have input");
        assert!(core.merge_in_progress());
        // Mid-merge: queries serve the old levels + drained buffer, and
        // mutation keeps working against the delta.
        check(&core, &model);
        for t in 400..440u64 {
            core.insert(t as i64, -(t as i64), t);
            model.insert(t, (t as i64, -(t as i64)));
        }
        assert!(core.remove(5));
        model.remove(&5);
        assert!(core.remove(420)); // a post-begin buffered insert
        model.remove(&420);
        check(&core, &model);
        // A reader forked mid-merge sees the same answers.
        let fork = core.fork_reader();
        check(&fork, &model);
        core.commit_background_merge(handle);
        assert!(!core.merge_in_progress());
        check(&core, &model);
        assert_eq!(core.len(), model.len());
        // The fork taken before commit still answers from the old state.
        check(&fork, &model);
    }

    fn check_derived(core: &LeveledHalfspace2, model: &BTreeMap<u64, (i64, i64)>) {
        // Aggregates, top-k, and disks against the model — the derived
        // query classes must see exactly the live set, even mid-merge.
        for (m, c) in [(3i64, 500i64), (-2, -100), (0, 0)] {
            let got = core.aggregate_below(m, c, true);
            let mut want = (0u64, 0i128);
            let mut keys: Vec<(i128, u64)> = Vec::new();
            for (&t, &(x, y)) in model {
                let key = y as i128 - m as i128 * x as i128;
                if key <= c as i128 {
                    want.0 += 1;
                    want.1 += x as i128 + y as i128;
                    keys.push((key, t));
                }
            }
            assert_eq!(got, want, "aggregate m={m} c={c}");
            keys.sort_unstable();
            keys.truncate(7);
            let want_top: Vec<u64> = keys.into_iter().map(|(_, t)| t).collect();
            assert_eq!(core.top_k(m, c, 7), want_top, "top_k m={m} c={c}");
        }
        for (x, y, r2) in [(0i64, 0i64, 40_000i64), (100, -100, 10_000), (0, 0, -1)] {
            let mut got = core.disk_report(x, y, r2, true);
            got.sort_unstable();
            let mut want: Vec<u64> = model
                .iter()
                .filter(|(_, &(px, py))| lcrs_geom::lift::in_disk(x, y, r2, px, py, true))
                .map(|(&t, _)| t)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "disk ({x},{y},{r2})");
        }
    }

    #[test]
    fn derived_queries_match_model_even_mid_merge() {
        let (_anchor, mut core) = per_level_core();
        let mut model = BTreeMap::new();
        for t in 0..303u64 {
            let (x, y) = ((t as i64 * 37) % 500 - 250, (t as i64 * 91) % 500 - 250);
            core.insert(x, y, t);
            model.insert(t, (x, y));
        }
        check_derived(&core, &model);
        let handle = core.begin_background_merge().expect("merge input");
        for t in 400..430u64 {
            core.insert(t as i64, -(t as i64), t);
            model.insert(t, (t as i64, -(t as i64)));
        }
        assert!(core.remove(5));
        model.remove(&5);
        check_derived(&core, &model); // draining levels + buffer + tombstones
        core.commit_background_merge(handle);
        check_derived(&core, &model);
    }

    #[test]
    fn deferred_rebuild_runs_after_commit() {
        let (_anchor, mut core) = per_level_core();
        for t in 0..200u64 {
            core.insert(t as i64, -(t as i64), t);
        }
        let handle = core.begin_background_merge().expect("merge input");
        // Mass deletion while the merge runs: the rebuild must defer.
        for t in 0..150u64 {
            assert!(core.remove(t));
        }
        assert!(core.merge_in_progress());
        core.commit_background_merge(handle);
        assert_eq!(core.len(), 50);
        // The deferred global rebuild collapsed the tombstones.
        assert!(core.delta().dead_len() < 100, "rebuild must flush tombstones");
        assert_eq!(core.query_below(0, i64::MAX / 4, false).len(), 50);
    }
}
