//! Planar k-nearest-neighbor queries by lifting (Theorem 4.3).
//!
//! Each point `(a, b)` is lifted to the plane `z = a² + b² − 2a·x − 2b·y`;
//! for a query `(x, y)` the plane values order the points by squared
//! Euclidean distance, so the k nearest neighbors are exactly the k lowest
//! planes along the vertical line at `(x, y)` — answered by the Section 4
//! structure in O(log_B n + k/B) expected IOs.

use lcrs_extmem::{DeviceHandle, MetaReader, MetaWriter, SnapshotError};
use lcrs_geom::plane3::Plane3;

use crate::cost::{CostHint, CostShape};
use crate::hs3d::{HalfspaceRS3, Hs3dConfig, QueryStats3};

/// Maximum |coordinate| of k-NN input points so the lift respects the 3D
/// coordinate budget (`a² + b² ≤ 2^21`).
pub const MAX_KNN_COORD: i64 = 1024;

/// k-nearest-neighbor structure over 2D points.
pub struct KnnStructure {
    hs: HalfspaceRS3,
    n: usize,
}

impl KnnStructure {
    /// Preprocess `points` (|coordinate| ≤ [`MAX_KNN_COORD`]).
    pub fn build(dev: &DeviceHandle, points: &[(i64, i64)], cfg: Hs3dConfig) -> KnnStructure {
        let planes: Vec<Plane3> = points
            .iter()
            .map(|&(a, b)| {
                assert!(
                    a.abs() <= MAX_KNN_COORD && b.abs() <= MAX_KNN_COORD,
                    "k-NN point ({a},{b}) outside the lift coordinate budget"
                );
                Plane3::new(-2 * a, -2 * b, a * a + b * b)
            })
            .collect();
        KnnStructure { hs: HalfspaceRS3::build_dual(dev, &planes, cfg), n: points.len() }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Disk pages occupied.
    pub fn pages(&self) -> u64 {
        self.hs.pages()
    }

    /// The Theorem 4.3 query bound — O(log_B n + k/B) expected, via the
    /// lifted 3D structure — as a planner hint (DESIGN.md §10).
    pub fn cost_hint(&self) -> CostHint {
        CostHint::new(CostShape::Logarithmic, self.len())
    }

    /// The device this structure lives on (for scoped IO measurement).
    pub fn device(&self) -> &DeviceHandle {
        self.hs.device()
    }

    /// The same on-disk structure viewed through `h` (own cache + stats).
    pub fn with_handle(&self, h: &DeviceHandle) -> KnnStructure {
        KnnStructure { hs: self.hs.with_handle(h), n: self.n }
    }

    /// A reader clone on a fresh handle scope over the same pages — each
    /// parallel worker calls this to get its own LRU and IO attribution.
    pub fn fork_reader(&self) -> KnnStructure {
        self.with_handle(&self.device().fork())
    }

    /// Serialize the structure's metadata (the lifted 3D structure plus
    /// the point count); pages are captured by
    /// [`lcrs_extmem::Device::freeze_to_path`].
    pub fn save(&self, w: &mut MetaWriter) {
        self.hs.save(w);
        w.usize(self.n);
    }

    /// Rebuild from metadata written by [`Self::save`].
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<KnnStructure, SnapshotError> {
        Ok(KnnStructure { hs: HalfspaceRS3::load(h, r)?, n: r.usize()? })
    }

    /// Indices of the k nearest neighbors of `(x, y)`, closest first (ties
    /// broken by index).
    pub fn k_nearest(&self, x: i64, y: i64, k: usize) -> Vec<u32> {
        self.k_nearest_stats(x, y, k).0
    }

    /// Report all points within Euclidean distance √`r2` of `(x, y)`
    /// (circular range reporting — the lift turns the disk into a halfspace
    /// below the point `(x, y, r² − x² − y²)`). `inclusive` keeps points at
    /// exactly the radius.
    pub fn within_radius(&self, x: i64, y: i64, r2: i64, inclusive: bool) -> Vec<u32> {
        // Lifted plane value at (x,y) is |p-(x,y)|² − (x²+y²); the
        // threshold for dist² ≤ r² is r² − x² − y².
        let w = r2 - x * x - y * y;
        self.hs.query_below(x, y, w, inclusive)
    }

    /// [`Self::k_nearest`] with measured statistics.
    pub fn k_nearest_stats(&self, x: i64, y: i64, k: usize) -> (Vec<u32>, QueryStats3) {
        let before = self.hs.device().stats();
        let mut stats = QueryStats3::default();
        let ids: Vec<u32> =
            self.hs.k_lowest(x, y, k, &mut stats).into_iter().map(|(id, _)| id).collect();
        stats.reported = ids.len();
        stats.ios = self.hs.device().stats().since(before).total();
        (ids, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::{Device, DeviceConfig};

    fn pseudo_points(n: usize, seed: u64) -> Vec<(i64, i64)> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i64).rem_euclid(2 * MAX_KNN_COORD) - MAX_KNN_COORD
        };
        (0..n).map(|_| (next(), next())).collect()
    }

    fn brute_knn(points: &[(i64, i64)], x: i64, y: i64, k: usize) -> Vec<u32> {
        let mut d: Vec<(i128, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                let dx = (x - a) as i128;
                let dy = (y - b) as i128;
                (dx * dx + dy * dy, i as u32)
            })
            .collect();
        d.sort();
        d.truncate(k);
        d.into_iter().map(|(_, i)| i).collect()
    }

    #[test]
    fn matches_brute_force() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo_points(400, 77);
        let knn = KnnStructure::build(&dev, &pts, Hs3dConfig::default());
        let mut s = 5u64;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as i64).rem_euclid(2 * MAX_KNN_COORD) - MAX_KNN_COORD
        };
        for _ in 0..25 {
            let (x, y) = (next(), next());
            for k in [1usize, 3, 10, 50] {
                let got = knn.k_nearest(x, y, k);
                let want = brute_knn(&pts, x, y, k);
                // Squared distances must agree position by position (indices
                // may differ only between equidistant points; the lift
                // breaks ties by plane id = input id, as does brute force).
                assert_eq!(got, want, "k={k} at ({x},{y})");
            }
        }
    }

    #[test]
    fn k_larger_than_n() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo_points(20, 3);
        let knn = KnnStructure::build(&dev, &pts, Hs3dConfig::default());
        let got = knn.k_nearest(0, 0, 100);
        assert_eq!(got.len(), 20);
        assert_eq!(got, brute_knn(&pts, 0, 0, 20));
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo_points(300, 21);
        let knn = KnnStructure::build(&dev, &pts, Hs3dConfig::default());
        let mut s = 3u64;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as i64).rem_euclid(2 * MAX_KNN_COORD) - MAX_KNN_COORD
        };
        for trial in 0..20 {
            let (x, y) = (next(), next());
            let r2 = (trial as i64 + 1) * 40_000;
            for inclusive in [false, true] {
                let mut got = knn.within_radius(x, y, r2, inclusive);
                got.sort_unstable();
                let want: Vec<u32> = pts
                    .iter()
                    .enumerate()
                    .filter(|(_, &(a, b))| {
                        let d2 = (x - a).pow(2) + (y - b).pow(2);
                        if inclusive {
                            d2 <= r2
                        } else {
                            d2 < r2
                        }
                    })
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "r2={r2} at ({x},{y})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "lift coordinate budget")]
    fn rejects_out_of_budget_points() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let _ = KnnStructure::build(&dev, &[(5000, 0)], Hs3dConfig::default());
    }
}
