//! The optimal two-dimensional structure (Section 3, Theorem 3.5).
//!
//! Points are dualized to lines (Lemma 2.1); the lines are partitioned into
//! subsets L_1, L_2, …, L_m where L_i is the set of lines passing below a
//! random level λ_i ∈ [β, 2β] (β = B·log_B n) of the arrangement of the
//! remaining lines H_i, stored as a greedy 3λ-clustering (Lemma 3.2). A
//! query visits clusterings in order: it locates the relevant cluster with a
//! B-tree on the boundary abscissae, and either *halts* — fewer than λ_i
//! lines of the cluster below the query point means, by Lemma 3.1, that the
//! cluster contains every remaining line below the point — or reports L_i's
//! lines below the point by scanning neighboring clusters until the
//! stopping rule of Lemma 3.4 fires, then proceeds to L_{i+1}.
//!
//! Total: O(n) blocks and O(log_B n + t) IOs per query, worst case.

pub mod cluster;

use std::collections::HashSet;

use lcrs_extmem::btree::BPlusTree;
use lcrs_extmem::{DeviceHandle, MetaReader, MetaWriter, Record, SnapshotError, VecFile};
use lcrs_geom::dual::point2_to_line;
use lcrs_geom::line2::Line2;
use lcrs_geom::rational::Rat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cost::{CostHint, CostShape};
use cluster::greedy_clustering;

/// A cluster-file record: (line id, slope, intercept). The id is the
/// original point index when the input had no duplicate points, otherwise a
/// dense unique-line index expanded through the duplicate tables.
type LineRec = (u32, (i64, i64));

/// Exact rational B-tree key (canonicalized so equal values are bitwise
/// equal), ordered by value. Boundary abscissae are crossings of two dual
/// lines, so numerator and denominator fit i64 within the 2D budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatKey {
    num: i64,
    den: i64,
}

impl RatKey {
    pub fn new(num: i128, den: i128) -> RatKey {
        assert!(den != 0);
        let (mut num, mut den) = if den < 0 { (-num, -den) } else { (num, den) };
        let g = (gcd(num.unsigned_abs(), den.unsigned_abs()).max(1)) as i128;
        num /= g;
        den /= g;
        assert!(
            i64::try_from(num).is_ok() && i64::try_from(den).is_ok(),
            "boundary abscissa exceeds the 2D coordinate budget"
        );
        RatKey { num: num as i64, den: den as i64 }
    }

    pub fn from_rat(r: Rat) -> RatKey {
        let (n, d) = r.parts();
        RatKey::new(n, d)
    }

    pub fn from_int(v: i64) -> RatKey {
        RatKey { num: v, den: 1 }
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ord for RatKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.num as i128 * other.den as i128).cmp(&(other.num as i128 * self.den as i128))
    }
}
impl PartialOrd for RatKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Record for RatKey {
    const SIZE: usize = 16;
    fn store(&self, buf: &mut [u8]) {
        self.num.store(&mut buf[..8]);
        self.den.store(&mut buf[8..]);
    }
    fn load(buf: &[u8]) -> Self {
        RatKey { num: i64::load(&buf[..8]), den: i64::load(&buf[8..]) }
    }
}

/// Per line-slot annotation, parallel to `lines`: the cluster index where
/// this line's contiguous occurrence run starts within the clustering
/// (Corollary 3.3 — a line's cluster occurrences form one contiguous run),
/// plus the duplicate-expanded point count and weight sum the line
/// contributes. Read only by the aggregate path; the report path never
/// touches these pages.
#[derive(Debug, Clone, Copy, Default)]
struct AnnRec {
    start: u32,
    pcount: u32,
    wsum: i64,
}

impl Record for AnnRec {
    const SIZE: usize = 16;
    fn store(&self, buf: &mut [u8]) {
        self.start.store(buf);
        self.pcount.store(&mut buf[4..]);
        self.wsum.store(&mut buf[8..]);
    }
    fn load(buf: &[u8]) -> Self {
        AnnRec { start: u32::load(buf), pcount: u32::load(&buf[4..]), wsum: i64::load(&buf[8..]) }
    }
}

/// Per-cluster aggregate annotation: duplicate-expanded totals over all
/// lines of the cluster, totals over only the lines whose occurrence run
/// *starts* at this cluster ("new" lines — the dedup unit of the
/// aggregate walk), and a conservative geometric certificate
/// (`m_min`/`m_max`/`b_max`) proving every line of the cluster passes
/// below a query point without reading the lines.
#[derive(Debug, Clone, Copy, Default)]
struct AggRec {
    pcount_total: u64,
    wsum_total: i64,
    pcount_new: u64,
    wsum_new: i64,
    m_min: i64,
    m_max: i64,
    b_max: i64,
}

impl Record for AggRec {
    const SIZE: usize = 56;
    fn store(&self, buf: &mut [u8]) {
        self.pcount_total.store(buf);
        self.wsum_total.store(&mut buf[8..]);
        self.pcount_new.store(&mut buf[16..]);
        self.wsum_new.store(&mut buf[24..]);
        self.m_min.store(&mut buf[32..]);
        self.m_max.store(&mut buf[40..]);
        self.b_max.store(&mut buf[48..]);
    }
    fn load(buf: &[u8]) -> Self {
        AggRec {
            pcount_total: u64::load(buf),
            wsum_total: i64::load(&buf[8..]),
            pcount_new: u64::load(&buf[16..]),
            wsum_new: i64::load(&buf[24..]),
            m_min: i64::load(&buf[32..]),
            m_max: i64::load(&buf[40..]),
            b_max: i64::load(&buf[48..]),
        }
    }
}

/// One clustering Γ_i on disk.
struct ClusteringDisk {
    lambda: usize,
    n_clusters: usize,
    /// Boundary abscissa → index of the cluster to its right.
    boundaries: BPlusTree<RatKey, u32>,
    /// Cluster index → (offset, length) into `lines`.
    dir: VecFile<(u64, u32)>,
    /// Concatenated clusters, each sorted by line id.
    lines: VecFile<LineRec>,
    /// Per-slot run-start/weight annotations, parallel to `lines`.
    ann: VecFile<AnnRec>,
    /// Per-cluster aggregates, parallel to `dir`.
    aggs: VecFile<AggRec>,
}

impl ClusteringDisk {
    fn with_handle(&self, h: &DeviceHandle) -> ClusteringDisk {
        ClusteringDisk {
            lambda: self.lambda,
            n_clusters: self.n_clusters,
            boundaries: self.boundaries.with_handle(h),
            dir: self.dir.with_handle(h),
            lines: self.lines.with_handle(h),
            ann: self.ann.with_handle(h),
            aggs: self.aggs.with_handle(h),
        }
    }

    fn save(&self, w: &mut MetaWriter) {
        w.usize(self.lambda);
        w.usize(self.n_clusters);
        self.boundaries.save(w);
        self.dir.save(w);
        self.lines.save(w);
        self.ann.save(w);
        self.aggs.save(w);
    }

    fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<ClusteringDisk, SnapshotError> {
        Ok(ClusteringDisk {
            lambda: r.usize()?,
            n_clusters: r.usize()?,
            boundaries: BPlusTree::load(h, r)?,
            dir: VecFile::load(h, r)?,
            lines: VecFile::load(h, r)?,
            ann: VecFile::load(h, r)?,
            aggs: VecFile::load(h, r)?,
        })
    }

    /// Aggregate contribution of cluster `k` for the dual query point
    /// `(px, py)`: `(lines_below, new, carry)` where `new` and `carry`
    /// are `(point count, weight sum)` over the below lines whose runs
    /// start at `k` resp. strictly before `k`. Lines *above* the query
    /// point are inserted into `above` (for the Lemma 3.4 stopping rule).
    /// When the persisted certificate proves every line of the cluster
    /// below, nothing is read beyond the one `AggRec` — the aggregate
    /// fast path — and the stopping bookkeeping is unchanged, because a
    /// provably all-below cluster contributes zero above lines exactly
    /// like a scanned one would.
    fn aggregate_cluster(
        &self,
        k: usize,
        px: i64,
        py: i64,
        inclusive: bool,
        above: Option<&mut HashSet<u32>>,
        stats: &mut QueryStats,
    ) -> (usize, (u64, i128), (u64, i128)) {
        let a = self.aggs.get(k);
        let (off, len) = self.dir.get(k);
        // Certificate: every line's value at px is at most
        // max(m_min·px, m_max·px) + b_max.
        let all_below = len == 0 || {
            let worst =
                (a.m_min as i128 * px as i128).max(a.m_max as i128 * px as i128) + a.b_max as i128;
            if inclusive {
                worst <= py as i128
            } else {
                worst < py as i128
            }
        };
        if all_below {
            stats.clusters_skipped += 1;
            let carry = (a.pcount_total - a.pcount_new, a.wsum_total as i128 - a.wsum_new as i128);
            return (len as usize, (a.pcount_new, a.wsum_new as i128), carry);
        }
        let range = off as usize..off as usize + len as usize;
        let mut buf: Vec<LineRec> = Vec::new();
        let mut ann: Vec<AnnRec> = Vec::new();
        self.lines.read_range(range.clone(), &mut buf);
        self.ann.read_range(range, &mut ann);
        stats.clusters_read += 1;
        let mut n_below = 0usize;
        let (mut new, mut carry) = ((0u64, 0i128), (0u64, 0i128));
        let mut above = above;
        for (r, an) in buf.iter().zip(&ann) {
            let v = r.1 .0 as i128 * px as i128 + r.1 .1 as i128;
            let below = if inclusive { v <= py as i128 } else { v < py as i128 };
            if below {
                n_below += 1;
                let acc = if an.start as usize == k { &mut new } else { &mut carry };
                acc.0 += u64::from(an.pcount);
                acc.1 += i128::from(an.wsum);
            } else if let Some(ab) = above.as_deref_mut() {
                ab.insert(r.0);
            }
        }
        (n_below, new, carry)
    }
}

/// Construction parameters (paper defaults; EXP-ABL varies them).
#[derive(Debug, Clone, Copy)]
pub struct Hs2dConfig {
    /// Cluster size factor (the paper's 3 in "3k-clustering").
    pub cluster_factor: usize,
    /// Multiplier on β for the final-subset cutoff (paper analysis: any
    /// constant > factor·2 works; we use 6).
    pub final_cutoff_factor: usize,
    /// Override β (0 = the paper's B·⌈log_B n⌉).
    pub beta_override: usize,
    /// RNG seed for the random level choices.
    pub seed: u64,
}

impl Default for Hs2dConfig {
    fn default() -> Self {
        Hs2dConfig {
            cluster_factor: 3,
            final_cutoff_factor: 6,
            beta_override: 0,
            seed: 0x1cbe991a14,
        }
    }
}

/// Statistics of one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    pub ios: u64,
    pub clusterings_visited: usize,
    pub clusters_read: usize,
    /// Clusters the aggregate path answered from their persisted
    /// `AggRec` certificate without reading any line (always 0 on the
    /// report path).
    pub clusters_skipped: usize,
    pub reported: usize,
}

/// The Theorem 3.5 structure.
pub struct HalfspaceRS2 {
    dev: DeviceHandle,
    clusterings: Vec<ClusteringDisk>,
    n_points: usize,
    n_lines: usize,
    beta: usize,
    /// Duplicate-point expansion: line id → (offset, len) into `group_pts`;
    /// `None` when the input points were distinct (ids are point indices).
    group_dir: Option<VecFile<(u64, u32)>>,
    group_pts: Option<VecFile<u32>>,
    pages_at_build_end: u64,
}

impl HalfspaceRS2 {
    /// Preprocess `points` (pairs `(x, y)`, |coord| ≤ 2^30) for
    /// linear-constraint queries on the given device.
    pub fn build(dev: &DeviceHandle, points: &[(i64, i64)], cfg: Hs2dConfig) -> HalfspaceRS2 {
        for &(x, y) in points {
            assert!(
                x.abs() <= lcrs_geom::MAX_COORD_2D && y.abs() <= lcrs_geom::MAX_COORD_2D,
                "point ({x},{y}) outside the 2D coordinate budget"
            );
        }
        // Dualize and group duplicates.
        let mut order: Vec<u32> = (0..points.len() as u32).collect();
        order.sort_by_key(|&i| points[i as usize]);
        let mut lines: Vec<Line2> = Vec::new();
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for &i in &order {
            let l = point2_to_line(points[i as usize].0, points[i as usize].1);
            if lines.last() == Some(&l) {
                groups.last_mut().unwrap().push(i);
            } else {
                lines.push(l);
                groups.push(vec![i]);
            }
        }
        let has_dups = groups.iter().any(|g| g.len() > 1);
        let n_lines = lines.len();

        // Line ids used inside cluster files.
        let ids: Vec<u32> = if has_dups {
            (0..n_lines as u32).collect()
        } else {
            groups.iter().map(|g| g[0]).collect()
        };
        let id_of = |li: usize| ids[li];
        // Geometry lookup by public id (dense enough either way), plus the
        // duplicate-expanded aggregate a line contributes: its group's
        // point count and weight sum (weight of a point (x, y) is x + y).
        let mut geom_by_id: Vec<Line2> = vec![Line2::new(0, 0); points.len().max(n_lines)];
        let mut agg_by_id: Vec<(u32, i64)> = vec![(0, 0); points.len().max(n_lines)];
        for (li, &id) in ids.iter().enumerate() {
            geom_by_id[id as usize] = lines[li];
            let mut wsum = 0i128;
            for &p in &groups[li] {
                let (x, y) = points[p as usize];
                wsum += x as i128 + y as i128;
            }
            agg_by_id[id as usize] =
                (groups[li].len() as u32, i64::try_from(wsum).expect("group weight sum fits i64"));
        }

        let per_page = dev.records_per_page(<LineRec as Record>::SIZE);
        let n_blocks = n_lines.div_ceil(per_page).max(1);
        let beta = if cfg.beta_override > 0 {
            cfg.beta_override
        } else {
            let logb = if n_blocks <= 1 {
                1.0
            } else {
                (n_blocks as f64).ln() / (per_page.max(2) as f64).ln()
            };
            (per_page as f64 * logb.max(1.0)).ceil() as usize
        };
        let beta = beta.max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Iteratively peel clusterings off the remaining set H.
        let mut h: Vec<u32> = (0..n_lines as u32).collect(); // dense line indices
        let mut clusterings = Vec::new();
        while !h.is_empty() {
            if h.len() <= cfg.final_cutoff_factor * beta {
                // Final subset: one cluster holding everything; λ chosen so
                // the halting test always fires here.
                let mut all: Vec<u32> = h.iter().map(|&li| id_of(li as usize)).collect();
                all.sort_unstable();
                let built = vec![all];
                clusterings.push(Self::write_clustering(
                    dev,
                    h.len() + 1,
                    &[],
                    &built,
                    &geom_by_id,
                    &agg_by_id,
                ));
                break;
            }
            let lambda = rng.gen_range(beta..=2 * beta);
            debug_assert!(lambda < h.len());
            let built = greedy_clustering(&lines, &h, lambda, cfg.cluster_factor);
            // Translate dense indices to public ids when writing.
            let clusters_pub: Vec<Vec<u32>> = built
                .clusters
                .iter()
                .map(|c| {
                    let mut v: Vec<u32> = c.iter().map(|&li| id_of(li as usize)).collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            clusterings.push(Self::write_clustering(
                dev,
                lambda,
                &built.boundaries,
                &clusters_pub,
                &geom_by_id,
                &agg_by_id,
            ));
            // H ← H \ L_i (both sorted ascending).
            let mut next = Vec::with_capacity(h.len() - built.covered.len());
            let mut ci = 0;
            for &li in &h {
                if ci < built.covered.len() && built.covered[ci] == li {
                    ci += 1;
                } else {
                    next.push(li);
                }
            }
            assert!(next.len() < h.len(), "construction must make progress");
            h = next;
        }

        // Duplicate expansion tables.
        let (group_dir, group_pts) = if has_dups {
            let mut dir = Vec::with_capacity(n_lines);
            let mut pts = Vec::new();
            for g in &groups {
                dir.push((pts.len() as u64, g.len() as u32));
                pts.extend_from_slice(g);
            }
            (Some(VecFile::from_slice(dev, &dir)), Some(VecFile::from_slice(dev, &pts)))
        } else {
            (None, None)
        };

        HalfspaceRS2 {
            dev: dev.clone(),
            clusterings,
            n_points: points.len(),
            n_lines,
            beta,
            group_dir,
            group_pts,
            pages_at_build_end: dev.pages_allocated(),
        }
    }

    fn write_clustering(
        dev: &DeviceHandle,
        lambda: usize,
        boundaries: &[Rat],
        clusters: &[Vec<u32>],
        geom_by_id: &[Line2],
        agg_by_id: &[(u32, i64)],
    ) -> ClusteringDisk {
        let mut dir: Vec<(u64, u32)> = Vec::with_capacity(clusters.len());
        let mut recs: Vec<LineRec> = Vec::new();
        let mut anns: Vec<AnnRec> = Vec::new();
        let mut aggs: Vec<AggRec> = Vec::with_capacity(clusters.len());
        // Run starts: first occurrence cluster per line id; Corollary 3.3
        // guarantees occurrences are contiguous, which the dedup convention
        // of the aggregate walk relies on — assert it at build time.
        let mut runs: std::collections::HashMap<u32, (u32, u32)> = std::collections::HashMap::new();
        for (k, c) in clusters.iter().enumerate() {
            dir.push((recs.len() as u64, c.len() as u32));
            let mut agg = AggRec { b_max: i64::MIN, ..Default::default() };
            let mut first = true;
            for &id in c {
                let l = geom_by_id[id as usize];
                recs.push((id, (l.m, l.b)));
                let start = match runs.entry(id) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let (start, last) = *e.get();
                        assert!(
                            last + 1 == k as u32,
                            "line {id} recurs non-contiguously (Corollary 3.3 violated)"
                        );
                        e.insert((start, k as u32));
                        start
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((k as u32, k as u32));
                        k as u32
                    }
                };
                let (pcount, wsum) = agg_by_id[id as usize];
                anns.push(AnnRec { start, pcount, wsum });
                agg.pcount_total += u64::from(pcount);
                agg.wsum_total = agg.wsum_total.checked_add(wsum).expect("weight sum fits i64");
                if start == k as u32 {
                    agg.pcount_new += u64::from(pcount);
                    agg.wsum_new = agg.wsum_new.checked_add(wsum).expect("weight sum fits i64");
                }
                if first {
                    (agg.m_min, agg.m_max) = (l.m, l.m);
                    first = false;
                } else {
                    agg.m_min = agg.m_min.min(l.m);
                    agg.m_max = agg.m_max.max(l.m);
                }
                agg.b_max = agg.b_max.max(l.b);
            }
            aggs.push(agg);
        }
        // Boundary B-tree: key = abscissa, value = cluster index to the
        // right. Duplicate abscissae (degenerate concurrences) keep the
        // rightmost cluster.
        let mut pairs: Vec<(RatKey, u32)> = boundaries
            .iter()
            .enumerate()
            .map(|(k, w)| (RatKey::from_rat(*w), k as u32 + 1))
            .collect();
        pairs.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 = a.1.max(b.1);
                true
            } else {
                false
            }
        });
        let btree = BPlusTree::bulk_load(dev, &pairs);
        ClusteringDisk {
            lambda,
            n_clusters: clusters.len(),
            boundaries: btree,
            dir: VecFile::from_slice(dev, &dir),
            lines: VecFile::from_slice(dev, &recs),
            ann: VecFile::from_slice(dev, &anns),
            aggs: VecFile::from_slice(dev, &aggs),
        }
    }

    /// Number of input points.
    pub fn len(&self) -> usize {
        self.n_points
    }

    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// The device this structure lives on (for scoped IO measurement).
    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// The same on-disk structure viewed through `h` (own cache + stats).
    pub fn with_handle(&self, h: &DeviceHandle) -> HalfspaceRS2 {
        HalfspaceRS2 {
            dev: h.clone(),
            clusterings: self.clusterings.iter().map(|c| c.with_handle(h)).collect(),
            n_points: self.n_points,
            n_lines: self.n_lines,
            beta: self.beta,
            group_dir: self.group_dir.as_ref().map(|f| f.with_handle(h)),
            group_pts: self.group_pts.as_ref().map(|f| f.with_handle(h)),
            pages_at_build_end: self.pages_at_build_end,
        }
    }

    /// A reader clone on a fresh handle scope over the same pages — each
    /// parallel worker calls this to get its own LRU and IO attribution.
    pub fn fork_reader(&self) -> HalfspaceRS2 {
        self.with_handle(&self.dev.fork())
    }

    /// Serialize the structure's host-side metadata (clustering directory,
    /// boundary-tree roots, duplicate tables); the page data is captured
    /// separately by [`lcrs_extmem::Device::freeze_to_path`].
    pub fn save(&self, w: &mut MetaWriter) {
        w.seq(self.clusterings.len());
        for c in &self.clusterings {
            c.save(w);
        }
        w.usize(self.n_points);
        w.usize(self.n_lines);
        w.usize(self.beta);
        w.opt(self.group_dir.is_some());
        if let Some(f) = &self.group_dir {
            f.save(w);
        }
        w.opt(self.group_pts.is_some());
        if let Some(f) = &self.group_pts {
            f.save(w);
        }
        w.u64(self.pages_at_build_end);
    }

    /// Rebuild from metadata written by [`Self::save`], reading pages
    /// through `h` (typically a device reopened with
    /// [`lcrs_extmem::Device::open_snapshot`]).
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<HalfspaceRS2, SnapshotError> {
        let n_clusterings = r.seq()?;
        let mut clusterings = Vec::with_capacity(n_clusterings);
        for _ in 0..n_clusterings {
            clusterings.push(ClusteringDisk::load(h, r)?);
        }
        let n_points = r.usize()?;
        let n_lines = r.usize()?;
        let beta = r.usize()?;
        let group_dir = if r.opt()? { Some(VecFile::load(h, r)?) } else { None };
        let group_pts = if r.opt()? { Some(VecFile::load(h, r)?) } else { None };
        if group_dir.is_some() != group_pts.is_some() {
            return Err(r.error("duplicate tables must be both present or both absent"));
        }
        Ok(HalfspaceRS2 {
            dev: h.clone(),
            clusterings,
            n_points,
            n_lines,
            beta,
            group_dir,
            group_pts,
            pages_at_build_end: r.u64()?,
        })
    }

    /// Distinct dual lines.
    pub fn unique_points(&self) -> usize {
        self.n_lines
    }

    /// The β = B·⌈log_B n⌉ used at construction.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// Number of clusterings (the paper's m ≤ n / log_B n).
    pub fn num_clusterings(&self) -> usize {
        self.clusterings.len()
    }

    /// Disk pages this structure occupies (its linear-space footprint).
    pub fn pages(&self) -> u64 {
        self.pages_at_build_end
    }

    /// The Theorem 3.5 query bound — O(log_B n + t/B) — as a planner hint
    /// (DESIGN.md §10).
    pub fn cost_hint(&self) -> CostHint {
        CostHint::new(CostShape::Logarithmic, self.len())
    }

    /// Report all points strictly below the line `y = m·x + c`
    /// (`inclusive` additionally reports points exactly on it). Returns
    /// original point indices, unordered.
    pub fn query_below(&self, m: i64, c: i64, inclusive: bool) -> Vec<u32> {
        self.query_below_stats(m, c, inclusive).0
    }

    /// The cluster-cascade walk shared by the report and top-k paths:
    /// every distinct dual line below the query point `(px, py)`, in
    /// first-seen order, with partial stats (IOs are finalized by the
    /// caller).
    fn below_lines(&self, px: i64, py: i64, inclusive: bool) -> (Vec<LineRec>, QueryStats) {
        let below = |lm: i64, lb: i64| -> bool {
            let v = lm as i128 * px as i128 + lb as i128;
            if inclusive {
                v <= py as i128
            } else {
                v < py as i128
            }
        };

        let mut reported_ids: HashSet<u32> = HashSet::new();
        let mut out: Vec<LineRec> = Vec::new();
        let mut stats = QueryStats::default();
        let mut report = |r: &LineRec, out: &mut Vec<LineRec>| {
            if reported_ids.insert(r.0) {
                out.push(*r);
            }
        };

        'clusterings: for g in &self.clusterings {
            stats.clusterings_visited += 1;
            // Relevant cluster.
            let j = g.boundaries.floor(&RatKey::from_int(px)).map(|(_, v)| v as usize).unwrap_or(0);
            let mut buf: Vec<LineRec> = Vec::new();
            let read_cluster = |idx: usize, buf: &mut Vec<LineRec>| {
                buf.clear();
                let (off, len) = g.dir.get(idx);
                g.lines.read_range(off as usize..off as usize + len as usize, buf);
            };
            read_cluster(j, &mut buf);
            stats.clusters_read += 1;
            let below_j: Vec<LineRec> =
                buf.iter().filter(|r| below(r.1 .0, r.1 .1)).copied().collect();
            let halt = below_j.len() < g.lambda;
            for r in &below_j {
                report(r, &mut out);
            }
            if halt {
                // Lemma 3.1: the relevant cluster contains every remaining
                // line below the query point — report and halt.
                break 'clusterings;
            }
            // Rightward scan (Lemma 3.4).
            let mut above_right: HashSet<u32> = HashSet::new();
            for k in j + 1..g.n_clusters {
                read_cluster(k, &mut buf);
                stats.clusters_read += 1;
                for r in &buf {
                    if below(r.1 .0, r.1 .1) {
                        report(r, &mut out);
                    } else {
                        above_right.insert(r.0);
                    }
                }
                if above_right.len() > g.lambda {
                    break;
                }
            }
            // Leftward scan.
            let mut above_left: HashSet<u32> = HashSet::new();
            for k in (0..j).rev() {
                read_cluster(k, &mut buf);
                stats.clusters_read += 1;
                for r in &buf {
                    if below(r.1 .0, r.1 .1) {
                        report(r, &mut out);
                    } else {
                        above_left.insert(r.0);
                    }
                }
                if above_left.len() > g.lambda {
                    break;
                }
            }
        }
        (out, stats)
    }

    /// [`Self::query_below`] with measured IO statistics.
    pub fn query_below_stats(&self, m: i64, c: i64, inclusive: bool) -> (Vec<u32>, QueryStats) {
        let before = self.dev.stats();
        let (lines, mut stats) = self.below_lines(m, c, inclusive);
        let out: Vec<u32> = lines.iter().map(|r| r.0).collect();

        // Expand duplicate groups with page-batched reads: directory
        // entries in id order, then point slots in offset order, paying one
        // IO per distinct page rather than one per reported line.
        let result = if let (Some(dir), Some(pts)) = (&self.group_dir, &self.group_pts) {
            let mut ids: Vec<usize> = out.iter().map(|&i| i as usize).collect();
            ids.sort_unstable();
            let mut entries: Vec<(u64, u32)> = Vec::with_capacity(ids.len());
            dir.get_many(&ids, &mut entries);
            let mut slots: Vec<usize> = entries
                .iter()
                .flat_map(|&(off, len)| off as usize..off as usize + len as usize)
                .collect();
            slots.sort_unstable();
            let mut expanded = Vec::with_capacity(slots.len());
            pts.get_many(&slots, &mut expanded);
            expanded
        } else {
            out
        };
        stats.reported = result.len();
        stats.ios = self.dev.stats().since(before).total();
        (result, stats)
    }

    /// Count and weight-sum (weight of `(x, y)` is `x + y`) of every
    /// point below `y = m·x + c`, *without* enumerating the answer: the
    /// same cluster cascade as [`Self::query_below`], but any cluster
    /// whose persisted certificate proves all its lines below the query
    /// point contributes its pre-aggregated totals at the cost of one
    /// `AggRec` read. Exactness rests on the run-start dedup: each line
    /// is counted at the first cluster of its contiguous occurrence run
    /// inside the scanned interval (Corollary 3.3), so overlapping
    /// clusters never double-count, and the halting/stopping decisions
    /// are bit-identical to the report path (an all-below cluster
    /// contributes zero above lines either way).
    pub fn aggregate_below(&self, m: i64, c: i64, inclusive: bool) -> (u64, i128) {
        self.aggregate_below_stats(m, c, inclusive).0
    }

    /// [`Self::aggregate_below`] with measured IO statistics.
    pub fn aggregate_below_stats(
        &self,
        m: i64,
        c: i64,
        inclusive: bool,
    ) -> ((u64, i128), QueryStats) {
        let before = self.dev.stats();
        let (px, py) = (m, c);
        let (mut count, mut wsum) = (0u64, 0i128);
        let mut stats = QueryStats::default();

        'clusterings: for g in &self.clusterings {
            stats.clusterings_visited += 1;
            let j = g.boundaries.floor(&RatKey::from_int(px)).map(|(_, v)| v as usize).unwrap_or(0);
            let (n_below, new_j, carry_j) =
                g.aggregate_cluster(j, px, py, inclusive, None, &mut stats);
            if n_below < g.lambda {
                // Lemma 3.1 halting: the interval is {j}; every below line
                // of j counts exactly once, wherever its run started.
                count += new_j.0 + carry_j.0;
                wsum += new_j.1 + carry_j.1;
                break 'clusterings;
            }
            count += new_j.0;
            wsum += new_j.1;
            // Carry of the leftmost processed cluster; lines whose runs
            // began left of the scanned interval recur at its left edge
            // (contiguity), so they are counted there once at the end.
            let mut edge_carry = carry_j;
            // Rightward scan (Lemma 3.4): runs of below lines seen here
            // start within the interval, so `new` totals cover them.
            let mut above_right: HashSet<u32> = HashSet::new();
            for k in j + 1..g.n_clusters {
                let (_, new_k, _) =
                    g.aggregate_cluster(k, px, py, inclusive, Some(&mut above_right), &mut stats);
                count += new_k.0;
                wsum += new_k.1;
                if above_right.len() > g.lambda {
                    break;
                }
            }
            // Leftward scan.
            let mut above_left: HashSet<u32> = HashSet::new();
            for k in (0..j).rev() {
                let (_, new_k, carry_k) =
                    g.aggregate_cluster(k, px, py, inclusive, Some(&mut above_left), &mut stats);
                count += new_k.0;
                wsum += new_k.1;
                edge_carry = carry_k;
                if above_left.len() > g.lambda {
                    break;
                }
            }
            // Left-edge fixup.
            count += edge_carry.0;
            wsum += edge_carry.1;
        }

        stats.reported = count as usize;
        stats.ios = self.dev.stats().since(before).total();
        ((count, wsum), stats)
    }

    /// The `k` points of lowest key `y − m·x` among those with
    /// `y − m·x ≤ c` (the candidate halfplane is always inclusive),
    /// ordered by `(key, id)`. The key of a point is exactly its dual
    /// line's value at abscissa `m`, which the cascade walk evaluates
    /// anyway — no extra reads over an inclusive report.
    pub fn top_k(&self, m: i64, c: i64, k: usize) -> Vec<u32> {
        self.top_k_stats(m, c, k).0
    }

    /// [`Self::top_k`] with measured IO statistics.
    pub fn top_k_stats(&self, m: i64, c: i64, k: usize) -> (Vec<u32>, QueryStats) {
        let before = self.dev.stats();
        let (lines, mut stats) = self.below_lines(m, c, true);
        // Dual identity: point (a, b) has key b − m·a = value of its dual
        // line (−a, b) at px = m.
        let mut cand: Vec<(i128, u32)> =
            lines.iter().map(|&(id, (lm, lb))| (lm as i128 * m as i128 + lb as i128, id)).collect();
        // Expand duplicate groups, each member inheriting its line's key
        // (duplicates share coordinates). Group offsets are monotone in
        // line id, so sorting candidates by id keeps slots sorted too.
        if let (Some(dir), Some(pts)) = (&self.group_dir, &self.group_pts) {
            cand.sort_unstable_by_key(|&(_, id)| id);
            let ids: Vec<usize> = cand.iter().map(|&(_, id)| id as usize).collect();
            let mut entries: Vec<(u64, u32)> = Vec::with_capacity(ids.len());
            dir.get_many(&ids, &mut entries);
            let slots: Vec<usize> = entries
                .iter()
                .flat_map(|&(off, len)| off as usize..off as usize + len as usize)
                .collect();
            debug_assert!(slots.windows(2).all(|w| w[0] < w[1]));
            let mut expanded = Vec::with_capacity(slots.len());
            pts.get_many(&slots, &mut expanded);
            let mut cursor = 0usize;
            let mut out = Vec::with_capacity(expanded.len());
            for (&(val, _), &(_, len)) in cand.iter().zip(&entries) {
                for _ in 0..len {
                    out.push((val, expanded[cursor]));
                    cursor += 1;
                }
            }
            cand = out;
        }
        cand.sort_unstable();
        cand.truncate(k);
        let result: Vec<u32> = cand.into_iter().map(|(_, id)| id).collect();
        stats.reported = result.len();
        stats.ios = self.dev.stats().since(before).total();
        (result, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::{Device, DeviceConfig};

    fn pseudo_points(n: usize, seed: u64, range: i64) -> Vec<(i64, i64)> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i64).rem_euclid(2 * range) - range
        };
        (0..n).map(|_| (next(), next())).collect()
    }

    fn brute_force(points: &[(i64, i64)], m: i64, c: i64, inclusive: bool) -> Vec<u32> {
        let mut v: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| {
                let rhs = m as i128 * x as i128 + c as i128;
                if inclusive {
                    (y as i128) <= rhs
                } else {
                    (y as i128) < rhs
                }
            })
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    fn check_queries(points: &[(i64, i64)], hs: &HalfspaceRS2, seed: u64, trials: usize) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as i64).rem_euclid(4000) - 2000
        };
        for t in 0..trials {
            let (m, c) = (next(), next() * 100);
            let inclusive = t % 2 == 0;
            let mut got = hs.query_below(m, c, inclusive);
            got.sort_unstable();
            let want = brute_force(points, m, c, inclusive);
            assert_eq!(got, want, "query y <= {m}x+{c} (inclusive={inclusive})");
        }
    }

    #[test]
    fn tiny_inputs() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        for n in [0usize, 1, 2, 5] {
            let pts = pseudo_points(n, 9 + n as u64, 1000);
            let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
            check_queries(&pts, &hs, 1, 20);
        }
    }

    #[test]
    fn medium_random_matches_brute_force() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts = pseudo_points(500, 42, 100_000);
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        assert!(hs.num_clusterings() >= 1);
        check_queries(&pts, &hs, 7, 60);
    }

    #[test]
    fn multi_clustering_structure() {
        // Force several clusterings with a small page size (small B ⇒ small β).
        let dev = Device::new(DeviceConfig::new(128, 0));
        let pts = pseudo_points(2000, 5, 1_000_000);
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        assert!(hs.num_clusterings() > 1, "expected a multi-level cascade");
        check_queries(&pts, &hs, 3, 40);
    }

    #[test]
    fn duplicate_points_are_all_reported() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let mut pts = pseudo_points(300, 8, 1000);
        // Triple some points.
        for i in 0..60 {
            let p = pts[i * 3];
            pts.push(p);
            pts.push(p);
        }
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        assert!(hs.unique_points() < pts.len());
        check_queries(&pts, &hs, 11, 40);
    }

    #[test]
    fn diagonal_adversarial_input() {
        // The Section 1.2 worst case for heuristic indexes: points on a
        // diagonal, query just above it. Correctness here; IO bounds in the
        // bench harness.
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts: Vec<(i64, i64)> = (0..1500).map(|i| (i, i)).collect();
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        // y <= x + 0 inclusive: everything. strict: nothing.
        let mut all = hs.query_below(1, 0, true);
        all.sort_unstable();
        assert_eq!(all, (0..1500u32).collect::<Vec<_>>());
        assert!(hs.query_below(1, 0, false).is_empty());
        // A slab query: y <= x - c strict picks nothing; y <= x + 1 all.
        assert_eq!(hs.query_below(1, 1, false).len(), 1500);
        check_queries(&pts, &hs, 13, 30);
    }

    #[test]
    fn query_io_scales_with_output_not_n() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo_points(4000, 21, 1 << 20);
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        // A query with tiny output must cost far fewer IOs than n blocks.
        let (res, st) = hs.query_below_stats(0, -(1 << 20) + 1000, false);
        let n_blocks = (hs.unique_points() as u64).div_ceil(512 / 20);
        assert!(res.len() < 50, "output unexpectedly large: {}", res.len());
        assert!(
            st.ios < n_blocks / 2,
            "small-output query cost {} IOs vs n = {} blocks",
            st.ios,
            n_blocks
        );
    }

    fn brute_agg(points: &[(i64, i64)], m: i64, c: i64, inclusive: bool) -> (u64, i128) {
        let mut count = 0u64;
        let mut wsum = 0i128;
        for &(x, y) in points {
            let rhs = m as i128 * x as i128 + c as i128;
            let below = if inclusive { y as i128 <= rhs } else { (y as i128) < rhs };
            if below {
                count += 1;
                wsum += x as i128 + y as i128;
            }
        }
        (count, wsum)
    }

    fn brute_topk(points: &[(i64, i64)], m: i64, c: i64, k: usize) -> Vec<u32> {
        let mut cand: Vec<(i128, u32)> = points
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| y as i128 - m as i128 * x as i128 <= c as i128)
            .map(|(i, &(x, y))| (y as i128 - m as i128 * x as i128, i as u32))
            .collect();
        cand.sort_unstable();
        cand.truncate(k);
        cand.into_iter().map(|(_, id)| id).collect()
    }

    #[test]
    fn aggregates_match_enumeration() {
        let dev = Device::new(DeviceConfig::new(128, 0));
        let mut pts = pseudo_points(1500, 77, 1 << 20);
        for i in 0..50 {
            let p = pts[i * 7];
            pts.push(p); // duplicate groups must be weight-expanded
        }
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        assert!(hs.num_clusterings() > 1, "want a multi-level cascade");
        let mut s = 99u64;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as i64).rem_euclid(4000) - 2000
        };
        for t in 0..60 {
            let (m, c) = (next(), next() * 1000);
            let inclusive = t % 2 == 0;
            let got = hs.aggregate_below(m, c, inclusive);
            assert_eq!(got, brute_agg(&pts, m, c, inclusive), "m={m} c={c} inc={inclusive}");
        }
        // Selectivity extremes, where the certificate skips whole clusters.
        for (m, c) in [(0, i64::MAX / 2), (0, i64::MIN / 2), (3, 1 << 40), (-5, -(1 << 40))] {
            for inclusive in [false, true] {
                assert_eq!(hs.aggregate_below(m, c, inclusive), brute_agg(&pts, m, c, inclusive));
            }
        }
        // A query covering everything must answer mostly from certificates.
        let ((count, _), st) = hs.aggregate_below_stats(0, i64::MAX / 2, true);
        assert_eq!(count as usize, pts.len());
        assert!(st.clusters_skipped > 0, "all-covering query should skip clusters");
        assert!(
            st.clusters_read < hs.query_below_stats(0, i64::MAX / 2, true).1.clusters_read,
            "aggregate path must read fewer clusters than the report path"
        );
    }

    #[test]
    fn aggregates_survive_save_load() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts = pseudo_points(600, 5, 100_000);
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        let mut w = MetaWriter::new();
        hs.save(&mut w);
        let mut r = MetaReader::from_bytes(w.into_bytes()).unwrap();
        let back = HalfspaceRS2::load(&dev, &mut r).unwrap();
        r.finish().unwrap();
        for (m, c, inclusive) in [(3, 50_000, true), (-40, -1, false), (0, 0, true)] {
            assert_eq!(back.aggregate_below(m, c, inclusive), hs.aggregate_below(m, c, inclusive));
            assert_eq!(back.top_k(m, c, 7), hs.top_k(m, c, 7));
        }
    }

    #[test]
    fn top_k_matches_brute_force() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let mut pts = pseudo_points(700, 31, 100_000);
        for i in 0..30 {
            let p = pts[i * 11];
            pts.push(p); // ties across duplicates break by id
        }
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        let mut s = 13u64;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as i64).rem_euclid(4000) - 2000
        };
        for t in 0..40 {
            let (m, c) = (next(), next() * 100);
            let k = (t % 9) + 1;
            assert_eq!(hs.top_k(m, c, k), brute_topk(&pts, m, c, k), "m={m} c={c} k={k}");
        }
        // k larger than the candidate set returns everything, still ordered.
        assert_eq!(hs.top_k(1, i64::MAX / 2, 10_000).len(), pts.len());
        assert_eq!(hs.top_k(1, i64::MIN / 2, 5), brute_topk(&pts, 1, i64::MIN / 2, 5));
    }

    #[test]
    fn cluster_factor_ablation_still_correct() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts = pseudo_points(800, 31, 500_000);
        for factor in [2usize, 4] {
            let cfg = Hs2dConfig { cluster_factor: factor, ..Default::default() };
            let hs = HalfspaceRS2::build(&dev, &pts, cfg);
            check_queries(&pts, &hs, factor as u64, 25);
        }
    }
}
