//! Greedy 3k-clustering of a level (Section 3.1, Lemma 3.2).
//!
//! A clustering of the k-level A_k(L) is a partition of the x-axis by
//! *boundary* abscissae; the cluster of an interval is the set of lines
//! passing strictly below the level somewhere over that interval. The greedy
//! construction walks the level left to right and, at every convex
//! (downward) vertex, adds the minimum-slope line through the vertex to the
//! current cluster; when the cluster would exceed `factor·k` lines it is
//! closed and a new one starts with the lines currently below the level.
//! Lemma 3.2 guarantees at most `N/k` clusters because every closed cluster
//! retires at least `k` lines that never appear again.

use lcrs_geom::level::LevelWalk;
use lcrs_geom::line2::Line2;
use lcrs_geom::rational::Rat;

/// In-memory result of the greedy clustering of one level.
#[derive(Debug, Clone)]
pub struct BuiltClustering {
    /// The level index walked (the paper's λ).
    pub lambda: usize,
    /// Internal boundary abscissae `w_1 < … < w_{u-1}` (w_0 = -∞ and
    /// w_u = +∞ are implicit).
    pub boundaries: Vec<Rat>,
    /// `clusters[j]` = ids of the lines of cluster `C_{j+1}`, ascending.
    pub clusters: Vec<Vec<u32>>,
    /// Ids of all lines passing below some point of the level (the paper's
    /// L_i = union of the clusters), ascending.
    pub covered: Vec<u32>,
    /// Number of level vertices traversed (the level's complexity).
    pub level_vertices: usize,
}

/// Run the greedy `factor·k`-clustering of the `k`-level of `members`.
///
/// `factor` is 3 in the paper; the ablation experiment EXP-ABL varies it.
/// Requires `k < members.len()` and distinct lines.
pub fn greedy_clustering(
    lines: &[Line2],
    members: &[u32],
    k: usize,
    factor: usize,
) -> BuiltClustering {
    assert!(factor >= 1);
    let cap = factor * k;
    let mut walk = LevelWalk::new(lines, members, k);

    // Membership bitmap for the *current* cluster only.
    let mut in_cluster = vec![false; lines.len()];
    let mut current: Vec<u32> = walk.below_members();
    for &id in &current {
        in_cluster[id as usize] = true;
    }

    let mut boundaries = Vec::new();
    let mut clusters: Vec<Vec<u32>> = Vec::new();
    let mut vertices = 0usize;

    while let Some(v) = walk.step() {
        vertices += 1;
        if !v.convex {
            continue;
        }
        // The minimum-slope line through the vertex is the line the level
        // just left; it now lies below the level.
        let l = v.old_line;
        if in_cluster[l as usize] {
            continue;
        }
        if current.len() < cap {
            current.push(l);
            in_cluster[l as usize] = true;
        } else {
            // Close the cluster at this vertex and restart from the lines
            // currently below the level (which include `l`).
            for &id in &current {
                in_cluster[id as usize] = false;
            }
            let mut done = std::mem::take(&mut current);
            done.sort_unstable();
            clusters.push(done);
            boundaries.push(v.x);
            current = walk.below_members();
            for &id in &current {
                in_cluster[id as usize] = true;
            }
            debug_assert!(in_cluster[l as usize], "new cluster must contain the diving line");
        }
    }
    current.sort_unstable();
    clusters.push(current);

    let mut covered: Vec<u32> =
        members.iter().copied().filter(|&id| walk.touched_below(id)).collect();
    covered.sort_unstable();

    debug_assert_eq!(
        {
            let mut u: Vec<u32> = clusters.iter().flatten().copied().collect();
            u.sort_unstable();
            u.dedup();
            u
        },
        covered,
        "union of clusters must equal the covered set"
    );

    BuiltClustering { lambda: k, boundaries, clusters, covered, level_vertices: vertices }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_lines(n: usize, seed: u64) -> Vec<Line2> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as i64
        };
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        while out.len() < n {
            let l = Line2::new(next() % 2001 - 1000, next() % 200_001 - 100_000);
            if seen.insert((l.m, l.b)) {
                out.push(l);
            }
        }
        out
    }

    /// Check the structural guarantees of Lemma 3.2 / Corollary 3.3.
    fn check_lemma_3_2(lines: &[Line2], k: usize, factor: usize) -> BuiltClustering {
        let ids: Vec<u32> = (0..lines.len() as u32).collect();
        let c = greedy_clustering(lines, &ids, k, factor);
        // (a) cluster size bound.
        for cl in &c.clusters {
            assert!(cl.len() <= factor * k, "cluster of {} > {}k", cl.len(), factor);
            assert!(!cl.is_empty());
        }
        assert_eq!(c.boundaries.len() + 1, c.clusters.len());
        // boundaries strictly ordered (non-decreasing at least; equal only in
        // degenerate concurrences, which pseudo data avoids).
        for w in c.boundaries.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // (b) every closed cluster retires ≥ k lines (none of its k "oldest
        // exits" appear later) — verified in aggregate via the size bound of
        // the lemma: u <= N/k clusters.
        if c.clusters.len() > 1 {
            assert!(
                c.clusters.len() <= lines.len().div_ceil(k),
                "{} clusters for N={} k={k}",
                c.clusters.len(),
                lines.len()
            );
        }
        // (c) Corollary 3.3: a line in C_i reappearing later appears in
        // C_{i+1}.
        for i in 0..c.clusters.len() {
            for &l in &c.clusters[i] {
                let appears_later =
                    (i + 2..c.clusters.len()).any(|j| c.clusters[j].binary_search(&l).is_ok());
                if appears_later {
                    assert!(
                        c.clusters[i + 1].binary_search(&l).is_ok(),
                        "line {l} skips cluster {}",
                        i + 1
                    );
                }
            }
        }
        c
    }

    #[test]
    fn lemma_3_2_small_levels() {
        let lines = pseudo_lines(60, 1);
        for k in [1usize, 2, 5, 10] {
            check_lemma_3_2(&lines, k, 3);
        }
    }

    #[test]
    fn lemma_3_2_other_factors() {
        let lines = pseudo_lines(50, 2);
        for factor in [2usize, 4] {
            check_lemma_3_2(&lines, 4, factor);
        }
    }

    #[test]
    fn clusters_cover_exactly_the_touched_lines() {
        let lines = pseudo_lines(40, 3);
        let ids: Vec<u32> = (0..lines.len() as u32).collect();
        let c = greedy_clustering(&lines, &ids, 3, 3);
        // `covered` is consistent (checked by the debug_assert inside) and at
        // least k+1 lines are touched (the initial below-set plus the level
        // carriers).
        assert!(c.covered.len() > 3);
        assert!(c.covered.len() <= lines.len());
    }

    /// Lemma 3.1, directly: take any point p; let C be the relevant cluster;
    /// if fewer than k lines of C are strictly below p, then every member
    /// line strictly below p belongs to C.
    #[test]
    fn lemma_3_1_reporting_guarantee() {
        let lines = pseudo_lines(80, 7);
        let ids: Vec<u32> = (0..lines.len() as u32).collect();
        let k = 6;
        let c = greedy_clustering(&lines, &ids, k, 3);
        let mut s = 1234u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
            (s >> 33) as i64
        };
        for _ in 0..500 {
            let (px, py) = (next() % 4001 - 2000, next() % 400_001 - 200_000);
            // Relevant cluster: #boundaries <= px.
            let j = c
                .boundaries
                .iter()
                .filter(|w| w.cmp_int(px) != std::cmp::Ordering::Greater)
                .count();
            let cluster = &c.clusters[j];
            let below_in_cluster =
                cluster.iter().filter(|&&l| lines[l as usize].strictly_below_point(px, py)).count();
            if below_in_cluster < k {
                for &l in &ids {
                    if lines[l as usize].strictly_below_point(px, py) {
                        assert!(
                            cluster.binary_search(&l).is_ok(),
                            "line {l} below ({px},{py}) missing from relevant cluster {j}"
                        );
                    }
                }
            }
        }
    }
}
