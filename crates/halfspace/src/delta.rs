//! The mutable delta tier of the leveled dynamization (DESIGN.md §12).
//!
//! All mutation the leveled structure accepts lands here first: inserts go
//! into a bounded in-memory buffer (the one internal-memory block every
//! external structure is allowed — scanning it costs no IOs), and deletes
//! of points already baked into a frozen level become tombstones in a
//! shared set. The leveled core drains the buffer into a new frozen level
//! when it fills and drops tombstones when the points they shadow are
//! merged away; the delta itself never touches the device.

use std::collections::HashSet;
use std::sync::Arc;

/// The mutable tier: an insert buffer plus the tombstone set.
///
/// The tombstones are `Arc`-shared with reader forks (copy-on-write via
/// `Arc::make_mut` on the writer's update paths), so forking is O(buffer),
/// never O(n).
pub struct DeltaTier {
    buf: Vec<(i64, i64, u64)>,
    cap: usize,
    dead: Arc<HashSet<u64>>,
}

impl DeltaTier {
    /// An empty delta accepting up to `cap` buffered inserts before the
    /// core flushes it into a level.
    pub fn new(cap: usize) -> DeltaTier {
        DeltaTier { buf: Vec::new(), cap, dead: Arc::new(HashSet::new()) }
    }

    /// Reassemble a delta from persisted state.
    pub fn restore(buf: Vec<(i64, i64, u64)>, cap: usize, dead: HashSet<u64>) -> DeltaTier {
        DeltaTier { buf, cap, dead: Arc::new(dead) }
    }

    /// A reader view: buffer copied, tombstones `Arc`-shared.
    pub fn clone_for_reader(&self) -> DeltaTier {
        DeltaTier { buf: self.buf.clone(), cap: self.cap, dead: Arc::clone(&self.dead) }
    }

    /// Number of buffered (not yet leveled) inserts.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// `true` once the buffer reached its capacity and should be drained.
    pub fn is_full(&self) -> bool {
        self.buf.len() >= self.cap
    }

    /// Buffer capacity (the flush threshold).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The buffered inserts, in arrival order.
    pub fn buffer(&self) -> &[(i64, i64, u64)] {
        &self.buf
    }

    /// Buffer an insert. The delta never flushes itself — the leveled core
    /// checks [`DeltaTier::is_full`] and drains via [`DeltaTier::drain`].
    pub fn push(&mut self, x: i64, y: i64, tag: u64) {
        self.buf.push((x, y, tag));
    }

    /// Position of `tag` in the buffer, if present.
    pub fn position(&self, tag: u64) -> Option<usize> {
        self.buf.iter().position(|p| p.2 == tag)
    }

    /// Remove the buffered insert at `i` (order not preserved).
    pub fn swap_remove(&mut self, i: usize) -> (i64, i64, u64) {
        self.buf.swap_remove(i)
    }

    /// Take the whole buffer, leaving it empty.
    pub fn drain(&mut self) -> Vec<(i64, i64, u64)> {
        std::mem::take(&mut self.buf)
    }

    /// `true` if `tag` is tombstoned.
    pub fn is_dead(&self, tag: u64) -> bool {
        self.dead.contains(&tag)
    }

    /// Tombstone `tag` (a delete of a point living in some frozen level).
    pub fn tombstone(&mut self, tag: u64) {
        Arc::make_mut(&mut self.dead).insert(tag);
    }

    /// Drop one tombstone — called when the point it shadowed was filtered
    /// out of a level merge and no longer exists anywhere.
    pub fn absolve(&mut self, tag: u64) {
        Arc::make_mut(&mut self.dead).remove(&tag);
    }

    /// Drop every tombstone (global rebuilds start from a clean slate).
    pub fn clear_dead(&mut self) {
        self.dead = Arc::new(HashSet::new());
    }

    /// Number of tombstones currently held.
    pub fn dead_len(&self) -> usize {
        self.dead.len()
    }

    /// The tombstone set (shared with reader forks).
    pub fn dead(&self) -> &HashSet<u64> {
        &self.dead
    }

    /// Scan the buffer for points below `y = m·x + c`, appending their
    /// tags to `out`. Free in the IO model: the buffer is the structure's
    /// internal-memory block.
    pub fn scan_below(&self, m: i64, c: i64, inclusive: bool, out: &mut Vec<u64>) {
        for &(x, y, tag) in &self.buf {
            let rhs = m as i128 * x as i128 + c as i128;
            let hit = if inclusive { y as i128 <= rhs } else { (y as i128) < rhs };
            if hit {
                out.push(tag);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_roundtrip_and_scan() {
        let mut d = DeltaTier::new(4);
        d.push(0, -5, 1);
        d.push(0, 5, 2);
        d.push(1, 0, 3);
        assert_eq!(d.len(), 3);
        assert!(!d.is_full());
        let mut out = Vec::new();
        d.scan_below(0, 0, false, &mut out);
        assert_eq!(out, vec![1]);
        out.clear();
        d.scan_below(0, 0, true, &mut out);
        assert_eq!(out, vec![1, 3]);
        assert_eq!(d.position(2), Some(1));
        d.swap_remove(1);
        assert_eq!(d.position(2), None);
        d.push(9, 9, 9);
        d.push(8, 8, 8);
        assert!(d.is_full());
        let taken = d.drain();
        assert_eq!(taken.len(), 4);
        assert!(d.is_empty());
    }

    #[test]
    fn tombstones_are_cow_shared_with_readers() {
        let mut d = DeltaTier::new(8);
        d.tombstone(7);
        let reader = d.clone_for_reader();
        assert!(reader.is_dead(7));
        // Writer-side updates after the fork must not be visible to the
        // reader (copy-on-write), and vice versa.
        d.tombstone(8);
        d.absolve(7);
        assert!(reader.is_dead(7) && !reader.is_dead(8));
        assert!(d.is_dead(8) && !d.is_dead(7));
        d.clear_dead();
        assert_eq!(d.dead_len(), 0);
        assert_eq!(reader.dead_len(), 1);
    }
}
