//! The three-dimensional structure (Section 4, Theorem 4.4).
//!
//! In the dual, the task is: store N planes so that the planes below a query
//! point can be reported in O(log_B n + t) expected IOs. The structure keeps,
//! for a random permutation h_1, h_2, …, h_N,
//!
//! * **layers**: for geometrically increasing prefix sizes 2^i, the
//!   triangulated lower envelope of R_i = {h_1,…,h_{2^i}} together with the
//!   conflict list of each envelope *face* — the planes of H∖R_i passing
//!   strictly below one of the face's vertices (Lemma 4.1 bounds the
//!   expected total size by O(N) per layer, hence O(n log₂ n) blocks);
//! * **a point-location chain**: prefixes of size b, b², … (b = Θ(B)) where
//!   each face stores the next-prefix planes below it; walking the chain
//!   locates the envelope face over (x, y) in O(log_B r) expected IOs
//!   (DESIGN.md §3.3 — this replaces the external point-location structures
//!   the paper cites);
//! * **bridges**: per layer, a copy of the deepest chain level's faces with
//!   conflicts filtered to R_i, linking the chain to the layer.
//!
//! `TryLowestPlanes(k, l, δ)` and the doubling query loop follow Section 4.2
//! literally, including the three independent copies used to make the
//! failure probability O(δ³); a full file scan (always correct, n IOs)
//! backstops the vanishing-probability cascade of failures.

use crate::cost::{CostHint, CostShape};
use lcrs_extmem::{DeviceHandle, MetaReader, MetaWriter, Record, SnapshotError, VecFile};
use lcrs_geom::dual::point3_to_plane;
use lcrs_geom::hull3::{LowerHull, SnapFacet};
use lcrs_geom::plane3::Plane3;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// On-disk face record: plane coefficients, conflict-list slice, and the
/// face index of the same plane one level down (`u32::MAX` when absent).
type FaceRec = ((i64, i64, i64), (u64, u32, u32));
/// Conflict entry: plane coefficients plus either the next-level face index
/// (chain/bridge levels) or the plane id (layer levels).
type ConfRec = ((i64, i64, i64), u32);
/// Flat plane-file record.
type PlaneRec = (i64, i64, i64);

const NONE32: u32 = u32::MAX;

/// One located level: faces + conflicts.
struct LevelDisk {
    faces: VecFile<FaceRec>,
    conflicts: VecFile<ConfRec>,
}

/// One layer R_i.
struct LayerDisk {
    /// Prefix size 2^i.
    size: usize,
    /// Copy of the deepest chain level's faces with conflicts → this layer.
    bridge: Option<LevelDisk>,
    /// The layer itself; conflict entries carry plane ids.
    level: LevelDisk,
}

/// One independent copy of the whole structure (its own permutation).
struct Copy3d {
    chain: Vec<LevelDisk>,
    /// Chain level sizes (b, b², …), parallel to `chain`.
    chain_sizes: Vec<usize>,
    layers: Vec<LayerDisk>,
}

impl LevelDisk {
    fn with_handle(&self, h: &DeviceHandle) -> LevelDisk {
        LevelDisk { faces: self.faces.with_handle(h), conflicts: self.conflicts.with_handle(h) }
    }

    fn save(&self, w: &mut MetaWriter) {
        self.faces.save(w);
        self.conflicts.save(w);
    }

    fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<LevelDisk, SnapshotError> {
        Ok(LevelDisk { faces: VecFile::load(h, r)?, conflicts: VecFile::load(h, r)? })
    }
}

impl LayerDisk {
    fn with_handle(&self, h: &DeviceHandle) -> LayerDisk {
        LayerDisk {
            size: self.size,
            bridge: self.bridge.as_ref().map(|b| b.with_handle(h)),
            level: self.level.with_handle(h),
        }
    }

    fn save(&self, w: &mut MetaWriter) {
        w.usize(self.size);
        w.opt(self.bridge.is_some());
        if let Some(b) = &self.bridge {
            b.save(w);
        }
        self.level.save(w);
    }

    fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<LayerDisk, SnapshotError> {
        Ok(LayerDisk {
            size: r.usize()?,
            bridge: if r.opt()? { Some(LevelDisk::load(h, r)?) } else { None },
            level: LevelDisk::load(h, r)?,
        })
    }
}

impl Copy3d {
    fn with_handle(&self, h: &DeviceHandle) -> Copy3d {
        Copy3d {
            chain: self.chain.iter().map(|l| l.with_handle(h)).collect(),
            chain_sizes: self.chain_sizes.clone(),
            layers: self.layers.iter().map(|l| l.with_handle(h)).collect(),
        }
    }

    fn save(&self, w: &mut MetaWriter) {
        w.seq(self.chain.len());
        for l in &self.chain {
            l.save(w);
        }
        w.seq(self.chain_sizes.len());
        for &s in &self.chain_sizes {
            w.usize(s);
        }
        w.seq(self.layers.len());
        for l in &self.layers {
            l.save(w);
        }
    }

    fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<Copy3d, SnapshotError> {
        let n = r.seq()?;
        let mut chain = Vec::with_capacity(n);
        for _ in 0..n {
            chain.push(LevelDisk::load(h, r)?);
        }
        let n = r.seq()?;
        let mut chain_sizes = Vec::with_capacity(n);
        for _ in 0..n {
            chain_sizes.push(r.usize()?);
        }
        if chain_sizes.len() != chain.len() {
            return Err(r.error("chain and chain_sizes must be parallel"));
        }
        let n = r.seq()?;
        let mut layers = Vec::with_capacity(n);
        for _ in 0..n {
            layers.push(LayerDisk::load(h, r)?);
        }
        Ok(Copy3d { chain, chain_sizes, layers })
    }
}

/// Construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct Hs3dConfig {
    /// Independent copies (paper: 3; EXP-ABL compares 1).
    pub copies: usize,
    /// Failure-probability exponents tried before falling back to a full
    /// scan (δ = 2^-1 … 2^-max_delta_exp).
    pub max_delta_exp: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Hs3dConfig {
    fn default() -> Self {
        Hs3dConfig { copies: 3, max_delta_exp: 6, seed: 0x3d5eed }
    }
}

/// Statistics of one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats3 {
    pub ios: u64,
    pub rounds: usize,
    pub try_calls: usize,
    pub full_scans: usize,
    pub reported: usize,
}

/// The Theorem 4.4 structure over a set of 3D points (primal API) /
/// planes (dual internals).
pub struct HalfspaceRS3 {
    dev: DeviceHandle,
    planes: VecFile<PlaneRec>,
    copies: Vec<Copy3d>,
    n: usize,
    beta: usize,
    cfg: Hs3dConfig,
    pages_at_build_end: u64,
}

impl HalfspaceRS3 {
    /// Preprocess 3D points (|x|,|y| ≤ 2^20, |z| ≤ 2^21) so that the points
    /// below a query plane `z = u·x + v·y + w` (|u|,|v| ≤ 2^22) can be
    /// reported.
    pub fn build(dev: &DeviceHandle, points: &[(i64, i64, i64)], cfg: Hs3dConfig) -> HalfspaceRS3 {
        let planes: Vec<Plane3> =
            points.iter().map(|&(a, b, c)| point3_to_plane(a, b, c)).collect();
        Self::build_dual(dev, &planes, cfg)
    }

    /// Dual-space constructor: preprocess planes for "report planes below a
    /// query point" queries (used directly by the k-NN structure).
    pub fn build_dual(dev: &DeviceHandle, planes: &[Plane3], cfg: Hs3dConfig) -> HalfspaceRS3 {
        assert!(cfg.copies >= 1);
        let n = planes.len();
        let plane_file =
            VecFile::from_slice(dev, &planes.iter().map(|p| (p.a, p.b, p.c)).collect::<Vec<_>>());

        // Model parameters.
        let conf_per_page = dev.records_per_page(<ConfRec as Record>::SIZE);
        let n_blocks = n.div_ceil(conf_per_page).max(1);
        let beta = {
            let logb = if n_blocks <= 1 {
                1.0
            } else {
                (n_blocks as f64).ln() / (conf_per_page.max(2) as f64).ln()
            };
            ((conf_per_page as f64) * logb.max(1.0)).ceil() as usize
        }
        .max(1);

        let b = conf_per_page.max(4); // chain branching Θ(B)
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Layer sizes 2^i, i ∈ [3, log2(N/2)]: TryLowestPlanes(k, δ) uses
        // the layer of size ≈ δN/k (failure probability k·|R|/N = O(δ)), so
        // with k ranging over [1, N/16] and δ ≥ 2^-max the whole range is
        // needed; space stays O(n log₂ n) blocks (Lemma 4.1a per layer).
        let i_lo = 3usize;
        let i_hi = if n >= 2 { (n as f64 / 2.0).log2().floor() as usize } else { 0 };

        let mut copies = Vec::with_capacity(cfg.copies);
        for _ in 0..cfg.copies {
            let mut perm: Vec<u32> = (0..n as u32).collect();
            perm.shuffle(&mut rng);
            copies.push(Self::build_copy(dev, planes, &perm, b, i_lo, i_hi));
        }

        HalfspaceRS3 {
            dev: dev.clone(),
            planes: plane_file,
            copies,
            n,
            beta,
            cfg,
            pages_at_build_end: dev.pages_allocated(),
        }
    }

    fn build_copy(
        dev: &DeviceHandle,
        planes: &[Plane3],
        perm: &[u32],
        b: usize,
        i_lo: usize,
        i_hi: usize,
    ) -> Copy3d {
        let n = planes.len();
        let permuted: Vec<Plane3> = perm.iter().map(|&i| planes[i as usize]).collect();

        // Snapshot sizes: chain (b^j) and layers (2^i), deduplicated.
        let mut chain_sizes = Vec::new();
        let mut s = b;
        while s < n {
            chain_sizes.push(s);
            s = s.saturating_mul(b);
        }
        let layer_sizes: Vec<usize> =
            (i_lo..=i_hi).map(|i| 1usize << i).filter(|&s| s <= n).collect();
        let mut want: Vec<usize> = chain_sizes.iter().chain(layer_sizes.iter()).copied().collect();
        want.sort_unstable();
        want.dedup();

        // One incremental run; snapshot at each wanted prefix.
        let mut hull = LowerHull::new(&permuted);
        let mut snaps: std::collections::HashMap<usize, Vec<SnapFacet>> =
            std::collections::HashMap::new();
        for &sz in &want {
            hull.insert_until(sz);
            snaps.insert(sz, hull.snapshot());
        }

        // Assemble faces per snapshot: real-vertex → its facets, in
        // deterministic (ascending permuted-index) face order.
        struct Assembled {
            /// Face order: ascending permuted plane index.
            face_planes: Vec<u32>,
            /// permuted plane index → face idx.
            face_of: std::collections::HashMap<u32, u32>,
            /// Per face: union of its facets' conflicts (permuted indices).
            face_conf: Vec<Vec<u32>>,
        }
        let assemble = |snap: &Vec<SnapFacet>| -> Assembled {
            let mut incident: std::collections::HashMap<u32, Vec<usize>> =
                std::collections::HashMap::new();
            for (fi, f) in snap.iter().enumerate() {
                for r in f.verts.iter().flatten() {
                    incident.entry(*r).or_default().push(fi);
                }
            }
            let mut face_planes: Vec<u32> = incident.keys().copied().collect();
            face_planes.sort_unstable();
            let face_of: std::collections::HashMap<u32, u32> =
                face_planes.iter().enumerate().map(|(i, &p)| (p, i as u32)).collect();
            let face_conf: Vec<Vec<u32>> = face_planes
                .iter()
                .map(|p| {
                    let mut u: Vec<u32> = incident[p]
                        .iter()
                        .flat_map(|&fi| snap[fi].conflicts.iter().copied())
                        .collect();
                    u.sort_unstable();
                    u.dedup();
                    u
                })
                .collect();
            Assembled { face_planes, face_of, face_conf }
        };
        let assembled: std::collections::HashMap<usize, Assembled> =
            want.iter().map(|&sz| (sz, assemble(&snaps[&sz]))).collect();

        // Write a level to disk. `bound` filters conflicts to permuted index
        // < bound; `next` resolves next_face_idx (None ⇒ conflict entries
        // carry ORIGINAL plane ids — the layer form).
        let write_level = |asm: &Assembled, bound: usize, next: Option<&Assembled>| -> LevelDisk {
            let mut faces: Vec<FaceRec> = Vec::with_capacity(asm.face_planes.len());
            let mut confs: Vec<ConfRec> = Vec::new();
            for (fi, &p) in asm.face_planes.iter().enumerate() {
                let off = confs.len() as u64;
                for &q in &asm.face_conf[fi] {
                    if (q as usize) >= bound {
                        continue;
                    }
                    let pq = permuted[q as usize];
                    let tag = match next {
                        Some(nx) => nx.face_of.get(&q).copied().unwrap_or(NONE32),
                        None => perm[q as usize],
                    };
                    confs.push(((pq.a, pq.b, pq.c), tag));
                }
                let len = confs.len() as u32 - off as u32;
                let selfn = match next {
                    Some(nx) => nx.face_of.get(&p).copied().unwrap_or(NONE32),
                    None => NONE32,
                };
                let pp = permuted[p as usize];
                faces.push(((pp.a, pp.b, pp.c), (off, len, selfn)));
            }
            LevelDisk {
                faces: VecFile::from_slice(dev, &faces),
                conflicts: VecFile::from_slice(dev, &confs),
            }
        };

        // Chain levels: conflicts w.r.t. the next chain size. The deepest
        // chain level needs no forward conflicts (bridges replace them).
        let mut chain: Vec<LevelDisk> = Vec::new();
        for (j, &sz) in chain_sizes.iter().enumerate() {
            let next_sz = chain_sizes.get(j + 1).copied();
            let level = match next_sz {
                Some(ns) => write_level(&assembled[&sz], ns, Some(&assembled[&ns])),
                None => write_level(&assembled[&sz], sz, Some(&assembled[&sz])),
            };
            chain.push(level);
        }

        // Layers with bridges.
        let mut layers = Vec::new();
        for &lsz in &layer_sizes {
            let asm = &assembled[&lsz];
            let level = write_level(asm, n, None);
            // Deepest chain level not exceeding the layer.
            let jm = chain_sizes.iter().rposition(|&cs| cs <= lsz);
            let bridge = jm.map(|j| {
                let csz = chain_sizes[j];
                write_level(&assembled[&csz], lsz, Some(asm))
            });
            layers.push(LayerDisk { size: lsz, bridge, level });
        }

        Copy3d { chain, chain_sizes, layers }
    }

    /// Number of stored planes/points.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn beta(&self) -> usize {
        self.beta
    }

    /// Number of sample layers per copy.
    pub fn num_layers(&self) -> usize {
        self.copies.first().map_or(0, |c| c.layers.len())
    }

    /// Disk pages occupied.
    pub fn pages(&self) -> u64 {
        self.pages_at_build_end
    }

    /// The Theorem 4.4 query bound — O(log_B n + t/B) expected — as a
    /// planner hint (DESIGN.md §10).
    pub fn cost_hint(&self) -> CostHint {
        CostHint::new(CostShape::Logarithmic, self.len())
    }

    /// The device this structure lives on (for scoped IO measurement).
    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// The same on-disk structure viewed through `h` (own cache + stats).
    pub fn with_handle(&self, h: &DeviceHandle) -> HalfspaceRS3 {
        HalfspaceRS3 {
            dev: h.clone(),
            planes: self.planes.with_handle(h),
            copies: self.copies.iter().map(|c| c.with_handle(h)).collect(),
            n: self.n,
            beta: self.beta,
            cfg: self.cfg,
            pages_at_build_end: self.pages_at_build_end,
        }
    }

    /// A reader clone on a fresh handle scope over the same pages — each
    /// parallel worker calls this to get its own LRU and IO attribution.
    pub fn fork_reader(&self) -> HalfspaceRS3 {
        self.with_handle(&self.dev.fork())
    }

    /// Serialize the structure's host-side metadata (plane file, chain and
    /// layer directories of every copy, construction parameters); the page
    /// data is captured by [`lcrs_extmem::Device::freeze_to_path`].
    pub fn save(&self, w: &mut MetaWriter) {
        self.planes.save(w);
        w.seq(self.copies.len());
        for c in &self.copies {
            c.save(w);
        }
        w.usize(self.n);
        w.usize(self.beta);
        w.usize(self.cfg.copies);
        w.u32(self.cfg.max_delta_exp);
        w.u64(self.cfg.seed);
        w.u64(self.pages_at_build_end);
    }

    /// Rebuild from metadata written by [`Self::save`], reading pages
    /// through `h`.
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<HalfspaceRS3, SnapshotError> {
        let planes = VecFile::load(h, r)?;
        let n_copies = r.seq()?;
        let mut copies = Vec::with_capacity(n_copies);
        for _ in 0..n_copies {
            copies.push(Copy3d::load(h, r)?);
        }
        if copies.is_empty() {
            return Err(r.error("structure must keep at least one copy"));
        }
        let n = r.usize()?;
        let beta = r.usize()?;
        let cfg = Hs3dConfig { copies: r.usize()?, max_delta_exp: r.u32()?, seed: r.u64()? };
        Ok(HalfspaceRS3 {
            dev: h.clone(),
            planes,
            copies,
            n,
            beta,
            cfg,
            pages_at_build_end: r.u64()?,
        })
    }

    /// Argmin face of a level at (x, y) by scanning all faces (used for the
    /// chain root and tiny layers).
    fn scan_faces(&self, level: &LevelDisk, x: i64, y: i64) -> (u32, FaceRec) {
        let mut best: Option<(i128, u32, FaceRec)> = None;
        level.faces.scan_while(|i, rec| {
            let (a, b, c) = rec.0;
            let v = Plane3::new(a, b, c).eval(x, y);
            if best.as_ref().is_none_or(|(bv, _, _)| v < *bv) {
                best = Some((v, i as u32, rec));
            }
            true
        });
        let (_, i, rec) = best.expect("level has no faces");
        (i, rec)
    }

    /// One descent step: from a located face, find the argmin plane of the
    /// next set among {current plane} ∪ conflicts, returning the next face
    /// index.
    fn step_down(&self, level: &LevelDisk, face: FaceRec, x: i64, y: i64) -> u32 {
        let (pa, pb, pc) = face.0;
        let (off, len, selfn) = face.1;
        let mut best_val = Plane3::new(pa, pb, pc).eval(x, y);
        let mut best_face = selfn;
        let mut buf: Vec<ConfRec> = Vec::with_capacity(len as usize);
        level.conflicts.read_range(off as usize..(off + len as u64) as usize, &mut buf);
        for ((a, b, c), tag) in buf {
            let v = Plane3::new(a, b, c).eval(x, y);
            if v < best_val {
                best_val = v;
                best_face = tag;
            }
        }
        assert_ne!(best_face, NONE32, "argmin plane must be a face one level down");
        best_face
    }

    /// Locate the face of layer `li` (of copy `c`) over (x, y).
    fn locate_layer_face(&self, c: &Copy3d, li: usize, x: i64, y: i64) -> FaceRec {
        let layer = &c.layers[li];
        let jm = c.chain_sizes.iter().rposition(|&cs| cs <= layer.size);
        match (jm, &layer.bridge) {
            (Some(j), Some(bridge)) => {
                // Root scan, then chain steps, then the bridge.
                let (mut fi, mut rec) = self.scan_faces(&c.chain[0], x, y);
                for step in 0..j {
                    fi = self.step_down(&c.chain[step], rec, x, y);
                    rec = c.chain[step + 1].faces.get(fi as usize);
                }
                // Bridge shares face indexing with chain[j].
                let brec = bridge.faces.get(fi as usize);
                debug_assert_eq!(brec.0, rec.0, "bridge must mirror the chain level");
                let lf = self.step_down(bridge, brec, x, y);
                layer.level.faces.get(lf as usize)
            }
            _ => {
                // Tiny layer: direct scan.
                self.scan_faces(&layer.level, x, y).1
            }
        }
    }

    /// The paper's TryLowestPlanes(k, l, δ=2^-delta_exp) on one copy.
    /// `Ok(None)` = failure (retry with smaller δ); `Err(())` = the demanded
    /// sample exceeds the built range — caller should full-scan.
    fn try_lowest(
        &self,
        c: &Copy3d,
        x: i64,
        y: i64,
        k: usize,
        delta_exp: u32,
    ) -> Result<Option<Vec<(u32, i128)>>, ()> {
        // ρ = ⌈log2(δN/k)⌉: sample size ≈ δN/k, so the probability that
        // one of the k lowest planes is sampled (the failure mode) is
        // k·2^ρ/N = O(δ). Smaller δ ⇒ smaller sample but a bigger conflict
        // budget k/δ².
        let target = self.n as f64 / (k as f64 * (1u64 << delta_exp) as f64);
        if target < 8.0 {
            return Err(()); // would need a tiny sample: scan instead
        }
        // First layer of size ≥ target; when the target exceeds every
        // layer, the largest is accepted down to target/2 (within the
        // doubling granularity of the ρ rounding).
        let li = match c.layers.iter().position(|l| (l.size as f64) >= target) {
            Some(i) => i,
            None if !c.layers.is_empty()
                && (c.layers[c.layers.len() - 1].size as f64) * 2.0 >= target =>
            {
                c.layers.len() - 1
            }
            None => return Err(()),
        };
        let layer = &c.layers[li];
        let face = self.locate_layer_face(c, li, x, y);
        let (a, b, cc) = face.0;
        let env_val = Plane3::new(a, b, cc).eval(x, y);
        let (off, len, _) = face.1;
        // Reject oversized conflict lists without scanning them. The paper
        // caps |K| at k/δ² for *triangle* conflict lists; our per-face lists
        // are the union over the face's corners (DESIGN.md §3.3), larger by
        // the average face degree — a constant — so the cap carries an 8×
        // allowance. Asymptotics are unchanged; without it the cap fires
        // spuriously and cascades into full-scan fallbacks.
        let cap = 8 * k.saturating_mul(1usize << (2 * delta_exp));
        if len as usize > cap {
            return Ok(None);
        }
        let mut buf: Vec<ConfRec> = Vec::with_capacity(len as usize);
        layer.level.conflicts.read_range(off as usize..(off + len as u64) as usize, &mut buf);
        let mut below: Vec<(u32, i128)> = buf
            .into_iter()
            .filter_map(|((pa, pb, pc), id)| {
                let v = Plane3::new(pa, pb, pc).eval(x, y);
                (v < env_val).then_some((id, v))
            })
            .collect();
        if below.len() < k {
            // The sample's envelope plane ranks within the k lowest: fail.
            return Ok(None);
        }
        below.sort_by_key(|&(id, v)| (v, id));
        below.truncate(k);
        Ok(Some(below))
    }

    /// All (plane id, value) pairs sorted ascending by value — the always-
    /// correct fallback costing n IOs.
    fn full_scan(&self, x: i64, y: i64) -> Vec<(u32, i128)> {
        let mut all: Vec<(u32, i128)> = Vec::with_capacity(self.n);
        self.planes.scan_while(|i, (a, b, c)| {
            all.push((i as u32, Plane3::new(a, b, c).eval(x, y)));
            true
        });
        all.sort_by_key(|&(id, v)| (v, id));
        all
    }

    /// The k lowest planes along the vertical line at (x, y), with certainty
    /// (Theorem 4.2 wrapper).
    pub fn k_lowest(&self, x: i64, y: i64, k: usize, stats: &mut QueryStats3) -> Vec<(u32, i128)> {
        assert!(
            x.abs() <= (1 << 22) && y.abs() <= (1 << 22),
            "query location outside the 3D region budget"
        );
        let k = k.min(self.n);
        if k == 0 {
            return Vec::new();
        }
        if 16 * k >= self.n || self.copies[0].layers.is_empty() {
            // Output comparable to n: a scan is already optimal.
            stats.full_scans += 1;
            let mut v = self.full_scan(x, y);
            v.truncate(k);
            return v;
        }
        for delta_exp in 1..=self.cfg.max_delta_exp {
            for c in &self.copies {
                stats.try_calls += 1;
                match self.try_lowest(c, x, y, k, delta_exp) {
                    Ok(Some(v)) => return v,
                    Ok(None) => {}
                    Err(()) => {
                        stats.full_scans += 1;
                        let mut v = self.full_scan(x, y);
                        v.truncate(k);
                        return v;
                    }
                }
            }
        }
        stats.full_scans += 1;
        let mut v = self.full_scan(x, y);
        v.truncate(k);
        v
    }

    /// Report all points strictly below the plane `z = u·x + v·y + w`
    /// (`inclusive` adds points exactly on it). Returns input indices.
    pub fn query_below(&self, u: i64, v: i64, w: i64, inclusive: bool) -> Vec<u32> {
        self.query_below_stats(u, v, w, inclusive).0
    }

    /// [`Self::query_below`] with measured statistics.
    pub fn query_below_stats(
        &self,
        u: i64,
        v: i64,
        w: i64,
        inclusive: bool,
    ) -> (Vec<u32>, QueryStats3) {
        let before = self.dev.stats();
        let mut stats = QueryStats3::default();
        if self.n == 0 {
            return (Vec::new(), stats);
        }
        let hits = |lows: &[(u32, i128)]| -> Vec<u32> {
            lows.iter()
                .filter(|&&(_, val)| if inclusive { val <= w as i128 } else { val < w as i128 })
                .map(|&(id, _)| id)
                .collect()
        };
        // Doubling loop: k = β, 2β, 4β, … (Section 4.2).
        let mut k = self.beta.min(self.n);
        let out = loop {
            stats.rounds += 1;
            let lows = self.k_lowest(u, v, k, &mut stats);
            let below = hits(&lows);
            if below.len() < lows.len() || lows.len() >= self.n {
                break below;
            }
            k *= 2;
        };
        stats.reported = out.len();
        stats.ios = self.dev.stats().since(before).total();
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::{Device, DeviceConfig};

    fn pseudo_points3(n: usize, seed: u64, range: i64) -> Vec<(i64, i64, i64)> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i64).rem_euclid(2 * range) - range
        };
        (0..n).map(|_| (next(), next(), next())).collect()
    }

    fn brute(points: &[(i64, i64, i64)], u: i64, v: i64, w: i64, inclusive: bool) -> Vec<u32> {
        let mut r: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, &(x, y, z))| {
                let rhs = u as i128 * x as i128 + v as i128 * y as i128 + w as i128;
                if inclusive {
                    z as i128 <= rhs
                } else {
                    (z as i128) < rhs
                }
            })
            .map(|(i, _)| i as u32)
            .collect();
        r.sort_unstable();
        r
    }

    fn check(points: &[(i64, i64, i64)], hs: &HalfspaceRS3, seed: u64, trials: usize) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as i64).rem_euclid(2000) - 1000
        };
        for t in 0..trials {
            let (u, v, w) = (next(), next(), next() * 500);
            let inclusive = t % 2 == 0;
            let mut got = hs.query_below(u, v, w, inclusive);
            got.sort_unstable();
            assert_eq!(got, brute(points, u, v, w, inclusive), "query {u},{v},{w}");
        }
    }

    #[test]
    fn tiny_inputs() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        for n in [0usize, 1, 3, 9] {
            let pts = pseudo_points3(n, 5 + n as u64, 500);
            let hs = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
            check(&pts, &hs, 1, 15);
        }
    }

    #[test]
    fn medium_random_matches_brute_force() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo_points3(600, 42, 100_000);
        let hs = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
        check(&pts, &hs, 7, 40);
    }

    #[test]
    fn layered_structure_with_small_pages() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let pts = pseudo_points3(2000, 9, 1_000_000);
        let hs = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
        assert!(hs.num_layers() > 0);
        check(&pts, &hs, 3, 30);
    }

    #[test]
    fn single_copy_still_correct() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo_points3(800, 17, 200_000);
        let cfg = Hs3dConfig { copies: 1, ..Default::default() };
        let hs = HalfspaceRS3::build(&dev, &pts, cfg);
        check(&pts, &hs, 11, 30);
    }

    #[test]
    fn k_lowest_matches_sorted_values() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo_points3(500, 23, 50_000);
        let hs = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
        let planes: Vec<Plane3> = pts.iter().map(|&(a, b, c)| point3_to_plane(a, b, c)).collect();
        let mut stats = QueryStats3::default();
        for (x, y) in [(0i64, 0i64), (100, -50), (-999, 999)] {
            for k in [1usize, 5, 40, 200] {
                let got = hs.k_lowest(x, y, k, &mut stats);
                let mut want: Vec<(u32, i128)> =
                    planes.iter().enumerate().map(|(i, p)| (i as u32, p.eval(x, y))).collect();
                want.sort_by_key(|&(id, v)| (v, id));
                want.truncate(k);
                assert_eq!(got, want, "k={k} at ({x},{y})");
            }
        }
    }

    #[test]
    fn duplicate_planes_all_reported() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let mut pts = pseudo_points3(300, 31, 10_000);
        for i in 0..50 {
            let p = pts[i * 2];
            pts.push(p);
        }
        let hs = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
        check(&pts, &hs, 13, 25);
    }

    #[test]
    fn space_is_near_linear_in_layers() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo_points3(4000, 3, 500_000);
        let hs = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
        let n_blocks = 4000u64.div_ceil(512 / 28);
        let layers = hs.num_layers() as u64;
        assert!(
            hs.pages() < n_blocks * (layers + 4) * 6 * hs.cfg.copies as u64,
            "pages {} vs n_blocks {} layers {}",
            hs.pages(),
            n_blocks,
            layers
        );
    }
}
