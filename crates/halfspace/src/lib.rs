//! # lcrs-halfspace — external-memory halfspace range searching
//!
//! The data structures of Agarwal, Arge, Erickson, Franciosa and Vitter,
//! *Efficient Searching with Linear Constraints* (PODS 1998), implemented on
//! the simulated disk of [`lcrs_extmem`]:
//!
//! * [`hs2d`] — the optimal 2D structure (Theorem 3.5): O(n) blocks,
//!   O(log_B n + t) IOs per query, via greedy 3k-clusterings of levels;
//! * [`hs3d`] — the 3D structure (Theorem 4.4): O(n log₂ n) expected blocks,
//!   O(log_B n + t) expected IOs, via lower envelopes of geometric samples
//!   with conflict lists;
//! * [`knn`] — planar k-nearest-neighbor queries by lifting (Theorem 4.3);
//! * [`ptree`] — linear-size partition trees for d dimensions
//!   (Theorem 5.2), answering halfspace and simplex queries;
//! * [`tradeoff`] — the space/query trade-offs of Section 6 (hybrid
//!   partition tree with 3D structures at the leaves, Theorem 6.1, and the
//!   shallow-style tree of Theorem 6.3);
//! * [`partition`] — the space partitioner for sharded serving: recursive
//!   ham-sandwich cuts into S near-even shards with explicit convex-cell
//!   regions and conservative routing tests (the geometry behind the
//!   `ShardedIndexSet` of `lcrs-engine`, DESIGN.md §11).
//!
//! All query methods report *exactly* the input points satisfying the
//! constraint (verified against brute force in the test suites); IO costs
//! are measured, not estimated, through the device the structure was built
//! on.
//!
//! Every structure additionally self-reports its paper query bound as a
//! [`cost::CostHint`] (the `cost_hint()` methods), which is what the
//! cost-model query planner of `lcrs-engine` routes on (DESIGN.md §10).

pub mod cost;
pub mod delta;
pub mod dynamic;
pub mod hs2d;
pub mod hs3d;
pub mod knn;
pub mod leveled;
pub mod partition;
pub mod ptree;
pub mod tradeoff;

pub use cost::{CostHint, CostShape};
pub use delta::DeltaTier;
pub use dynamic::DynamicHalfspace2;
pub use hs2d::HalfspaceRS2;
pub use hs3d::HalfspaceRS3;
pub use knn::KnnStructure;
pub use leveled::{Level, LevelBacking, LeveledHalfspace2, MergeHandle};
pub use partition::{partition2, partition3, Partition2, Partition3, ShardRegion2, ShardRegion3};
pub use ptree::PartitionTree;
pub use tradeoff::{HybridTree3, ShallowTree3};
