//! Space/query trade-offs in R³ (Section 6).
//!
//! * [`HybridTree3`] (Theorem 6.1): a partition tree whose recursion stops
//!   at N_v ≤ B^a; each leaf stores its points in a Section 4 structure.
//!   Space O(n log₂ B)-ish, queries O((n/B^{a-1})^{2/3+ε} + t) expected.
//! * [`ShallowTree3`] (Theorem 6.3): a partition tree where every internal
//!   node carries a *secondary* plain partition tree over its whole subtree;
//!   when a query plane crosses more than κ·log₂ r_v child cells, it is not
//!   shallow at this node — at least a constant fraction of the subtree lies
//!   below it — and the secondary structure reports the subtree in O(t_v)
//!   IOs. Space O(n log_B n), queries O(n^ε + t) for the paper's partitions
//!   (measured for our substituted partitioner, DESIGN.md §3.4/3.5).

use lcrs_extmem::{DeviceHandle, MetaReader, MetaWriter, Record, SnapshotError, VecFile};
use lcrs_geom::point::{Aabb, BoxSide, HyperplaneD, PointD};

use crate::cost::{CostHint, CostShape};
use crate::hs3d::{HalfspaceRS3, Hs3dConfig};
use crate::ptree::{PTreeConfig, PartitionTree, Partitioner};

/// Node record shared by both trees (3D cells).
#[derive(Debug, Clone, Copy)]
struct Node3 {
    lo: [i64; 3],
    hi: [i64; 3],
    child_start: u64,
    child_count: u32,
    pts_off: u64,
    pts_len: u64,
    /// Hybrid: leaf-structure index; Shallow: secondary-structure index
    /// (`u32::MAX` = none).
    aux: u32,
}

impl Record for Node3 {
    const SIZE: usize = 48 + 28 + 4;
    fn store(&self, buf: &mut [u8]) {
        self.lo.store(buf);
        self.hi.store(&mut buf[24..]);
        self.child_start.store(&mut buf[48..]);
        self.child_count.store(&mut buf[56..]);
        self.pts_off.store(&mut buf[60..]);
        self.pts_len.store(&mut buf[68..]);
        self.aux.store(&mut buf[76..]);
    }
    fn load(buf: &[u8]) -> Self {
        Node3 {
            lo: <[i64; 3]>::load(buf),
            hi: <[i64; 3]>::load(&buf[24..]),
            child_start: u64::load(&buf[48..]),
            child_count: u32::load(&buf[56..]),
            pts_off: u64::load(&buf[60..]),
            pts_len: u64::load(&buf[68..]),
            aux: u32::load(&buf[76..]),
        }
    }
}

type PtRec3 = ([i64; 3], u32);
const NOAUX: u32 = u32::MAX;

/// Statistics shared by the trade-off structures.
#[derive(Debug, Clone, Copy, Default)]
pub struct TradeoffStats {
    pub ios: u64,
    pub nodes_visited: usize,
    pub leaf_queries: usize,
    pub secondary_queries: usize,
    pub reported: usize,
}

fn bbox3(items: &[PtRec3]) -> ([i64; 3], [i64; 3]) {
    let mut lo = items[0].0;
    let mut hi = items[0].0;
    for (c, _) in &items[1..] {
        for i in 0..3 {
            lo[i] = lo[i].min(c[i]);
            hi[i] = hi[i].max(c[i]);
        }
    }
    (lo, hi)
}

/// Balanced kd ranges over 3D records (median splits cycling axes).
fn kd_ranges3(items: &mut [PtRec3], fanout: usize) -> Vec<std::ops::Range<usize>> {
    let mut splits = 1usize;
    while (1usize << (splits + 1)) <= fanout && splits < 20 {
        splits += 1;
    }
    let mut out = Vec::new();
    fn halve(
        items: &mut [PtRec3],
        base: usize,
        splits_left: usize,
        axis: usize,
        out: &mut Vec<std::ops::Range<usize>>,
    ) {
        if splits_left == 0 || items.len() <= 1 {
            if !items.is_empty() {
                out.push(base..base + items.len());
            }
            return;
        }
        let mid = items.len() / 2;
        items.select_nth_unstable_by_key(mid, |(c, id)| (c[axis], *id));
        let (l, r) = items.split_at_mut(mid);
        halve(l, base, splits_left - 1, (axis + 1) % 3, out);
        halve(r, base + mid, splits_left - 1, (axis + 1) % 3, out);
    }
    halve(items, 0, splits, 0, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Theorem 6.1: hybrid tree.
// ---------------------------------------------------------------------------

/// Configuration for [`HybridTree3`].
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// Recursion stops at N_v ≤ B^a (paper's a > 1).
    pub a: f64,
    /// Internal fanout (0 ⇒ 8).
    pub fanout: usize,
    /// Parameters of the leaf Section 4 structures.
    pub hs3: Hs3dConfig,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig { a: 1.5, fanout: 8, hs3: Hs3dConfig { copies: 1, ..Default::default() } }
    }
}

/// The Theorem 6.1 structure.
pub struct HybridTree3 {
    dev: DeviceHandle,
    nodes: VecFile<Node3>,
    points: VecFile<PtRec3>,
    leaves: Vec<HalfspaceRS3>,
    n: usize,
    pages_at_build_end: u64,
}

impl HybridTree3 {
    pub fn build(dev: &DeviceHandle, points: &[(i64, i64, i64)], cfg: HybridConfig) -> HybridTree3 {
        let b = dev.records_per_page(<PtRec3 as Record>::SIZE);
        let threshold = ((b as f64).powf(cfg.a).ceil() as usize).max(2 * b).max(16);
        let fanout = if cfg.fanout > 0 { cfg.fanout } else { 8 };
        let mut items: Vec<PtRec3> =
            points.iter().enumerate().map(|(i, &(x, y, z))| ([x, y, z], i as u32)).collect();
        let mut nodes: Vec<Node3> = Vec::new();
        let mut dfs: Vec<PtRec3> = Vec::with_capacity(items.len());
        let mut leaves: Vec<HalfspaceRS3> = Vec::new();

        fn build_node(
            dev: &DeviceHandle,
            items: &mut [PtRec3],
            ni: usize,
            nodes: &mut Vec<Node3>,
            dfs: &mut Vec<PtRec3>,
            leaves: &mut Vec<HalfspaceRS3>,
            threshold: usize,
            fanout: usize,
            hs3: Hs3dConfig,
        ) {
            let (lo, hi) = bbox3(items);
            let pts_off = dfs.len() as u64;
            if items.len() <= threshold {
                // Leaf: a Section 4 structure over the subset.
                let subset: Vec<(i64, i64, i64)> =
                    items.iter().map(|(c, _)| (c[0], c[1], c[2])).collect();
                let hs = HalfspaceRS3::build(dev, &subset, hs3);
                let aux = leaves.len() as u32;
                leaves.push(hs);
                dfs.extend_from_slice(items);
                nodes[ni] = Node3 {
                    lo,
                    hi,
                    child_start: 0,
                    child_count: 0,
                    pts_off,
                    pts_len: items.len() as u64,
                    aux,
                };
                return;
            }
            let ranges = kd_ranges3(items, fanout);
            let child_start = nodes.len() as u64;
            for _ in 0..ranges.len() {
                nodes.push(Node3 {
                    lo: [0; 3],
                    hi: [0; 3],
                    child_start: 0,
                    child_count: 0,
                    pts_off: 0,
                    pts_len: 0,
                    aux: NOAUX,
                });
            }
            for (k, r) in ranges.iter().enumerate() {
                build_node(
                    dev,
                    &mut items[r.clone()],
                    child_start as usize + k,
                    nodes,
                    dfs,
                    leaves,
                    threshold,
                    fanout,
                    hs3,
                );
            }
            nodes[ni] = Node3 {
                lo,
                hi,
                child_start,
                child_count: ranges.len() as u32,
                pts_off,
                pts_len: dfs.len() as u64 - pts_off,
                aux: NOAUX,
            };
        }

        if !items.is_empty() {
            nodes.push(Node3 {
                lo: [0; 3],
                hi: [0; 3],
                child_start: 0,
                child_count: 0,
                pts_off: 0,
                pts_len: 0,
                aux: NOAUX,
            });
            build_node(
                dev,
                &mut items,
                0,
                &mut nodes,
                &mut dfs,
                &mut leaves,
                threshold,
                fanout,
                cfg.hs3,
            );
        }
        HybridTree3 {
            dev: dev.clone(),
            nodes: VecFile::from_slice(dev, &nodes),
            points: VecFile::from_slice(dev, &dfs),
            leaves,
            n: points.len(),
            pages_at_build_end: dev.pages_allocated(),
        }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn pages(&self) -> u64 {
        self.pages_at_build_end
    }

    /// The Theorem 6.1 hybrid-tree query bound — a shallow partition-tree
    /// descent into Section 4 leaf structures, O(n^(1/3) polylog n + t/B)
    /// on the paper's trade-off curve — as a planner hint (DESIGN.md §10).
    pub fn cost_hint(&self) -> CostHint {
        CostHint::new(CostShape::Tradeoff { num: 1, den: 3 }, self.len())
    }

    /// The device this structure lives on (for scoped IO measurement).
    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// The same on-disk structure viewed through `h` (own cache + stats).
    pub fn with_handle(&self, h: &DeviceHandle) -> HybridTree3 {
        HybridTree3 {
            dev: h.clone(),
            nodes: self.nodes.with_handle(h),
            points: self.points.with_handle(h),
            leaves: self.leaves.iter().map(|l| l.with_handle(h)).collect(),
            n: self.n,
            pages_at_build_end: self.pages_at_build_end,
        }
    }

    /// A reader clone on a fresh handle scope over the same pages — each
    /// parallel worker calls this to get its own LRU and IO attribution.
    pub fn fork_reader(&self) -> HybridTree3 {
        self.with_handle(&self.dev.fork())
    }

    /// Serialize the tree's metadata, recursing into every leaf's
    /// Section 4 structure; page data is captured by
    /// [`lcrs_extmem::Device::freeze_to_path`].
    pub fn save(&self, w: &mut MetaWriter) {
        self.nodes.save(w);
        self.points.save(w);
        w.seq(self.leaves.len());
        for l in &self.leaves {
            l.save(w);
        }
        w.usize(self.n);
        w.u64(self.pages_at_build_end);
    }

    /// Rebuild from metadata written by [`Self::save`].
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<HybridTree3, SnapshotError> {
        let nodes = VecFile::load(h, r)?;
        let points = VecFile::load(h, r)?;
        let n_leaves = r.seq()?;
        let mut leaves = Vec::with_capacity(n_leaves);
        for _ in 0..n_leaves {
            leaves.push(HalfspaceRS3::load(h, r)?);
        }
        Ok(HybridTree3 {
            dev: h.clone(),
            nodes,
            points,
            leaves,
            n: r.usize()?,
            pages_at_build_end: r.u64()?,
        })
    }

    /// Report points strictly below `z = u·x + v·y + w` (`inclusive` adds
    /// points on it).
    pub fn query_below(&self, u: i64, v: i64, w: i64, inclusive: bool) -> Vec<u32> {
        self.query_below_stats(u, v, w, inclusive).0
    }

    pub fn query_below_stats(
        &self,
        u: i64,
        v: i64,
        w: i64,
        inclusive: bool,
    ) -> (Vec<u32>, TradeoffStats) {
        let before = self.dev.stats();
        let mut stats = TradeoffStats::default();
        let mut out = Vec::new();
        if self.n > 0 {
            let h: HyperplaneD<3> = HyperplaneD::new([w, u, v]);
            self.visit(0, &h, u, v, w, inclusive, &mut stats, &mut out);
        }
        stats.reported = out.len();
        stats.ios = self.dev.stats().since(before).total();
        (out, stats)
    }

    fn visit(
        &self,
        ni: usize,
        h: &HyperplaneD<3>,
        u: i64,
        v: i64,
        w: i64,
        inclusive: bool,
        stats: &mut TradeoffStats,
        out: &mut Vec<u32>,
    ) {
        let node = self.nodes.get(ni);
        stats.nodes_visited += 1;
        let cell = Aabb { lo: node.lo, hi: node.hi };
        match h.classify_box(&cell) {
            BoxSide::FullyAbove if !inclusive => {}
            BoxSide::FullyBelow => {
                let mut buf: Vec<PtRec3> = Vec::with_capacity(node.pts_len as usize);
                self.points.read_range(
                    node.pts_off as usize..(node.pts_off + node.pts_len) as usize,
                    &mut buf,
                );
                out.extend(buf.into_iter().map(|(_, id)| id));
            }
            _ => {
                if node.child_count > 0 {
                    for k in 0..node.child_count as usize {
                        self.visit(
                            node.child_start as usize + k,
                            h,
                            u,
                            v,
                            w,
                            inclusive,
                            stats,
                            out,
                        );
                    }
                } else {
                    // Leaf: delegate to the Section 4 structure, then remap
                    // local ids through the DFS range.
                    stats.leaf_queries += 1;
                    let local = self.leaves[node.aux as usize].query_below(u, v, w, inclusive);
                    if !local.is_empty() {
                        let mut buf: Vec<PtRec3> = Vec::with_capacity(node.pts_len as usize);
                        self.points.read_range(
                            node.pts_off as usize..(node.pts_off + node.pts_len) as usize,
                            &mut buf,
                        );
                        out.extend(local.into_iter().map(|j| buf[j as usize].1));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Theorem 6.3: shallow-style tree with secondary structures.
// ---------------------------------------------------------------------------

/// Configuration for [`ShallowTree3`].
#[derive(Debug, Clone, Copy)]
pub struct ShallowConfig {
    /// Crossing threshold multiplier κ: more than ⌈κ·log₂ r_v⌉ crossed
    /// children ⇒ the plane is treated as non-shallow at v.
    pub kappa: f64,
    /// Internal fanout (0 ⇒ 8).
    pub fanout: usize,
    /// Leaf capacity (0 ⇒ B).
    pub leaf_capacity: usize,
}

impl Default for ShallowConfig {
    fn default() -> Self {
        ShallowConfig { kappa: 2.0, fanout: 8, leaf_capacity: 0 }
    }
}

/// The Theorem 6.3 structure.
pub struct ShallowTree3 {
    dev: DeviceHandle,
    nodes: VecFile<Node3>,
    points: VecFile<PtRec3>,
    secondaries: Vec<PartitionTree<3>>,
    threshold: Vec<usize>,
    n: usize,
    pages_at_build_end: u64,
}

impl ShallowTree3 {
    pub fn build(
        dev: &DeviceHandle,
        points: &[(i64, i64, i64)],
        cfg: ShallowConfig,
    ) -> ShallowTree3 {
        let b = dev.records_per_page(<PtRec3 as Record>::SIZE);
        let leaf_cap = if cfg.leaf_capacity > 0 { cfg.leaf_capacity } else { b }.max(1);
        let fanout = if cfg.fanout > 0 { cfg.fanout } else { 8 };
        let kappa = cfg.kappa.max(0.1);
        let mut items: Vec<PtRec3> =
            points.iter().enumerate().map(|(i, &(x, y, z))| ([x, y, z], i as u32)).collect();
        let mut nodes: Vec<Node3> = Vec::new();
        let mut dfs: Vec<PtRec3> = Vec::with_capacity(items.len());
        let mut secondaries: Vec<PartitionTree<3>> = Vec::new();
        let mut threshold: Vec<usize> = Vec::new();

        #[allow(clippy::too_many_arguments)]
        fn build_node(
            dev: &DeviceHandle,
            items: &mut [PtRec3],
            ni: usize,
            nodes: &mut Vec<Node3>,
            dfs: &mut Vec<PtRec3>,
            secondaries: &mut Vec<PartitionTree<3>>,
            threshold: &mut Vec<usize>,
            leaf_cap: usize,
            fanout: usize,
            kappa: f64,
        ) {
            let (lo, hi) = bbox3(items);
            let pts_off = dfs.len() as u64;
            if items.len() <= leaf_cap {
                dfs.extend_from_slice(items);
                nodes[ni] = Node3 {
                    lo,
                    hi,
                    child_start: 0,
                    child_count: 0,
                    pts_off,
                    pts_len: items.len() as u64,
                    aux: NOAUX,
                };
                return;
            }
            // Secondary non-shallow structure over the whole subtree, built
            // on the DFS-ordered subset so reported local ids map straight
            // into the DFS range.
            let ranges = kd_ranges3(items, fanout);
            let child_start = nodes.len() as u64;
            for _ in 0..ranges.len() {
                nodes.push(Node3 {
                    lo: [0; 3],
                    hi: [0; 3],
                    child_start: 0,
                    child_count: 0,
                    pts_off: 0,
                    pts_len: 0,
                    aux: NOAUX,
                });
            }
            for (k, r) in ranges.iter().enumerate() {
                build_node(
                    dev,
                    &mut items[r.clone()],
                    child_start as usize + k,
                    nodes,
                    dfs,
                    secondaries,
                    threshold,
                    leaf_cap,
                    fanout,
                    kappa,
                );
            }
            let pts_len = dfs.len() as u64 - pts_off;
            let subset: Vec<PointD<3>> =
                dfs[pts_off as usize..].iter().map(|(c, _)| PointD::new(*c)).collect();
            let sec = PartitionTree::build(
                dev,
                &subset,
                PTreeConfig { partitioner: Partitioner::KdMedian, ..Default::default() },
            );
            let aux = secondaries.len() as u32;
            secondaries.push(sec);
            let r_v = ranges.len().max(2);
            threshold.push((kappa * (r_v as f64).log2()).ceil() as usize);
            nodes[ni] = Node3 {
                lo,
                hi,
                child_start,
                child_count: ranges.len() as u32,
                pts_off,
                pts_len,
                aux,
            };
        }

        if !items.is_empty() {
            nodes.push(Node3 {
                lo: [0; 3],
                hi: [0; 3],
                child_start: 0,
                child_count: 0,
                pts_off: 0,
                pts_len: 0,
                aux: NOAUX,
            });
            build_node(
                dev,
                &mut items,
                0,
                &mut nodes,
                &mut dfs,
                &mut secondaries,
                &mut threshold,
                leaf_cap,
                fanout,
                kappa,
            );
        }
        ShallowTree3 {
            dev: dev.clone(),
            nodes: VecFile::from_slice(dev, &nodes),
            points: VecFile::from_slice(dev, &dfs),
            secondaries,
            threshold,
            n: points.len(),
            pages_at_build_end: dev.pages_allocated(),
        }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn pages(&self) -> u64 {
        self.pages_at_build_end
    }

    /// The Theorem 6.3 shallow-tree query bound — O(n^(2/3+δ) + t/B) from
    /// near-linear space — as a planner hint (DESIGN.md §10).
    pub fn cost_hint(&self) -> CostHint {
        CostHint::new(CostShape::Tradeoff { num: 2, den: 3 }, self.len())
    }

    /// The device this structure lives on (for scoped IO measurement).
    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// The same on-disk structure viewed through `h` (own cache + stats).
    pub fn with_handle(&self, h: &DeviceHandle) -> ShallowTree3 {
        ShallowTree3 {
            dev: h.clone(),
            nodes: self.nodes.with_handle(h),
            points: self.points.with_handle(h),
            secondaries: self.secondaries.iter().map(|t| t.with_handle(h)).collect(),
            threshold: self.threshold.clone(),
            n: self.n,
            pages_at_build_end: self.pages_at_build_end,
        }
    }

    /// A reader clone on a fresh handle scope over the same pages — each
    /// parallel worker calls this to get its own LRU and IO attribution.
    pub fn fork_reader(&self) -> ShallowTree3 {
        self.with_handle(&self.dev.fork())
    }

    /// Serialize the tree's metadata, recursing into every secondary
    /// partition tree; page data is captured by
    /// [`lcrs_extmem::Device::freeze_to_path`].
    pub fn save(&self, w: &mut MetaWriter) {
        self.nodes.save(w);
        self.points.save(w);
        w.seq(self.secondaries.len());
        for s in &self.secondaries {
            s.save(w);
        }
        w.seq(self.threshold.len());
        for &t in &self.threshold {
            w.usize(t);
        }
        w.usize(self.n);
        w.u64(self.pages_at_build_end);
    }

    /// Rebuild from metadata written by [`Self::save`].
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<ShallowTree3, SnapshotError> {
        let nodes = VecFile::load(h, r)?;
        let points = VecFile::load(h, r)?;
        let n_secondaries = r.seq()?;
        let mut secondaries = Vec::with_capacity(n_secondaries);
        for _ in 0..n_secondaries {
            secondaries.push(PartitionTree::<3>::load(h, r)?);
        }
        let n_thresholds = r.seq()?;
        let mut threshold = Vec::with_capacity(n_thresholds);
        for _ in 0..n_thresholds {
            threshold.push(r.usize()?);
        }
        if threshold.len() != secondaries.len() {
            return Err(r.error("secondaries and thresholds must be parallel"));
        }
        Ok(ShallowTree3 {
            dev: h.clone(),
            nodes,
            points,
            secondaries,
            threshold,
            n: r.usize()?,
            pages_at_build_end: r.u64()?,
        })
    }

    pub fn query_below(&self, u: i64, v: i64, w: i64, inclusive: bool) -> Vec<u32> {
        self.query_below_stats(u, v, w, inclusive).0
    }

    pub fn query_below_stats(
        &self,
        u: i64,
        v: i64,
        w: i64,
        inclusive: bool,
    ) -> (Vec<u32>, TradeoffStats) {
        let before = self.dev.stats();
        let mut stats = TradeoffStats::default();
        let mut out = Vec::new();
        if self.n > 0 {
            let h: HyperplaneD<3> = HyperplaneD::new([w, u, v]);
            self.visit(0, &h, inclusive, &mut stats, &mut out);
        }
        stats.reported = out.len();
        stats.ios = self.dev.stats().since(before).total();
        (out, stats)
    }

    fn report_range(
        &self,
        off: u64,
        len: u64,
        h: &HyperplaneD<3>,
        filter: bool,
        inclusive: bool,
        out: &mut Vec<u32>,
    ) {
        let mut buf: Vec<PtRec3> = Vec::with_capacity(len as usize);
        self.points.read_range(off as usize..(off + len) as usize, &mut buf);
        for (c, id) in buf {
            if !filter || {
                let s = h.slack(&PointD::new(c));
                if inclusive {
                    s >= 0
                } else {
                    s > 0
                }
            } {
                out.push(id);
            }
        }
    }

    fn visit(
        &self,
        ni: usize,
        h: &HyperplaneD<3>,
        inclusive: bool,
        stats: &mut TradeoffStats,
        out: &mut Vec<u32>,
    ) {
        let node = self.nodes.get(ni);
        stats.nodes_visited += 1;
        let cell = Aabb { lo: node.lo, hi: node.hi };
        match h.classify_box(&cell) {
            BoxSide::FullyAbove if !inclusive => return,
            BoxSide::FullyBelow => {
                self.report_range(node.pts_off, node.pts_len, h, false, inclusive, out);
                return;
            }
            _ => {}
        }
        if node.child_count == 0 {
            self.report_range(node.pts_off, node.pts_len, h, true, inclusive, out);
            return;
        }
        // Count crossed children first (their descriptors share pages, so
        // this is O(1) IOs per node).
        let mut crossed: Vec<usize> = Vec::new();
        let mut below: Vec<usize> = Vec::new();
        for k in 0..node.child_count as usize {
            let ci = node.child_start as usize + k;
            let c = self.nodes.get(ci);
            match h.classify_box(&Aabb { lo: c.lo, hi: c.hi }) {
                BoxSide::FullyBelow => below.push(ci),
                BoxSide::FullyAbove if !inclusive => {}
                _ => crossed.push(ci),
            }
        }
        if crossed.len() > self.threshold[node.aux as usize] {
            // Not shallow at this node: answer with the secondary structure
            // (its input was the DFS slice, so local id j ↔ pts_off + j,
            // and the id is read back from the DFS file).
            stats.secondary_queries += 1;
            let local = self.secondaries[node.aux as usize].query_halfspace(h, inclusive);
            if !local.is_empty() {
                let mut buf: Vec<PtRec3> = Vec::with_capacity(node.pts_len as usize);
                self.points.read_range(
                    node.pts_off as usize..(node.pts_off + node.pts_len) as usize,
                    &mut buf,
                );
                out.extend(local.into_iter().map(|j| buf[j as usize].1));
            }
            return;
        }
        for ci in below {
            let c = self.nodes.get(ci);
            self.report_range(c.pts_off, c.pts_len, h, false, inclusive, out);
        }
        for ci in crossed {
            self.visit(ci, h, inclusive, stats, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::{Device, DeviceConfig};

    fn pseudo3(n: usize, seed: u64, range: i64) -> Vec<(i64, i64, i64)> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i64).rem_euclid(2 * range) - range
        };
        (0..n).map(|_| (next(), next(), next())).collect()
    }

    fn brute(points: &[(i64, i64, i64)], u: i64, v: i64, w: i64, inclusive: bool) -> Vec<u32> {
        let mut r: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, &(x, y, z))| {
                let rhs = u as i128 * x as i128 + v as i128 * y as i128 + w as i128;
                if inclusive {
                    z as i128 <= rhs
                } else {
                    (z as i128) < rhs
                }
            })
            .map(|(i, _)| i as u32)
            .collect();
        r.sort_unstable();
        r
    }

    #[test]
    fn hybrid_matches_brute_force() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo3(1500, 42, 100_000);
        let t = HybridTree3::build(&dev, &pts, HybridConfig::default());
        assert!(!t.leaves.is_empty());
        let mut s = 7u64;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as i64).rem_euclid(2000) - 1000
        };
        for k in 0..30 {
            let (u, v, w) = (next(), next(), next() * 500);
            let inclusive = k % 2 == 0;
            let mut got = t.query_below(u, v, w, inclusive);
            got.sort_unstable();
            assert_eq!(got, brute(&pts, u, v, w, inclusive));
        }
    }

    #[test]
    fn hybrid_parameter_sweep() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo3(600, 5, 50_000);
        for a in [1.2f64, 1.8] {
            let t = HybridTree3::build(&dev, &pts, HybridConfig { a, ..Default::default() });
            let mut got = t.query_below(3, -2, 1000, false);
            got.sort_unstable();
            assert_eq!(got, brute(&pts, 3, -2, 1000, false), "a={a}");
        }
    }

    #[test]
    fn shallow_matches_brute_force() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo3(1200, 11, 100_000);
        let t = ShallowTree3::build(&dev, &pts, ShallowConfig::default());
        assert!(!t.secondaries.is_empty());
        let mut s = 13u64;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) as i64).rem_euclid(2000) - 1000
        };
        for k in 0..30 {
            let (u, v, w) = (next(), next(), next() * 500);
            let inclusive = k % 2 == 0;
            let mut got = t.query_below(u, v, w, inclusive);
            got.sort_unstable();
            assert_eq!(got, brute(&pts, u, v, w, inclusive));
        }
    }

    #[test]
    fn shallow_secondary_fires_on_deep_planes() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        let pts = pseudo3(2000, 17, 10_000);
        // A tiny κ forces the secondary path on nearly every query.
        let t = ShallowTree3::build(&dev, &pts, ShallowConfig { kappa: 0.1, ..Default::default() });
        let (got, st) = t.query_below_stats(1, 1, 0, false);
        let mut got = got;
        got.sort_unstable();
        assert_eq!(got, brute(&pts, 1, 1, 0, false));
        assert!(st.secondary_queries > 0, "expected the non-shallow fallback to fire");
    }

    #[test]
    fn tiny_inputs() {
        let dev = Device::new(DeviceConfig::new(512, 0));
        for n in [0usize, 1, 5] {
            let pts = pseudo3(n, 3 + n as u64, 100);
            let h = HybridTree3::build(&dev, &pts, HybridConfig::default());
            let s = ShallowTree3::build(&dev, &pts, ShallowConfig::default());
            assert_eq!(h.query_below(1, 1, 50, true).len(), brute(&pts, 1, 1, 50, true).len());
            assert_eq!(s.query_below(1, 1, 50, true).len(), brute(&pts, 1, 1, 50, true).len());
        }
    }
}
